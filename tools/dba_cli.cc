// dba_cli -- command-line driver for the DBA processor simulator.
//
// Run any kernel on any configuration without writing C++:
//
//   dba_cli --list-configs
//   dba_cli --config=DBA_2LSU_EIS --op=intersect --n=5000 --selectivity=0.5
//   dba_cli --config=DBA_1LSU_EIS --op=sort --n=6500 --no-partial
//   dba_cli --config=DBA_2LSU_EIS --op=union --n=200000 --stream
//   dba_cli --config=DBA_2LSU_EIS --op=intersect --n=64 --profile --disasm
//
// Observability subcommands (docs/OBSERVABILITY.md):
//
//   dba_cli profile --config=DBA_2LSU_EIS --op=intersect --json=out.json
//   dba_cli trace --config=DBA_2LSU_EIS --op=intersect --out=run.trace.json
//   dba_cli validate-bench BENCH_table2_throughput.json
//   dba_cli compare-bench run.json baseline.json --tolerance=0.15
//
// Multi-core board runs (Section 5.4 scale-out; the cores are simulated
// on concurrent host threads, see docs/ARCHITECTURE.md):
//
//   dba_cli board --op=intersect --cores=16 --n=500000 --host-threads=8
//
// Fault injection and recovery (docs/FAULTS.md):
//
//   dba_cli faults --op=sort --cores=8 --n=100000 --fault-rate=0.05
//   dba_cli faults --op=intersect --broken-cores=1,3 --fault-rate=0
//   dba_cli board --op=union --fault-seed=7 --fault-rate=0.02

#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "baseline/scalar_baseline.h"
#include "common/random.h"
#include "core/processor.h"
#include "core/workload.h"
#include "hwmodel/synthesis.h"
#include "isa/disassembler.h"
#include "obs/bench_compare.h"
#include "obs/bench_json.h"
#include "obs/metrics_json.h"
#include "obs/metrics/event_log.h"
#include "obs/metrics/metrics.h"
#include "obs/serialize.h"
#include "obs/trace_writer.h"
#include "prefetch/streaming.h"
#include "query/engine.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/table.h"
#include "fault/chaos.h"
#include "service/query_service.h"
#include "sim/exec_mode.h"
#include "system/board.h"
#include "toolchain/profiler.h"

namespace {

using dba::ProcessorKind;
using dba::SetOp;

struct CliOptions {
  std::string command;  // "", "profile", "trace", "board"
  std::string config = "DBA_2LSU_EIS";
  std::string op = "intersect";
  uint32_t n = 5000;
  std::optional<uint32_t> nb;
  double selectivity = 0.5;
  uint64_t seed = 42;
  bool partial = true;
  int unroll = 32;
  bool tech28 = false;
  bool scalar = false;
  bool profile = false;
  bool disasm = false;
  bool stream = false;
  bool list_configs = false;
  dba::sim::ExecMode sim_mode = dba::sim::ExecMode::kFastForward;
  uint32_t trace = 0;
  std::string json_path;   // profile: combined JSON report
  std::string trace_path = "dba.trace.json";  // trace: Perfetto file
  int cores = 16;          // board: number of cores
  int host_threads = 0;    // board: 0 = hardware concurrency
  uint64_t fault_seed = 1;    // board/faults: fault schedule seed
  double fault_rate = -1.0;   // per-class rate; < 0 = command default
  std::string broken_cores;   // comma-separated permanently-dead cores
  int max_attempts = 4;       // recovery: attempts per partition
  std::string metrics_out;    // board/faults/top: dba.metrics.v1 file
  bool once = false;          // top: one refresh, no screen clearing
  int iters = 10;             // top: refreshes before exiting (0 = forever)
  std::string sizes;          // plan: "A,B" set sizes (default --n,--nb)
  std::string force_route;    // plan: fixed route override
  uint64_t chaos_seed = 1;    // serve: chaos schedule seed
  std::string chaos_profile;  // serve: calm|ramp|waves|brownout|meltdown
};

void PrintUsage() {
  std::printf(
      "usage: dba_cli [command] [options]\n"
      "commands:\n"
      "  (none)                   run a kernel and print its metrics\n"
      "  profile                  run profiled; print the hotspot and\n"
      "                           stall-attribution reports\n"
      "                           (--json=PATH writes them as JSON)\n"
      "  trace                    run with the cycle tracer; write a\n"
      "                           Chrome trace-event / Perfetto file\n"
      "                           (--out=PATH, default dba.trace.json)\n"
      "  board                    run a parallel op on a multi-core board\n"
      "                           (--cores=N, --host-threads=N; 0 = all\n"
      "                           host cores, 1 = serial simulation)\n"
      "  faults                   board run under deterministic fault\n"
      "                           injection; prints recovery telemetry\n"
      "                           (default --fault-rate=0.05)\n"
      "  top                      live runtime-metrics view: runs board\n"
      "                           ops in a loop and refreshes a table of\n"
      "                           QPS, latency quantiles, and recovery\n"
      "                           counters (--once for a single refresh,\n"
      "                           --iters=N refreshes, --json=PATH writes\n"
      "                           the final dba.metrics.v1 snapshot)\n"
      "  plan                     adaptive-planner inspector: print the\n"
      "                           route decision for an (|A|, |B|)\n"
      "                           intersection with estimated vs measured\n"
      "                           cost per route, then replay the query\n"
      "                           through a QueryEngine until the lazy\n"
      "                           PartitionIndex pays back\n"
      "                           (--sizes=A,B --selectivity=F\n"
      "                           [--force-route=R], docs/PLANNER.md)\n"
      "  serve                    query-service demo: front a board with\n"
      "                           the multi-tenant QueryService (vip\n"
      "                           tenant boosted, result cache on), push\n"
      "                           --iters waves of mixed queries and\n"
      "                           direct set ops, and print admission/\n"
      "                           batching/cache counters plus latency\n"
      "                           quantiles (--n=ROWS --cores=N\n"
      "                           [--metrics-out=PATH], docs/SERVICE.md);\n"
      "                           --chaos-profile=P runs the waves under\n"
      "                           a seeded chaos schedule (calm | ramp |\n"
      "                           waves | brownout | meltdown,\n"
      "                           --chaos-seed=N) and reports degraded-\n"
      "                           mode and breaker activity\n"
      "  validate-bench FILE...   validate dba.bench.v1 (and\n"
      "                           dba.metrics.v1) JSON documents\n"
      "  compare-bench RUN BASE   compare a bench run against a committed\n"
      "                           baseline; exit 1 when a higher-is-better\n"
      "                           metric drops by more than --tolerance\n"
      "                           (default 0.15) or a baseline row is\n"
      "                           missing from the run; --strict also\n"
      "                           fails metrics the run omitted\n"
      "options:\n"
      "  --list-configs           print the synthesis table and exit\n"
      "  --config=NAME            108Mini | DBA_1LSU | DBA_2LSU |\n"
      "                           DBA_1LSU_EIS | DBA_2LSU_EIS\n"
      "  --op=NAME                intersect | union | difference | merge |"
      " sort\n"
      "  --n=N                    elements per input (default 5000)\n"
      "  --nb=N                   elements in set B (default = --n)\n"
      "  --selectivity=F          0.0 .. 1.0 (default 0.5)\n"
      "  --seed=N                 workload seed (default 42)\n"
      "  --no-partial             disable partial loading\n"
      "  --unroll=N               EIS core-loop unroll factor (default 32)\n"
      "  --sim-mode=MODE          core run loop: interpret | fast-forward"
      " | turbo\n"
      "                           (default fast-forward; turbo cycles are\n"
      "                           model-derived, see docs/ARCHITECTURE.md)\n"
      "  --tech28                 use the 28 nm node for timing/energy\n"
      "  --scalar                 force the scalar kernel\n"
      "  --stream                 stream via the data prefetcher\n"
      "  --profile                print the hotspot report\n"
      "  --trace=N                print the first N executed words\n"
      "  --disasm                 print the kernel program listing\n"
      "fault options (board | faults):\n"
      "  --fault-seed=N           fault schedule seed (default 1)\n"
      "  --fault-rate=F           per-attempt probability of each fault\n"
      "                           class (hang, bit flips, NoC faults)\n"
      "  --broken-cores=A,B,...   cores that permanently hang\n"
      "  --max-attempts=N         attempts per partition (default 4)\n"
      "metrics options (board | faults | top):\n"
      "  --metrics-out=PATH       write a dba.metrics.v1 runtime telemetry\n"
      "                           snapshot (also written when the run\n"
      "                           fails, so partial telemetry survives)\n"
      "  --once                   top: render one table and exit\n"
      "  --iters=N                top: refresh N times (default 10,\n"
      "                           0 = until interrupted)\n"
      "plan options:\n"
      "  --sizes=A,B              intersection input sizes (default\n"
      "                           --n and --nb)\n"
      "  --force-route=R          eis_merge | galloping | simd_merge |\n"
      "                           partition_probe (skip cost-based\n"
      "                           routing; estimates still printed)\n");
}

std::optional<ProcessorKind> ParseKind(const std::string& name) {
  using hwmodel = dba::hwmodel::ConfigKind;
  if (name == "108Mini") return hwmodel::k108Mini;
  if (name == "DBA_1LSU") return hwmodel::kDba1Lsu;
  if (name == "DBA_2LSU") return hwmodel::kDba2Lsu;
  if (name == "DBA_1LSU_EIS") return hwmodel::kDba1LsuEis;
  if (name == "DBA_2LSU_EIS") return hwmodel::kDba2LsuEis;
  return std::nullopt;
}

std::optional<SetOp> ParseOp(const std::string& name) {
  if (name == "intersect") return SetOp::kIntersect;
  if (name == "union") return SetOp::kUnion;
  if (name == "difference") return SetOp::kDifference;
  if (name == "merge") return SetOp::kMerge;
  return std::nullopt;  // "sort" handled separately
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int ListConfigs() {
  std::printf("%-14s %-6s %14s %12s %12s %10s\n", "config", "tech",
              "logic [mm2]", "mem [mm2]", "fmax [MHz]", "P [mW]");
  using dba::hwmodel::ConfigKind;
  using dba::hwmodel::TechNode;
  for (ConfigKind kind :
       {ConfigKind::k108Mini, ConfigKind::kDba1Lsu, ConfigKind::kDba2Lsu,
        ConfigKind::kDba1LsuEis, ConfigKind::kDba2LsuEis}) {
    for (TechNode node : {TechNode::k65nmTsmcLp, TechNode::k28nmGfSlp}) {
      const auto report = dba::hwmodel::Synthesize(kind, node);
      std::printf("%-14s %-6s %14.4f %12.3f %12.0f %10.1f\n",
                  report.config_name.c_str(),
                  std::string(dba::hwmodel::TechNodeName(node)).c_str(),
                  report.logic_area_mm2, report.mem_area_mm2,
                  report.fmax_mhz, report.power_mw);
    }
  }
  return 0;
}

void PrintMetrics(const dba::RunMetrics& metrics, size_t result_size,
                  const dba::Processor& processor) {
  std::printf("result elements   %zu\n", result_size);
  std::printf("cycles            %llu\n",
              static_cast<unsigned long long>(metrics.cycles));
  std::printf("time              %.3f us @ %.0f MHz\n", metrics.seconds * 1e6,
              processor.synthesis().fmax_mhz);
  std::printf("throughput        %.1f M elements/s\n",
              metrics.throughput_meps);
  std::printf("energy            %.4f nJ/element (%.1f mW)\n",
              metrics.energy_nj_per_element, processor.synthesis().power_mw);
  std::printf("branches          %llu taken, %llu mispredicted\n",
              static_cast<unsigned long long>(metrics.stats.taken_branches),
              static_cast<unsigned long long>(
                  metrics.stats.mispredicted_branches));
  std::printf("memory beats      LSU0 %llu, LSU1 %llu\n",
              static_cast<unsigned long long>(metrics.stats.lsu_beats[0]),
              static_cast<unsigned long long>(metrics.stats.lsu_beats[1]));
}

int Fail(const dba::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int NumLsus(ProcessorKind kind) {
  return (kind == ProcessorKind::kDba2Lsu ||
          kind == ProcessorKind::kDba2LsuEis)
             ? 2
             : 1;
}

/// validate-bench FILE...: parse each document and check it against its
/// schema, dispatched on the schema tag: dba.bench.v1 bench results or
/// dba.metrics.v1 runtime-telemetry snapshots.
int ValidateBenchFiles(int argc, char** argv, int first) {
  if (first >= argc) {
    std::fprintf(stderr, "validate-bench: no files given\n");
    return 2;
  }
  int failures = 0;
  for (int i = first; i < argc; ++i) {
    auto document = dba::obs::ReadJsonFile(argv[i]);
    if (!document.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i],
                   document.status().ToString().c_str());
      ++failures;
      continue;
    }
    const bool is_metrics =
        document->at("schema").is_string() &&
        document->at("schema").as_string() == dba::obs::kMetricsSchema;
    const dba::Status status =
        is_metrics ? dba::obs::ValidateMetricsJson(*document)
                   : dba::obs::ValidateBenchJson(*document);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", argv[i],
                   status.ToString().c_str());
      ++failures;
    } else if (is_metrics) {
      std::printf("%s: OK (%s, %zu counters, %zu gauges, %zu histograms)\n",
                  argv[i], std::string(dba::obs::kMetricsSchema).c_str(),
                  document->at("counters").members().size(),
                  document->at("gauges").members().size(),
                  document->at("histograms").members().size());
    } else {
      std::printf("%s: OK (%s, %zu rows)\n", argv[i],
                  document->at("bench").as_string().c_str(),
                  document->at("results").size());
    }
  }
  return failures == 0 ? 0 : 1;
}

/// compare-bench RUN BASELINE [--tolerance=F]: the CI perf gate. Exits
/// 0 when every baseline row is present in the run and no tracked
/// higher-is-better metric regressed beyond the tolerance.
int CompareBenchFiles(int argc, char** argv, int first) {
  std::vector<const char*> files;
  dba::obs::BenchCompareOptions options;
  for (int i = first; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--tolerance", &value)) {
      options.tolerance = std::strtod(value.c_str(), nullptr);
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      options.strict = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "compare-bench: unknown option %s\n", argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: dba_cli compare-bench RUN.json BASELINE.json "
                 "[--tolerance=F] [--strict]\n");
    return 2;
  }
  auto run = dba::obs::ReadJsonFile(files[0]);
  if (!run.ok()) return Fail(run.status());
  auto baseline = dba::obs::ReadJsonFile(files[1]);
  if (!baseline.ok()) return Fail(baseline.status());
  auto comparison =
      dba::obs::CompareBenchDocuments(*run, *baseline, options);
  if (!comparison.ok()) return Fail(comparison.status());

  std::printf("comparing %s against %s (tolerance %.0f%%)\n", files[0],
              files[1], options.tolerance * 100.0);
  std::printf("%-44s %-16s %12s %12s %8s\n", "row", "metric", "run",
              "baseline", "ratio");
  for (const dba::obs::BenchMetricDelta& delta : comparison->deltas) {
    std::printf("%-44s %-16s %12.2f %12.2f %7.2fx%s\n",
                delta.row_key.c_str(), delta.metric.c_str(), delta.run_value,
                delta.baseline_value, delta.ratio,
                delta.regressed ? "  << REGRESSION" : "");
  }
  for (const std::string& tolerated : comparison->tolerated) {
    std::printf("%-44s tolerated: metric absent from the run (use "
                "--strict to fail)\n",
                tolerated.c_str());
  }
  for (const std::string& row : comparison->missing_rows) {
    std::printf("%-44s MISSING from the run document\n", row.c_str());
  }
  if (!comparison->passed()) {
    std::fprintf(stderr,
                 "compare-bench: FAIL (%d regressed metric(s), %zu missing "
                 "row(s))\n",
                 comparison->regressions, comparison->missing_rows.size());
    return 1;
  }
  std::printf("compare-bench: OK (%zu metrics within tolerance)\n",
              comparison->deltas.size());
  return 0;
}

/// "1,3,7" -> {1, 3, 7}; empty string -> {}.
std::vector<int> ParseIntList(const std::string& csv) {
  std::vector<int> values;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    values.push_back(static_cast<int>(
        std::strtol(csv.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return values;
}

/// Writes the --metrics-out snapshot if requested. Called on both the
/// success and failure paths of board-style commands so a failed run
/// still emits the telemetry it accumulated.
void FlushMetricsOut(const std::string& path) {
  if (path.empty()) return;
  const dba::Status status = dba::obs::WriteMetricsSnapshotFile(path);
  if (status.ok()) {
    std::printf("wrote metrics snapshot to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "writing metrics snapshot %s failed: %s\n",
                 path.c_str(), status.ToString().c_str());
  }
}

/// The shared board construction of the board/faults/top commands.
dba::system::BoardConfig MakeBoardConfig(
    const CliOptions& options, ProcessorKind kind,
    const dba::ProcessorOptions& processor_options) {
  const bool faults_mode = options.command == "faults";
  dba::system::BoardConfig config;
  config.core_kind = kind;
  config.core_options = processor_options;
  config.num_cores = options.cores;
  config.host_threads = options.host_threads;
  config.sim_mode = options.sim_mode;
  double rate = options.fault_rate;
  if (rate < 0) rate = faults_mode ? 0.05 : 0.0;
  config.fault_plan.seed = options.fault_seed;
  config.fault_plan.hang_rate = rate;
  config.fault_plan.input_flip_rate = rate;
  config.fault_plan.result_flip_rate = rate;
  config.fault_plan.transfer_fail_rate = rate;
  config.fault_plan.transfer_timeout_rate = rate;
  config.fault_plan.broken_cores = ParseIntList(options.broken_cores);
  config.recovery.max_attempts = options.max_attempts;
  return config;
}

/// board / faults --op=... --cores=N --host-threads=N: a parallel set
/// operation or sample-sort on a multi-core board, with the host-side
/// simulation speed reported next to the simulated figures. The faults
/// command (or any --fault-* / --broken-cores flag) runs under the
/// deterministic injector and prints the recovery telemetry.
int RunBoard(const CliOptions& options, ProcessorKind kind,
             const dba::ProcessorOptions& processor_options) {
  const bool faults_mode = options.command == "faults";
  const dba::system::BoardConfig config =
      MakeBoardConfig(options, kind, processor_options);
  auto board = dba::system::Board::Create(config);
  if (!board.ok()) return Fail(board.status());

  dba::Result<dba::system::ParallelRun> run =
      dba::Status::Internal("unset");
  if (options.op == "sort") {
    const auto values = dba::GenerateSortInput(options.n, options.seed);
    run = (*board)->RunSort(values);
  } else {
    const auto op = ParseOp(options.op);
    if (!op.has_value() || *op == SetOp::kMerge) {
      std::fprintf(stderr, "board supports intersect|union|difference|sort\n");
      return 2;
    }
    auto pair = dba::GenerateSetPair(options.n,
                                     options.nb.value_or(options.n),
                                     options.selectivity, options.seed);
    if (!pair.ok()) return Fail(pair.status());
    run = (*board)->RunSetOperation(*op, pair->a, pair->b);
  }
  if (!run.ok()) {
    FlushMetricsOut(options.metrics_out);
    return Fail(run.status());
  }

  std::printf("result elements   %zu\n", run->result.size());
  std::printf("makespan          %llu cycles\n",
              static_cast<unsigned long long>(run->makespan_cycles));
  std::printf("throughput        %.1f M elements/s (%s-bound)\n",
              run->throughput_meps, run->noc_bound ? "noc" : "compute");
  std::printf("board power       %.2f W, energy %.1f uJ\n",
              run->board_power_mw / 1000.0, run->energy_uj);
  std::printf("host wall clock   %.4f s on %d host thread(s)\n",
              run->host_wall_seconds, run->host_threads_used);
  const dba::system::RecoveryTelemetry& recovery = run->recovery;
  if (faults_mode || config.fault_plan.enabled()) {
    std::printf("faults injected   %u (%u failed attempts, "
                "%u verification failures)\n",
                recovery.faults_injected, recovery.failed_attempts,
                recovery.verification_failures);
    std::printf("recovery          %u retries, %u requeues, %u rounds, "
                "%llu cycles\n",
                recovery.retries, recovery.requeues, recovery.rounds,
                static_cast<unsigned long long>(recovery.recovery_cycles));
    std::string quarantined;
    for (const int core : recovery.quarantined_cores) {
      if (!quarantined.empty()) quarantined += ",";
      quarantined += std::to_string(core);
    }
    std::printf("quarantined cores %s%s\n",
                quarantined.empty() ? "(none)" : quarantined.c_str(),
                recovery.degraded ? " [degraded]" : "");
  }
  if (!options.json_path.empty()) {
    auto root = dba::obs::JsonValue::Object();
    root.Set("config", options.config)
        .Set("op", options.op)
        .Set("cores", options.cores);
    dba::obs::MergeParallelRun(root, *run);
    const dba::Status status =
        dba::obs::WriteJsonFile(options.json_path, root);
    if (!status.ok()) return Fail(status);
    std::printf("wrote board JSON to %s\n", options.json_path.c_str());
  }
  FlushMetricsOut(options.metrics_out);
  return 0;
}

/// top: runs board operations in a loop and refreshes a live table fed
/// by the runtime-metrics registry -- QPS, simulated-latency quantiles,
/// and the recovery counters (docs/OBSERVABILITY.md). The registry is
/// reset on entry so the view covers this run only.
// `dba_cli serve`: a self-contained query-service demo. Builds a board,
// fronts it with a QueryService (vip tenant boosted, result cache on),
// registers a demo "orders" table, and pushes --iters waves of mixed
// predicate queries plus direct set ops through Submit/Drain. Prints
// the admission/batching/cache counters and the latency quantiles the
// service mirrors into the global metrics registry (docs/SERVICE.md).
int RunServe(const CliOptions& options, ProcessorKind kind,
             const dba::ProcessorOptions& processor_options) {
  namespace svc = dba::service;
  dba::obs::MetricsRegistry::Global().Reset();
  dba::obs::EventLog::Global().Clear();

  const dba::system::BoardConfig board_config =
      MakeBoardConfig(options, kind, processor_options);
  auto board = dba::system::Board::Create(board_config);
  if (!board.ok()) return Fail(board.status());

  // Optional chaos schedule: the waves below run under a seeded,
  // phased fault plan swapped in at wave boundaries (the board is idle
  // behind Drain), exercising the breaker and host fallback live.
  const int waves = options.iters > 0 ? options.iters : 10;
  std::optional<dba::fault::ChaosSchedule> chaos;
  if (!options.chaos_profile.empty()) {
    auto profile = dba::fault::ChaosProfileFromName(options.chaos_profile);
    if (!profile.ok()) return Fail(profile.status());
    dba::fault::ChaosOptions chaos_options;
    chaos_options.num_cores = options.cores;
    auto probe = dba::fault::ChaosSchedule::Make(*profile, options.chaos_seed,
                                                 chaos_options);
    if (!probe.ok()) return Fail(probe.status());
    // Stretch the schedule's phases evenly over the wave count.
    chaos_options.steps_per_phase = std::max(
        1, waves / static_cast<int>(probe->phases().size()));
    auto schedule = dba::fault::ChaosSchedule::Make(
        *profile, options.chaos_seed, chaos_options);
    if (!schedule.ok()) return Fail(schedule.status());
    chaos = *std::move(schedule);
  }

  svc::ServiceConfig config;
  config.board = board->get();
  config.queue_capacity = 4096;
  config.max_attempts = options.max_attempts;
  config.tenant_priorities["vip"] = 10;
  if (chaos.has_value()) {
    config.breaker.failure_threshold = 2;
    config.breaker.open_duration_ns = 2'000'000;  // 2 ms wall time
  }
  auto service = svc::QueryService::Create(config);
  if (!service.ok()) return Fail(service.status());

  // Demo table: the orders schema the bench and test suites share.
  dba::Random rng(options.seed);
  auto table = std::make_unique<dba::query::Table>("orders");
  {
    const uint32_t rows = options.n;
    std::vector<uint32_t> region(rows);
    std::vector<uint32_t> status(rows);
    std::vector<uint32_t> amount(rows);
    for (uint32_t i = 0; i < rows; ++i) {
      region[i] = static_cast<uint32_t>(rng.Uniform(5));
      status[i] = static_cast<uint32_t>(rng.Uniform(3));
      amount[i] = static_cast<uint32_t>(rng.Uniform(10000));
    }
    if (auto s = table->AddColumn("region", std::move(region)); !s.ok()) {
      return Fail(s);
    }
    if (auto s = table->AddColumn("status", std::move(status)); !s.ok()) {
      return Fail(s);
    }
    if (auto s = table->AddColumn("amount", std::move(amount)); !s.ok()) {
      return Fail(s);
    }
  }
  if (auto s = (*service)->RegisterTable(std::move(table)); !s.ok()) {
    return Fail(s);
  }

  std::vector<std::shared_ptr<const dba::query::Predicate>> pool;
  for (uint32_t i = 0; i < 16; ++i) {
    dba::query::PredicatePtr predicate;
    switch (i % 4) {
      case 0:
        predicate = dba::query::Equals("region", i % 5);
        break;
      case 1:
        predicate = dba::query::And(dba::query::Equals("region", i % 5),
                                    dba::query::Equals("status", i % 3));
        break;
      case 2:
        predicate =
            dba::query::Between("amount", (i * 997) % 8000,
                                (i * 997) % 8000 + 1999);
        break;
      default:
        predicate = dba::query::Or(dba::query::Equals("status", i % 3),
                                   dba::query::GreaterEq("amount", 9000));
        break;
    }
    pool.emplace_back(std::move(predicate));
  }

  constexpr int kPerWave = 64;
  const char* tenants[] = {"vip", "batch0", "batch1", "batch2"};
  const auto start = std::chrono::steady_clock::now();
  uint64_t ok_responses = 0;
  uint64_t degraded_responses = 0;
  uint64_t failed_responses = 0;
  uint64_t rows_out = 0;
  size_t applied_phase = static_cast<size_t>(-1);
  for (int wave = 0; wave < waves; ++wave) {
    if (chaos.has_value()) {
      const size_t phase_index =
          chaos->PhaseIndexForStep(static_cast<uint64_t>(wave));
      if (phase_index != applied_phase) {
        const dba::fault::ChaosPhase& phase = chaos->phases()[phase_index];
        if (phase.heal) (*board)->ResetQuarantine();
        if (auto s = (*board)->SetFaultPlan(phase.plan); !s.ok()) {
          return Fail(s);
        }
        applied_phase = phase_index;
        std::printf("[chaos] wave %d: phase '%s'\n", wave,
                    phase.label.c_str());
      }
    }
    std::vector<std::future<svc::ServiceResponse>> futures;
    futures.reserve(kPerWave);
    for (int i = 0; i < kPerWave; ++i) {
      svc::ServiceRequest request;
      request.tenant = tenants[i % 4];
      request.priority = i % 3;
      if (i % 8 == 7) {
        // A direct set operation rides along with the queries.
        request.op = i % 16 == 15 ? SetOp::kUnion : SetOp::kIntersect;
        auto generated = dba::GenerateSetPair(
            256, 256, options.selectivity,
            options.seed + static_cast<uint64_t>(wave * kPerWave + i));
        if (!generated.ok()) return Fail(generated.status());
        request.a = std::move(generated->a);
        request.b = std::move(generated->b);
      } else {
        request.table = "orders";
        request.predicate = pool[static_cast<size_t>(
            (wave * kPerWave + i) % static_cast<int>(pool.size()))];
      }
      futures.push_back((*service)->Submit(std::move(request)));
    }
    (*service)->Drain();
    for (auto& future : futures) {
      const svc::ServiceResponse response = future.get();
      if (!response.status.ok()) {
        // Under chaos, typed failures are part of the exercise;
        // without it any failure aborts the demo.
        if (!chaos.has_value()) {
          std::fprintf(stderr, "serve: request failed: %s\n",
                       response.status.ToString().c_str());
          return 1;
        }
        ++failed_responses;
        continue;
      }
      ++ok_responses;
      if (response.degraded) ++degraded_responses;
      rows_out += response.values.size();
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const svc::ServiceCounters counters = (*service)->counters();
  std::printf("== dba serve -- %d-core board, %u-row table, %d waves ==\n",
              options.cores, options.n, waves);
  std::printf("requests  submitted %llu   ok %llu   rows_out %llu   "
              "QPS %.0f\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(ok_responses),
              static_cast<unsigned long long>(rows_out),
              elapsed > 0 ? static_cast<double>(ok_responses) / elapsed : 0.0);
  std::printf("admission rejected %llu   shed %llu   dispatched %llu   "
              "batches %llu\n",
              static_cast<unsigned long long>(counters.rejected),
              static_cast<unsigned long long>(counters.shed),
              static_cast<unsigned long long>(counters.dispatched),
              static_cast<unsigned long long>(counters.batches));
  std::printf("reuse     dedup %llu   cache_hits %llu   cache_misses %llu   "
              "evictions %llu\n",
              static_cast<unsigned long long>(counters.deduplicated),
              static_cast<unsigned long long>(counters.cache_hits),
              static_cast<unsigned long long>(counters.cache_misses),
              static_cast<unsigned long long>(counters.cache_evictions));
  const dba::obs::MetricsSnapshot snapshot =
      dba::obs::MetricsRegistry::Global().Snapshot();
  const auto shed_counter = [&snapshot](svc::ShedReason reason) {
    const std::string key = "dba_service_shed_total{reason=\"" +
                            std::string(svc::ShedReasonName(reason)) + "\"}";
    const auto it = snapshot.counters.find(key);
    return it == snapshot.counters.end() ? 0ull
                                         : static_cast<unsigned long long>(
                                               it->second);
  };
  std::printf("sheds     queue_full %llu   deadline %llu   rate_limited %llu"
              "   breaker_open %llu\n",
              shed_counter(svc::ShedReason::kQueueFull),
              shed_counter(svc::ShedReason::kDeadline),
              shed_counter(svc::ShedReason::kRateLimited),
              shed_counter(svc::ShedReason::kBreakerOpen));
  std::printf("breaker   state %s   transitions %llu   degraded %llu   "
              "breaker_sheds %llu\n",
              std::string(svc::BreakerStateName((*service)->breaker_state()))
                  .c_str(),
              static_cast<unsigned long long>(counters.breaker_transitions),
              static_cast<unsigned long long>(counters.degraded),
              static_cast<unsigned long long>(counters.breaker_sheds));
  if (chaos.has_value()) {
    const uint64_t answered = ok_responses + failed_responses;
    std::printf("chaos     profile %s   seed %llu   ok %llu   degraded %llu"
                "   failed %llu   availability %.4f\n",
                std::string(dba::fault::ChaosProfileName(chaos->profile()))
                    .c_str(),
                static_cast<unsigned long long>(chaos->seed()),
                static_cast<unsigned long long>(ok_responses),
                static_cast<unsigned long long>(degraded_responses),
                static_cast<unsigned long long>(failed_responses),
                answered > 0 ? static_cast<double>(ok_responses) /
                                   static_cast<double>(answered)
                             : 0.0);
  }
  for (const auto* name :
       {"dba_service_latency_ns", "dba_service_batch_size"}) {
    const auto it = snapshot.histograms.find(name);
    if (it == snapshot.histograms.end() || it->second.count == 0) continue;
    std::printf("%-9s p50 %.0f   p90 %.0f   p99 %.0f   (n=%llu)\n",
                std::strcmp(name, "dba_service_latency_ns") == 0 ? "lat_ns"
                                                                 : "batch",
                it->second.Quantile(0.5), it->second.Quantile(0.9),
                it->second.Quantile(0.99),
                static_cast<unsigned long long>(it->second.count));
  }

  if (!options.metrics_out.empty()) {
    const dba::Status status =
        dba::obs::WriteMetricsSnapshotFile(options.metrics_out);
    if (!status.ok()) return Fail(status);
    std::printf("wrote metrics snapshot to %s\n",
                options.metrics_out.c_str());
  }
  return 0;
}

int RunTop(const CliOptions& options, ProcessorKind kind,
           const dba::ProcessorOptions& processor_options) {
  dba::obs::MetricsRegistry::Global().Reset();
  dba::obs::EventLog::Global().Clear();

  const dba::system::BoardConfig config =
      MakeBoardConfig(options, kind, processor_options);
  auto board = dba::system::Board::Create(config);
  if (!board.ok()) return Fail(board.status());

  const auto op = ParseOp(options.op);
  const bool is_sort = options.op == "sort";
  if (!is_sort && (!op.has_value() || *op == SetOp::kMerge)) {
    std::fprintf(stderr, "top supports intersect|union|difference|sort\n");
    return 2;
  }
  std::vector<uint32_t> sort_values;
  dba::SetPair pair;
  if (is_sort) {
    sort_values = dba::GenerateSortInput(options.n, options.seed);
  } else {
    auto generated = dba::GenerateSetPair(options.n,
                                          options.nb.value_or(options.n),
                                          options.selectivity, options.seed);
    if (!generated.ok()) return Fail(generated.status());
    pair = *std::move(generated);
  }

  const bool live = !options.once && isatty(fileno(stdout)) != 0;
  const int iters = options.once ? 1 : options.iters;
  const auto start = std::chrono::steady_clock::now();
  uint64_t ops_done = 0;

  const auto render = [&] {
    const dba::obs::MetricsSnapshot snapshot =
        dba::obs::MetricsRegistry::Global().Snapshot();
    const auto counter = [&snapshot](const char* name) -> unsigned long long {
      const auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? 0 : it->second;
    };
    const auto gauge = [&snapshot](const char* name) -> double {
      const auto it = snapshot.gauges.find(name);
      return it == snapshot.gauges.end() ? 0 : it->second;
    };
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (live) std::printf("\x1b[H\x1b[J");  // home + clear to end
    std::printf("dba top -- %s on a %d-core board, n=%u (refresh %llu)\n",
                options.op.c_str(), options.cores, options.n,
                static_cast<unsigned long long>(ops_done));
    std::printf("uptime %.1fs   ops %llu   QPS %.1f\n\n", elapsed,
                static_cast<unsigned long long>(ops_done),
                elapsed > 0 ? static_cast<double>(ops_done) / elapsed : 0.0);
    const auto quantiles = [&snapshot](const char* name, const char* label) {
      const auto it = snapshot.histograms.find(name);
      if (it == snapshot.histograms.end() || it->second.count == 0) return;
      std::printf("%-18s p50 %.0f   p90 %.0f   p99 %.0f   (n=%llu)\n",
                  label, it->second.Quantile(0.5), it->second.Quantile(0.9),
                  it->second.Quantile(0.99),
                  static_cast<unsigned long long>(it->second.count));
    };
    quantiles("dba_system_op_makespan_cycles", "makespan cycles");
    quantiles("dba_system_partition_cycles", "partition cycles");
    std::printf("recovery           faults %llu   retries %llu   requeues "
                "%llu   rounds %llu   verif_fail %llu\n",
                counter("dba_system_faults_injected_total"),
                counter("dba_system_retries_total"),
                counter("dba_system_requeues_total"),
                counter("dba_system_recovery_rounds_total"),
                counter("dba_system_verification_failures_total"));
    std::printf("cores              healthy %.0f   quarantined %.0f\n",
                gauge("dba_system_healthy_cores"),
                gauge("dba_system_quarantined_cores"));
    std::printf("noc                feed_bytes %llu   transfer_fail %llu   "
                "timeouts %llu\n",
                counter("dba_system_noc_feed_bytes_total"),
                counter("dba_system_noc_transfer_failures_total"),
                counter("dba_system_noc_transfer_timeouts_total"));
    // Service-layer admission health, when a QueryService feeds this
    // registry (e.g. a snapshot loaded from `serve --metrics-out`).
    if (counter("dba_service_submitted_total") > 0) {
      std::printf(
          "service sheds      queue_full %llu   deadline %llu   "
          "rate_limited %llu   breaker_open %llu   degraded %llu\n",
          counter("dba_service_shed_total{reason=\"queue_full\"}"),
          counter("dba_service_shed_total{reason=\"deadline\"}"),
          counter("dba_service_shed_total{reason=\"rate_limited\"}"),
          counter("dba_service_shed_total{reason=\"breaker_open\"}"),
          counter("dba_service_degraded_total"));
    }
    const std::vector<dba::obs::Event> events =
        dba::obs::EventLog::Global().Tail(5);
    if (!events.empty()) {
      std::printf("recent events:\n");
      for (const dba::obs::Event& event : events) {
        std::string fields;
        for (const auto& [key, val] : event.fields) {
          fields += " " + key + "=" + val;
        }
        std::printf("  [%s] %s: %s%s\n",
                    std::string(dba::obs::EventLevelName(event.level))
                        .c_str(),
                    event.scope.c_str(), event.message.c_str(),
                    fields.c_str());
      }
    }
    std::fflush(stdout);
  };

  for (int iter = 0; iters == 0 || iter < iters; ++iter) {
    dba::Result<dba::system::ParallelRun> run =
        is_sort ? (*board)->RunSort(sort_values)
                : (*board)->RunSetOperation(*op, pair.a, pair.b);
    if (!run.ok()) {
      FlushMetricsOut(options.metrics_out);
      if (!options.json_path.empty()) FlushMetricsOut(options.json_path);
      return Fail(run.status());
    }
    ++ops_done;
    render();
  }
  if (!options.json_path.empty()) FlushMetricsOut(options.json_path);
  FlushMetricsOut(options.metrics_out);
  return 0;
}

/// `dba_cli plan` -- the adaptive-planner inspector (docs/PLANNER.md).
/// Prints the cost-model routing decision for one (|A|, |B|)
/// intersection with estimated vs measured nanoseconds per route (every
/// route's result verified against the scalar baseline), the lazy
/// PartitionIndex payback projection, and then replays the query
/// through a QueryEngine until the savings meter actually materializes
/// the index -- showing QueryStats route counts along the way.
int RunPlan(const CliOptions& options, ProcessorKind kind,
            const dba::ProcessorOptions& processor_options) {
  namespace query = dba::query;
  using Clock = std::chrono::steady_clock;

  uint32_t size_a = options.n;
  uint32_t size_b = options.nb.value_or(options.n);
  if (!options.sizes.empty()) {
    const size_t comma = options.sizes.find(',');
    if (comma == std::string::npos || comma == 0 ||
        comma + 1 == options.sizes.size()) {
      std::fprintf(stderr, "bad --sizes '%s' (expected A,B)\n",
                   options.sizes.c_str());
      return 2;
    }
    size_a = static_cast<uint32_t>(
        std::strtoul(options.sizes.c_str(), nullptr, 10));
    size_b = static_cast<uint32_t>(
        std::strtoul(options.sizes.c_str() + comma + 1, nullptr, 10));
  }
  if (size_a == 0 || size_b == 0) {
    std::fprintf(stderr, "--sizes wants two nonzero set sizes\n");
    return 2;
  }

  query::PlannerOptions planner_options;
  if (!options.force_route.empty()) {
    auto route = query::ParseRoute(options.force_route);
    if (!route.ok()) return Fail(route.status());
    planner_options.force_route = *route;
  }
  const query::Planner planner{planner_options};
  const query::CostModel& model = planner.cost_model();

  auto processor = dba::Processor::Create(kind, processor_options);
  if (!processor.ok()) return Fail(processor.status());
  dba::RunSettings settings;
  settings.sim_mode = dba::sim::ExecMode::kTurbo;

  auto pair = dba::GenerateSetPair(size_a, size_b, options.selectivity,
                                   options.seed);
  if (!pair.ok()) return Fail(pair.status());
  const std::vector<uint32_t> expected =
      dba::baseline::ScalarIntersect(pair->a, pair->b);

  // The routing decision, timed over a batch so the per-decision
  // latency is resolvable above the clock granularity.
  constexpr int kDecisionReps = 1000;
  query::PlanDecision decision;
  const auto decide_start = Clock::now();
  for (int i = 0; i < kDecisionReps; ++i) {
    decision = planner.Plan(pair->a.size(), pair->b.size(),
                            /*index_available=*/false);
  }
  const double decision_wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - decide_start)
          .count() /
      kDecisionReps;

  std::printf("== plan: |A|=%u, |B|=%u, selectivity=%.2f, |A*B|=%zu ==\n",
              size_a, size_b, options.selectivity, expected.size());
  std::printf("%-16s %14s %14s\n", "route", "estimated_ns", "measured_ns");
  for (size_t r = 0; r < query::kNumRoutes; ++r) {
    const auto route = static_cast<query::Route>(r);
    double measured_ns = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      auto run = query::RunIntersectRoute(route, pair->a, pair->b,
                                          processor->get(), settings);
      if (!run.ok()) return Fail(run.status());
      if (run->result != expected) {
        std::fprintf(stderr, "route %s disagrees with the scalar baseline\n",
                     std::string(query::RouteName(route)).c_str());
        return 1;
      }
      measured_ns = std::min(measured_ns, run->route_seconds * 1e9);
      // The EIS number is simulated time: deterministic, one rep does.
      if (route == query::Route::kEisMerge) break;
    }
    const bool chosen = route == decision.route;
    std::printf("%-16s %14.0f %14.0f%s%s%s\n",
                std::string(query::RouteName(route)).c_str(),
                decision.estimated_ns[r], measured_ns,
                route == query::Route::kEisMerge ? " (simulated)" : "",
                chosen ? "  <- chosen" : "",
                chosen && decision.forced ? " (forced)" : "");
  }
  std::printf("decision latency  %.0f ns/decision (est %.0f, batched x%d)\n",
              decision_wall_ns, model.decision_ns, kDecisionReps);

  // Lazy-index payback projection: what the engine's savings meter will
  // see on every planned miss of this shape.
  const double build_ns =
      model.PartitionBuildNs(std::max(pair->a.size(), pair->b.size()));
  const double savings_ns =
      decision.chosen_ns -
      model.PartitionProbeNs(pair->a.size(), pair->b.size()) -
      model.decision_ns;
  std::printf("\nlazy index projection (payback_factor %.1f):\n",
              planner_options.payback_factor);
  std::printf("  build cost        %14.0f ns (%zu entries)\n", build_ns,
              std::max(pair->a.size(), pair->b.size()));
  if (savings_ns > 0) {
    std::printf("  per-query savings %14.0f ns (chosen - probe - decision)\n",
                savings_ns);
    std::printf("  pays back after   %14.0f queries\n",
                std::ceil(planner_options.payback_factor * build_ns /
                          savings_ns));
  } else {
    std::printf("  per-query savings %14.0f ns -> the index would never\n"
                "  pay back at this shape (probe no cheaper than the\n"
                "  chosen route)\n",
                savings_ns);
  }

  // Replay through a real QueryEngine: a bucket column where one range
  // probe yields each input set (common rows bucket=3, A-only=2,
  // B-only=4), so AND(bucket in [2,3], bucket in [3,4]) is exactly the
  // (|A|, |B|) intersection -- and the savings meter walks to payback.
  const size_t common = expected.size();
  const size_t a_only = pair->a.size() - common;
  const size_t b_only = pair->b.size() - common;
  std::vector<uint32_t> bucket;
  bucket.reserve(common + a_only + b_only);
  bucket.insert(bucket.end(), common, 3);
  bucket.insert(bucket.end(), a_only, 2);
  bucket.insert(bucket.end(), b_only, 4);
  query::Table table("plan_replay");
  dba::Status added = table.AddColumn("bucket", std::move(bucket));
  if (!added.ok()) return Fail(added);
  query::QueryEngine engine(&table, processor->get());
  dba::Status indexed = engine.BuildIndex("bucket");
  if (!indexed.ok()) return Fail(indexed);
  engine.SetRunSettings(settings);
  engine.EnableAdaptivePlanner(planner_options);
  const auto predicate = query::And(query::Between("bucket", 2, 3),
                                    query::Between("bucket", 3, 4));

  // Run long enough to reach the projected payback (with slack for the
  // engine's measured decision latency differing from the estimate),
  // bounded so a never-paying shape still terminates promptly.
  int max_replay = 200;
  if (!decision.forced && savings_ns > 0) {
    max_replay = static_cast<int>(std::min(
        5000.0, std::ceil(planner_options.payback_factor * build_ns /
                          savings_ns) *
                        2 +
                    16));
  }
  std::array<uint64_t, query::kNumRoutes> totals{};
  int queries = 0;
  int built_after = 0;
  while (queries < max_replay) {
    query::QueryStats stats;
    auto rids = engine.Select(*predicate, &stats);
    if (!rids.ok()) return Fail(rids.status());
    if (rids->size() != common) {
      std::fprintf(stderr, "replay returned %zu RIDs, want %zu\n",
                   rids->size(), common);
      return 1;
    }
    for (size_t r = 0; r < query::kNumRoutes; ++r) {
      totals[r] += stats.route_counts[r];
    }
    ++queries;
    if (built_after == 0 &&
        engine.partition_state("bucket").indexes_built > 0) {
      built_after = queries;
    }
    // A couple of post-build queries show the cached index being probed.
    if (built_after != 0 && queries >= built_after + 2) break;
  }

  const query::ColumnIndexState state = engine.partition_state("bucket");
  std::printf("\nengine replay (%d identical queries, lazy index on "
              "'bucket'):\n",
              queries);
  std::printf("  route counts     ");
  for (size_t r = 0; r < query::kNumRoutes; ++r) {
    std::printf(" %s=%llu",
                std::string(query::RouteName(static_cast<query::Route>(r)))
                    .c_str(),
                static_cast<unsigned long long>(totals[r]));
  }
  std::printf("\n");
  if (built_after != 0) {
    std::printf("  index built after %d queries (%u misses recorded)\n",
                built_after, state.misses_recorded);
  } else {
    std::printf("  index never built (%u misses, savings %.0f of %.0f ns "
                "needed)\n",
                state.misses_recorded, state.missed_savings_ns,
                planner_options.payback_factor * state.build_cost_ns);
  }
  std::printf("  partition state   builds=%u entries=%llu "
              "missed_savings=%.0f ns\n",
              state.indexes_built,
              static_cast<unsigned long long>(state.indexed_entries),
              state.missed_savings_ns);
  return 0;
}

/// Shared tail of the profile/trace subcommands: prints the hotspot and
/// stall reports, writes the combined JSON document (profile --json) and
/// the Perfetto trace file (trace).
int FinishRun(dba::Processor& processor, const CliOptions& options,
              const dba::RunMetrics& metrics,
              const dba::isa::Program* program,
              const dba::obs::ChromeTraceWriter* trace_writer) {
  const bool want_reports = options.command == "profile";
  dba::obs::StallReport stalls;
  if (want_reports || !options.json_path.empty()) {
    stalls = dba::obs::BuildStallReport(*program, metrics.stats,
                                        processor.synthesis().config_name,
                                        NumLsus(processor.kind()));
  }
  if (want_reports) {
    std::printf("\n%s", dba::toolchain::BuildProfile(
                            *program, metrics.stats,
                            processor.cpu().MakeExtNameResolver())
                            .ToString()
                            .c_str());
    std::printf("\n%s", stalls.ToString().c_str());
  }
  if (!options.json_path.empty()) {
    auto root = dba::obs::JsonValue::Object();
    root.Set("config", processor.synthesis().config_name)
        .Set("op", options.op)
        .Set("profile",
             dba::obs::ProfileReportToJson(dba::toolchain::BuildProfile(
                 *program, metrics.stats,
                 processor.cpu().MakeExtNameResolver())))
        .Set("stalls", dba::obs::StallReportToJson(stalls))
        .Set("metrics", dba::obs::RunMetricsToJson(metrics))
        .Set("synthesis",
             dba::obs::SynthesisReportToJson(processor.synthesis()));
    const dba::Status status =
        dba::obs::WriteJsonFile(options.json_path, root);
    if (!status.ok()) return Fail(status);
    std::printf("\nwrote profile JSON to %s\n", options.json_path.c_str());
  }
  if (trace_writer != nullptr) {
    const dba::Status status = trace_writer->WriteTo(options.trace_path);
    if (!status.ok()) return Fail(status);
    std::printf("\nwrote %zu trace events to %s (open in ui.perfetto.dev)\n",
                trace_writer->event_count(), options.trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  int first_flag = 1;
  if (argc > 1 && argv[1][0] != '-') {
    options.command = argv[1];
    first_flag = 2;
    if (options.command == "validate-bench") {
      return ValidateBenchFiles(argc, argv, 2);
    }
    if (options.command == "compare-bench") {
      return CompareBenchFiles(argc, argv, 2);
    }
    if (options.command != "profile" && options.command != "trace" &&
        options.command != "board" && options.command != "faults" &&
        options.command != "top" && options.command != "plan" &&
        options.command != "serve") {
      std::fprintf(stderr, "unknown command: %s\n\n", argv[1]);
      PrintUsage();
      return 2;
    }
  }
  for (int i = first_flag; i < argc; ++i) {
    std::string value;
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(arg, "--list-configs") == 0) {
      options.list_configs = true;
    } else if (std::strcmp(arg, "--no-partial") == 0) {
      options.partial = false;
    } else if (std::strcmp(arg, "--tech28") == 0) {
      options.tech28 = true;
    } else if (std::strcmp(arg, "--scalar") == 0) {
      options.scalar = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      options.profile = true;
    } else if (std::strcmp(arg, "--disasm") == 0) {
      options.disasm = true;
    } else if (std::strcmp(arg, "--stream") == 0) {
      options.stream = true;
    } else if (ParseFlag(arg, "--sim-mode", &value)) {
      auto mode = dba::sim::ParseExecMode(value);
      if (!mode.ok()) {
        std::fprintf(stderr, "bad --sim-mode: %s\n", mode.status().ToString().c_str());
        return 2;
      }
      options.sim_mode = *mode;
    } else if (ParseFlag(arg, "--config", &value)) {
      options.config = value;
    } else if (ParseFlag(arg, "--op", &value)) {
      options.op = value;
    } else if (ParseFlag(arg, "--n", &value)) {
      options.n = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--nb", &value)) {
      options.nb = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--selectivity", &value)) {
      options.selectivity = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--unroll", &value)) {
      options.unroll = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--trace", &value)) {
      options.trace = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--json", &value)) {
      options.json_path = value;
    } else if (ParseFlag(arg, "--out", &value)) {
      options.trace_path = value;
    } else if (ParseFlag(arg, "--cores", &value)) {
      options.cores = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--host-threads", &value)) {
      options.host_threads =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--fault-seed", &value)) {
      options.fault_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--fault-rate", &value)) {
      options.fault_rate = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "--broken-cores", &value)) {
      options.broken_cores = value;
    } else if (ParseFlag(arg, "--max-attempts", &value)) {
      options.max_attempts =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--metrics-out", &value)) {
      options.metrics_out = value;
    } else if (std::strcmp(arg, "--once") == 0) {
      options.once = true;
    } else if (ParseFlag(arg, "--iters", &value)) {
      options.iters = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "--sizes", &value)) {
      options.sizes = value;
    } else if (ParseFlag(arg, "--force-route", &value)) {
      options.force_route = value;
    } else if (ParseFlag(arg, "--chaos-seed", &value)) {
      options.chaos_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "--chaos-profile", &value)) {
      options.chaos_profile = value;
    } else {
      std::fprintf(stderr, "unknown option: %s\n\n", arg);
      PrintUsage();
      return 2;
    }
  }

  if (options.list_configs) return ListConfigs();

  const bool is_command = !options.command.empty();
  if (is_command && options.stream) {
    std::fprintf(stderr, "%s does not support --stream\n",
                 options.command.c_str());
    return 2;
  }
  if (options.command == "profile") options.profile = true;

  const auto kind = ParseKind(options.config);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown config '%s'\n", options.config.c_str());
    return 2;
  }
  dba::ProcessorOptions processor_options;
  processor_options.partial_loading = options.partial;
  processor_options.unroll = options.unroll;
  if (options.tech28) {
    processor_options.tech = dba::hwmodel::TechNode::k28nmGfSlp;
  }
  if (options.command == "board" || options.command == "faults") {
    return RunBoard(options, *kind, processor_options);
  }
  if (options.command == "top") {
    return RunTop(options, *kind, processor_options);
  }
  if (options.command == "plan") {
    return RunPlan(options, *kind, processor_options);
  }
  if (options.command == "serve") {
    return RunServe(options, *kind, processor_options);
  }

  auto processor = dba::Processor::Create(*kind, processor_options);
  if (!processor.ok()) return Fail(processor.status());

  std::printf("== %s%s, %s, op=%s, n=%u ==\n", options.config.c_str(),
              options.tech28 ? " @28nm" : "",
              options.scalar ? "scalar kernel" : "best kernel",
              options.op.c_str(), options.n);

  const bool is_sort = options.op == "sort";
  const bool is_eis_kind = (*processor)->has_eis();
  const bool scalar = options.scalar || !is_eis_kind;

  if (options.disasm) {
    auto program =
        is_sort ? (*processor)->sort_program(scalar)
                : (*processor)->setop_program(
                      ParseOp(options.op).value_or(SetOp::kIntersect),
                      scalar);
    if (!program.ok()) return Fail(program.status());
    std::printf("%s\n",
                dba::isa::DisassembleProgram(
                    **program, (*processor)->cpu().MakeExtNameResolver())
                    .c_str());
  }

  dba::obs::ChromeTraceWriter trace_writer(options.config);
  dba::RunSettings settings;
  settings.force_scalar = options.scalar;
  settings.sim_mode = options.sim_mode;
  settings.profile = options.profile;
  settings.trace_limit = options.trace;
  if (options.command == "trace") settings.trace_sink = &trace_writer;

  if (is_sort) {
    const auto values = dba::GenerateSortInput(options.n, options.seed);
    auto run = (*processor)->RunSort(values, settings);
    if (!run.ok()) return Fail(run.status());
    PrintMetrics(run->metrics, run->sorted.size(), **processor);
    auto program = (*processor)->sort_program(scalar);
    if (!program.ok()) return Fail(program.status());
    if (is_command) {
      return FinishRun(**processor, options, run->metrics, *program,
                       options.command == "trace" ? &trace_writer : nullptr);
    }
    if (options.profile) {
      std::printf("\n%s", dba::toolchain::BuildProfile(
                              **program, run->metrics.stats,
                              (*processor)->cpu().MakeExtNameResolver())
                              .ToString()
                              .c_str());
    }
    return 0;
  }

  const auto op = ParseOp(options.op);
  if (!op.has_value()) {
    std::fprintf(stderr, "unknown op '%s'\n", options.op.c_str());
    return 2;
  }
  auto pair = dba::GenerateSetPair(options.n, options.nb.value_or(options.n),
                                   options.selectivity, options.seed);
  if (!pair.ok()) return Fail(pair.status());

  if (options.stream) {
    dba::RunSettings stream_settings;
    stream_settings.sim_mode = options.sim_mode;
    dba::prefetch::StreamingSetOperation streaming(
        processor->get(), dba::prefetch::DmaConfig{}, 0, stream_settings);
    auto run = streaming.Run(*op, pair->a, pair->b);
    if (!run.ok()) return Fail(run.status());
    std::printf("result elements   %zu\n", run->result.size());
    std::printf("chunks            %u (%s-bound)\n", run->chunks,
                run->dma_bound ? "dma" : "compute");
    std::printf("total cycles      %llu (compute %llu, dma %llu)\n",
                static_cast<unsigned long long>(run->total_cycles),
                static_cast<unsigned long long>(run->compute_cycles),
                static_cast<unsigned long long>(run->dma_cycles));
    std::printf("throughput        %.1f M elements/s\n",
                run->throughput_meps);
    return 0;
  }

  auto run = *op == SetOp::kMerge
                 ? (*processor)->RunMerge(pair->a, pair->b, settings)
                 : (*processor)->RunSetOperation(*op, pair->a, pair->b,
                                                 settings);
  if (!run.ok()) return Fail(run.status());
  PrintMetrics(run->metrics, run->result.size(), **processor);
  if (!run->metrics.stats.trace.empty()) {
    std::printf("\ntrace (first %zu issued words):\n",
                run->metrics.stats.trace.size());
    for (const std::string& line : run->metrics.stats.trace) {
      std::printf("%s\n", line.c_str());
    }
  }
  auto program = (*processor)->setop_program(*op, scalar);
  if (is_command) {
    if (!program.ok()) return Fail(program.status());
    return FinishRun(**processor, options, run->metrics, *program,
                     options.command == "trace" ? &trace_writer : nullptr);
  }
  if (options.profile && program.ok()) {
    std::printf("\n%s", dba::toolchain::BuildProfile(
                            **program, run->metrics.stats,
                            (*processor)->cpu().MakeExtNameResolver())
                            .ToString()
                            .c_str());
  }
  return 0;
}
