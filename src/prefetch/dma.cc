#include "prefetch/dma.h"

#include <utility>

#include "common/bits.h"

namespace dba::prefetch {

uint64_t DmaController::TransferCycles(uint64_t bytes) const {
  if (bytes == 0) return 0;
  const uint64_t bursts =
      (bytes + config_.burst_bytes - 1) / config_.burst_bytes;
  const auto data_cycles = static_cast<uint64_t>(
      static_cast<double>(bytes) / config_.bytes_per_cycle + 0.5);
  return bursts * config_.setup_cycles_per_burst + data_cycles;
}

void DmaController::Program(std::vector<DmaDescriptor> descriptors) {
  descriptors_ = std::move(descriptors);
}

Result<uint64_t> DmaController::Execute(const mem::MemorySystem& memories) {
  uint64_t cycles = 0;
  for (const DmaDescriptor& descriptor : descriptors_) {
    if (!IsAligned(descriptor.src, 4) || !IsAligned(descriptor.dst, 4) ||
        !IsAligned(descriptor.bytes, 4)) {
      return Status::InvalidArgument(
          "DMA descriptors must be 4-byte aligned");
    }
    DBA_ASSIGN_OR_RETURN(
        mem::Memory * src,
        memories.Route(descriptor.src, descriptor.bytes));
    DBA_ASSIGN_OR_RETURN(
        mem::Memory * dst,
        memories.Route(descriptor.dst, descriptor.bytes));
    DBA_ASSIGN_OR_RETURN(
        std::vector<uint32_t> words,
        src->ReadBlock(descriptor.src, descriptor.bytes / 4));
    DBA_RETURN_IF_ERROR(dst->WriteBlock(descriptor.dst, words));
    cycles += TransferCycles(descriptor.bytes);
  }
  descriptors_.clear();
  return cycles;
}

}  // namespace dba::prefetch
