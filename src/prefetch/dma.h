#ifndef DBA_PREFETCH_DMA_H_
#define DBA_PREFETCH_DMA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "mem/memory.h"

namespace dba::prefetch {

/// Timing parameters of the data prefetcher (paper Section 3.2): a
/// direct-memory-access controller driven by a programmable FSM, moving
/// KB-order bursts over the on-chip interconnect into the second port of
/// the dual-ported local memories.
struct DmaConfig {
  /// Sustained interconnect bandwidth in bytes per core cycle (a
  /// 256-bit NoC flit per cycle: wide enough that burst prefetch keeps
  /// the set-operation pipeline compute-bound, Section 5.2).
  double bytes_per_cycle = 32.0;
  /// Burst granularity ("typically in the order of several KB").
  uint32_t burst_bytes = 4096;
  /// FSM descriptor fetch + interconnect handshake per burst.
  uint32_t setup_cycles_per_burst = 32;
};

/// One FSM descriptor: copy `bytes` from `src` to `dst`.
struct DmaDescriptor {
  uint64_t src = 0;
  uint64_t dst = 0;
  uint64_t bytes = 0;
};

/// Functional + timing model of the DMA controller. Transfers move data
/// between attached memories through the dual port, concurrently with
/// core execution (the overlap is modelled by StreamingSetOperation).
class DmaController {
 public:
  explicit DmaController(DmaConfig config) : config_(config) {}

  const DmaConfig& config() const { return config_; }

  /// Cycles to transfer `bytes` (burst setup + bandwidth-limited data).
  uint64_t TransferCycles(uint64_t bytes) const;

  /// Programs the FSM with a descriptor chain.
  void Program(std::vector<DmaDescriptor> descriptors);

  /// Executes all programmed descriptors against `memories`, returning
  /// the total transfer cycles. Descriptors must be 4-byte aligned and
  /// within mapped regions.
  Result<uint64_t> Execute(const mem::MemorySystem& memories);

 private:
  DmaConfig config_;
  std::vector<DmaDescriptor> descriptors_;
};

}  // namespace dba::prefetch

#endif  // DBA_PREFETCH_DMA_H_
