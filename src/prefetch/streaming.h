#ifndef DBA_PREFETCH_STREAMING_H_
#define DBA_PREFETCH_STREAMING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "prefetch/dma.h"

namespace dba::prefetch {

/// Result of a streamed (prefetcher-fed) set operation.
struct StreamingRun {
  std::vector<uint32_t> result;
  uint64_t compute_cycles = 0;   // core cycles across all chunks
  uint64_t dma_cycles = 0;       // total transfer cycles
  uint64_t total_cycles = 0;     // with compute/transfer overlap
  uint32_t chunks = 0;
  bool dma_bound = false;
  double throughput_meps = 0;  // at the processor's f_max
};

/// Executes sorted-set operations on inputs larger than the local data
/// memories by streaming value-partitioned chunks through the data
/// prefetcher (Section 3.2): double-buffered bursts fill the second port
/// of the local memories while the core processes the previous chunk, so
/// throughput stays constant for larger data sets (Section 5.2).
///
/// Chunking is value-based: each round processes all elements up to
/// pivot = min(max of the staged A chunk, max of the staged B chunk),
/// which both sides consume completely -- exactly the partitioning the
/// prefetcher FSM performs in hardware.
class StreamingSetOperation {
 public:
  /// `processor` must outlive this object. `chunk_elements` is the
  /// per-side staging size; 0 picks the largest that fits the local
  /// memories. `base_settings` is applied to every per-chunk kernel run
  /// (e.g. a watchdog budget from a fault-tolerant caller).
  StreamingSetOperation(Processor* processor, DmaConfig dma_config,
                        uint32_t chunk_elements = 0,
                        const RunSettings& base_settings = {});

  Result<StreamingRun> Run(SetOp op, std::span<const uint32_t> a,
                           std::span<const uint32_t> b);

 private:
  Processor* processor_;
  DmaController dma_;
  uint32_t chunk_elements_;
  RunSettings base_settings_;
};

}  // namespace dba::prefetch

#endif  // DBA_PREFETCH_STREAMING_H_
