#include "prefetch/streaming.h"

#include <algorithm>

namespace dba::prefetch {

StreamingSetOperation::StreamingSetOperation(Processor* processor,
                                             DmaConfig dma_config,
                                             uint32_t chunk_elements,
                                             const RunSettings& base_settings)
    : processor_(processor),
      dma_(dma_config),
      chunk_elements_(chunk_elements),
      base_settings_(base_settings) {
  if (chunk_elements_ == 0) {
    // Half the per-set capacity: the other half is the double buffer
    // the prefetcher fills while the core works.
    chunk_elements_ = std::max<uint32_t>(
        256, processor_->max_set_elements(0) / 2);
  }
}

Result<StreamingRun> StreamingSetOperation::Run(SetOp op,
                                                std::span<const uint32_t> a,
                                                std::span<const uint32_t> b) {
  StreamingRun run;
  size_t ia = 0;
  size_t ib = 0;

  while (ia < a.size() && ib < b.size()) {
    // Stage the next chunk of each stream.
    const size_t ca = std::min<size_t>(chunk_elements_, a.size() - ia);
    const size_t cb = std::min<size_t>(chunk_elements_, b.size() - ib);
    // Value pivot: everything up to the smaller staged maximum can be
    // processed without seeing future elements of either stream.
    const uint32_t pivot = std::min(a[ia + ca - 1], b[ib + cb - 1]);
    auto le_pivot = [pivot](uint32_t v) { return v <= pivot; };
    const size_t na = static_cast<size_t>(
        std::partition_point(a.begin() + static_cast<ptrdiff_t>(ia),
                             a.begin() + static_cast<ptrdiff_t>(ia + ca),
                             le_pivot) -
        (a.begin() + static_cast<ptrdiff_t>(ia)));
    const size_t nb = static_cast<size_t>(
        std::partition_point(b.begin() + static_cast<ptrdiff_t>(ib),
                             b.begin() + static_cast<ptrdiff_t>(ib + cb),
                             le_pivot) -
        (b.begin() + static_cast<ptrdiff_t>(ib)));

    DBA_ASSIGN_OR_RETURN(
        SetOpRun chunk_run,
        op == SetOp::kMerge
            ? processor_->RunMerge(a.subspan(ia, na), b.subspan(ib, nb),
                                   base_settings_)
            : processor_->RunSetOperation(op, a.subspan(ia, na),
                                          b.subspan(ib, nb),
                                          base_settings_));

    // Transfer cost of this round: both staged chunks in, results out.
    const uint64_t dma_bytes =
        4 * (static_cast<uint64_t>(na) + nb + chunk_run.result.size());
    const uint64_t dma_cycles = dma_.TransferCycles(dma_bytes);
    run.compute_cycles += chunk_run.metrics.cycles;
    run.dma_cycles += dma_cycles;
    // Double buffering: each round overlaps its transfer with the
    // previous round's compute.
    run.total_cycles += std::max(chunk_run.metrics.cycles, dma_cycles);
    run.result.insert(run.result.end(), chunk_run.result.begin(),
                      chunk_run.result.end());
    ++run.chunks;
    ia += na;
    ib += nb;
  }

  // Tail: one stream is exhausted.
  const bool a_left = ia < a.size();
  std::span<const uint32_t> rest =
      a_left ? a.subspan(ia) : b.subspan(ib);
  if (!rest.empty()) {
    std::vector<uint32_t> tail;
    if (op == SetOp::kUnion || op == SetOp::kMerge ||
        (op == SetOp::kDifference && a_left)) {
      tail.assign(rest.begin(), rest.end());
      // The tail still streams through the prefetcher and the copy path.
      const uint64_t bytes = 4 * 2 * static_cast<uint64_t>(rest.size());
      const uint64_t dma_cycles = dma_.TransferCycles(bytes);
      // 128-bit copy instructions: 2 port cycles + loop per beat.
      const uint64_t copy_cycles = 3 * ((rest.size() + 3) / 4);
      run.compute_cycles += copy_cycles;
      run.dma_cycles += dma_cycles;
      run.total_cycles += std::max(copy_cycles, dma_cycles);
    }
    run.result.insert(run.result.end(), tail.begin(), tail.end());
  }

  run.dma_bound = run.dma_cycles > run.compute_cycles;
  if (run.total_cycles > 0) {
    const double seconds =
        static_cast<double>(run.total_cycles) / processor_->frequency_hz();
    run.throughput_meps =
        static_cast<double>(a.size() + b.size()) / seconds / 1e6;
  }
  return run;
}

}  // namespace dba::prefetch
