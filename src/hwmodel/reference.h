#ifndef DBA_HWMODEL_REFERENCE_H_
#define DBA_HWMODEL_REFERENCE_H_

#include <string>

namespace dba::hwmodel {

/// Datasheet constants of the x86 comparison processors (Section 5.4,
/// Tables 5 and 6) together with the published single-threaded
/// throughput of the software baselines on them.
struct X86Reference {
  std::string name;
  double clock_ghz = 0;
  double max_tdp_w = 0;
  int cores = 0;
  int threads = 0;
  int feature_nm = 0;
  double die_area_mm2 = 0;
  /// Published throughput of the referenced software implementation in
  /// million elements per second.
  double paper_throughput_meps = 0;
  /// Workload size used in the referenced paper.
  uint64_t paper_workload_elements = 0;
};

/// Intel Q9550: platform of the Chhugani et al. SIMD merge-sort
/// (`swsort`); sorts 512,000 values at ~60 M elements/s single-threaded.
inline X86Reference IntelQ9550() {
  return {"Intel Q9550", 3.22, 95.0, 4, 4, 45, 214.0, 60.0, 512000};
}

/// Intel i7-920: platform of the Schlegel et al. SIMD sorted-set
/// intersection (`swset`); 1,100 M elements/s on 2 x 10 M sets.
inline X86Reference IntelI7920() {
  return {"Intel i7-920", 2.67, 130.0, 4, 8, 45, 263.0, 1100.0, 10000000};
}

/// Energy per processed element in nanojoules.
inline double EnergyPerElementNj(double power_mw, double throughput_meps) {
  if (throughput_meps <= 0) return 0;
  // mW / (M elements/s) = nJ / element.
  return power_mw / throughput_meps;
}

/// Power ratio between an x86 reference (at max TDP) and a synthesized
/// configuration -- the paper's "960x less energy ... while providing
/// the same performance" headline for the i7-920 vs. DBA_2LSU_EIS.
inline double PowerRatio(const X86Reference& reference, double power_mw) {
  if (power_mw <= 0) return 0;
  return reference.max_tdp_w * 1000.0 / power_mw;
}

/// Power density in W/cm² -- the dark-silicon argument of Section 1:
/// general-purpose dies run at 40-90 W/cm² and cannot power all
/// transistors simultaneously, while the DBA cores stay so cool that
/// "hundreds of chips on a single board" face no thermal restrictions.
inline double PowerDensityWPerCm2(double power_mw, double area_mm2) {
  if (area_mm2 <= 0) return 0;
  return (power_mw / 1000.0) / (area_mm2 / 100.0);
}

}  // namespace dba::hwmodel

#endif  // DBA_HWMODEL_REFERENCE_H_
