#ifndef DBA_HWMODEL_COMPONENTS_H_
#define DBA_HWMODEL_COMPONENTS_H_

#include <string>
#include <vector>

namespace dba::hwmodel {

/// One synthesizable building block of a processor configuration.
///
/// The entries form the substitute for the Synopsys Design Compiler /
/// PrimeTime flow of paper Section 5.1: each component carries its 65 nm
/// logic area, its contribution to the longest combinational path, and
/// its (switching-activity-averaged) power. Values are calibrated
/// against the published synthesis results (Tables 3 and 4); the model
/// composes them per configuration, so ablations (drop a component, add
/// one twice) remain meaningful.
struct Component {
  std::string name;
  double logic_area_mm2 = 0;  // 65 nm
  double delay_ns = 0;        // critical-path contribution
  double power_mw = 0;        // 65 nm, typical case (25C, 1.25 V)
};

/// Component library (65 nm TSMC low-power, typical case).
namespace component {

// Base cores.
Component Mini108Core();       // Diamond 108Mini controller
Component DbaBaseCore();       // LX4-derived base: 64-bit ibus, 128-bit dbus
Component LoadStoreUnit();     // one LSU datapath
Component SecondLsuGlue();     // crossbar/mux for the second LSU
Component PrefetchInterface(); // data-prefetcher port & FSM interface

// EIS components (relative areas from Table 4).
Component EisDecodeMux();
Component EisStates();
Component EisOpAll();          // shared all-to-all comparison circuit
Component EisOpIntersect();
Component EisOpDifference();
Component EisOpUnion();
Component EisOpMerge();
Component EisDualLsuGlue();    // partial loading across two LSUs

}  // namespace component

/// Local memory model: single-ported SRAM macro area/power per KiB at
/// 65 nm (low-power TSMC libraries; calibrated to the 0.874 mm^2 /
/// 96 KiB of DBA_1LSU).
double MemoryAreaMm2PerKib();
double MemoryPowerMwPerKib();

}  // namespace dba::hwmodel

#endif  // DBA_HWMODEL_COMPONENTS_H_
