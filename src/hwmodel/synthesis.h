#ifndef DBA_HWMODEL_SYNTHESIS_H_
#define DBA_HWMODEL_SYNTHESIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "hwmodel/components.h"

namespace dba::hwmodel {

/// The five synthesized processor configurations of the evaluation
/// (Section 5.1). EIS variants carry the database instruction-set
/// extension of Section 4.
enum class ConfigKind {
  k108Mini,
  kDba1Lsu,
  kDba2Lsu,
  kDba1LsuEis,
  kDba2LsuEis,
};

std::string_view ConfigKindName(ConfigKind kind);

/// Technology nodes of Table 3.
enum class TechNode {
  k65nmTsmcLp,  // 65 nm TSMC low-power, typical case (25C, 1.25 V)
  k28nmGfSlp,   // 28 nm GF super-low-power, SLVT, typical (25C, 0.8 V)
};

std::string_view TechNodeName(TechNode node);

/// Synthesis-level description of one configuration.
struct SynthesisReport {
  std::string config_name;
  TechNode node = TechNode::k65nmTsmcLp;
  double logic_area_mm2 = 0;
  double mem_area_mm2 = 0;
  double fmax_mhz = 0;
  double power_mw = 0;  // at fmax

  double total_area_mm2() const { return logic_area_mm2 + mem_area_mm2; }
  double fmax_hz() const { return fmax_mhz * 1e6; }
};

/// One row of the Table 4 area breakdown.
struct AreaBreakdownEntry {
  std::string part;
  double area_mm2 = 0;
  double percent = 0;  // of the configuration's logic area
};

/// Hardware parameters of the memory subsystem per configuration.
struct MemoryPlan {
  uint32_t instruction_kib = 0;
  uint32_t data_kib = 0;   // total across both LSUs
  int data_banks = 1;      // one local memory per LSU
  bool has_local_store = false;
};

MemoryPlan MemoryPlanFor(ConfigKind kind);

/// Analytical stand-in for the Synopsys synthesis flow: composes the
/// component library into area/critical-path/power for `kind` at `node`.
/// See DESIGN.md for the substitution rationale and EXPERIMENTS.md for
/// model-vs-paper numbers.
SynthesisReport Synthesize(ConfigKind kind, TechNode node);

/// The per-instruction relative area of the DBA_2LSU_EIS processor
/// (reproduces Table 4).
std::vector<AreaBreakdownEntry> EisAreaBreakdown();

/// 65 nm -> 28 nm scaling constants (Table 3, last row).
struct TechScaling {
  double area_divisor = 3.8;
  double power_divisor = 2.875;
  double fmax_cap_mhz = 500.0;  // SLP/SLVT voltage-limited
};

TechScaling DefaultTechScaling();

}  // namespace dba::hwmodel

#endif  // DBA_HWMODEL_SYNTHESIS_H_
