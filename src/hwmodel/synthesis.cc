#include "hwmodel/synthesis.h"

#include <algorithm>
#include <cmath>

namespace dba::hwmodel {

namespace {

/// Single-load-path instantiation factor: on a one-LSU core the EIS is
/// synthesized with half the load datapath and without the dual write
/// paths of the union circuit; calibrated from Table 3
/// ((0.523 - 0.132) / (0.645 - 0.132) of the extension area).
constexpr double kSingleLsuEisFactor = 0.762;

/// Extension power at f_max, 65 nm, decomposed from Table 3:
/// DBA_1LSU_EIS adds 66.9 mW over DBA_1LSU; DBA_2LSU_EIS adds 78.0 mW
/// over DBA_2LSU.
constexpr double kEisPowerSingleMw = 66.9;
constexpr double kEisPowerDualMw = 78.0;

std::vector<Component> EisComponents() {
  return {component::EisDecodeMux(),   component::EisStates(),
          component::EisOpAll(),       component::EisOpIntersect(),
          component::EisOpDifference(), component::EisOpUnion(),
          component::EisOpMerge()};
}

}  // namespace

std::string_view ConfigKindName(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::k108Mini:
      return "108Mini";
    case ConfigKind::kDba1Lsu:
      return "DBA_1LSU";
    case ConfigKind::kDba2Lsu:
      return "DBA_2LSU";
    case ConfigKind::kDba1LsuEis:
      return "DBA_1LSU_EIS";
    case ConfigKind::kDba2LsuEis:
      return "DBA_2LSU_EIS";
  }
  return "invalid";
}

std::string_view TechNodeName(TechNode node) {
  switch (node) {
    case TechNode::k65nmTsmcLp:
      return "65 nm";
    case TechNode::k28nmGfSlp:
      return "28 nm";
  }
  return "invalid";
}

MemoryPlan MemoryPlanFor(ConfigKind kind) {
  MemoryPlan plan;
  switch (kind) {
    case ConfigKind::k108Mini:
      // No caches and no local store: the whole die is logic.
      plan.has_local_store = false;
      break;
    case ConfigKind::kDba1Lsu:
    case ConfigKind::kDba1LsuEis:
      plan.instruction_kib = 32;
      plan.data_kib = 64;
      plan.data_banks = 1;
      plan.has_local_store = true;
      break;
    case ConfigKind::kDba2Lsu:
    case ConfigKind::kDba2LsuEis:
      plan.instruction_kib = 32;
      plan.data_kib = 64;  // 32 KiB per LSU
      plan.data_banks = 2;
      plan.has_local_store = true;
      break;
  }
  return plan;
}

TechScaling DefaultTechScaling() { return TechScaling{}; }

SynthesisReport Synthesize(ConfigKind kind, TechNode node) {
  std::vector<Component> parts;
  switch (kind) {
    case ConfigKind::k108Mini:
      parts.push_back(component::Mini108Core());
      break;
    case ConfigKind::kDba1Lsu:
      parts.push_back(component::DbaBaseCore());
      parts.push_back(component::PrefetchInterface());
      break;
    case ConfigKind::kDba2Lsu:
      parts.push_back(component::DbaBaseCore());
      parts.push_back(component::PrefetchInterface());
      parts.push_back(component::SecondLsuGlue());
      break;
    case ConfigKind::kDba1LsuEis:
    case ConfigKind::kDba2LsuEis:
      // With the extension present, synthesis absorbs the base
      // periphery into the extension's decoding/muxing (Table 4 lists
      // only "basic core" + extension parts for the full processor).
      parts.push_back(component::DbaBaseCore());
      for (Component& eis_part : EisComponents()) {
        parts.push_back(eis_part);
      }
      if (kind == ConfigKind::kDba2LsuEis) {
        parts.push_back(component::SecondLsuGlue());
        parts.push_back(component::EisDualLsuGlue());
      }
      break;
  }

  SynthesisReport report;
  report.config_name = std::string(ConfigKindName(kind));
  report.node = node;

  double critical_path_ns = 0;
  for (const Component& part : parts) {
    report.logic_area_mm2 += part.logic_area_mm2;
    report.power_mw += part.power_mw;
    critical_path_ns += part.delay_ns;
  }

  const double base_power = component::DbaBaseCore().power_mw +
                            component::PrefetchInterface().power_mw;
  if (kind == ConfigKind::kDba1LsuEis) {
    // Narrow instantiation of the extension (see kSingleLsuEisFactor):
    // scale the extension's share of area; power is the decomposed
    // single-LSU extension figure.
    const double base_area = component::DbaBaseCore().logic_area_mm2;
    report.logic_area_mm2 =
        base_area + (report.logic_area_mm2 - base_area) * kSingleLsuEisFactor;
    report.power_mw = base_power + kEisPowerSingleMw;
  } else if (kind == ConfigKind::kDba2LsuEis) {
    report.power_mw =
        base_power + component::SecondLsuGlue().power_mw + kEisPowerDualMw;
  }

  const MemoryPlan plan = MemoryPlanFor(kind);
  const double total_kib =
      static_cast<double>(plan.instruction_kib + plan.data_kib);
  report.mem_area_mm2 = total_kib * MemoryAreaMm2PerKib();
  if (plan.has_local_store && plan.data_banks == 1) {
    // A single large data macro pays slightly more array overhead than
    // two half-size macros (Table 3: 0.874 vs 0.870 mm^2).
    report.mem_area_mm2 += 0.004;
  }
  report.power_mw += total_kib * MemoryPowerMwPerKib();

  report.fmax_mhz = critical_path_ns > 0 ? 1000.0 / critical_path_ns : 0;

  if (node == TechNode::k28nmGfSlp) {
    const TechScaling scaling = DefaultTechScaling();
    report.logic_area_mm2 /= scaling.area_divisor;
    report.mem_area_mm2 /= scaling.area_divisor;
    report.power_mw /= scaling.power_divisor;
    report.fmax_mhz = std::min(scaling.fmax_cap_mhz, report.fmax_mhz * 1.5);
  }
  return report;
}

std::vector<AreaBreakdownEntry> EisAreaBreakdown() {
  std::vector<Component> parts;
  parts.push_back(component::DbaBaseCore());
  parts.push_back(component::EisDecodeMux());
  parts.push_back(component::EisStates());
  parts.push_back(component::EisOpAll());
  parts.push_back(component::EisOpIntersect());
  parts.push_back(component::EisOpDifference());
  parts.push_back(component::EisOpUnion());
  parts.push_back(component::EisOpMerge());

  double total = 0;
  for (const Component& part : parts) total += part.logic_area_mm2;

  std::vector<AreaBreakdownEntry> breakdown;
  breakdown.reserve(parts.size());
  for (const Component& part : parts) {
    breakdown.push_back(AreaBreakdownEntry{
        part.name, part.logic_area_mm2, 100.0 * part.logic_area_mm2 / total});
  }
  return breakdown;
}

}  // namespace dba::hwmodel
