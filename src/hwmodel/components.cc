#include "hwmodel/components.h"

namespace dba::hwmodel {
namespace component {

// Calibration sources (all 65 nm TSMC low-power, typical case):
//  - absolute logic areas of the EIS parts: Table 4 percentages applied
//    to the 0.645 mm^2 of DBA_2LSU_EIS;
//  - core/periphery areas: Table 3 (logic column);
//  - critical-path contributions: decomposed from the Table 2/3 maximum
//    frequencies (442/435/429/424/410 MHz);
//  - power: decomposed from the Table 3 power column.

Component Mini108Core() {
  return {"108Mini core", 0.2201, 2.2624, 27.4};
}

Component DbaBaseCore() {
  // The LX4-derived base core as reported in the EIS synthesis
  // (Table 4: "Basic Core", 20.5% of 0.645 mm^2).
  return {"basic core", 0.1322, 2.2989, 24.0};
}

Component LoadStoreUnit() {
  // First LSU is part of the periphery; this entry models the marginal
  // cost of an *additional* LSU: negligible area (Table 3 reports equal
  // logic for DBA_1LSU and DBA_2LSU), a mux delay, and 0.5 mW.
  return {"load-store unit", 0.0, 0.0321, 0.5};
}

Component SecondLsuGlue() { return LoadStoreUnit(); }

Component PrefetchInterface() {
  // Periphery of the base configurations: LSU0 datapath, prefetcher
  // port, wide-bus infrastructure. Area closes the gap between the
  // Table 4 basic core and the Table 3 base-configuration logic.
  return {"core periphery", 0.0448, 0.0, 5.7};
}

Component EisDecodeMux() { return {"decoding/muxing", 0.0929, 0.0, 14.1}; }
Component EisStates() { return {"states", 0.0948, 0.0, 14.4}; }
Component EisOpAll() {
  // The shared all-to-all comparator array also sets the extension's
  // critical-path contribution.
  return {"op: all", 0.0729, 0.0596, 11.1};
}
Component EisOpIntersect() { return {"op: intersection", 0.0439, 0.0, 6.7}; }
Component EisOpDifference() { return {"op: difference", 0.0581, 0.0, 8.8}; }
Component EisOpUnion() { return {"op: union", 0.1135, 0.0, 17.3}; }
Component EisOpMerge() { return {"op: merge-sort", 0.0368, 0.0, 5.6}; }

Component EisDualLsuGlue() {
  // Partial loading across both LSUs lengthens the word-state muxing
  // path; area and power are absorbed in the op circuits above.
  return {"dual-LSU partial-load glue", 0.0, 0.0484, 0.0};
}

}  // namespace component

double MemoryAreaMm2PerKib() { return 0.87 / 96.0; }

double MemoryPowerMwPerKib() { return 26.9 / 96.0; }

}  // namespace dba::hwmodel
