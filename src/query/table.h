#ifndef DBA_QUERY_TABLE_H_
#define DBA_QUERY_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dba::query {

/// Row identifier: dense 0-based position within a table.
using Rid = uint32_t;

/// A minimal column-oriented table of 32-bit integer columns -- the
/// in-memory substrate the paper's motivation assumes ("modern database
/// architectures are mostly main-memory centric"). Strings/decimals are
/// assumed dictionary- or scale-encoded to uint32 upstream.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  uint32_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Appends a column. All columns must have equal length; the first
  /// column added defines the row count.
  Status AddColumn(std::string column_name, std::vector<uint32_t> values);

  /// Replaces the values of an existing column (the row count must
  /// match) and bumps the column's version counter. Derived structures
  /// keyed on the old version -- secondary indexes, partition indexes,
  /// cached query results -- become stale and must be rebuilt or
  /// invalidated; QueryEngine and service::ResultCache check versions.
  Status UpdateColumn(std::string_view column_name,
                      std::vector<uint32_t> values);

  /// Monotonic per-column version: 1 when added, +1 per UpdateColumn.
  Result<uint64_t> ColumnVersion(std::string_view column_name) const;

  /// Column access by name.
  Result<std::span<const uint32_t>> Column(std::string_view column_name) const;
  bool HasColumn(std::string_view column_name) const;
  std::vector<std::string> ColumnNames() const;

  /// Value of `column_name` at `rid` (bounds-checked).
  Result<uint32_t> Value(std::string_view column_name, Rid rid) const;

 private:
  struct NamedColumn {
    std::string name;
    std::vector<uint32_t> values;
    uint64_t version = 1;
  };

  const NamedColumn* Find(std::string_view column_name) const;

  std::string name_;
  uint32_t num_rows_ = 0;
  std::vector<NamedColumn> columns_;
};

}  // namespace dba::query

#endif  // DBA_QUERY_TABLE_H_
