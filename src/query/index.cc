#include "query/index.h"

#include <algorithm>
#include <numeric>

namespace dba::query {

Result<SecondaryIndex> SecondaryIndex::Build(const Table& table,
                                             std::string column_name) {
  DBA_ASSIGN_OR_RETURN(std::span<const uint32_t> column,
                       table.Column(column_name));
  std::vector<Rid> order(column.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&column](Rid x, Rid y) {
    return column[x] < column[y];
  });
  std::vector<uint32_t> values(column.size());
  for (size_t i = 0; i < order.size(); ++i) values[i] = column[order[i]];
  return SecondaryIndex(std::move(column_name), std::move(values),
                        std::move(order), table.num_rows());
}

std::vector<Rid> SecondaryIndex::ProbeEquals(uint32_t value) const {
  return ProbeRange(value, value);
}

std::vector<Rid> SecondaryIndex::ProbeRange(uint32_t lo, uint32_t hi) const {
  if (lo > hi) return {};
  const auto begin =
      std::lower_bound(values_.begin(), values_.end(), lo) - values_.begin();
  const auto end =
      std::upper_bound(values_.begin(), values_.end(), hi) - values_.begin();
  std::vector<Rid> rids(rids_.begin() + begin, rids_.begin() + end);
  // Entries are ordered by (value, rid); a multi-value range needs a
  // final RID sort to produce the canonical sorted RID set.
  std::sort(rids.begin(), rids.end());
  return rids;
}

std::vector<Rid> SecondaryIndex::AllRids() const {
  std::vector<Rid> rids(num_rows_);
  std::iota(rids.begin(), rids.end(), 0u);
  return rids;
}

Result<uint32_t> SecondaryIndex::MinValue() const {
  if (values_.empty()) return Status::FailedPrecondition("empty index");
  return values_.front();
}

Result<uint32_t> SecondaryIndex::MaxValue() const {
  if (values_.empty()) return Status::FailedPrecondition("empty index");
  return values_.back();
}

}  // namespace dba::query
