#include "query/table.h"

namespace dba::query {

Status Table::AddColumn(std::string column_name,
                        std::vector<uint32_t> values) {
  if (Find(column_name) != nullptr) {
    return Status::AlreadyExists("column '" + column_name +
                                 "' already exists in table '" + name_ + "'");
  }
  if (!columns_.empty() && values.size() != num_rows_) {
    return Status::InvalidArgument(
        "column '" + column_name + "' has " + std::to_string(values.size()) +
        " rows; table '" + name_ + "' has " + std::to_string(num_rows_));
  }
  if (columns_.empty()) num_rows_ = static_cast<uint32_t>(values.size());
  columns_.push_back(NamedColumn{std::move(column_name), std::move(values)});
  return Status::Ok();
}

Status Table::UpdateColumn(std::string_view column_name,
                           std::vector<uint32_t> values) {
  NamedColumn* column = const_cast<NamedColumn*>(Find(column_name));
  if (column == nullptr) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  if (values.size() != num_rows_) {
    return Status::InvalidArgument(
        "UpdateColumn of '" + std::string(column_name) + "' has " +
        std::to_string(values.size()) + " rows; table '" + name_ + "' has " +
        std::to_string(num_rows_));
  }
  column->values = std::move(values);
  ++column->version;
  return Status::Ok();
}

Result<uint64_t> Table::ColumnVersion(std::string_view column_name) const {
  const NamedColumn* column = Find(column_name);
  if (column == nullptr) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  return column->version;
}

const Table::NamedColumn* Table::Find(std::string_view column_name) const {
  for (const NamedColumn& column : columns_) {
    if (column.name == column_name) return &column;
  }
  return nullptr;
}

Result<std::span<const uint32_t>> Table::Column(
    std::string_view column_name) const {
  const NamedColumn* column = Find(column_name);
  if (column == nullptr) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  return std::span<const uint32_t>(column->values);
}

bool Table::HasColumn(std::string_view column_name) const {
  return Find(column_name) != nullptr;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const NamedColumn& column : columns_) names.push_back(column.name);
  return names;
}

Result<uint32_t> Table::Value(std::string_view column_name, Rid rid) const {
  const NamedColumn* column = Find(column_name);
  if (column == nullptr) {
    return Status::NotFound("no column '" + std::string(column_name) + "'");
  }
  if (rid >= column->values.size()) {
    return Status::OutOfRange("rid " + std::to_string(rid) +
                              " outside table '" + name_ + "'");
  }
  return column->values[rid];
}

}  // namespace dba::query
