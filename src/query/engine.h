#ifndef DBA_QUERY_ENGINE_H_
#define DBA_QUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/processor.h"
#include "query/index.h"
#include "query/predicate.h"
#include "query/table.h"

namespace dba::query {

/// Execution statistics of one query.
struct QueryStats {
  uint32_t index_probes = 0;
  uint32_t set_operations = 0;
  uint32_t sorts = 0;
  uint32_t retries = 0;              // transient-failure re-executions
  uint64_t accelerator_cycles = 0;   // total cycles on the DBA core
  uint64_t elements_processed = 0;   // set-op + sort input elements
  double accelerator_seconds = 0;    // at the synthesized f_max
  std::vector<std::string> plan;     // rendered execution steps
};

/// A miniature selection/ordering engine on top of the accelerator: the
/// integration layer a database system would put between its planner and
/// the DBA processor. WHERE-clause predicate trees compile to secondary-
/// index probes combined with the EIS set operations (AND -> intersect,
/// OR -> union, AND NOT -> difference, Section 2.3), and ORDER BY runs
/// on the merge-sort kernel. RID lists larger than the local store are
/// streamed through the data prefetcher automatically.
class QueryEngine {
 public:
  /// `table` and `processor` must outlive the engine.
  QueryEngine(const Table* table, Processor* processor)
      : table_(table), processor_(processor) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Builds (or rebuilds) the secondary index for `column`.
  Status BuildIndex(const std::string& column);
  bool HasIndex(const std::string& column) const {
    return indexes_.count(column) != 0;
  }

  /// Evaluates the WHERE clause: the sorted RID set of qualifying rows.
  /// Every column referenced by `predicate` must have an index.
  Result<std::vector<Rid>> Select(const Predicate& predicate,
                                  QueryStats* stats = nullptr);

  /// SELECT <order_by> FROM t WHERE <predicate> ORDER BY <order_by>:
  /// gathers the qualifying rows' values of `order_by` and sorts them on
  /// the accelerator. Inputs beyond the local store sort in chunks with
  /// a final host merge (counted in the plan, not in cycles).
  Result<std::vector<uint32_t>> SelectValuesOrdered(
      const Predicate& predicate, const std::string& order_by,
      QueryStats* stats = nullptr);

  /// Match-finding phase of a sort-merge join on unique keys (paper
  /// Section 2.3: "Sorting ... is used before sort-merge joins"): sorts
  /// both key columns on the accelerator and intersects them, returning
  /// the sorted join keys. Fails if either column has duplicate keys.
  Result<std::vector<uint32_t>> JoinKeys(const std::string& column,
                                         const Table& other,
                                         const std::string& other_column,
                                         QueryStats* stats = nullptr);

  /// Opt-in host parallelism for independent engine steps: JoinKeys
  /// sorts its two key columns concurrently, the second one on
  /// `sibling` (a same-configuration Processor, e.g. a spare core of a
  /// system::Board, whose host_pool()/core() provide both arguments).
  /// Results, cycle counts, and plans stay bit-identical to the serial
  /// engine; only the host wall-clock changes. Pass nulls to go back to
  /// serial. `pool` and `sibling` must outlive the engine and must not
  /// be used by the caller while a query runs.
  void EnableConcurrentSorts(common::ThreadPool* pool, Processor* sibling) {
    pool_ = pool;
    sibling_ = sibling;
  }

  /// Base kernel-run settings applied to every accelerator call -- e.g. a
  /// watchdog budget (RunSettings::max_cycles) when the core may hang, or
  /// input validation when RID lists may arrive corrupted.
  void SetRunSettings(const RunSettings& settings) {
    run_settings_ = settings;
  }
  /// Attempts per accelerator step (>= 1; default 1 = fail fast, the
  /// historical behavior). Transient failures -- DeadlineExceeded,
  /// Unavailable, DataLoss -- are re-executed with the watchdog budget
  /// doubled each attempt; QueryStats::retries counts re-executions.
  void SetMaxAttempts(int attempts) {
    max_attempts_ = attempts < 1 ? 1 : attempts;
  }

 private:
  Result<std::vector<Rid>> Evaluate(const Predicate& predicate,
                                    QueryStats* stats);
  Result<std::vector<Rid>> Probe(const Predicate& leaf, QueryStats* stats);
  Result<std::vector<Rid>> RunSetOp(SetOp op, const std::vector<Rid>& a,
                                    const std::vector<Rid>& b,
                                    QueryStats* stats);
  Result<std::vector<Rid>> Complement(const std::vector<Rid>& rids,
                                      QueryStats* stats);

  const Table* table_;
  Processor* processor_;
  common::ThreadPool* pool_ = nullptr;   // non-owning; may be null
  Processor* sibling_ = nullptr;         // non-owning; may be null
  RunSettings run_settings_;
  int max_attempts_ = 1;
  std::map<std::string, SecondaryIndex> indexes_;
};

}  // namespace dba::query

#endif  // DBA_QUERY_ENGINE_H_
