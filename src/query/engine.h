#ifndef DBA_QUERY_ENGINE_H_
#define DBA_QUERY_ENGINE_H_

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <array>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/processor.h"
#include "fault/fault.h"
#include "query/index.h"
#include "query/partition_index.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/table.h"

namespace dba::query {

/// Execution statistics of one query.
struct QueryStats {
  uint32_t index_probes = 0;
  uint32_t set_operations = 0;
  uint32_t sorts = 0;
  uint32_t retries = 0;              // transient-failure re-executions
  uint64_t accelerator_cycles = 0;   // total cycles on the DBA core
  uint64_t elements_processed = 0;   // set-op + sort input elements
  double accelerator_seconds = 0;    // at the synthesized f_max
  std::vector<std::string> plan;     // rendered execution steps
  // --- Adaptive-planner telemetry (EnableAdaptivePlanner) ---
  uint32_t planned_ops = 0;          // intersections routed by the planner
  /// Executions per route, indexed by Route; always sums to planned_ops
  /// and matches the dba_query_plan_total{route=...} counter deltas.
  std::array<uint32_t, kNumRoutes> route_counts{};
  uint32_t partition_index_builds = 0;  // lazy indexes materialized
  double host_route_seconds = 0;     // wall time spent in host routes
};

/// Savings/materialization state of one column's lazy PartitionIndex
/// (inspection surface for tests and `dba_cli plan`).
struct ColumnIndexState {
  double missed_savings_ns = 0;  // accumulated unclaimed savings
  double build_cost_ns = 0;      // estimate for the last candidate set
  uint32_t misses_recorded = 0;
  uint32_t indexes_built = 0;
  uint64_t indexed_entries = 0;  // total elements across built indexes
};

/// A miniature selection/ordering engine on top of the accelerator: the
/// integration layer a database system would put between its planner and
/// the DBA processor. WHERE-clause predicate trees compile to secondary-
/// index probes combined with the EIS set operations (AND -> intersect,
/// OR -> union, AND NOT -> difference, Section 2.3), and ORDER BY runs
/// on the merge-sort kernel. RID lists larger than the local store are
/// streamed through the data prefetcher automatically.
class QueryEngine {
 public:
  /// `table` and `processor` must outlive the engine.
  QueryEngine(const Table* table, Processor* processor)
      : table_(table), processor_(processor) {}

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Builds (or rebuilds) the secondary index for `column`.
  Status BuildIndex(const std::string& column);
  bool HasIndex(const std::string& column) const {
    return indexes_.count(column) != 0;
  }

  /// Evaluates the WHERE clause: the sorted RID set of qualifying rows.
  /// Every column referenced by `predicate` must have an index. Indexes
  /// built over a column version that the table has since mutated past
  /// (Table::UpdateColumn) are rebuilt transparently before the probe,
  /// and the column's lazy partition-index state is dropped with them.
  Result<std::vector<Rid>> Select(const Predicate& predicate,
                                  QueryStats* stats = nullptr);

  /// Async Select: evaluates `predicate` on a host thread when a pool
  /// was provided via EnableConcurrentSorts, inline otherwise, and
  /// resolves the future with the same result Select would return.
  /// Concurrent Submit calls are serialized by an internal mutex (one
  /// engine drives one processor); mixing Submit with direct synchronous
  /// calls while a submission is in flight is the caller's race to avoid.
  /// For a queued, batched, multi-tenant frontend see service::QueryService.
  std::future<Result<std::vector<Rid>>> Submit(
      std::shared_ptr<const Predicate> predicate);

  /// SELECT <order_by> FROM t WHERE <predicate> ORDER BY <order_by>:
  /// gathers the qualifying rows' values of `order_by` and sorts them on
  /// the accelerator. Inputs beyond the local store sort in chunks with
  /// a final host merge (counted in the plan, not in cycles).
  Result<std::vector<uint32_t>> SelectValuesOrdered(
      const Predicate& predicate, const std::string& order_by,
      QueryStats* stats = nullptr);

  /// Match-finding phase of a sort-merge join on unique keys (paper
  /// Section 2.3: "Sorting ... is used before sort-merge joins"): sorts
  /// both key columns on the accelerator and intersects them, returning
  /// the sorted join keys. Fails if either column has duplicate keys.
  Result<std::vector<uint32_t>> JoinKeys(const std::string& column,
                                         const Table& other,
                                         const std::string& other_column,
                                         QueryStats* stats = nullptr);

  /// Opt-in host parallelism for independent engine steps: JoinKeys
  /// sorts its two key columns concurrently, the second one on
  /// `sibling` (a same-configuration Processor, e.g. a spare core of a
  /// system::Board, whose host_pool()/core() provide both arguments).
  /// Results, cycle counts, and plans stay bit-identical to the serial
  /// engine; only the host wall-clock changes. Pass nulls to go back to
  /// serial. `pool` and `sibling` must outlive the engine and must not
  /// be used by the caller while a query runs.
  void EnableConcurrentSorts(common::ThreadPool* pool, Processor* sibling) {
    pool_ = pool;
    sibling_ = sibling;
  }

  /// Enables the adaptive intersection planner (docs/PLANNER.md): every
  /// RID-set intersection is routed to its estimated-fastest kernel --
  /// EIS merge, host galloping, host SIMD merge, or a probe of a lazy
  /// per-column PartitionIndex that materializes only once its
  /// savings-accounting meter pays back the build cost. Results stay
  /// byte-identical to the always-EIS engine on every route; only the
  /// execution vehicle (and so QueryStats::accelerator_cycles vs.
  /// host_route_seconds) changes. Off by default: the seed behavior is
  /// always-EIS.
  void EnableAdaptivePlanner(const PlannerOptions& options = {});
  void DisableAdaptivePlanner();
  bool planner_enabled() const { return planner_ != nullptr; }
  const Planner* planner() const { return planner_.get(); }

  /// Lazy-index state of `column` ({} when never considered).
  ColumnIndexState partition_state(const std::string& column) const;

  /// Base kernel-run settings applied to every accelerator call -- e.g. a
  /// watchdog budget (RunSettings::max_cycles) when the core may hang, or
  /// input validation when RID lists may arrive corrupted.
  void SetRunSettings(const RunSettings& settings) {
    run_settings_ = settings;
  }
  /// Attempts per accelerator step (>= 1; default 1 = fail fast, the
  /// historical behavior). Transient failures -- DeadlineExceeded,
  /// Unavailable, DataLoss -- are re-executed with the watchdog budget
  /// doubled each attempt; QueryStats::retries counts re-executions.
  /// The budget applies route-independently: planner-routed host
  /// kernels retry under the same policy as the EIS datapath.
  void SetMaxAttempts(int attempts) {
    max_attempts_ = attempts < 1 ? 1 : attempts;
  }

  /// Deterministic per-attempt fault hook (fault::MakeTransientFaultHook)
  /// consulted before every set-operation attempt, EIS or host-routed;
  /// a non-OK return fails the attempt and the SetMaxAttempts retry
  /// policy takes over. Null (the default) disables injection.
  void SetAttemptFaultHook(fault::AttemptFaultHook hook) {
    attempt_fault_hook_ = std::move(hook);
  }

 private:
  /// A sorted RID set plus its provenance: leaf probes carry the source
  /// column and a probe signature ("column:lo:hi") so the planner's
  /// savings accounting and index cache can recognize repeated work;
  /// derived sets (set-op results, complements) are anonymous.
  struct Operand {
    std::vector<Rid> rids;
    std::string column;     // "" = not attributable to one column
    std::string probe_key;  // "" = not cacheable
  };

  /// Non-owning view of an operand; implicitly built from an Operand or
  /// a bare RID vector (anonymous provenance).
  struct OperandView {
    std::span<const Rid> rids;
    std::string_view column;
    std::string_view probe_key;
    OperandView(const Operand& operand)  // NOLINT
        : rids(operand.rids),
          column(operand.column),
          probe_key(operand.probe_key) {}
    OperandView(const std::vector<Rid>& plain) : rids(plain) {}  // NOLINT
  };

  Result<Operand> Evaluate(const Predicate& predicate, QueryStats* stats);
  Result<Operand> Probe(const Predicate& leaf, QueryStats* stats);

  /// Rebuilds the secondary index on `column` when the table's column
  /// version moved past the version the index was built from, dropping
  /// the column's partition indexes and savings state (they cover the
  /// old data). No-op when the column has no index yet.
  Status RefreshIndexIfStale(const std::string& column);

  /// The attempt-fault hook decision for (key, attempt); Ok when unset.
  Status ConsultFaultHook(std::string_view key, int attempt) const;

  Result<std::vector<Rid>> RunSetOp(SetOp op, const OperandView& a,
                                    const OperandView& b, QueryStats* stats);
  Result<std::vector<Rid>> Complement(const std::vector<Rid>& rids,
                                      QueryStats* stats);

  /// The raw EIS execution: capacity-based streaming plus the
  /// transient-failure retry loop. No stats/plan side effects.
  struct EisExecution {
    std::vector<Rid> result;
    uint64_t cycles = 0;
    bool streamed = false;
    int attempts_used = 1;
  };
  Result<EisExecution> ExecuteEis(SetOp op, std::span<const Rid> a,
                                  std::span<const Rid> b);

  /// Planner-routed intersection of two non-empty operands: decides,
  /// runs the lazy-index savings accounting, executes the chosen route,
  /// and records the decision in stats/metrics/trace.
  Result<std::vector<Rid>> RunPlannedIntersect(const OperandView& a,
                                               const OperandView& b,
                                               QueryStats* stats);

  const Table* table_;
  Processor* processor_;
  common::ThreadPool* pool_ = nullptr;   // non-owning; may be null
  Processor* sibling_ = nullptr;         // non-owning; may be null
  RunSettings run_settings_;
  int max_attempts_ = 1;
  fault::AttemptFaultHook attempt_fault_hook_;
  std::mutex submit_mutex_;  // serializes Submit-driven queries
  std::map<std::string, SecondaryIndex> indexes_;
  std::map<std::string, uint64_t> index_versions_;  // column version built

  // --- Adaptive planner state (null/empty while disabled) ---
  std::unique_ptr<Planner> planner_;
  std::map<std::string, PartitionSavingsMeter> savings_;      // by column
  std::map<std::string, PartitionIndex> partition_indexes_;   // by probe_key
  std::map<std::string, ColumnIndexState> index_state_;       // by column
};

}  // namespace dba::query

#endif  // DBA_QUERY_ENGINE_H_
