#ifndef DBA_QUERY_INDEX_H_
#define DBA_QUERY_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/table.h"

namespace dba::query {

/// A secondary index over one column: (value, rid) pairs sorted by
/// (value, rid). Probes return **sorted RID lists** -- the inputs of the
/// paper's set operations ("RID sets, which are obtained from secondary
/// indices when complex selection predicates within the WHERE clause are
/// specified", Section 2.3).
class SecondaryIndex {
 public:
  /// Builds the index over `column_name` of `table` (O(n log n)).
  static Result<SecondaryIndex> Build(const Table& table,
                                      std::string column_name);

  const std::string& column_name() const { return column_name_; }
  uint32_t num_entries() const { return static_cast<uint32_t>(rids_.size()); }

  /// RIDs of rows with column == value.
  std::vector<Rid> ProbeEquals(uint32_t value) const;

  /// RIDs of rows with lo <= column <= hi (inclusive range).
  std::vector<Rid> ProbeRange(uint32_t lo, uint32_t hi) const;

  /// All RIDs (sorted) -- the domain for NOT at the top level.
  std::vector<Rid> AllRids() const;

  /// Smallest and largest indexed value (for statistics / planning).
  Result<uint32_t> MinValue() const;
  Result<uint32_t> MaxValue() const;

 private:
  SecondaryIndex(std::string column_name, std::vector<uint32_t> values,
                 std::vector<Rid> rids, uint32_t num_rows)
      : column_name_(std::move(column_name)),
        values_(std::move(values)),
        rids_(std::move(rids)),
        num_rows_(num_rows) {}

  std::string column_name_;
  std::vector<uint32_t> values_;  // sorted
  std::vector<Rid> rids_;         // parallel to values_
  uint32_t num_rows_;
};

}  // namespace dba::query

#endif  // DBA_QUERY_INDEX_H_
