#include "query/predicate.h"

namespace dba::query {

namespace {

PredicatePtr MakeLeaf(Predicate::Kind kind, std::string column, uint32_t lo,
                      uint32_t hi) {
  auto predicate = std::make_unique<Predicate>();
  predicate->kind = kind;
  predicate->column = std::move(column);
  predicate->lo = lo;
  predicate->hi = hi;
  return predicate;
}

PredicatePtr MakeNode(Predicate::Kind kind,
                      std::vector<PredicatePtr> children) {
  auto predicate = std::make_unique<Predicate>();
  predicate->kind = kind;
  predicate->children = std::move(children);
  return predicate;
}

}  // namespace

PredicatePtr Equals(std::string column, uint32_t value) {
  return MakeLeaf(Predicate::Kind::kEquals, std::move(column), value, value);
}

PredicatePtr In(std::string column, std::vector<uint32_t> values) {
  std::vector<PredicatePtr> children;
  children.reserve(values.size());
  for (const uint32_t value : values) {
    children.push_back(Equals(column, value));
  }
  if (children.size() == 1) return std::move(children.front());
  return MakeNode(Predicate::Kind::kOr, std::move(children));
}

PredicatePtr Between(std::string column, uint32_t lo, uint32_t hi) {
  return MakeLeaf(Predicate::Kind::kBetween, std::move(column), lo, hi);
}

PredicatePtr LessEq(std::string column, uint32_t value) {
  return MakeLeaf(Predicate::Kind::kLessEq, std::move(column), 0, value);
}

PredicatePtr GreaterEq(std::string column, uint32_t value) {
  return MakeLeaf(Predicate::Kind::kGreaterEq, std::move(column), value,
                  0xFFFFFFFFu);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return MakeNode(Predicate::Kind::kAnd, std::move(children));
}

PredicatePtr And(PredicatePtr a, PredicatePtr b) {
  std::vector<PredicatePtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return And(std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return MakeNode(Predicate::Kind::kOr, std::move(children));
}

PredicatePtr Or(PredicatePtr a, PredicatePtr b) {
  std::vector<PredicatePtr> children;
  children.push_back(std::move(a));
  children.push_back(std::move(b));
  return Or(std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  std::vector<PredicatePtr> children;
  children.push_back(std::move(child));
  return MakeNode(Predicate::Kind::kNot, std::move(children));
}

std::string Predicate::ToString() const {
  switch (kind) {
    case Kind::kEquals:
      return column + " = " + std::to_string(lo);
    case Kind::kBetween:
      return column + " BETWEEN " + std::to_string(lo) + " AND " +
             std::to_string(hi);
    case Kind::kLessEq:
      return column + " <= " + std::to_string(hi);
    case Kind::kGreaterEq:
      return column + " >= " + std::to_string(lo);
    case Kind::kNot:
      return "NOT " + children[0]->ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += kind == Kind::kAnd ? " AND " : " OR ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace dba::query
