#ifndef DBA_QUERY_PARTITION_INDEX_H_
#define DBA_QUERY_PARTITION_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dba::query {

/// A hierarchical skip/partition structure over one sorted duplicate-free
/// uint32 set, following Ding & Koenig's "Fast Set Intersection in
/// Memory": probing a value touches a small directory, one partition
/// summary, and a binary search within a fixed-width partition instead
/// of walking the whole set. Three levels:
///
///   level 0  directory: value >> shift -> first candidate partition
///            (radix over the value domain, O(1))
///   level 1  partition summaries: the maximum value of each
///            kPartitionWidth-element slice (linear skip, short)
///   level 2  the slice itself (binary search, log2(kPartitionWidth))
///
/// Intersect() streams a sorted probe set through the index with a
/// monotone partition cursor, so the cost is
/// O(|probes| * (1 + log2 kPartitionWidth)) -- the partition-probe route
/// of the query planner (docs/PLANNER.md). Building is one O(n) pass;
/// whether that pass is worth paying is the engine's savings-accounting
/// decision (PartitionSavingsMeter), not the index's.
class PartitionIndex {
 public:
  /// Elements per level-2 slice. 256 keeps a slice within a few cache
  /// lines while the summaries stay 1/256th of the data.
  static constexpr uint32_t kPartitionWidth = 256;

  /// Builds the index over `sorted_values` (sorted, duplicate-free; the
  /// values are copied so the index outlives the probe result it came
  /// from). An empty input yields an empty index.
  static PartitionIndex Build(std::span<const uint32_t> sorted_values);

  PartitionIndex() = default;

  size_t size() const { return values_.size(); }
  size_t num_partitions() const { return partition_max_.size(); }
  size_t directory_size() const { return directory_.size(); }

  /// Membership probe for one value.
  bool Contains(uint32_t value) const;

  /// Sorted intersection of the (sorted, duplicate-free) probe set with
  /// the indexed set -- byte-identical to ScalarIntersect(probes, set).
  std::vector<uint32_t> Intersect(std::span<const uint32_t> probes) const;

  /// The indexed set itself (for verification and fallback paths).
  std::span<const uint32_t> values() const { return values_; }

 private:
  /// Index of the first partition whose maximum is >= value, starting
  /// the scan at `from` (monotone cursor for sorted probe streams).
  size_t FindPartition(uint32_t value, size_t from) const;

  std::vector<uint32_t> values_;         // the indexed sorted set
  std::vector<uint32_t> partition_max_;  // level 1: max of each slice
  std::vector<uint32_t> directory_;      // level 0: radix -> partition
  uint32_t shift_ = 32;                  // directory radix shift
};

/// Savings accounting for lazily materializing a PartitionIndex (the
/// self-building-index idiom: an index is built only once the queries
/// that would have used it have "missed" enough savings to amortize the
/// build). The engine records, per column, the cost difference between
/// the route it had to take and the partition-probe route it could have
/// taken; once the accumulated missed savings reach
/// payback_factor * build_cost the meter trips, the index is built, and
/// the build cost is deducted (so a column must keep earning to justify
/// further indexes).
class PartitionSavingsMeter {
 public:
  /// Records one missed opportunity worth `savings_ns` against a build
  /// estimated at `build_cost_ns`. Returns true when the accumulated
  /// savings reach `payback_factor * build_cost_ns` -- the caller should
  /// build the index now and call ChargeBuild().
  bool RecordMiss(double savings_ns, double build_cost_ns,
                  double payback_factor);

  /// Deducts the paid build cost after a build.
  void ChargeBuild(double build_cost_ns);

  double missed_savings_ns() const { return missed_savings_ns_; }
  double last_build_cost_ns() const { return last_build_cost_ns_; }
  uint32_t misses_recorded() const { return misses_recorded_; }

 private:
  double missed_savings_ns_ = 0;
  double last_build_cost_ns_ = 0;
  uint32_t misses_recorded_ = 0;
};

}  // namespace dba::query

#endif  // DBA_QUERY_PARTITION_INDEX_H_
