#include "query/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "obs/metrics/metrics.h"
#include "prefetch/streaming.h"

namespace dba::query {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::nano>(end - begin).count();
}

// Registered once; hot-path cost is one relaxed fetch_add per set op /
// sort / query.  Latency histograms observe *simulated* accelerator
// cycles, so registry snapshots stay deterministic across host threads.
struct QueryInstrumentSet {
  obs::Counter* setops;
  obs::Counter* sorts;
  obs::Counter* retries;
  obs::Counter* concurrent_sort_pairs;
  obs::Gauge* sort_concurrency;
  obs::Histogram* latency;
};

const QueryInstrumentSet& QueryInstruments() {
  static const QueryInstrumentSet instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    QueryInstrumentSet out;
    out.setops = registry.GetCounter("dba_query_setops_total",
                                     "Set operations run by query plans.");
    out.sorts = registry.GetCounter("dba_query_sorts_total",
                                    "Accelerator sorts run by query plans.");
    out.retries = registry.GetCounter(
        "dba_query_retries_total",
        "Transient-failure retries across set ops and sorts.");
    out.concurrent_sort_pairs = registry.GetCounter(
        "dba_query_concurrent_sort_pairs_total",
        "JoinKeys column-sort pairs run on concurrent host threads.");
    out.sort_concurrency = registry.GetGauge(
        "dba_query_sort_concurrency",
        "Host threads used by the last JoinKeys column sort (1 or 2).");
    out.latency = registry.GetHistogram(
        "dba_query_latency_cycles",
        "Simulated accelerator cycles per public query.");
    return out;
  }();
  return instruments;
}

// Adaptive-planner instruments (EnableAdaptivePlanner). Route counters
// record counts only, so they keep the registry's determinism contract
// and match QueryStats::route_counts exactly at any host_threads; the
// decision/wall histograms observe host nanoseconds and are explicitly
// outside that contract (documented in docs/PLANNER.md).
struct PlanInstrumentSet {
  std::array<obs::Counter*, kNumRoutes> route_total;
  std::array<obs::Histogram*, kNumRoutes> route_wall_ns;
  obs::Histogram* decision_ns;
  obs::Histogram* eis_cycles;
  obs::Counter* index_builds;
};

const PlanInstrumentSet& PlanInstruments() {
  static const PlanInstrumentSet instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    PlanInstrumentSet out;
    for (size_t r = 0; r < kNumRoutes; ++r) {
      const std::string_view route = RouteName(static_cast<Route>(r));
      out.route_total[r] = registry.GetCounter(
          "dba_query_plan_total", "route", route,
          "Planner-routed intersections by chosen route.");
      out.route_wall_ns[r] = registry.GetHistogram(
          "dba_query_plan_route_wall_ns", "route", route,
          "Execution time per routed intersection in ns: simulated time "
          "(cycles / f_max) for eis_merge, host wall time otherwise "
          "(host-route series are not deterministic).");
    }
    out.decision_ns = registry.GetHistogram(
        "dba_query_plan_decision_ns",
        "Planner decision latency in host ns (not deterministic).");
    out.eis_cycles = registry.GetHistogram(
        "dba_query_plan_eis_cycles",
        "Simulated cycles of planner-routed EIS intersections.");
    out.index_builds = registry.GetCounter(
        "dba_query_partition_index_builds_total",
        "Lazy PartitionIndex materializations (savings meter paybacks).");
    return out;
  }();
  return instruments;
}

obs::Counter* QueryCounter(std::string_view op) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static constexpr std::string_view kHelp = "Public queries served by op.";
  static obs::Counter* const select =
      registry.GetCounter("dba_query_queries_total", "op", "select", kHelp);
  static obs::Counter* const join_keys =
      registry.GetCounter("dba_query_queries_total", "op", "join_keys", kHelp);
  static obs::Counter* const select_ordered = registry.GetCounter(
      "dba_query_queries_total", "op", "select_values_ordered", kHelp);
  if (op == "select") return select;
  if (op == "join_keys") return join_keys;
  return select_ordered;
}

void AddPlanStep(QueryStats* stats, std::string step) {
  if (stats != nullptr) stats->plan.push_back(std::move(step));
}

/// Failure codes worth re-executing: the attempt may succeed on a retry
/// (a tripped watchdog, a dropped transfer, detected data corruption).
/// Anything else -- bad inputs, missing indexes -- fails immediately.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kUnavailable || code == StatusCode::kDataLoss;
}

/// The attempt's settings: the base watchdog budget doubles with every
/// retry (a genuine slow run eventually fits; a real hang keeps failing).
RunSettings AttemptSettings(const RunSettings& base, int attempt) {
  RunSettings settings = base;
  settings.max_cycles = base.max_cycles << attempt;
  return settings;
}

}  // namespace

Status QueryEngine::BuildIndex(const std::string& column) {
  DBA_ASSIGN_OR_RETURN(SecondaryIndex index,
                       SecondaryIndex::Build(*table_, column));
  DBA_ASSIGN_OR_RETURN(const uint64_t version, table_->ColumnVersion(column));
  indexes_.erase(column);
  indexes_.emplace(column, std::move(index));
  index_versions_[column] = version;
  return Status::Ok();
}

Status QueryEngine::RefreshIndexIfStale(const std::string& column) {
  if (indexes_.find(column) == indexes_.end()) return Status::Ok();
  DBA_ASSIGN_OR_RETURN(const uint64_t current, table_->ColumnVersion(column));
  const auto built = index_versions_.find(column);
  if (built != index_versions_.end() && built->second == current) {
    return Status::Ok();
  }
  DBA_RETURN_IF_ERROR(BuildIndex(column));
  // Partition indexes are keyed by probe signature ("column:lo:hi"):
  // every cached index over the stale column covers old data, as does
  // its savings meter -- drop them and let the lazy machinery restart.
  const std::string prefix = column + ":";
  for (auto it = partition_indexes_.begin();
       it != partition_indexes_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = partition_indexes_.erase(it);
    } else {
      ++it;
    }
  }
  savings_.erase(column);
  index_state_.erase(column);
  return Status::Ok();
}

Status QueryEngine::ConsultFaultHook(std::string_view key,
                                     int attempt) const {
  if (!attempt_fault_hook_) return Status::Ok();
  return attempt_fault_hook_(key, attempt);
}

Result<QueryEngine::Operand> QueryEngine::Probe(const Predicate& leaf,
                                                QueryStats* stats) {
  DBA_RETURN_IF_ERROR(RefreshIndexIfStale(leaf.column));
  auto it = indexes_.find(leaf.column);
  if (it == indexes_.end()) {
    return Status::FailedPrecondition(
        "no secondary index on column '" + leaf.column +
        "'; call BuildIndex first");
  }
  Operand out;
  uint32_t lo = leaf.lo;
  uint32_t hi = leaf.hi;
  switch (leaf.kind) {
    case Predicate::Kind::kEquals:
      out.rids = it->second.ProbeEquals(leaf.lo);
      hi = leaf.lo;
      break;
    case Predicate::Kind::kBetween:
    case Predicate::Kind::kLessEq:
    case Predicate::Kind::kGreaterEq:
      out.rids = it->second.ProbeRange(leaf.lo, leaf.hi);
      break;
    default:
      return Status::Internal("Probe called on a non-leaf predicate");
  }
  // Provenance for the planner: the source column (savings accounting)
  // and a probe signature (the index cache key -- the table is
  // immutable, so identical signatures yield identical RID sets).
  out.column = leaf.column;
  out.probe_key =
      leaf.column + ":" + std::to_string(lo) + ":" + std::to_string(hi);
  if (stats != nullptr) {
    ++stats->index_probes;
    AddPlanStep(stats, "probe " + leaf.ToString() + " -> " +
                           std::to_string(out.rids.size()) + " RIDs");
  }
  return out;
}

Result<QueryEngine::EisExecution> QueryEngine::ExecuteEis(
    SetOp op, std::span<const Rid> a, std::span<const Rid> b) {
  EisExecution out;
  const bool fits =
      a.size() <= processor_->max_set_elements(
                      static_cast<uint32_t>(b.size())) &&
      b.size() <= processor_->max_set_elements(static_cast<uint32_t>(a.size()));
  out.streamed = !fits;
  Status last_error = Status::Internal("no attempt executed");
  bool done = false;
  for (int attempt = 0; attempt < max_attempts_ && !done; ++attempt) {
    out.attempts_used = attempt + 1;
    const Status injected = ConsultFaultHook(
        std::string("eis:") + std::string(eis::SopModeName(op)), attempt);
    if (!injected.ok()) {
      last_error = injected;
      if (!IsTransient(last_error.code())) return last_error;
      continue;
    }
    const RunSettings settings = AttemptSettings(run_settings_, attempt);
    if (fits) {
      Result<SetOpRun> run = processor_->RunSetOperation(op, a, b, settings);
      if (run.ok()) {
        out.cycles = run->metrics.cycles;
        out.result = std::move(run->result);
        done = true;
      } else {
        last_error = run.status();
      }
    } else {
      prefetch::StreamingSetOperation streaming(processor_,
                                                prefetch::DmaConfig{}, 0,
                                                settings);
      Result<prefetch::StreamingRun> run = streaming.Run(op, a, b);
      if (run.ok()) {
        out.cycles = run->total_cycles;
        out.result = std::move(run->result);
        done = true;
      } else {
        last_error = run.status();
      }
    }
    if (!done && !IsTransient(last_error.code())) return last_error;
  }
  if (!done) return last_error;
  return out;
}

Result<std::vector<Rid>> QueryEngine::RunSetOp(SetOp op, const OperandView& a,
                                               const OperandView& b,
                                               QueryStats* stats) {
  // Degenerate inputs need no accelerator round trip.
  if (a.rids.empty() || b.rids.empty()) {
    std::vector<Rid> result;
    switch (op) {
      case SetOp::kIntersect:
        break;
      case SetOp::kUnion: {
        const std::span<const Rid> keep = a.rids.empty() ? b.rids : a.rids;
        result.assign(keep.begin(), keep.end());
        break;
      }
      case SetOp::kDifference:
        result.assign(a.rids.begin(), a.rids.end());
        break;
      default:
        return Status::InvalidArgument("unsupported set operation");
    }
    AddPlanStep(stats, std::string(eis::SopModeName(op)) +
                           " (degenerate) -> " +
                           std::to_string(result.size()) + " RIDs");
    return result;
  }

  // Adaptive routing applies to intersections only (union/difference/
  // merge always take the EIS datapath); off by default.
  if (op == SetOp::kIntersect && planner_ != nullptr) {
    return RunPlannedIntersect(a, b, stats);
  }

  DBA_ASSIGN_OR_RETURN(EisExecution run, ExecuteEis(op, a.rids, b.rids));
  QueryInstruments().setops->Increment();
  QueryInstruments().retries->Increment(
      static_cast<uint64_t>(run.attempts_used - 1));
  if (stats != nullptr) {
    stats->retries += static_cast<uint32_t>(run.attempts_used - 1);
    ++stats->set_operations;
    stats->accelerator_cycles += run.cycles;
    stats->elements_processed += a.rids.size() + b.rids.size();
    AddPlanStep(stats, std::string(eis::SopModeName(op)) + " " +
                           std::to_string(a.rids.size()) + " x " +
                           std::to_string(b.rids.size()) + " -> " +
                           std::to_string(run.result.size()) + " RIDs" +
                           (run.streamed ? " [streamed]" : ""));
  }
  return std::move(run.result);
}

Result<std::vector<Rid>> QueryEngine::RunPlannedIntersect(
    const OperandView& a, const OperandView& b, QueryStats* stats) {
  const PlanInstrumentSet& plan_metrics = PlanInstruments();
  const CostModel& model = planner_->cost_model();
  const bool a_is_small = a.rids.size() <= b.rids.size();
  const OperandView& small = a_is_small ? a : b;
  const OperandView& large = a_is_small ? b : a;

  // A cached index over the larger operand's exact RID set?
  const PartitionIndex* index = nullptr;
  if (!large.probe_key.empty()) {
    auto it = partition_indexes_.find(std::string(large.probe_key));
    if (it != partition_indexes_.end()) index = &it->second;
  }

  const Clock::time_point decide_begin = Clock::now();
  PlanDecision decision =
      planner_->Plan(a.rids.size(), b.rids.size(), index != nullptr);
  plan_metrics.decision_ns->Observe(static_cast<uint64_t>(
      ElapsedNs(decide_begin, Clock::now())));

  // Savings accounting (self-building index): without an index for this
  // operand, record what the partition-probe route would have saved over
  // the chosen route; once a column's accumulated missed savings reach
  // payback_factor * build_cost, materialize the index and charge it.
  if (index == nullptr && !decision.forced && !large.column.empty() &&
      !large.probe_key.empty() && planner_->options().allow_partition_index) {
    const double build_cost_ns = model.PartitionBuildNs(large.rids.size());
    const double savings_ns =
        decision.chosen_ns -
        model.PartitionProbeNs(a.rids.size(), b.rids.size()) -
        model.decision_ns;
    const std::string column(large.column);
    PartitionSavingsMeter& meter = savings_[column];
    const bool payback = meter.RecordMiss(savings_ns, build_cost_ns,
                                          planner_->options().payback_factor);
    ColumnIndexState& state = index_state_[column];
    state.build_cost_ns = build_cost_ns;
    state.misses_recorded = meter.misses_recorded();
    if (payback) {
      PartitionIndex built = PartitionIndex::Build(large.rids);
      meter.ChargeBuild(build_cost_ns);
      ++state.indexes_built;
      state.indexed_entries += built.size();
      auto [it, inserted] =
          partition_indexes_.emplace(std::string(large.probe_key),
                                     std::move(built));
      index = &it->second;
      decision.route = Route::kPartitionProbe;
      decision.index_available = true;
      decision.chosen_ns =
          decision.estimated_ns[static_cast<size_t>(Route::kPartitionProbe)];
      plan_metrics.index_builds->Increment();
      if (stats != nullptr) ++stats->partition_index_builds;
      AddPlanStep(stats, "build partition index on " + column + " (" +
                             std::to_string(large.rids.size()) + " entries)");
    }
    state.missed_savings_ns = meter.missed_savings_ns();
  }

  // Execute the chosen route. Every route runs under the engine's
  // transient-failure retry budget (SetMaxAttempts): the EIS route
  // retries inside ExecuteEis, and host routes retry here under the
  // same policy -- retry accounting must not depend on where the
  // planner happened to send the work.
  const uint64_t cycles_base =
      stats != nullptr ? stats->accelerator_cycles : 0;
  std::vector<Rid> result;
  uint64_t cycles = 0;
  double route_seconds = 0;
  bool streamed = false;
  int attempts_used = 1;
  if (decision.route == Route::kEisMerge) {
    DBA_ASSIGN_OR_RETURN(EisExecution run,
                         ExecuteEis(SetOp::kIntersect, a.rids, b.rids));
    result = std::move(run.result);
    cycles = run.cycles;
    streamed = run.streamed;
    attempts_used = run.attempts_used;
    route_seconds = static_cast<double>(cycles) / processor_->frequency_hz();
    plan_metrics.eis_cycles->Observe(cycles);
  } else {
    // The partition route probes the (cached or transient) index over
    // the larger operand with the smaller; the merge-family host routes
    // are symmetric and take the operands as-is.
    const std::string hook_key =
        "route:" + std::string(RouteName(decision.route));
    Status last_error = Status::Internal("no attempt executed");
    bool done = false;
    for (int attempt = 0; attempt < max_attempts_ && !done; ++attempt) {
      attempts_used = attempt + 1;
      const Status injected = ConsultFaultHook(hook_key, attempt);
      Result<RouteRun> run =
          !injected.ok() ? Result<RouteRun>(injected)
          : decision.route == Route::kPartitionProbe
              ? RunIntersectRoute(decision.route, small.rids, large.rids,
                                  processor_, run_settings_, index)
              : RunIntersectRoute(decision.route, a.rids, b.rids, processor_,
                                  run_settings_);
      if (run.ok()) {
        result = std::move(run->result);
        route_seconds = run->route_seconds + run->build_seconds;
        done = true;
      } else {
        last_error = run.status();
        if (!IsTransient(last_error.code())) return last_error;
      }
    }
    if (!done) return last_error;
  }

  const size_t route_idx = static_cast<size_t>(decision.route);
  plan_metrics.route_total[route_idx]->Increment();
  plan_metrics.route_wall_ns[route_idx]->Observe(
      static_cast<uint64_t>(route_seconds * 1e9));
  QueryInstruments().setops->Increment();
  QueryInstruments().retries->Increment(
      static_cast<uint64_t>(attempts_used - 1));
  if (stats != nullptr) {
    stats->retries += static_cast<uint32_t>(attempts_used - 1);
    ++stats->set_operations;
    ++stats->planned_ops;
    ++stats->route_counts[route_idx];
    stats->accelerator_cycles += cycles;
    stats->elements_processed += a.rids.size() + b.rids.size();
    if (decision.route != Route::kEisMerge) {
      stats->host_route_seconds += route_seconds;
    }
    AddPlanStep(stats, "intersect[" + std::string(RouteName(decision.route)) +
                           (decision.forced ? ", forced" : "") + "] " +
                           std::to_string(a.rids.size()) + " x " +
                           std::to_string(b.rids.size()) + " -> " +
                           std::to_string(result.size()) + " RIDs" +
                           (streamed ? " [streamed]" : ""));
  }
  if (run_settings_.trace_sink != nullptr) {
    // Planner span on the simulated timeline: EIS spans are exact; host
    // routes are rendered at their wall-equivalent width in cycles.
    const uint64_t width =
        decision.route == Route::kEisMerge
            ? cycles
            : static_cast<uint64_t>(route_seconds *
                                    processor_->frequency_hz());
    run_settings_.trace_sink->BeginRegion(
        cycles_base, "plan[" + std::string(RouteName(decision.route)) + "]");
    run_settings_.trace_sink->EndRegion(cycles_base + width);
  }
  return result;
}

Result<std::vector<Rid>> QueryEngine::Complement(const std::vector<Rid>& rids,
                                                 QueryStats* stats) {
  std::vector<Rid> all(table_->num_rows());
  std::iota(all.begin(), all.end(), 0u);
  return RunSetOp(SetOp::kDifference, all, rids, stats);
}

Result<QueryEngine::Operand> QueryEngine::Evaluate(const Predicate& predicate,
                                                   QueryStats* stats) {
  if (predicate.is_leaf()) return Probe(predicate, stats);

  switch (predicate.kind) {
    case Predicate::Kind::kNot: {
      DBA_ASSIGN_OR_RETURN(Operand child,
                           Evaluate(*predicate.children[0], stats));
      DBA_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                           Complement(child.rids, stats));
      return Operand{std::move(rids), {}, {}};
    }
    case Predicate::Kind::kAnd: {
      // Index ANDing (Raman et al. [31]): evaluate positive conjuncts,
      // intersect smallest-first, and apply negated conjuncts as
      // difference operands (A AND NOT B = A \ B) -- never
      // materializing a complement. Leaf operands keep their column
      // provenance, so the planner's savings accounting sees which
      // column each intersection probed.
      std::vector<Operand> positives;
      std::vector<const Predicate*> negatives;
      for (const PredicatePtr& child : predicate.children) {
        if (child->kind == Predicate::Kind::kNot) {
          negatives.push_back(child->children[0].get());
        } else {
          DBA_ASSIGN_OR_RETURN(Operand operand, Evaluate(*child, stats));
          positives.push_back(std::move(operand));
        }
      }
      Operand accumulator;
      if (positives.empty()) {
        accumulator.rids.resize(table_->num_rows());
        std::iota(accumulator.rids.begin(), accumulator.rids.end(), 0u);
      } else {
        std::sort(positives.begin(), positives.end(),
                  [](const Operand& x, const Operand& y) {
                    return x.rids.size() < y.rids.size();
                  });
        accumulator = std::move(positives.front());
        for (size_t i = 1; i < positives.size(); ++i) {
          DBA_ASSIGN_OR_RETURN(
              std::vector<Rid> rids,
              RunSetOp(SetOp::kIntersect, accumulator, positives[i], stats));
          accumulator = Operand{std::move(rids), {}, {}};
        }
      }
      for (const Predicate* negative : negatives) {
        DBA_ASSIGN_OR_RETURN(Operand excluded, Evaluate(*negative, stats));
        DBA_ASSIGN_OR_RETURN(
            std::vector<Rid> rids,
            RunSetOp(SetOp::kDifference, accumulator, excluded, stats));
        accumulator = Operand{std::move(rids), {}, {}};
      }
      return accumulator;
    }
    case Predicate::Kind::kOr: {
      Operand accumulator;
      bool first = true;
      for (const PredicatePtr& child : predicate.children) {
        DBA_ASSIGN_OR_RETURN(Operand operand, Evaluate(*child, stats));
        if (first) {
          accumulator = std::move(operand);
          first = false;
        } else {
          DBA_ASSIGN_OR_RETURN(
              std::vector<Rid> rids,
              RunSetOp(SetOp::kUnion, accumulator, operand, stats));
          accumulator = Operand{std::move(rids), {}, {}};
        }
      }
      return accumulator;
    }
    default:
      return Status::Internal("unhandled predicate kind");
  }
}

void QueryEngine::EnableAdaptivePlanner(const PlannerOptions& options) {
  planner_ = std::make_unique<Planner>(options);
  savings_.clear();
  partition_indexes_.clear();
  index_state_.clear();
}

void QueryEngine::DisableAdaptivePlanner() {
  planner_.reset();
  savings_.clear();
  partition_indexes_.clear();
  index_state_.clear();
}

ColumnIndexState QueryEngine::partition_state(
    const std::string& column) const {
  auto it = index_state_.find(column);
  return it == index_state_.end() ? ColumnIndexState{} : it->second;
}

Result<std::vector<Rid>> QueryEngine::Select(const Predicate& predicate,
                                             QueryStats* stats) {
  // Telemetry always flows through a stats object (a local one when the
  // caller passed none) so the per-query latency delta is well defined
  // even for callers that accumulate stats across queries.
  QueryStats local_stats;
  QueryStats* s = stats != nullptr ? stats : &local_stats;
  const uint64_t cycles_before = s->accelerator_cycles;
  DBA_ASSIGN_OR_RETURN(Operand matched, Evaluate(predicate, s));
  s->accelerator_seconds = static_cast<double>(s->accelerator_cycles) /
                           processor_->frequency_hz();
  QueryCounter("select")->Increment();
  QueryInstruments().latency->Observe(s->accelerator_cycles - cycles_before);
  return std::move(matched.rids);
}

std::future<Result<std::vector<Rid>>> QueryEngine::Submit(
    std::shared_ptr<const Predicate> predicate) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<Rid>>>>();
  std::future<Result<std::vector<Rid>>> future = promise->get_future();
  auto task = [this, predicate = std::move(predicate), promise] {
    if (predicate == nullptr) {
      promise->set_value(
          Status::InvalidArgument("Submit requires a predicate"));
      return;
    }
    std::lock_guard<std::mutex> lock(submit_mutex_);
    promise->set_value(Select(*predicate));
  };
  if (pool_ != nullptr) {
    pool_->Run(std::move(task));
  } else {
    task();
  }
  return future;
}

namespace {

/// Sorts one key column on `processor` (chunked beyond the local store;
/// streamed merge) and verifies uniqueness. Telemetry lands in the
/// caller-provided `stats` (may be null) so two columns can sort on
/// concurrent host threads into separate stats, merged after the join
/// in left-right order -- keeping plans and counters identical to the
/// serial engine.
Result<std::vector<uint32_t>> SortUniqueKeysOnce(
    Processor* processor, const Table& table, const std::string& key_column,
    const RunSettings& settings, QueryStats* stats) {
  DBA_ASSIGN_OR_RETURN(std::span<const uint32_t> values,
                       table.Column(key_column));
  std::vector<uint32_t> sorted;
  const uint32_t capacity = processor->max_sort_elements();
  prefetch::StreamingSetOperation streaming(processor, prefetch::DmaConfig{},
                                            0, settings);
  for (size_t pos = 0; pos < values.size(); pos += capacity) {
    const size_t len = std::min<size_t>(capacity, values.size() - pos);
    DBA_ASSIGN_OR_RETURN(SortRun run,
                         processor->RunSort(values.subspan(pos, len),
                                            settings));
    QueryInstruments().sorts->Increment();
    if (stats != nullptr) {
      ++stats->sorts;
      stats->accelerator_cycles += run.metrics.cycles;
      stats->elements_processed += len;
    }
    if (sorted.empty()) {
      sorted = std::move(run.sorted);
    } else {
      DBA_ASSIGN_OR_RETURN(
          prefetch::StreamingRun merge_run,
          streaming.Run(SetOp::kMerge, sorted, run.sorted));
      if (stats != nullptr) {
        stats->accelerator_cycles += merge_run.total_cycles;
      }
      sorted = std::move(merge_run.result);
    }
  }
  for (size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1]) {
      return Status::InvalidArgument(
          "JoinKeys requires unique keys; column '" + key_column +
          "' of table '" + table.name() + "' has duplicates");
    }
  }
  AddPlanStep(stats, "sort join keys of " + table.name() + "." +
                         key_column + " (" +
                         std::to_string(sorted.size()) + " keys)");
  return sorted;
}

/// SortUniqueKeysOnce with transient-failure retry: each attempt runs
/// with a doubled watchdog budget into fresh per-attempt stats, so a
/// failed attempt leaves the caller's telemetry untouched (only the
/// retry counter and a plan note record that it happened).
Result<std::vector<uint32_t>> SortUniqueKeys(Processor* processor,
                                             const Table& table,
                                             const std::string& key_column,
                                             const RunSettings& base_settings,
                                             int max_attempts,
                                             QueryStats* stats) {
  Status last_error = Status::Internal("no attempt executed");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    QueryStats attempt_stats;
    Result<std::vector<uint32_t>> sorted = SortUniqueKeysOnce(
        processor, table, key_column, AttemptSettings(base_settings, attempt),
        stats != nullptr ? &attempt_stats : nullptr);
    if (sorted.ok()) {
      QueryInstruments().retries->Increment(static_cast<uint64_t>(attempt));
      if (stats != nullptr) {
        stats->retries += static_cast<uint32_t>(attempt);
        stats->sorts += attempt_stats.sorts;
        stats->accelerator_cycles += attempt_stats.accelerator_cycles;
        stats->elements_processed += attempt_stats.elements_processed;
        for (std::string& step : attempt_stats.plan) {
          stats->plan.push_back(std::move(step));
        }
      }
      return sorted;
    }
    last_error = sorted.status();
    if (!IsTransient(last_error.code())) return last_error;
    AddPlanStep(stats, "retry sort of " + table.name() + "." + key_column +
                           " after " +
                           std::string(StatusCodeToString(
                               last_error.code())));
  }
  return last_error;
}

void MergeJoinStats(QueryStats* stats, const QueryStats& side) {
  if (stats == nullptr) return;
  stats->sorts += side.sorts;
  stats->retries += side.retries;
  stats->accelerator_cycles += side.accelerator_cycles;
  stats->elements_processed += side.elements_processed;
  for (const std::string& step : side.plan) stats->plan.push_back(step);
}

}  // namespace

Result<std::vector<uint32_t>> QueryEngine::JoinKeys(
    const std::string& column, const Table& other,
    const std::string& other_column, QueryStats* stats) {
  QueryStats local_stats;
  QueryStats* s = stats != nullptr ? stats : &local_stats;
  const uint64_t cycles_before = s->accelerator_cycles;
  Result<std::vector<uint32_t>> left = Status::Internal("unset");
  Result<std::vector<uint32_t>> right = Status::Internal("unset");
  QueryStats left_stats;
  QueryStats right_stats;
  const bool concurrent = pool_ != nullptr && sibling_ != nullptr;
  QueryInstruments().sort_concurrency->Set(concurrent ? 2.0 : 1.0);
  if (concurrent) {
    QueryInstruments().concurrent_sort_pairs->Increment();
    // The two column sorts are independent: run them on concurrent host
    // threads, the second on the sibling processor. Each side writes
    // only its own result slot and stats.
    pool_->ParallelFor(2, [&](size_t side) {
      if (side == 0) {
        left = SortUniqueKeys(processor_, *table_, column, run_settings_,
                              max_attempts_, &left_stats);
      } else {
        right = SortUniqueKeys(sibling_, other, other_column, run_settings_,
                               max_attempts_, &right_stats);
      }
    });
  } else {
    left = SortUniqueKeys(processor_, *table_, column, run_settings_,
                          max_attempts_, &left_stats);
    right = SortUniqueKeys(sibling_ != nullptr ? sibling_ : processor_,
                           other, other_column, run_settings_, max_attempts_,
                           &right_stats);
  }
  DBA_RETURN_IF_ERROR(left.status());
  DBA_RETURN_IF_ERROR(right.status());
  MergeJoinStats(s, left_stats);
  MergeJoinStats(s, right_stats);
  DBA_ASSIGN_OR_RETURN(std::vector<uint32_t> keys,
                       RunSetOp(SetOp::kIntersect, *left, *right, s));
  s->accelerator_seconds = static_cast<double>(s->accelerator_cycles) /
                           processor_->frequency_hz();
  QueryCounter("join_keys")->Increment();
  QueryInstruments().latency->Observe(s->accelerator_cycles - cycles_before);
  return keys;
}

Result<std::vector<uint32_t>> QueryEngine::SelectValuesOrdered(
    const Predicate& predicate, const std::string& order_by,
    QueryStats* stats) {
  QueryStats local_stats;
  QueryStats* s = stats != nullptr ? stats : &local_stats;
  const uint64_t cycles_before = s->accelerator_cycles;
  DBA_ASSIGN_OR_RETURN(Operand matched, Evaluate(predicate, s));
  const std::vector<Rid>& rids = matched.rids;
  DBA_ASSIGN_OR_RETURN(std::span<const uint32_t> column,
                       table_->Column(order_by));

  // Gather the qualifying values (in hardware: a prefetcher gather).
  std::vector<uint32_t> values;
  values.reserve(rids.size());
  for (Rid rid : rids) values.push_back(column[rid]);

  // Accelerator sort; chunked with a host merge beyond the local store.
  const uint32_t capacity = processor_->max_sort_elements();
  std::vector<uint32_t> sorted;
  if (values.size() <= capacity) {
    DBA_ASSIGN_OR_RETURN(SortRun run,
                         processor_->RunSort(values, run_settings_));
    QueryInstruments().sorts->Increment();
    ++s->sorts;
    s->accelerator_cycles += run.metrics.cycles;
    s->elements_processed += values.size();
    AddPlanStep(s, "sort " + std::to_string(values.size()) +
                       " values on " + order_by);
    sorted = std::move(run.sorted);
  } else {
    // External sort: sort local-store-sized chunks on the accelerator,
    // then merge the runs pairwise with the streamed EIS merge kernel.
    uint32_t chunks = 0;
    prefetch::StreamingSetOperation streaming(processor_,
                                              prefetch::DmaConfig{}, 0,
                                              run_settings_);
    for (size_t pos = 0; pos < values.size(); pos += capacity) {
      const size_t len = std::min<size_t>(capacity, values.size() - pos);
      DBA_ASSIGN_OR_RETURN(
          SortRun run,
          processor_->RunSort({values.data() + pos, len}, run_settings_));
      QueryInstruments().sorts->Increment();
      ++s->sorts;
      s->accelerator_cycles += run.metrics.cycles;
      s->elements_processed += len;
      if (sorted.empty()) {
        sorted = std::move(run.sorted);
      } else {
        DBA_ASSIGN_OR_RETURN(
            prefetch::StreamingRun merge_run,
            streaming.Run(SetOp::kMerge, sorted, run.sorted));
        QueryInstruments().setops->Increment();
        ++s->set_operations;
        s->accelerator_cycles += merge_run.total_cycles;
        s->elements_processed += sorted.size() + run.sorted.size();
        sorted = std::move(merge_run.result);
      }
      ++chunks;
    }
    AddPlanStep(s, "external sort of " + std::to_string(values.size()) +
                       " values (" + std::to_string(chunks) +
                       " chunks, streamed merges)");
  }
  s->accelerator_seconds = static_cast<double>(s->accelerator_cycles) /
                           processor_->frequency_hz();
  QueryCounter("select_values_ordered")->Increment();
  QueryInstruments().latency->Observe(s->accelerator_cycles - cycles_before);
  return sorted;
}

}  // namespace dba::query
