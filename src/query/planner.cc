#include "query/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "baseline/galloping_baseline.h"
#include "baseline/simd_baseline.h"
#include "core/workload.h"
#include "prefetch/streaming.h"

namespace dba::query {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double, std::nano>(end - begin).count();
}

/// Best-of-3 batched wall time of `fn` in ns per call: the batch grows
/// until one repetition spans >= 100 us, so sub-microsecond routes are
/// measured above the clock granularity.
template <typename Fn>
double MeasureHostNs(Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  int iters = 1;
  for (int rep = 0; rep < 3; ++rep) {
    for (;;) {
      const Clock::time_point begin = Clock::now();
      for (int i = 0; i < iters; ++i) fn();
      const double elapsed = ElapsedNs(begin, Clock::now());
      if (elapsed >= 1e5 || iters >= (1 << 22)) {
        best = std::min(best, elapsed / iters);
        break;
      }
      iters = elapsed <= 0 ? iters * 8 : iters * 2;
    }
  }
  return best;
}

/// log2(|large| / |small| + 2): the per-probe search depth factor of
/// the galloping cost curve.
double GallopDepth(size_t a, size_t b) {
  const double small = static_cast<double>(std::min(a, b));
  const double large = static_cast<double>(std::max(a, b));
  return std::log2(large / std::max(1.0, small) + 2.0);
}

CostModel CalibrateOnce() {
  CostModel model = DefaultCostModel();
  constexpr uint64_t kSeed = 0x9D1A7;

  // --- Host routes: timed on synthetic sorted sets. ---
  auto balanced = GenerateSetPair(16384, 16384, 0.5, kSeed);
  auto skewed = GenerateSetPair(64, 65536, 0.5, kSeed + 1);
  if (balanced.ok() && skewed.ok()) {
    const double simd_ns = MeasureHostNs([&] {
      baseline::SimdIntersect(balanced->a, balanced->b);
    });
    model.simd_ns_per_element = std::max(0.01, simd_ns / (2.0 * 16384.0));

    const double gallop_ns = MeasureHostNs([&] {
      baseline::GallopingIntersect(skewed->a, skewed->b);
    });
    model.gallop_ns_per_probe =
        std::max(0.1, gallop_ns / (64.0 * GallopDepth(64, 65536)));

    const Clock::time_point build_begin = Clock::now();
    const PartitionIndex index = PartitionIndex::Build(skewed->b);
    model.partition_build_ns_per_element = std::max(
        0.01, ElapsedNs(build_begin, Clock::now()) / 65536.0);
    const double probe_ns =
        MeasureHostNs([&] { index.Intersect(skewed->a); });
    model.partition_probe_ns = std::max(0.1, probe_ns / 64.0);

    const double decision_ns = MeasureHostNs([&] {
      // The decision itself is four cost-curve evaluations.
      volatile double sink = model.EisMergeNs(64, 65536) +
                             model.GallopingNs(64, 65536) +
                             model.SimdMergeNs(64, 65536) +
                             model.PartitionProbeNs(64, 65536);
      (void)sink;
    });
    model.decision_ns = std::max(1.0, decision_ns);
  }

  // --- EIS route: two turbo-mode simulator runs fit setup + slope in
  // *simulated* time (cycles / f_max), the currency the accelerator
  // would really take. Falls back to the analytic defaults if the
  // processor cannot be built. ---
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  if (processor.ok()) {
    RunSettings settings;
    settings.sim_mode = sim::ExecMode::kTurbo;
    auto big = GenerateSetPair(4096, 4096, 0.5, kSeed + 2);
    auto small = GenerateSetPair(256, 256, 0.5, kSeed + 3);
    if (big.ok() && small.ok()) {
      auto big_run = (*processor)->RunSetOperation(SetOp::kIntersect,
                                                   big->a, big->b, settings);
      auto small_run = (*processor)->RunSetOperation(
          SetOp::kIntersect, small->a, small->b, settings);
      if (big_run.ok() && small_run.ok()) {
        const double big_ns = big_run->metrics.seconds * 1e9;
        const double small_ns = small_run->metrics.seconds * 1e9;
        const double slope = (big_ns - small_ns) / (8192.0 - 512.0);
        model.eis_ns_per_element = std::max(0.01, slope);
        model.eis_setup_ns =
            std::max(0.0, small_ns - 512.0 * model.eis_ns_per_element);
      }
    }
  }
  return model;
}

}  // namespace

std::string_view RouteName(Route route) {
  switch (route) {
    case Route::kEisMerge:
      return "eis_merge";
    case Route::kGalloping:
      return "galloping";
    case Route::kSimdMerge:
      return "simd_merge";
    case Route::kPartitionProbe:
      return "partition_probe";
  }
  return "unknown";
}

Result<Route> ParseRoute(std::string_view name) {
  if (name == "eis_merge" || name == "eis" || name == "merge") {
    return Route::kEisMerge;
  }
  if (name == "galloping" || name == "gallop") return Route::kGalloping;
  if (name == "simd_merge" || name == "simd") return Route::kSimdMerge;
  if (name == "partition_probe" || name == "partition") {
    return Route::kPartitionProbe;
  }
  return Status::InvalidArgument(
      "unknown route '" + std::string(name) +
      "' (expected eis_merge | galloping | simd_merge | partition_probe)");
}

double CostModel::EisMergeNs(size_t a, size_t b) const {
  return eis_setup_ns + eis_ns_per_element * static_cast<double>(a + b);
}

double CostModel::GallopingNs(size_t a, size_t b) const {
  const double probes = static_cast<double>(std::min(a, b));
  return gallop_ns_per_probe * probes * GallopDepth(a, b);
}

double CostModel::SimdMergeNs(size_t a, size_t b) const {
  return simd_ns_per_element * static_cast<double>(a + b);
}

double CostModel::PartitionProbeNs(size_t a, size_t b) const {
  return partition_probe_ns * static_cast<double>(std::min(a, b));
}

double CostModel::PartitionBuildNs(size_t indexed_size) const {
  return partition_build_ns_per_element * static_cast<double>(indexed_size);
}

double CostModel::RouteNs(Route route, size_t a, size_t b) const {
  switch (route) {
    case Route::kEisMerge:
      return EisMergeNs(a, b);
    case Route::kGalloping:
      return GallopingNs(a, b);
    case Route::kSimdMerge:
      return SimdMergeNs(a, b);
    case Route::kPartitionProbe:
      return PartitionProbeNs(a, b);
  }
  return 0;
}

CostModel DefaultCostModel() { return CostModel{}; }

Planner::Planner(const PlannerOptions& options)
    : options_(options),
      model_(options.cost_model.has_value() ? *options.cost_model
                                            : Calibrated()) {}

const CostModel& Planner::Calibrated() {
  static const CostModel model = CalibrateOnce();
  return model;
}

PlanDecision Planner::Plan(size_t a_size, size_t b_size,
                           bool index_available) const {
  PlanDecision decision;
  decision.index_available = index_available;
  for (size_t r = 0; r < kNumRoutes; ++r) {
    decision.estimated_ns[r] =
        model_.RouteNs(static_cast<Route>(r), a_size, b_size);
  }
  if (options_.force_route.has_value()) {
    decision.route = *options_.force_route;
    decision.forced = true;
    decision.chosen_ns =
        decision.estimated_ns[static_cast<size_t>(decision.route)];
    return decision;
  }
  Route best = Route::kEisMerge;
  double best_ns = decision.estimated_ns[static_cast<size_t>(best)];
  for (size_t r = 1; r < kNumRoutes; ++r) {
    const Route route = static_cast<Route>(r);
    if (route == Route::kPartitionProbe &&
        (!index_available || !options_.allow_partition_index)) {
      continue;
    }
    if (decision.estimated_ns[r] < best_ns) {
      best = route;
      best_ns = decision.estimated_ns[r];
    }
  }
  decision.route = best;
  decision.chosen_ns = best_ns;
  return decision;
}

Result<RouteRun> RunIntersectRoute(Route route, std::span<const uint32_t> a,
                                   std::span<const uint32_t> b,
                                   Processor* processor,
                                   const RunSettings& settings,
                                   const PartitionIndex* index) {
  RouteRun run;
  run.route = route;
  if (a.empty() || b.empty()) return run;

  switch (route) {
    case Route::kEisMerge: {
      if (processor == nullptr) {
        return Status::FailedPrecondition(
            "the eis_merge route needs a processor");
      }
      const bool fits =
          a.size() <= processor->max_set_elements(
                          static_cast<uint32_t>(b.size())) &&
          b.size() <= processor->max_set_elements(
                          static_cast<uint32_t>(a.size()));
      if (fits) {
        DBA_ASSIGN_OR_RETURN(
            SetOpRun op_run,
            processor->RunSetOperation(SetOp::kIntersect, a, b, settings));
        run.result = std::move(op_run.result);
        run.accelerator_cycles = op_run.metrics.cycles;
        run.route_seconds = op_run.metrics.seconds;
      } else {
        prefetch::StreamingSetOperation streaming(
            processor, prefetch::DmaConfig{}, 0, settings);
        DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun stream_run,
                             streaming.Run(SetOp::kIntersect, a, b));
        run.result = std::move(stream_run.result);
        run.accelerator_cycles = stream_run.total_cycles;
        run.route_seconds = static_cast<double>(stream_run.total_cycles) /
                            processor->frequency_hz();
        run.streamed = true;
      }
      return run;
    }
    case Route::kGalloping: {
      const Clock::time_point begin = Clock::now();
      run.result = baseline::GallopingIntersect(a, b);
      run.route_seconds = ElapsedNs(begin, Clock::now()) * 1e-9;
      return run;
    }
    case Route::kSimdMerge: {
      const Clock::time_point begin = Clock::now();
      run.result = baseline::SimdIntersect(a, b);
      run.route_seconds = ElapsedNs(begin, Clock::now()) * 1e-9;
      return run;
    }
    case Route::kPartitionProbe: {
      // `index` (when given) indexes `b`; probe with `a`. Without one,
      // build a transient index over the larger input.
      const PartitionIndex* probe_index = index;
      PartitionIndex transient;
      std::span<const uint32_t> probes = a;
      if (probe_index == nullptr) {
        const bool a_is_large = a.size() > b.size();
        const Clock::time_point build_begin = Clock::now();
        transient = PartitionIndex::Build(a_is_large ? a : b);
        run.build_seconds = ElapsedNs(build_begin, Clock::now()) * 1e-9;
        probe_index = &transient;
        probes = a_is_large ? b : a;
      }
      const Clock::time_point begin = Clock::now();
      run.result = probe_index->Intersect(probes);
      run.route_seconds = ElapsedNs(begin, Clock::now()) * 1e-9;
      return run;
    }
  }
  return Status::Internal("unhandled route");
}

}  // namespace dba::query
