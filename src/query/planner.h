#ifndef DBA_QUERY_PLANNER_H_
#define DBA_QUERY_PLANNER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "query/partition_index.h"

namespace dba::query {

/// The intersection kernels the adaptive planner routes between
/// (docs/PLANNER.md). Union/difference/merge always take the EIS
/// datapath; intersection is where set-size skew opens the gap
/// (Ding & Koenig; Lemire/Boytsov/Kurz).
enum class Route : uint8_t {
  kEisMerge = 0,        // board/processor EIS merge datapath
  kGalloping = 1,       // host galloping search (small : large skew)
  kSimdMerge = 2,       // host SIMD merge (baseline::SimdIntersect)
  kPartitionProbe = 3,  // probe a (lazy) PartitionIndex
};
inline constexpr size_t kNumRoutes = 4;

std::string_view RouteName(Route route);
Result<Route> ParseRoute(std::string_view name);

/// Per-route cost curves in estimated nanoseconds -- the planner's
/// common currency: simulated wall time (cycles / f_max) for the
/// accelerator route, host wall time for the host routes. Filled either
/// by Planner::Calibrated() (one-time microcalibration, cached per
/// process) or injected for deterministic tests.
struct CostModel {
  // EIS merge: setup (program dispatch + local-store fill) plus a
  // per-element stream cost over |A| + |B|.
  double eis_setup_ns = 2000.0;
  double eis_ns_per_element = 1.0;
  // Galloping: per probe of the smaller set, scaled by
  // log2(|large| / |small| + 2).
  double gallop_ns_per_probe = 8.0;
  // Host SIMD merge: per element over |A| + |B|.
  double simd_ns_per_element = 0.8;
  // Partition-probe: per probe of the smaller set into a built index.
  double partition_probe_ns = 6.0;
  // PartitionIndex build: per element of the indexed set (the savings
  // meter's payback denominator).
  double partition_build_ns_per_element = 2.0;
  // Cost of taking the decision itself (subtracted from no savings --
  // a route must win by more than the planning overhead to matter).
  double decision_ns = 50.0;

  double EisMergeNs(size_t a, size_t b) const;
  double GallopingNs(size_t a, size_t b) const;
  double SimdMergeNs(size_t a, size_t b) const;
  double PartitionProbeNs(size_t a, size_t b) const;
  double PartitionBuildNs(size_t indexed_size) const;

  /// Estimated cost of `route` on an (|A|, |B|) intersection.
  double RouteNs(Route route, size_t a, size_t b) const;
};

/// Analytic defaults (no calibration run): ballpark constants for a
/// ~1 GHz EIS datapath and a contemporary x86 host.
CostModel DefaultCostModel();

struct PlannerOptions {
  /// Fixed route override: the planner reports its estimates but always
  /// returns this route (ablation / debugging; `dba_cli plan
  /// --force-route`).
  std::optional<Route> force_route;
  /// A lazy PartitionIndex is built once the missed savings recorded
  /// against a column reach payback_factor * build_cost.
  double payback_factor = 2.0;
  /// Disables the partition-probe route and its savings accounting.
  bool allow_partition_index = true;
  /// Cost model override; nullopt uses the process-wide calibrated
  /// model (Planner::Calibrated). Tests inject one for determinism.
  std::optional<CostModel> cost_model;
};

/// One routing decision.
struct PlanDecision {
  Route route = Route::kEisMerge;
  bool forced = false;
  bool index_available = false;
  /// Estimated ns per route, indexed by Route. The partition-probe
  /// entry is the probe-only cost; it is only selectable when an index
  /// is available (the build decision is the savings meter's).
  std::array<double, kNumRoutes> estimated_ns{};
  double chosen_ns = 0;
};

/// Routes each sorted-set intersection to its estimated-fastest kernel.
/// Stateless given its cost model; the lazy-index bookkeeping lives in
/// the QueryEngine (it owns the column provenance).
class Planner {
 public:
  explicit Planner(const PlannerOptions& options);

  const PlannerOptions& options() const { return options_; }
  const CostModel& cost_model() const { return model_; }

  /// Picks the cheapest route for an (|A|, |B|) intersection.
  /// `index_available` gates the partition-probe route.
  PlanDecision Plan(size_t a_size, size_t b_size, bool index_available) const;

  /// The process-wide calibrated cost model: per-route constants fitted
  /// from a one-time microcalibration (host routes timed on synthetic
  /// sets; the EIS curve fitted from two turbo-mode simulator runs),
  /// computed on first use and cached for the process lifetime.
  static const CostModel& Calibrated();

 private:
  PlannerOptions options_;
  CostModel model_;
};

/// Result of executing one routed intersection.
struct RouteRun {
  std::vector<uint32_t> result;
  Route route = Route::kEisMerge;
  /// Simulated accelerator cycles (EIS route; 0 for host routes).
  uint64_t accelerator_cycles = 0;
  /// Execution time in the planner's common currency: cycles / f_max
  /// for the EIS route, measured host wall time for host routes.
  double route_seconds = 0;
  /// Transient PartitionIndex build time when the partition route ran
  /// without a prebuilt index (forced-route case).
  double build_seconds = 0;
  bool streamed = false;  // EIS route exceeded the local store
};

/// Executes one intersection over the given route. Inputs must be
/// sorted and duplicate-free; all routes return results byte-identical
/// to baseline::ScalarIntersect. The EIS route needs `processor`
/// (streaming through the prefetcher beyond the local store); the
/// partition route probes `index` when given and builds a transient one
/// over the larger input otherwise.
Result<RouteRun> RunIntersectRoute(Route route, std::span<const uint32_t> a,
                                   std::span<const uint32_t> b,
                                   Processor* processor,
                                   const RunSettings& settings = {},
                                   const PartitionIndex* index = nullptr);

}  // namespace dba::query

#endif  // DBA_QUERY_PLANNER_H_
