#include "query/partition_index.h"

#include <algorithm>
#include <bit>

namespace dba::query {

PartitionIndex PartitionIndex::Build(std::span<const uint32_t> sorted_values) {
  PartitionIndex index;
  index.values_.assign(sorted_values.begin(), sorted_values.end());
  if (index.values_.empty()) return index;

  const size_t n = index.values_.size();
  const size_t partitions = (n + kPartitionWidth - 1) / kPartitionWidth;
  index.partition_max_.reserve(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    const size_t end = std::min(n, (p + 1) * static_cast<size_t>(
                                                kPartitionWidth));
    index.partition_max_.push_back(index.values_[end - 1]);
  }

  // Directory radix: enough entries that each maps to O(1) partitions on
  // a uniform domain, capped so the directory never dominates the index.
  const uint32_t max_value = index.values_.back();
  size_t dir_bits = std::bit_width(partitions) + 1;
  if (dir_bits > 20) dir_bits = 20;
  const uint32_t value_bits = std::bit_width(max_value);
  index.shift_ =
      value_bits > dir_bits ? value_bits - static_cast<uint32_t>(dir_bits) : 0;
  const size_t dir_size = (static_cast<size_t>(max_value) >> index.shift_) + 2;
  index.directory_.resize(dir_size);
  // directory_[d] = first partition whose maximum reaches radix bucket d.
  size_t partition = 0;
  for (size_t d = 0; d < dir_size; ++d) {
    while (partition < partitions &&
           (static_cast<size_t>(index.partition_max_[partition]) >>
            index.shift_) < d) {
      ++partition;
    }
    index.directory_[d] = static_cast<uint32_t>(partition);
  }
  return index;
}

size_t PartitionIndex::FindPartition(uint32_t value, size_t from) const {
  const size_t bucket = static_cast<size_t>(value) >> shift_;
  size_t p = bucket < directory_.size() ? directory_[bucket]
                                        : partition_max_.size();
  if (p < from) p = from;  // keep the monotone cursor
  while (p < partition_max_.size() && partition_max_[p] < value) ++p;
  return p;
}

bool PartitionIndex::Contains(uint32_t value) const {
  if (values_.empty() || value > values_.back()) return false;
  const size_t p = FindPartition(value, 0);
  if (p >= partition_max_.size()) return false;
  const size_t begin = p * kPartitionWidth;
  const size_t end = std::min(values_.size(), begin + kPartitionWidth);
  return std::binary_search(values_.begin() + static_cast<ptrdiff_t>(begin),
                            values_.begin() + static_cast<ptrdiff_t>(end),
                            value);
}

std::vector<uint32_t> PartitionIndex::Intersect(
    std::span<const uint32_t> probes) const {
  std::vector<uint32_t> out;
  if (values_.empty() || probes.empty()) return out;
  out.reserve(std::min(probes.size(), values_.size()));
  size_t partition = 0;
  for (const uint32_t value : probes) {
    if (value > values_.back()) break;
    partition = FindPartition(value, partition);
    if (partition >= partition_max_.size()) break;
    const size_t begin = partition * kPartitionWidth;
    const size_t end = std::min(values_.size(), begin + kPartitionWidth);
    if (std::binary_search(values_.begin() + static_cast<ptrdiff_t>(begin),
                           values_.begin() + static_cast<ptrdiff_t>(end),
                           value)) {
      out.push_back(value);
    }
  }
  return out;
}

bool PartitionSavingsMeter::RecordMiss(double savings_ns,
                                       double build_cost_ns,
                                       double payback_factor) {
  if (savings_ns <= 0) return false;
  missed_savings_ns_ += savings_ns;
  last_build_cost_ns_ = build_cost_ns;
  ++misses_recorded_;
  return missed_savings_ns_ >= payback_factor * build_cost_ns;
}

void PartitionSavingsMeter::ChargeBuild(double build_cost_ns) {
  missed_savings_ns_ -= build_cost_ns;
  if (missed_savings_ns_ < 0) missed_savings_ns_ = 0;
}

}  // namespace dba::query
