#ifndef DBA_QUERY_PREDICATE_H_
#define DBA_QUERY_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dba::query {

/// A WHERE-clause predicate tree over integer columns. Leaves compare a
/// column against constants; inner nodes combine with AND / OR / NOT --
/// the three combinators the paper maps to intersection, union, and
/// difference of RID sets (Section 2.3: "INTERSECT, UNION, or
/// DIFFERENCE clause" / index ANDing).
struct Predicate {
  enum class Kind : uint8_t {
    kEquals,   // column == value
    kBetween,  // lo <= column <= hi (inclusive)
    kLessEq,   // column <= value
    kGreaterEq,  // column >= value
    kAnd,
    kOr,
    kNot,
  };

  Kind kind;
  // Leaf fields.
  std::string column;
  uint32_t lo = 0;
  uint32_t hi = 0;
  // Children (kAnd/kOr: >= 2; kNot: exactly 1).
  std::vector<std::unique_ptr<Predicate>> children;

  bool is_leaf() const {
    return kind == Kind::kEquals || kind == Kind::kBetween ||
           kind == Kind::kLessEq || kind == Kind::kGreaterEq;
  }

  /// Human-readable rendering, e.g. "(region = 3 AND NOT status = 1)".
  std::string ToString() const;
};

using PredicatePtr = std::unique_ptr<Predicate>;

// --- Builder functions (compose freely) ---
PredicatePtr Equals(std::string column, uint32_t value);
/// IN-list: sugar for OR(column = v0, column = v1, ...). Requires a
/// non-empty, duplicate-free list.
PredicatePtr In(std::string column, std::vector<uint32_t> values);
PredicatePtr Between(std::string column, uint32_t lo, uint32_t hi);
PredicatePtr LessEq(std::string column, uint32_t value);
PredicatePtr GreaterEq(std::string column, uint32_t value);
PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr And(PredicatePtr a, PredicatePtr b);
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Or(PredicatePtr a, PredicatePtr b);
PredicatePtr Not(PredicatePtr child);

}  // namespace dba::query

#endif  // DBA_QUERY_PREDICATE_H_
