#ifndef DBA_TIE_EXAMPLE_EXTENSION_H_
#define DBA_TIE_EXAMPLE_EXTENSION_H_

#include <cstdint>

#include "tie/tie_extension.h"

namespace dba::tie {

/// The worked example of the paper's Figure 5, reproduced 1:1 in this
/// framework: an 8-bit state `state8`, an 8-entry 32-bit register file
/// `reg32`, and the single-cycle operation
///
///   add3_shift { out AR res, in reg32 in0..in2 } { in state8 }
///     res = (in0 + in1 + in2) >> state8
///
/// Operation encoding (operand field, 12 bits):
///   [2:0] in0  [5:3] in1  [8:6] in2  [11:9] destination AR index
/// (AR destination limited to a0..a7 by the field width).
///
/// Two helper operations model the generated WUR/WR intrinsics:
///   wur_state8  (operand = new 8-bit state value)
///   wr_reg32    (operand = [2:0] register index; value taken from AR a7)
class ExampleExtension : public TieExtension {
 public:
  static constexpr uint16_t kWurState8 = 0x100;
  static constexpr uint16_t kWrReg32 = 0x101;
  static constexpr uint16_t kAdd3Shift = 0x102;

  ExampleExtension();

 private:
  TieState* state8_;
  TieRegisterFile* reg32_;
};

}  // namespace dba::tie

#endif  // DBA_TIE_EXAMPLE_EXTENSION_H_
