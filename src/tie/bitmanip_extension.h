#ifndef DBA_TIE_BITMANIP_EXTENSION_H_
#define DBA_TIE_BITMANIP_EXTENSION_H_

#include <cstdint>

#include "tie/tie_extension.h"

namespace dba::tie {

/// Bit-manipulation instruction set: the instruction-merging examples of
/// paper Section 2.2, built with the same TIE framework as the EIS.
///
///  - `crc32_step`: one CRC-32 update ("calculating a CRC value ...
///    requires shift, comparison, and XOR instructions, which can all be
///    combined into a single instruction"). Byte-at-a-time update of the
///    crc32 state with the low 8 bits of an AR register.
///  - `bit_reverse`: reverses the 32 bits of a register ("cheap in
///    hardware whereas it requires dozens of instructions in software").
///  - `popcount`: population count, the classic mask-and-shift cascade.
///
/// Operand encoding for all three: [3:0] source AR, [7:4] destination AR
/// (fits the 8-bit FLIX slot field).
///
/// Each operation executes in a single cycle; `MergedInstructionCounts`
/// documents how many base-ISA instructions the software equivalent
/// needs (see dbkern::BuildSoftwareBitmanip and the instruction_merging
/// bench).
class BitmanipExtension : public TieExtension {
 public:
  static constexpr uint16_t kCrcReset = 0x180;  // crc32 state := ~0
  static constexpr uint16_t kCrcStep = 0x181;   // crc32 state update
  static constexpr uint16_t kCrcRead = 0x182;   // AR := ~state (final xor)
  static constexpr uint16_t kBitReverse = 0x183;
  static constexpr uint16_t kPopcount = 0x184;

  /// IEEE 802.3 polynomial (reflected).
  static constexpr uint32_t kCrc32Polynomial = 0xEDB88320u;

  BitmanipExtension();

  uint32_t crc_state() const { return static_cast<uint32_t>(crc_->Get()); }

  /// Host reference implementations (oracles for tests).
  static uint32_t ReferenceCrc32(const uint8_t* data, size_t size);
  static uint32_t ReferenceBitReverse(uint32_t value);

 private:
  TieState* crc_;
};

}  // namespace dba::tie

#endif  // DBA_TIE_BITMANIP_EXTENSION_H_
