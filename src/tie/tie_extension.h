#ifndef DBA_TIE_TIE_EXTENSION_H_
#define DBA_TIE_TIE_EXTENSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/cpu.h"
#include "sim/ext_op.h"
#include "tie/tie_interface.h"
#include "tie/tie_state.h"

namespace dba::tie {

/// Base class for instruction-set extensions built with the TIE-like
/// framework. A concrete extension declares its states, register files,
/// and operations in its constructor (the software equivalent of a TIE
/// source file, Figure 5), then is attached to a Cpu, which makes the
/// operations issueable from programs via Assembler::Tie / Flix.
///
/// Extension operation ids are global per Cpu; each extension owns a
/// disjoint id range (see the id allocations in the concrete headers).
class TieExtension {
 public:
  explicit TieExtension(std::string name) : name_(std::move(name)) {}
  virtual ~TieExtension() = default;

  TieExtension(const TieExtension&) = delete;
  TieExtension& operator=(const TieExtension&) = delete;

  const std::string& name() const { return name_; }

  /// Registers all declared operations with `cpu`. The extension must
  /// outlive the cpu's use of the operations.
  Status Attach(sim::Cpu* cpu) {
    for (const OpDef& op : ops_) {
      DBA_RETURN_IF_ERROR(cpu->RegisterExtOp(op.id, op.name, op.fn));
    }
    return Status::Ok();
  }

  /// Restores all states, register files, and queues to their power-on
  /// values.
  virtual void ResetState() {
    for (auto& state : states_) state->Reset();
    for (auto& regfile : regfiles_) regfile->Reset();
    for (auto& queue : queues_) queue->Clear();
  }

  /// Introspection for tests and the debug interface.
  TieState* FindState(std::string_view state_name) {
    for (auto& state : states_) {
      if (state->name() == state_name) return state.get();
    }
    return nullptr;
  }
  TieRegisterFile* FindRegFile(std::string_view regfile_name) {
    for (auto& regfile : regfiles_) {
      if (regfile->name() == regfile_name) return regfile.get();
    }
    return nullptr;
  }
  TieQueue* FindQueue(std::string_view queue_name) {
    for (auto& queue : queues_) {
      if (queue->name() == queue_name) return queue.get();
    }
    return nullptr;
  }
  TieLookup* FindLookup(std::string_view lookup_name) {
    for (auto& lookup : lookups_) {
      if (lookup->name() == lookup_name) return lookup.get();
    }
    return nullptr;
  }
  const std::vector<std::unique_ptr<TieState>>& states() const {
    return states_;
  }

 protected:
  /// Declaration helpers, used from subclass constructors.
  TieState* AddState(std::string state_name, int width_bits,
                     uint64_t reset_value = 0) {
    states_.push_back(std::make_unique<TieState>(std::move(state_name),
                                                 width_bits, reset_value));
    return states_.back().get();
  }
  TieRegisterFile* AddRegFile(std::string regfile_name, int width_bits,
                              int num_regs) {
    regfiles_.push_back(std::make_unique<TieRegisterFile>(
        std::move(regfile_name), width_bits, num_regs));
    return regfiles_.back().get();
  }
  TieQueue* AddQueue(std::string queue_name, int width_bits,
                     size_t capacity) {
    queues_.push_back(std::make_unique<TieQueue>(std::move(queue_name),
                                                 width_bits, capacity));
    return queues_.back().get();
  }
  TieLookup* AddLookup(std::string lookup_name, uint32_t latency_cycles) {
    lookups_.push_back(std::make_unique<TieLookup>(std::move(lookup_name),
                                                   latency_cycles));
    return lookups_.back().get();
  }
  void DefineOp(uint16_t ext_id, std::string op_name, sim::ExtOpFn fn) {
    ops_.push_back(OpDef{ext_id, std::move(op_name), std::move(fn)});
  }

 private:
  struct OpDef {
    uint16_t id;
    std::string name;
    sim::ExtOpFn fn;
  };

  std::string name_;
  std::vector<std::unique_ptr<TieState>> states_;
  std::vector<std::unique_ptr<TieRegisterFile>> regfiles_;
  std::vector<std::unique_ptr<TieQueue>> queues_;
  std::vector<std::unique_ptr<TieLookup>> lookups_;
  std::vector<OpDef> ops_;
};

}  // namespace dba::tie

#endif  // DBA_TIE_TIE_EXTENSION_H_
