#ifndef DBA_TIE_PARTITION_EXTENSION_H_
#define DBA_TIE_PARTITION_EXTENSION_H_

#include <array>
#include <cstdint>

#include "eis/fifo.h"
#include "tie/tie_extension.h"

namespace dba::tie {

/// Range-partitioning instruction set -- the "partitioning" candidate
/// primitive of paper Section 1, in the spirit of the HARP accelerator
/// the paper discusses in Section 6 [37]: a streaming datapath that
/// routes each input value to one of up to 16 range buckets through a
/// splitter comparator tree, with a 4-element coalescing buffer per
/// bucket so bucket memory is written in full 128-bit beats.
///
/// Operations:
///   partition_init (operand = bucket count 2..16): reads from the ARs
///     a0 = source, a1 = splitter table (bucket_count-1 sorted u32),
///     a2 = value count, a3 = per-bucket capacity (elements),
///     a4 = bucket region base (bucket i at a4 + i*capacity*4, 16-byte
///     aligned), a5 = bucket-count table (bucket_count u32, written by
///     partition_flush).
///   partition_beat (operand = flag AR): loads one source beat, routes
///     its four values, spills any full coalescing buffers (one store
///     beat each), sets the flag while input remains.
///   partition_flush: drains all partial buffers and writes the bucket
///     counts; returns the total in a5.
///
/// A bucket overflowing its capacity fails with ResourceExhausted.
class PartitionExtension : public TieExtension {
 public:
  static constexpr uint16_t kInit = 0x1B0;
  static constexpr uint16_t kPartitionBeat = 0x1B1;
  static constexpr uint16_t kFlush = 0x1B2;

  static constexpr int kMaxBuckets = 16;

  PartitionExtension();

  void ResetState() override;

  int num_buckets() const {
    return static_cast<int>(buckets_state_->Get());
  }

 private:
  Status Init(sim::ExtContext& ctx);
  Status Beat(sim::ExtContext& ctx);
  Status Flush(sim::ExtContext& ctx);

  Status Route(sim::ExtContext& ctx, uint32_t value);
  Status SpillFull(sim::ExtContext& ctx, int bucket);

  int BucketFor(uint32_t value) const;

  TieState* buckets_state_;  // 5 bits: configured bucket count

  // Datapath.
  std::array<uint32_t, kMaxBuckets - 1> splitters_{};
  uint64_t src_ptr_ = 0;
  uint32_t remaining_ = 0;
  uint64_t bucket_base_ = 0;
  uint32_t bucket_capacity_ = 0;
  uint64_t counts_ptr_ = 0;
  std::array<uint32_t, kMaxBuckets> counts_{};
  std::array<std::array<uint32_t, 4>, kMaxBuckets> coalesce_{};
  std::array<int, kMaxBuckets> coalesce_fill_{};
};

}  // namespace dba::tie

#endif  // DBA_TIE_PARTITION_EXTENSION_H_
