#ifndef DBA_TIE_PACKSCAN_EXTENSION_H_
#define DBA_TIE_PACKSCAN_EXTENSION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eis/fifo.h"
#include "tie/tie_extension.h"

namespace dba::tie {

/// Bit-unpacking instruction set for compressed column scans -- the
/// "compression" candidate primitive of paper Section 1, in the style of
/// SIMD-scan [36] / Lemire-Boytsov [26] that the paper cites: RID lists
/// and column values are stored k-bit-packed; the extension unpacks four
/// values per UNPACK instruction, streaming beat-in/beat-out.
///
/// Operations:
///   unpack_init (operand = bit width 1..32): reads a0 = packed source,
///     a2 = value count, a4 = destination from the ARs.
///   unpack_beat (operand = flag AR [3:0]): refills the bit buffer from
///     the source (<=1 load beat via LSU0), decodes up to four values,
///     stores one result beat via LSU1, and writes a continuation flag.
///
/// On a 2-LSU core the loop sustains four values per 3-cycle iteration;
/// the software equivalent (dbkern::BuildUnpackKernel) needs ~10 base
/// instructions per value.
class PackScanExtension : public TieExtension {
 public:
  static constexpr uint16_t kInit = 0x1A0;
  static constexpr uint16_t kUnpackBeat = 0x1A1;

  PackScanExtension();

  void ResetState() override {
    TieExtension::ResetState();
    src_ptr_ = 0;
    words_remaining_ = 0;
    dst_ptr_ = 0;
    values_remaining_ = 0;
    produced_ = 0;
    word_fifo_.Clear();
    bit_buffer_ = 0;
    bits_held_ = 0;
  }

  int bit_width() const { return static_cast<int>(width_state_->Get()); }
  uint32_t values_produced() const { return produced_; }

  /// Host utilities (oracles and input preparation): LSB-first k-bit
  /// packing into little-endian 32-bit words.
  static std::vector<uint32_t> Pack(std::span<const uint32_t> values,
                                    int bits);
  static std::vector<uint32_t> Unpack(std::span<const uint32_t> packed,
                                      int bits, size_t count);

 private:
  Status Init(sim::ExtContext& ctx);
  Status UnpackBeat(sim::ExtContext& ctx);

  TieState* width_state_;  // 6 bits

  // Datapath.
  uint64_t src_ptr_ = 0;
  uint32_t words_remaining_ = 0;
  uint64_t dst_ptr_ = 0;
  uint32_t values_remaining_ = 0;
  uint32_t produced_ = 0;
  eis::SmallFifo<uint32_t, 8> word_fifo_;  // staged source words
  uint64_t bit_buffer_ = 0;
  int bits_held_ = 0;
};

}  // namespace dba::tie

#endif  // DBA_TIE_PACKSCAN_EXTENSION_H_
