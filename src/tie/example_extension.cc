#include "tie/example_extension.h"

#include "common/bits.h"
#include "isa/registers.h"

namespace dba::tie {

ExampleExtension::ExampleExtension() : TieExtension("example") {
  // state state8 8 8'h0 add_read_write
  state8_ = AddState("state8", 8, 0);
  // regfile reg32 32 8 reg
  reg32_ = AddRegFile("reg32", 32, 8);

  DefineOp(kWurState8, "wur_state8", [this](sim::ExtContext& ctx) {
    state8_->Set(ctx.operand() & 0xFF);
    return Status::Ok();
  });

  DefineOp(kWrReg32, "wr_reg32", [this](sim::ExtContext& ctx) {
    const int index = ctx.operand() & 0x7;
    reg32_->Write(index, ctx.reg(isa::Reg::a7));
    return Status::Ok();
  });

  DefineOp(kAdd3Shift, "add3_shift", [this](sim::ExtContext& ctx) {
    const uint16_t operand = ctx.operand();
    const auto in0 = static_cast<uint32_t>(
        reg32_->Read(static_cast<int>(ExtractBits(operand, 0, 3))));
    const auto in1 = static_cast<uint32_t>(
        reg32_->Read(static_cast<int>(ExtractBits(operand, 3, 3))));
    const auto in2 = static_cast<uint32_t>(
        reg32_->Read(static_cast<int>(ExtractBits(operand, 6, 3))));
    const auto rd =
        isa::RegFromIndex(static_cast<int>(ExtractBits(operand, 9, 3)));
    const auto shift = static_cast<uint32_t>(state8_->Get() & 31);
    // assign res = (in0 + in1 + in2) >> state8; executed in one cycle.
    ctx.set_reg(rd, (in0 + in1 + in2) >> shift);
    return Status::Ok();
  });
}

}  // namespace dba::tie
