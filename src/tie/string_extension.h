#ifndef DBA_TIE_STRING_EXTENSION_H_
#define DBA_TIE_STRING_EXTENSION_H_

#include <array>
#include <cstdint>

#include "mem/memory.h"
#include "tie/tie_extension.h"

namespace dba::tie {

/// String-scan instruction set -- the "string operations" candidate
/// primitive of paper Section 1 (the paper's motivating example of an
/// existing extension is SSE4.2/STTNI): a predicate scan over a column
/// of fixed-width 16-byte strings, one row per STR_SCAN instruction.
///
/// The 16-byte pattern and a per-byte wildcard mask live in TIE states
/// (loaded from memory at init); the comparator array evaluates all 16
/// byte positions in parallel. A row matches when every non-wildcard
/// byte equals the pattern byte -- this covers dictionary equality
/// (mask = all ones) and prefix predicates like `LIKE 'abc%'` (mask set
/// for the first three bytes). Matching row ids leave through a
/// 4-entry coalescing buffer as full 128-bit beats.
///
/// Operations:
///   str_init: a0 = column base (16 bytes per row, 16-byte aligned),
///     a1 = pattern pointer, a3 = mask pointer (16 bytes each),
///     a2 = row count, a4 = result RID buffer (16-byte aligned).
///   str_scan (operand = flag AR): tests one row, sets the flag while
///     rows remain.
///   str_flush: drains pending RIDs; a5 = match count.
class StringExtension : public TieExtension {
 public:
  static constexpr uint16_t kInit = 0x1C0;
  static constexpr uint16_t kScan = 0x1C1;
  static constexpr uint16_t kFlush = 0x1C2;

  static constexpr uint32_t kRowBytes = 16;

  StringExtension();

  void ResetState() override;

  /// Host oracle: does `row` (16 bytes) match pattern/mask?
  static bool Matches(const uint8_t* row, const uint8_t* pattern,
                      const uint8_t* mask);

 private:
  Status Init(sim::ExtContext& ctx);
  Status Scan(sim::ExtContext& ctx);
  Status Flush(sim::ExtContext& ctx);

  TieState* pattern_state_;  // 128 bits
  TieState* mask_state_;     // 128 bits

  uint64_t column_ptr_ = 0;
  uint32_t rows_remaining_ = 0;
  uint32_t next_rid_ = 0;
  uint64_t result_ptr_ = 0;
  uint32_t match_count_ = 0;
  std::array<uint32_t, 4> coalesce_{};
  int coalesce_fill_ = 0;
  bool initialized_ = false;
};

}  // namespace dba::tie

#endif  // DBA_TIE_STRING_EXTENSION_H_
