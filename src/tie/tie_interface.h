#ifndef DBA_TIE_TIE_INTERFACE_H_
#define DBA_TIE_TIE_INTERFACE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/check.h"
#include "common/status.h"

namespace dba::tie {

/// TIE queue: a hardware FIFO crossing the processor boundary ("TIE
/// queues read or write data from external queues", paper Section 3.2).
/// The extension side pushes/pops from operations; the host side models
/// the external producer/consumer. A full (empty) queue back-pressures
/// the extension, which surfaces as ResourceExhausted / FailedPrecondition
/// so the operation can retry or charge stall cycles.
class TieQueue {
 public:
  TieQueue(std::string name, int width_bits, size_t capacity)
      : name_(std::move(name)), width_bits_(width_bits), capacity_(capacity) {
    DBA_CHECK_MSG(width_bits >= 1 && width_bits <= 64,
                  "TIE queue width must be 1..64 bits");
    DBA_CHECK_MSG(capacity >= 1, "TIE queue capacity must be >= 1");
  }

  const std::string& name() const { return name_; }
  int width_bits() const { return width_bits_; }
  size_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  bool full() const { return entries_.size() == capacity_; }

  // --- Extension (processor) side ---
  Status ExtPush(uint64_t value) {
    if (full()) {
      return Status::ResourceExhausted("TIE queue '" + name_ + "' is full");
    }
    entries_.push_back(value & Mask());
    return Status::Ok();
  }
  Result<uint64_t> ExtPop() {
    if (empty()) {
      return Status::FailedPrecondition("TIE queue '" + name_ +
                                        "' is empty");
    }
    const uint64_t value = entries_.front();
    entries_.pop_front();
    return value;
  }

  // --- Host (external device) side ---
  Status HostPush(uint64_t value) { return ExtPush(value); }
  Result<uint64_t> HostPop() { return ExtPop(); }

  void Clear() { entries_.clear(); }

 private:
  uint64_t Mask() const {
    return width_bits_ >= 64 ? ~0ULL : ((1ULL << width_bits_) - 1);
  }

  std::string name_;
  int width_bits_;
  size_t capacity_;
  std::deque<uint64_t> entries_;
};

/// TIE lookup: a request/response interface to an external device ("TIE
/// lookups request data from external devices"). The host installs the
/// handler (e.g., an off-core dictionary memory); lookups have a fixed
/// round-trip latency the issuing operation charges via AddCycles.
class TieLookup {
 public:
  using Handler = std::function<Result<uint64_t>(uint64_t key)>;

  TieLookup(std::string name, uint32_t latency_cycles)
      : name_(std::move(name)), latency_cycles_(latency_cycles) {}

  const std::string& name() const { return name_; }
  uint32_t latency_cycles() const { return latency_cycles_; }

  void SetHandler(Handler handler) { handler_ = std::move(handler); }
  bool has_handler() const { return static_cast<bool>(handler_); }

  /// Issues the lookup. The caller charges latency_cycles() itself
  /// (through ExtContext::AddCycles) so the timing shows up on the core.
  Result<uint64_t> Request(uint64_t key) const {
    if (!handler_) {
      return Status::FailedPrecondition("TIE lookup '" + name_ +
                                        "' has no external device attached");
    }
    return handler_(key);
  }

 private:
  std::string name_;
  uint32_t latency_cycles_;
  Handler handler_;
};

}  // namespace dba::tie

#endif  // DBA_TIE_TIE_INTERFACE_H_
