#ifndef DBA_TIE_TIE_STATE_H_
#define DBA_TIE_TIE_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace dba::tie {

/// A TIE *state*: a named internal register of an extension datapath
/// (paper Section 3.2, Figure 5a). States are read and written by
/// extension operations in the same cycle the operation executes; unlike
/// register files, their content is managed by the application, not the
/// compiler.
///
/// Widths up to 1024 bits are supported; wide states expose 32-bit lanes
/// (the EIS Word/Load/Result states are 4 x 32 = 128 bits).
class TieState {
 public:
  TieState(std::string name, int width_bits, uint64_t reset_value = 0)
      : name_(std::move(name)),
        width_bits_(width_bits),
        reset_value_(reset_value) {
    DBA_CHECK_MSG(width_bits >= 1 && width_bits <= 1024,
                  "TIE state width must be 1..1024 bits");
    lanes_.resize(static_cast<size_t>((width_bits + 31) / 32), 0);
    Reset();
  }

  const std::string& name() const { return name_; }
  int width_bits() const { return width_bits_; }
  int num_lanes() const { return static_cast<int>(lanes_.size()); }

  /// Whole-value access for states up to 64 bits wide.
  uint64_t Get() const {
    DBA_CHECK_MSG(width_bits_ <= 64, "Get() requires width <= 64");
    uint64_t value = lanes_[0];
    if (lanes_.size() > 1) value |= static_cast<uint64_t>(lanes_[1]) << 32;
    return value & Mask();
  }
  void Set(uint64_t value) {
    DBA_CHECK_MSG(width_bits_ <= 64, "Set() requires width <= 64");
    value &= Mask();
    lanes_[0] = static_cast<uint32_t>(value);
    if (lanes_.size() > 1) lanes_[1] = static_cast<uint32_t>(value >> 32);
  }

  /// 32-bit lane access for wide states (lane 0 = least significant).
  uint32_t lane(int i) const {
    DBA_CHECK(i >= 0 && i < num_lanes());
    return lanes_[static_cast<size_t>(i)];
  }
  void set_lane(int i, uint32_t value) {
    DBA_CHECK(i >= 0 && i < num_lanes());
    lanes_[static_cast<size_t>(i)] = value;
  }

  /// Restores the power-on value (Figure 5a: initialized at power-on).
  void Reset() {
    std::fill(lanes_.begin(), lanes_.end(), 0u);
    if (width_bits_ <= 64) {
      Set(reset_value_);
    }
  }

 private:
  uint64_t Mask() const {
    return width_bits_ >= 64 ? ~0ULL : ((1ULL << width_bits_) - 1);
  }

  std::string name_;
  int width_bits_;
  uint64_t reset_value_;
  std::vector<uint32_t> lanes_;
};

/// A user-defined TIE register file (Figure 5b): `num_regs` registers of
/// `width_bits` each, readable by any extension operation. Register
/// allocation is the program's responsibility (the assembler layer).
class TieRegisterFile {
 public:
  TieRegisterFile(std::string name, int width_bits, int num_regs)
      : name_(std::move(name)), width_bits_(width_bits) {
    DBA_CHECK_MSG(width_bits >= 1 && width_bits <= 64,
                  "TIE register width must be 1..64 bits");
    DBA_CHECK_MSG(num_regs >= 1 && num_regs <= 64,
                  "TIE register file size must be 1..64");
    regs_.resize(static_cast<size_t>(num_regs), 0);
  }

  const std::string& name() const { return name_; }
  int width_bits() const { return width_bits_; }
  int num_regs() const { return static_cast<int>(regs_.size()); }

  uint64_t Read(int index) const {
    DBA_CHECK(index >= 0 && index < num_regs());
    return regs_[static_cast<size_t>(index)] & Mask();
  }
  void Write(int index, uint64_t value) {
    DBA_CHECK(index >= 0 && index < num_regs());
    regs_[static_cast<size_t>(index)] = value & Mask();
  }

  void Reset() { std::fill(regs_.begin(), regs_.end(), 0u); }

 private:
  uint64_t Mask() const {
    return width_bits_ >= 64 ? ~0ULL : ((1ULL << width_bits_) - 1);
  }

  std::string name_;
  int width_bits_;
  std::vector<uint64_t> regs_;
};

}  // namespace dba::tie

#endif  // DBA_TIE_TIE_STATE_H_
