#include "tie/partition_extension.h"

#include <algorithm>

#include "common/bits.h"
#include "isa/registers.h"
#include "mem/memory.h"

namespace dba::tie {

PartitionExtension::PartitionExtension() : TieExtension("partition") {
  buckets_state_ = AddState("partition_buckets", 5, 0);

  DefineOp(kInit, "partition_init",
           [this](sim::ExtContext& ctx) { return Init(ctx); });
  DefineOp(kPartitionBeat, "partition_beat",
           [this](sim::ExtContext& ctx) { return Beat(ctx); });
  DefineOp(kFlush, "partition_flush",
           [this](sim::ExtContext& ctx) { return Flush(ctx); });
}

void PartitionExtension::ResetState() {
  TieExtension::ResetState();
  splitters_.fill(0);
  src_ptr_ = 0;
  remaining_ = 0;
  bucket_base_ = 0;
  bucket_capacity_ = 0;
  counts_ptr_ = 0;
  counts_.fill(0);
  for (auto& buffer : coalesce_) buffer.fill(0);
  coalesce_fill_.fill(0);
}

Status PartitionExtension::Init(sim::ExtContext& ctx) {
  const int buckets = ctx.operand() & 0x1F;
  if (buckets < 2 || buckets > kMaxBuckets) {
    return Status::InvalidArgument(
        "partition_init: bucket count must be 2.." +
        std::to_string(kMaxBuckets));
  }
  ResetState();
  buckets_state_->Set(static_cast<uint64_t>(buckets));
  src_ptr_ = ctx.reg(isa::abi::kPtrA);
  remaining_ = ctx.reg(isa::abi::kLenA);
  bucket_capacity_ = ctx.reg(isa::abi::kLenB);  // a3: per-bucket capacity
  bucket_base_ = ctx.reg(isa::abi::kPtrC);
  counts_ptr_ = ctx.reg(isa::abi::kLenC);       // a5: count table pointer
  if (!IsAligned(src_ptr_, 16) || !IsAligned(bucket_base_, 16) ||
      !IsAligned(static_cast<uint64_t>(bucket_capacity_) * 4, 16)) {
    return Status::InvalidArgument(
        "partition_init: source/buckets must be 16-byte aligned and the "
        "per-bucket capacity a multiple of 4");
  }
  // Load the splitter table (HARP holds it in registers; one beat per
  // four splitters).
  const uint64_t splitter_ptr = ctx.reg(isa::abi::kPtrB);
  for (size_t i = 0; i + 1 < static_cast<size_t>(buckets); ++i) {
    DBA_ASSIGN_OR_RETURN(splitters_[i],
                         ctx.LoadWord(0, splitter_ptr + 4 * i));
    if (i > 0 && splitters_[i] <= splitters_[i - 1]) {
      return Status::InvalidArgument(
          "partition_init: splitters must be strictly increasing");
    }
  }
  return Status::Ok();
}

int PartitionExtension::BucketFor(uint32_t value) const {
  // Comparator tree: in hardware all bucket_count-1 comparisons happen
  // in parallel; functionally a branch-free lower bound.
  const int buckets = num_buckets();
  int bucket = 0;
  for (int i = 0; i < buckets - 1; ++i) {
    bucket += value >= splitters_[static_cast<size_t>(i)] ? 1 : 0;
  }
  return bucket;
}

Status PartitionExtension::SpillFull(sim::ExtContext& ctx, int bucket) {
  auto& buffer = coalesce_[static_cast<size_t>(bucket)];
  const uint32_t filled = counts_[static_cast<size_t>(bucket)];
  if (filled + 4 > bucket_capacity_) {
    return Status::ResourceExhausted(
        "partition bucket " + std::to_string(bucket) +
        " overflows its capacity of " + std::to_string(bucket_capacity_));
  }
  const uint64_t addr =
      bucket_base_ + 4 * (static_cast<uint64_t>(bucket) * bucket_capacity_ +
                          filled);
  DBA_RETURN_IF_ERROR(ctx.StoreBeat(1, addr, buffer));
  counts_[static_cast<size_t>(bucket)] += 4;
  coalesce_fill_[static_cast<size_t>(bucket)] = 0;
  return Status::Ok();
}

Status PartitionExtension::Route(sim::ExtContext& ctx, uint32_t value) {
  const int bucket = BucketFor(value);
  auto& fill = coalesce_fill_[static_cast<size_t>(bucket)];
  coalesce_[static_cast<size_t>(bucket)][static_cast<size_t>(fill++)] = value;
  if (fill == 4) {
    DBA_RETURN_IF_ERROR(SpillFull(ctx, bucket));
  }
  return Status::Ok();
}

Status PartitionExtension::Beat(sim::ExtContext& ctx) {
  const auto flag_reg = isa::RegFromIndex(ctx.operand() & 0xF);
  if (num_buckets() == 0) {
    return Status::FailedPrecondition("partition_beat before init");
  }
  if (remaining_ > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, src_ptr_));
    const uint32_t take = std::min<uint32_t>(4, remaining_);
    for (uint32_t i = 0; i < take; ++i) {
      DBA_RETURN_IF_ERROR(Route(ctx, beat[i]));
    }
    src_ptr_ += mem::kBeatBytes;
    remaining_ -= take;
  }
  ctx.set_reg(flag_reg, remaining_ > 0 ? 1u : 0u);
  return Status::Ok();
}

Status PartitionExtension::Flush(sim::ExtContext& ctx) {
  const int buckets = num_buckets();
  if (buckets == 0) {
    return Status::FailedPrecondition("partition_flush before init");
  }
  uint32_t total = 0;
  for (int bucket = 0; bucket < buckets; ++bucket) {
    const int fill = coalesce_fill_[static_cast<size_t>(bucket)];
    const uint32_t filled = counts_[static_cast<size_t>(bucket)];
    if (filled + static_cast<uint32_t>(fill) > bucket_capacity_) {
      return Status::ResourceExhausted(
          "partition bucket " + std::to_string(bucket) +
          " overflows its capacity");
    }
    for (int i = 0; i < fill; ++i) {
      const uint64_t addr =
          bucket_base_ +
          4 * (static_cast<uint64_t>(bucket) * bucket_capacity_ + filled +
               static_cast<uint64_t>(i));
      DBA_RETURN_IF_ERROR(ctx.StoreWord(
          1, addr, coalesce_[static_cast<size_t>(bucket)]
                       [static_cast<size_t>(i)]));
    }
    counts_[static_cast<size_t>(bucket)] += static_cast<uint32_t>(fill);
    coalesce_fill_[static_cast<size_t>(bucket)] = 0;
    DBA_RETURN_IF_ERROR(ctx.StoreWord(
        1, counts_ptr_ + 4 * static_cast<uint64_t>(bucket),
        counts_[static_cast<size_t>(bucket)]));
    total += counts_[static_cast<size_t>(bucket)];
  }
  ctx.set_reg(isa::abi::kLenC, total);
  return Status::Ok();
}

}  // namespace dba::tie
