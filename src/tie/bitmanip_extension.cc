#include "tie/bitmanip_extension.h"

#include <bit>

#include "common/bits.h"
#include "isa/registers.h"

namespace dba::tie {

namespace {

isa::Reg SrcReg(uint16_t operand) {
  return isa::RegFromIndex(operand & 0xF);
}

isa::Reg DstReg(uint16_t operand) {
  return isa::RegFromIndex((operand >> 4) & 0xF);
}

uint32_t Crc32Update(uint32_t crc, uint8_t byte) {
  crc ^= byte;
  for (int bit = 0; bit < 8; ++bit) {
    // In hardware all eight stages unroll combinationally within the
    // cycle; the conditional XOR is a mux per stage.
    crc = (crc >> 1) ^ ((crc & 1u) ? BitmanipExtension::kCrc32Polynomial : 0u);
  }
  return crc;
}

}  // namespace

BitmanipExtension::BitmanipExtension() : TieExtension("bitmanip") {
  crc_ = AddState("crc32", 32, 0xFFFFFFFFu);

  DefineOp(kCrcReset, "crc32_reset", [this](sim::ExtContext&) {
    crc_->Set(0xFFFFFFFFu);
    return Status::Ok();
  });

  DefineOp(kCrcStep, "crc32_step", [this](sim::ExtContext& ctx) {
    const auto byte =
        static_cast<uint8_t>(ctx.reg(SrcReg(ctx.operand())) & 0xFF);
    crc_->Set(Crc32Update(static_cast<uint32_t>(crc_->Get()), byte));
    return Status::Ok();
  });

  DefineOp(kCrcRead, "crc32_read", [this](sim::ExtContext& ctx) {
    ctx.set_reg(DstReg(ctx.operand()),
                ~static_cast<uint32_t>(crc_->Get()));
    return Status::Ok();
  });

  DefineOp(kBitReverse, "bit_reverse", [](sim::ExtContext& ctx) {
    ctx.set_reg(DstReg(ctx.operand()),
                ReferenceBitReverse(ctx.reg(SrcReg(ctx.operand()))));
    return Status::Ok();
  });

  DefineOp(kPopcount, "popcount", [](sim::ExtContext& ctx) {
    ctx.set_reg(DstReg(ctx.operand()),
                static_cast<uint32_t>(
                    std::popcount(ctx.reg(SrcReg(ctx.operand())))));
    return Status::Ok();
  });
}

uint32_t BitmanipExtension::ReferenceCrc32(const uint8_t* data, size_t size) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) crc = Crc32Update(crc, data[i]);
  return ~crc;
}

uint32_t BitmanipExtension::ReferenceBitReverse(uint32_t value) {
  value = ((value & 0x55555555u) << 1) | ((value >> 1) & 0x55555555u);
  value = ((value & 0x33333333u) << 2) | ((value >> 2) & 0x33333333u);
  value = ((value & 0x0F0F0F0Fu) << 4) | ((value >> 4) & 0x0F0F0F0Fu);
  value = ((value & 0x00FF00FFu) << 8) | ((value >> 8) & 0x00FF00FFu);
  return (value << 16) | (value >> 16);
}

}  // namespace dba::tie
