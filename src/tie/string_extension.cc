#include "tie/string_extension.h"

#include <cstring>

#include "common/bits.h"
#include "isa/registers.h"

namespace dba::tie {

StringExtension::StringExtension() : TieExtension("string") {
  pattern_state_ = AddState("str_pattern", 128, 0);
  mask_state_ = AddState("str_mask", 128, 0);

  DefineOp(kInit, "str_init",
           [this](sim::ExtContext& ctx) { return Init(ctx); });
  DefineOp(kScan, "str_scan",
           [this](sim::ExtContext& ctx) { return Scan(ctx); });
  DefineOp(kFlush, "str_flush",
           [this](sim::ExtContext& ctx) { return Flush(ctx); });
}

void StringExtension::ResetState() {
  TieExtension::ResetState();
  column_ptr_ = 0;
  rows_remaining_ = 0;
  next_rid_ = 0;
  result_ptr_ = 0;
  match_count_ = 0;
  coalesce_.fill(0);
  coalesce_fill_ = 0;
  initialized_ = false;
}

bool StringExtension::Matches(const uint8_t* row, const uint8_t* pattern,
                              const uint8_t* mask) {
  // In hardware: 16 byte comparators, AND-reduced -- single cycle.
  for (uint32_t i = 0; i < kRowBytes; ++i) {
    if (mask[i] != 0 && row[i] != pattern[i]) return false;
  }
  return true;
}

Status StringExtension::Init(sim::ExtContext& ctx) {
  ResetState();
  column_ptr_ = ctx.reg(isa::abi::kPtrA);
  rows_remaining_ = ctx.reg(isa::abi::kLenA);
  result_ptr_ = ctx.reg(isa::abi::kPtrC);
  if (!IsAligned(column_ptr_, 16) || !IsAligned(result_ptr_, 16)) {
    return Status::InvalidArgument(
        "str_init: column and result pointers must be 16-byte aligned");
  }
  // Pattern and mask load through LSU0 into the wide states.
  DBA_ASSIGN_OR_RETURN(mem::Beat128 pattern,
                       ctx.LoadBeat(0, ctx.reg(isa::abi::kPtrB)));
  DBA_ASSIGN_OR_RETURN(mem::Beat128 mask,
                       ctx.LoadBeat(0, ctx.reg(isa::abi::kLenB)));
  for (int lane = 0; lane < 4; ++lane) {
    pattern_state_->set_lane(lane, pattern[static_cast<size_t>(lane)]);
    mask_state_->set_lane(lane, mask[static_cast<size_t>(lane)]);
  }
  initialized_ = true;
  return Status::Ok();
}

Status StringExtension::Scan(sim::ExtContext& ctx) {
  const auto flag_reg = isa::RegFromIndex(ctx.operand() & 0xF);
  if (!initialized_) {
    return Status::FailedPrecondition("str_scan before str_init");
  }
  if (rows_remaining_ > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 row, ctx.LoadBeat(0, column_ptr_));
    uint8_t row_bytes[kRowBytes];
    uint8_t pattern_bytes[kRowBytes];
    uint8_t mask_bytes[kRowBytes];
    std::memcpy(row_bytes, row.data(), kRowBytes);
    for (int lane = 0; lane < 4; ++lane) {
      const uint32_t pattern_word = pattern_state_->lane(lane);
      const uint32_t mask_word = mask_state_->lane(lane);
      std::memcpy(pattern_bytes + 4 * lane, &pattern_word, 4);
      std::memcpy(mask_bytes + 4 * lane, &mask_word, 4);
    }
    if (Matches(row_bytes, pattern_bytes, mask_bytes)) {
      coalesce_[static_cast<size_t>(coalesce_fill_++)] = next_rid_;
      if (coalesce_fill_ == 4) {
        DBA_RETURN_IF_ERROR(ctx.StoreBeat(1, result_ptr_, coalesce_));
        result_ptr_ += mem::kBeatBytes;
        match_count_ += 4;
        coalesce_fill_ = 0;
      }
    }
    column_ptr_ += kRowBytes;
    ++next_rid_;
    --rows_remaining_;
  }
  ctx.set_reg(flag_reg, rows_remaining_ > 0 ? 1u : 0u);
  return Status::Ok();
}

Status StringExtension::Flush(sim::ExtContext& ctx) {
  if (!initialized_) {
    return Status::FailedPrecondition("str_flush before str_init");
  }
  for (uint64_t i = 0; i < static_cast<uint64_t>(coalesce_fill_); ++i) {
    DBA_RETURN_IF_ERROR(ctx.StoreWord(1, result_ptr_ + 4 * i,
                                      coalesce_[static_cast<size_t>(i)]));
  }
  match_count_ += static_cast<uint32_t>(coalesce_fill_);
  result_ptr_ += 4 * static_cast<uint64_t>(coalesce_fill_);
  coalesce_fill_ = 0;
  ctx.set_reg(isa::abi::kLenC, match_count_);
  return Status::Ok();
}

}  // namespace dba::tie
