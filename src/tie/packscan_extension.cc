#include "tie/packscan_extension.h"

#include <algorithm>

#include "common/bits.h"
#include "isa/registers.h"
#include "mem/memory.h"

namespace dba::tie {

namespace {

uint32_t ValueMask32(int bits) {
  return bits >= 32 ? 0xFFFFFFFFu
                    : static_cast<uint32_t>((1ull << bits) - 1);
}

}  // namespace

PackScanExtension::PackScanExtension() : TieExtension("packscan") {
  width_state_ = AddState("unpack_width", 6, 0);

  DefineOp(kInit, "unpack_init",
           [this](sim::ExtContext& ctx) { return Init(ctx); });
  DefineOp(kUnpackBeat, "unpack_beat",
           [this](sim::ExtContext& ctx) { return UnpackBeat(ctx); });
}

Status PackScanExtension::Init(sim::ExtContext& ctx) {
  const int bits = ctx.operand() & 0x3F;
  if (bits < 1 || bits > 32) {
    return Status::InvalidArgument(
        "unpack_init: bit width must be 1..32, got " + std::to_string(bits));
  }
  width_state_->Set(static_cast<uint64_t>(bits));
  src_ptr_ = ctx.reg(isa::abi::kPtrA);
  values_remaining_ = ctx.reg(isa::abi::kLenA);
  dst_ptr_ = ctx.reg(isa::abi::kPtrC);
  produced_ = 0;
  word_fifo_.Clear();
  bit_buffer_ = 0;
  bits_held_ = 0;
  if (!IsAligned(src_ptr_, 16) || !IsAligned(dst_ptr_, 16)) {
    return Status::InvalidArgument(
        "unpack_init: source/destination must be 16-byte aligned");
  }
  const uint64_t total_bits =
      static_cast<uint64_t>(values_remaining_) * static_cast<uint64_t>(bits);
  words_remaining_ = static_cast<uint32_t>((total_bits + 31) / 32);
  return Status::Ok();
}

Status PackScanExtension::UnpackBeat(sim::ExtContext& ctx) {
  const int bits = bit_width();
  const auto flag_reg = isa::RegFromIndex(ctx.operand() & 0xF);
  if (bits == 0) {
    return Status::FailedPrecondition("unpack_beat before unpack_init");
  }

  // Refill the staging FIFO with one source beat when there is room.
  if (words_remaining_ > 0 && word_fifo_.space() >= 4) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, src_ptr_));
    const uint32_t take = std::min<uint32_t>(4, words_remaining_);
    for (uint32_t i = 0; i < take; ++i) word_fifo_.Push(beat[i]);
    src_ptr_ += mem::kBeatBytes;
    words_remaining_ -= take;
  }

  // Decode up to four values through the shift buffer.
  mem::Beat128 out{};
  uint32_t decoded = 0;
  while (decoded < 4 && values_remaining_ > 0) {
    while (bits_held_ < bits && !word_fifo_.empty()) {
      bit_buffer_ |= static_cast<uint64_t>(word_fifo_.Pop()) << bits_held_;
      bits_held_ += 32;
    }
    if (bits_held_ < bits) break;  // starved: wait for the next beat
    out[decoded] = static_cast<uint32_t>(bit_buffer_) & ValueMask32(bits);
    bit_buffer_ >>= bits;
    bits_held_ -= bits;
    ++decoded;
    --values_remaining_;
  }

  // Store the result beat (byte-enabled for the final partial group).
  if (decoded == 4) {
    DBA_RETURN_IF_ERROR(ctx.StoreBeat(1, dst_ptr_, out));
    dst_ptr_ += mem::kBeatBytes;
  } else {
    for (uint32_t i = 0; i < decoded; ++i) {
      DBA_RETURN_IF_ERROR(
          ctx.StoreWord(1, dst_ptr_ + 4ull * i, out[i]));
    }
    dst_ptr_ += 4ull * decoded;
  }
  produced_ += decoded;

  ctx.set_reg(flag_reg, values_remaining_ > 0 ? 1u : 0u);
  ctx.set_reg(isa::abi::kLenC, produced_);
  return Status::Ok();
}

std::vector<uint32_t> PackScanExtension::Pack(
    std::span<const uint32_t> values, int bits) {
  std::vector<uint32_t> packed;
  uint64_t buffer = 0;
  int held = 0;
  const uint32_t mask = ValueMask32(bits);
  for (const uint32_t value : values) {
    buffer |= static_cast<uint64_t>(value & mask) << held;
    held += bits;
    while (held >= 32) {
      packed.push_back(static_cast<uint32_t>(buffer));
      buffer >>= 32;
      held -= 32;
    }
  }
  if (held > 0) packed.push_back(static_cast<uint32_t>(buffer));
  return packed;
}

std::vector<uint32_t> PackScanExtension::Unpack(
    std::span<const uint32_t> packed, int bits, size_t count) {
  std::vector<uint32_t> values;
  values.reserve(count);
  uint64_t buffer = 0;
  int held = 0;
  size_t next_word = 0;
  const uint32_t mask = ValueMask32(bits);
  for (size_t i = 0; i < count; ++i) {
    while (held < bits && next_word < packed.size()) {
      buffer |= static_cast<uint64_t>(packed[next_word++]) << held;
      held += 32;
    }
    values.push_back(static_cast<uint32_t>(buffer) & mask);
    buffer >>= bits;
    held -= bits;
  }
  return values;
}

}  // namespace dba::tie
