#ifndef DBA_SYSTEM_NOC_H_
#define DBA_SYSTEM_NOC_H_

#include <algorithm>
#include <cstdint>

#include "common/status.h"

namespace dba::system {

/// Shared-interconnect model for a board of DBA cores (paper Section 1:
/// "the extremely low-energy design enables us to put hundreds of chips
/// on a single board"). Each core's data prefetcher pulls its partition
/// over the network; the aggregate feed rate is capped by the bisection
/// bandwidth to off-board memory.
struct NocConfig {
  /// Per-core link bandwidth in bytes per core cycle.
  double link_bytes_per_cycle = 32.0;
  /// Aggregate bandwidth to the shared memory, bytes per core cycle.
  double bisection_bytes_per_cycle = 512.0;
  /// Base latency of one transfer (arbitration + hops).
  uint32_t transfer_latency_cycles = 64;

  Status Validate() const {
    if (link_bytes_per_cycle <= 0) {
      return Status::InvalidArgument(
          "NocConfig::link_bytes_per_cycle must be positive");
    }
    if (bisection_bytes_per_cycle <= 0) {
      return Status::InvalidArgument(
          "NocConfig::bisection_bytes_per_cycle must be positive");
    }
    return Status::Ok();
  }
};

class Noc {
 public:
  explicit Noc(NocConfig config) : config_(config) {}

  const NocConfig& config() const { return config_; }

  /// Effective per-stream bandwidth with `streams` concurrent readers.
  double BandwidthPerStream(int streams) const {
    if (streams <= 0) return config_.link_bytes_per_cycle;
    return std::min(config_.link_bytes_per_cycle,
                    config_.bisection_bytes_per_cycle / streams);
  }

  /// Cycles a requester waits before declaring a transfer dead (the
  /// cost charged for an injected transfer timeout).
  uint64_t TimeoutCycles() const {
    return 16ull * config_.transfer_latency_cycles;
  }

  /// Cycles for one core to pull `bytes` while `streams` cores read
  /// concurrently.
  uint64_t TransferCycles(uint64_t bytes, int streams) const {
    if (bytes == 0) return 0;
    const double bandwidth = BandwidthPerStream(streams);
    return config_.transfer_latency_cycles +
           static_cast<uint64_t>(static_cast<double>(bytes) / bandwidth +
                                 0.5);
  }

 private:
  NocConfig config_;
};

}  // namespace dba::system

#endif  // DBA_SYSTEM_NOC_H_
