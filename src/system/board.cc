#include "system/board.h"

#include <algorithm>
#include <chrono>

#include "prefetch/streaming.h"

namespace dba::system {

namespace {

/// Value splitters that cut `reference` into `parts` roughly equal
/// ranges. Returned splitters are strictly increasing upper bounds; the
/// last range is unbounded.
std::vector<uint32_t> PickSplitters(std::span<const uint32_t> reference,
                                    int parts) {
  std::vector<uint32_t> splitters;
  if (reference.empty() || parts <= 1) return splitters;
  for (int i = 1; i < parts; ++i) {
    const size_t position = reference.size() * static_cast<size_t>(i) /
                            static_cast<size_t>(parts);
    const uint32_t candidate = reference[position];
    if (splitters.empty() || candidate > splitters.back()) {
      splitters.push_back(candidate);
    }
  }
  return splitters;
}

/// Splits a sorted array into the ranges defined by `splitters`:
/// range i = values in (splitters[i-1], splitters[i]].
std::vector<std::span<const uint32_t>> PartitionSorted(
    std::span<const uint32_t> values, const std::vector<uint32_t>& splitters) {
  std::vector<std::span<const uint32_t>> ranges;
  size_t begin = 0;
  for (const uint32_t splitter : splitters) {
    const size_t end = static_cast<size_t>(
        std::upper_bound(values.begin() + static_cast<ptrdiff_t>(begin),
                         values.end(), splitter) -
        values.begin());
    ranges.push_back(values.subspan(begin, end - begin));
    begin = end;
  }
  ranges.push_back(values.subspan(begin));
  return ranges;
}

/// A range where one side is empty needs no core time beyond copying the
/// surviving side out (intersect drops everything, union/difference keep
/// the non-empty operand). Shared by the serial and parallel paths.
Status RunDegenerateRange(SetOp op, std::span<const uint32_t> a,
                          std::span<const uint32_t> b,
                          std::vector<uint32_t>* result,
                          uint64_t* compute_cycles) {
  switch (op) {
    case SetOp::kIntersect:
      break;
    case SetOp::kUnion:
      result->assign(a.empty() ? b.begin() : a.begin(),
                     a.empty() ? b.end() : a.end());
      break;
    case SetOp::kDifference:
      result->assign(a.begin(), a.end());
      break;
    default:
      return Status::InvalidArgument("unsupported parallel operation");
  }
  *compute_cycles = 3 * ((result->size() + 3) / 4);  // copy beats
  return Status::Ok();
}

/// One core's share of a set operation: in-store kernel when the range
/// fits, degenerate copy when a side is empty, streamed chunks
/// otherwise. Writes pure compute cycles; NoC feed is reduced after the
/// join (it depends on how many cores stream concurrently).
Status RunSetPartition(Processor& core, SetOp op,
                       std::span<const uint32_t> part_a,
                       std::span<const uint32_t> part_b,
                       std::vector<uint32_t>* result,
                       uint64_t* compute_cycles) {
  const bool fits =
      part_a.size() <=
          core.max_set_elements(static_cast<uint32_t>(part_b.size())) &&
      part_b.size() <=
          core.max_set_elements(static_cast<uint32_t>(part_a.size()));
  if (part_a.empty() || part_b.empty()) {
    return RunDegenerateRange(op, part_a, part_b, result, compute_cycles);
  }
  if (fits) {
    DBA_ASSIGN_OR_RETURN(SetOpRun core_run,
                         core.RunSetOperation(op, part_a, part_b));
    *compute_cycles = core_run.metrics.cycles;
    *result = std::move(core_run.result);
    return Status::Ok();
  }
  prefetch::StreamingSetOperation streaming(&core, prefetch::DmaConfig{});
  DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun core_run,
                       streaming.Run(op, part_a, part_b));
  *compute_cycles = core_run.total_cycles;
  *result = std::move(core_run.result);
  return Status::Ok();
}

/// Sorts arbitrarily large inputs on one core: local-store-sized chunks
/// via the merge-sort kernel, runs merged pairwise with the streamed
/// merge kernel. Returns total core cycles.
Result<uint64_t> ExternalSort(Processor& core,
                              std::span<const uint32_t> values,
                              std::vector<uint32_t>* sorted) {
  uint64_t cycles = 0;
  const uint32_t capacity = core.max_sort_elements();
  sorted->clear();
  if (values.size() <= capacity) {
    DBA_ASSIGN_OR_RETURN(SortRun run, core.RunSort(values));
    *sorted = std::move(run.sorted);
    return run.metrics.cycles;
  }
  prefetch::StreamingSetOperation streaming(&core, prefetch::DmaConfig{});
  for (size_t pos = 0; pos < values.size(); pos += capacity) {
    const size_t len = std::min<size_t>(capacity, values.size() - pos);
    DBA_ASSIGN_OR_RETURN(SortRun run,
                         core.RunSort(values.subspan(pos, len)));
    cycles += run.metrics.cycles;
    if (sorted->empty()) {
      *sorted = std::move(run.sorted);
    } else {
      DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun merge_run,
                           streaming.Run(SetOp::kMerge, *sorted, run.sorted));
      cycles += merge_run.total_cycles;
      *sorted = std::move(merge_run.result);
    }
  }
  return cycles;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Result<std::unique_ptr<Board>> Board::Create(const BoardConfig& config) {
  if (config.num_cores < 1 || config.num_cores > 1024) {
    return Status::InvalidArgument("board supports 1..1024 cores");
  }
  if (config.host_threads < 0 || config.host_threads > 1024) {
    return Status::InvalidArgument("host_threads must be in 0..1024");
  }
  // The kernel programs are identical across cores: build them once and
  // let every Processor reference the shared immutable cache.
  DBA_ASSIGN_OR_RETURN(std::shared_ptr<const ProgramCache> programs,
                       ProgramCache::Build(config.core_options));
  std::vector<std::unique_ptr<Processor>> cores;
  cores.reserve(static_cast<size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    DBA_ASSIGN_OR_RETURN(
        std::unique_ptr<Processor> core,
        Processor::Create(config.core_kind, config.core_options, programs));
    cores.push_back(std::move(core));
  }
  int host_threads = config.host_threads == 0
                         ? common::ThreadPool::HardwareConcurrency()
                         : config.host_threads;
  // More host threads than cores cannot help: one task per core.
  host_threads = std::min(host_threads, config.num_cores);
  return std::unique_ptr<Board>(new Board(
      config, std::move(cores), std::move(programs), host_threads));
}

void Board::ForEachCore(size_t n, const std::function<void(size_t)>& fn) {
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(n, fn);
}

void Board::FinishRun(ParallelRun* run, uint64_t elements) const {
  const double frequency = core_frequency_hz();
  if (run->makespan_cycles > 0) {
    run->throughput_meps = static_cast<double>(elements) /
                           (static_cast<double>(run->makespan_cycles) /
                            frequency) /
                           1e6;
  }
  run->board_power_mw = board_power_mw();
  run->energy_uj = static_cast<double>(run->total_core_cycles) / frequency *
                   cores_[0]->synthesis().power_mw * 1e3;
  run->host_threads_used = host_threads_;
}

Result<ParallelRun> Board::RunSetOperation(SetOp op,
                                           std::span<const uint32_t> a,
                                           std::span<const uint32_t> b) {
  const auto host_start = std::chrono::steady_clock::now();
  ParallelRun run;
  run.per_core_cycles.assign(cores_.size(), 0);

  const std::vector<uint32_t> splitters =
      PickSplitters(a.size() >= b.size() ? a : b, num_cores());
  const auto a_ranges = PartitionSorted(a, splitters);
  const auto b_ranges = PartitionSorted(b, splitters);

  int active_streams = 0;
  for (size_t i = 0; i < a_ranges.size(); ++i) {
    if (!a_ranges[i].empty() || !b_ranges[i].empty()) ++active_streams;
  }

  // Fan the independent core simulations out across the host threads.
  // Each task touches only its own core and its own CoreRun slot.
  std::vector<CoreRun> core_runs(a_ranges.size());
  ForEachCore(a_ranges.size(), [&](size_t i) {
    const std::span<const uint32_t> part_a = a_ranges[i];
    const std::span<const uint32_t> part_b = b_ranges[i];
    if (part_a.empty() && part_b.empty()) return;
    CoreRun& out = core_runs[i];
    out.status = RunSetPartition(*cores_[i], op, part_a, part_b,
                                 &out.result, &out.compute_cycles);
  });

  // Reduce after the join, in partition order: the NoC feed model needs
  // the final active-stream count, and makespan/energy/result must not
  // depend on which host thread finished first.
  for (size_t i = 0; i < core_runs.size(); ++i) {
    if (a_ranges[i].empty() && b_ranges[i].empty()) continue;
    CoreRun& core_run = core_runs[i];
    if (!core_run.status.ok()) return core_run.status;
    const uint64_t bytes =
        4 * (a_ranges[i].size() + b_ranges[i].size() + core_run.result.size());
    const uint64_t feed_cycles = noc_.TransferCycles(bytes, active_streams);
    const uint64_t core_total = std::max(core_run.compute_cycles, feed_cycles);
    run.noc_bound |= feed_cycles > core_run.compute_cycles;
    run.per_core_cycles[i] = core_total;
    run.total_core_cycles += core_run.compute_cycles;
    run.makespan_cycles = std::max(run.makespan_cycles, core_total);
    run.result.insert(run.result.end(), core_run.result.begin(),
                      core_run.result.end());
  }

  FinishRun(&run, a.size() + b.size());
  run.host_wall_seconds = SecondsSince(host_start);
  return run;
}

Result<ParallelRun> Board::RunSort(std::span<const uint32_t> values) {
  const auto host_start = std::chrono::steady_clock::now();
  ParallelRun run;
  run.per_core_cycles.assign(cores_.size(), 0);

  // Sample splitters (planner-side; in hardware this partitioning pass
  // would itself be a streaming primitive, cf. the HARP partitioner the
  // paper cites [37]).
  std::vector<uint32_t> sample;
  const size_t sample_size =
      std::min<size_t>(values.size(), static_cast<size_t>(num_cores()) * 64);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(values[i * values.size() / sample_size]);
  }
  std::sort(sample.begin(), sample.end());
  const std::vector<uint32_t> splitters = PickSplitters(sample, num_cores());

  // Bucket the input.
  std::vector<std::vector<uint32_t>> buckets(
      static_cast<size_t>(num_cores()));
  for (const uint32_t value : values) {
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(splitters.begin(), splitters.end(), value) -
        splitters.begin());
    buckets[bucket].push_back(value);
  }

  int active_streams = 0;
  for (const auto& bucket : buckets) {
    if (!bucket.empty()) ++active_streams;
  }

  std::vector<CoreRun> core_runs(buckets.size());
  ForEachCore(buckets.size(), [&](size_t i) {
    if (buckets[i].empty()) return;
    CoreRun& out = core_runs[i];
    Result<uint64_t> cycles =
        ExternalSort(*cores_[i], buckets[i], &out.result);
    if (!cycles.ok()) {
      out.status = cycles.status();
      return;
    }
    out.compute_cycles = *cycles;
  });

  for (size_t i = 0; i < core_runs.size(); ++i) {
    if (buckets[i].empty()) continue;
    CoreRun& core_run = core_runs[i];
    if (!core_run.status.ok()) return core_run.status;
    const uint64_t bytes = 4 * 2 * buckets[i].size();  // in + out
    const uint64_t feed_cycles = noc_.TransferCycles(bytes, active_streams);
    const uint64_t core_total = std::max(core_run.compute_cycles, feed_cycles);
    run.noc_bound |= feed_cycles > core_run.compute_cycles;
    run.per_core_cycles[i] = core_total;
    run.total_core_cycles += core_run.compute_cycles;
    run.makespan_cycles = std::max(run.makespan_cycles, core_total);
    run.result.insert(run.result.end(), core_run.result.begin(),
                      core_run.result.end());
  }

  FinishRun(&run, values.size());
  run.host_wall_seconds = SecondsSince(host_start);
  return run;
}

}  // namespace dba::system
