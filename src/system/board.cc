#include "system/board.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "obs/metrics/event_log.h"
#include "obs/metrics/metrics.h"
#include "prefetch/streaming.h"

namespace dba::system {

namespace {

// All board counters mirror RecoveryTelemetry increments from the
// single-threaded deterministic reduce in ExecutePartitioned, so after a
// run on a fresh registry the registry totals equal the run's telemetry
// exactly, at any host_threads.  Only the NoC fault counters are bumped
// from worker threads (RunAttempt); their totals are still deterministic
// because fault decisions are pure functions of the work item.
struct BoardInstruments {
  obs::Counter* ops;
  obs::Counter* op_failures;
  obs::Counter* rounds;
  obs::Counter* faults_injected;
  obs::Counter* verification_failures;
  obs::Counter* failed_attempts;
  obs::Counter* retries;
  obs::Counter* requeues;
  obs::Counter* recovery_cycles;
  obs::Counter* quarantines;
  obs::Counter* noc_feed_bytes;
  obs::Counter* noc_transfer_failures;
  obs::Counter* noc_transfer_timeouts;
  obs::Histogram* partition_cycles;
  obs::Histogram* op_makespan_cycles;
  obs::Gauge* healthy_cores;
  obs::Gauge* quarantined_cores;
};

const BoardInstruments& Instruments() {
  static const BoardInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    BoardInstruments out;
    out.ops = registry.GetCounter("dba_system_board_ops_total",
                                  "Board-level operations started.");
    out.op_failures =
        registry.GetCounter("dba_system_board_op_failures_total",
                            "Board-level operations that returned an error.");
    out.rounds = registry.GetCounter(
        "dba_system_recovery_rounds_total",
        "Scheduling rounds (1 per op when fault-free).");
    out.faults_injected = registry.GetCounter(
        "dba_system_faults_injected_total",
        "Attempts that had a fault injected (mirrors RecoveryTelemetry).");
    out.verification_failures = registry.GetCounter(
        "dba_system_verification_failures_total",
        "Partition results rejected by output verification.");
    out.failed_attempts =
        registry.GetCounter("dba_system_failed_attempts_total",
                            "Partition attempts that returned an error.");
    out.retries = registry.GetCounter("dba_system_retries_total",
                                      "Partition retry attempts scheduled.");
    out.requeues = registry.GetCounter(
        "dba_system_requeues_total",
        "Partitions moved to a different core (spill or retry).");
    out.recovery_cycles = registry.GetCounter(
        "dba_system_recovery_cycles_total",
        "Simulated cycles spent on failed attempts and backoff.");
    out.quarantines = registry.GetCounter(
        "dba_system_quarantines_total", "Cores quarantined by the board.");
    out.noc_feed_bytes = registry.GetCounter(
        "dba_system_noc_feed_bytes_total",
        "Bytes transferred over the NoC for successful attempts.");
    out.noc_transfer_failures = registry.GetCounter(
        "dba_system_noc_transfer_failures_total",
        "Injected NoC transfer failures observed by attempts.");
    out.noc_transfer_timeouts = registry.GetCounter(
        "dba_system_noc_transfer_timeouts_total",
        "Injected NoC transfer timeouts observed by attempts.");
    out.partition_cycles = registry.GetHistogram(
        "dba_system_partition_cycles",
        "Simulated compute cycles per successful partition attempt.");
    out.op_makespan_cycles = registry.GetHistogram(
        "dba_system_op_makespan_cycles",
        "Simulated makespan cycles per completed board operation.");
    out.healthy_cores = registry.GetGauge(
        "dba_system_healthy_cores", "Cores not currently quarantined.");
    out.quarantined_cores = registry.GetGauge(
        "dba_system_quarantined_cores", "Cores currently quarantined.");
    return out;
  }();
  return instruments;
}

}  // namespace

namespace {

/// Value splitters that cut `reference` into `parts` roughly equal
/// ranges. Returned splitters are strictly increasing upper bounds; the
/// last range is unbounded.
std::vector<uint32_t> PickSplitters(std::span<const uint32_t> reference,
                                    int parts) {
  std::vector<uint32_t> splitters;
  if (reference.empty() || parts <= 1) return splitters;
  for (int i = 1; i < parts; ++i) {
    const size_t position = reference.size() * static_cast<size_t>(i) /
                            static_cast<size_t>(parts);
    const uint32_t candidate = reference[position];
    if (splitters.empty() || candidate > splitters.back()) {
      splitters.push_back(candidate);
    }
  }
  return splitters;
}

/// Splits a sorted array into the ranges defined by `splitters`:
/// range i = values in (splitters[i-1], splitters[i]].
std::vector<std::span<const uint32_t>> PartitionSorted(
    std::span<const uint32_t> values, const std::vector<uint32_t>& splitters) {
  std::vector<std::span<const uint32_t>> ranges;
  size_t begin = 0;
  for (const uint32_t splitter : splitters) {
    const size_t end = static_cast<size_t>(
        std::upper_bound(values.begin() + static_cast<ptrdiff_t>(begin),
                         values.end(), splitter) -
        values.begin());
    ranges.push_back(values.subspan(begin, end - begin));
    begin = end;
  }
  ranges.push_back(values.subspan(begin));
  return ranges;
}

/// A range where one side is empty needs no core time beyond copying the
/// surviving side out (intersect drops everything, union/difference keep
/// the non-empty operand). Shared by the serial and parallel paths.
Status RunDegenerateRange(SetOp op, std::span<const uint32_t> a,
                          std::span<const uint32_t> b,
                          std::vector<uint32_t>* result,
                          uint64_t* compute_cycles) {
  switch (op) {
    case SetOp::kIntersect:
      break;
    case SetOp::kUnion:
    case SetOp::kMerge:
      result->assign(a.empty() ? b.begin() : a.begin(),
                     a.empty() ? b.end() : a.end());
      break;
    case SetOp::kDifference:
      result->assign(a.begin(), a.end());
      break;
    default:
      return Status::InvalidArgument("unsupported parallel operation");
  }
  *compute_cycles = 3 * ((result->size() + 3) / 4);  // copy beats
  return Status::Ok();
}

/// One core's share of a set operation: in-store kernel when the range
/// fits, degenerate copy when a side is empty, streamed chunks
/// otherwise. Writes pure compute cycles; NoC feed is reduced after the
/// join (it depends on how many cores stream concurrently).
Status RunSetPartition(Processor& core, SetOp op,
                       std::span<const uint32_t> part_a,
                       std::span<const uint32_t> part_b,
                       const RunSettings& settings,
                       std::vector<uint32_t>* result,
                       uint64_t* compute_cycles) {
  const bool fits =
      part_a.size() <=
          core.max_set_elements(static_cast<uint32_t>(part_b.size())) &&
      part_b.size() <=
          core.max_set_elements(static_cast<uint32_t>(part_a.size()));
  if (part_a.empty() || part_b.empty()) {
    return RunDegenerateRange(op, part_a, part_b, result, compute_cycles);
  }
  if (fits) {
    // kMerge has a dedicated processor entry point (RunSetOperation
    // rejects it: duplicates make it a sort building block, not a set op).
    DBA_ASSIGN_OR_RETURN(
        SetOpRun core_run,
        op == SetOp::kMerge
            ? core.RunMerge(part_a, part_b, settings)
            : core.RunSetOperation(op, part_a, part_b, settings));
    *compute_cycles = core_run.metrics.cycles;
    *result = std::move(core_run.result);
    return Status::Ok();
  }
  prefetch::StreamingSetOperation streaming(&core, prefetch::DmaConfig{}, 0,
                                            settings);
  DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun core_run,
                       streaming.Run(op, part_a, part_b));
  *compute_cycles = core_run.total_cycles;
  *result = std::move(core_run.result);
  return Status::Ok();
}

/// Sorts arbitrarily large inputs on one core: local-store-sized chunks
/// via the merge-sort kernel, runs merged pairwise with the streamed
/// merge kernel. Returns total core cycles.
Result<uint64_t> ExternalSort(Processor& core,
                              std::span<const uint32_t> values,
                              const RunSettings& settings,
                              std::vector<uint32_t>* sorted) {
  uint64_t cycles = 0;
  const uint32_t capacity = core.max_sort_elements();
  sorted->clear();
  if (values.size() <= capacity) {
    DBA_ASSIGN_OR_RETURN(SortRun run, core.RunSort(values, settings));
    *sorted = std::move(run.sorted);
    return run.metrics.cycles;
  }
  prefetch::StreamingSetOperation streaming(&core, prefetch::DmaConfig{}, 0,
                                            settings);
  for (size_t pos = 0; pos < values.size(); pos += capacity) {
    const size_t len = std::min<size_t>(capacity, values.size() - pos);
    DBA_ASSIGN_OR_RETURN(SortRun run,
                         core.RunSort(values.subspan(pos, len), settings));
    cycles += run.metrics.cycles;
    if (sorted->empty()) {
      *sorted = std::move(run.sorted);
    } else {
      DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun merge_run,
                           streaming.Run(SetOp::kMerge, *sorted, run.sorted));
      cycles += merge_run.total_cycles;
      *sorted = std::move(merge_run.result);
    }
  }
  return cycles;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Adds context to a status without changing its code (the code is what
/// retry policies and tests dispatch on).
Status Annotate(const Status& status, const std::string& context) {
  return Status(status.code(), context + ": " + status.message());
}

}  // namespace

Status RecoveryPolicy::Validate() const {
  if (max_attempts < 1 || max_attempts > 32) {
    return Status::InvalidArgument(
        "RecoveryPolicy::max_attempts must be in 1..32");
  }
  if (quarantine_after < 1) {
    return Status::InvalidArgument(
        "RecoveryPolicy::quarantine_after must be >= 1");
  }
  return Status::Ok();
}

Result<std::unique_ptr<Board>> Board::Create(const BoardConfig& config) {
  if (config.num_cores < 1 || config.num_cores > 1024) {
    return Status::InvalidArgument("board supports 1..1024 cores");
  }
  if (config.host_threads < 0 || config.host_threads > 1024) {
    return Status::InvalidArgument("host_threads must be in 0..1024");
  }
  DBA_RETURN_IF_ERROR(config.noc.Validate());
  DBA_RETURN_IF_ERROR(config.fault_plan.Validate());
  DBA_RETURN_IF_ERROR(config.recovery.Validate());
  for (const int core : config.fault_plan.broken_cores) {
    if (core >= config.num_cores) {
      return Status::InvalidArgument(
          "FaultPlan::broken_cores lists core " + std::to_string(core) +
          " but the board has " + std::to_string(config.num_cores) +
          " cores");
    }
  }
  // The kernel programs are identical across cores: build them once and
  // let every Processor reference the shared immutable cache.
  DBA_ASSIGN_OR_RETURN(std::shared_ptr<const ProgramCache> programs,
                       ProgramCache::Build(config.core_options));
  std::vector<std::unique_ptr<Processor>> cores;
  cores.reserve(static_cast<size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    DBA_ASSIGN_OR_RETURN(
        std::unique_ptr<Processor> core,
        Processor::Create(config.core_kind, config.core_options, programs));
    cores.push_back(std::move(core));
  }
  int host_threads = config.host_threads == 0
                         ? common::ThreadPool::HardwareConcurrency()
                         : config.host_threads;
  // More host threads than cores cannot help: one task per core.
  host_threads = std::min(host_threads, config.num_cores);
  std::unique_ptr<Board> board(new Board(
      config, std::move(cores), std::move(programs), host_threads));
  if (config.fault_plan.enabled()) {
    board->injector_ =
        std::make_unique<fault::FaultInjector>(config.fault_plan);
    DBA_ASSIGN_OR_RETURN(isa::Program hang_loop,
                         fault::BuildHangLoopProgram());
    board->hang_program_ =
        std::make_shared<const isa::Program>(std::move(hang_loop));
  }
  return board;
}

Board::Board(BoardConfig config,
             std::vector<std::unique_ptr<Processor>> cores,
             std::shared_ptr<const ProgramCache> programs, int host_threads)
    : config_(std::move(config)),
      noc_(config_.noc),
      cores_(std::move(cores)),
      programs_(std::move(programs)),
      host_threads_(host_threads),
      core_failures_(cores_.size(), 0),
      quarantined_(cores_.size(), false) {
  if (host_threads_ > 1) {
    // Workers + the calling thread (which ParallelFor enlists).
    pool_ = std::make_unique<common::ThreadPool>(host_threads_ - 1);
  }
}

void Board::ForEachCore(size_t n, const std::function<void(size_t)>& fn) {
  if (pool_ == nullptr) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(n, fn);
}

void Board::FinishRun(ParallelRun* run, uint64_t elements) const {
  const double frequency = core_frequency_hz();
  if (run->makespan_cycles > 0) {
    run->throughput_meps = static_cast<double>(elements) /
                           (static_cast<double>(run->makespan_cycles) /
                            frequency) /
                           1e6;
  }
  run->board_power_mw = board_power_mw();
  run->energy_uj = static_cast<double>(run->total_core_cycles) / frequency *
                   cores_[0]->synthesis().power_mw * 1e3;
  run->host_threads_used = host_threads_;
  run->sim_mode = config_.sim_mode;
}

void Board::Quarantine(int core) {
  quarantined_[static_cast<size_t>(core)] = true;
  quarantined_list_.insert(
      std::upper_bound(quarantined_list_.begin(), quarantined_list_.end(),
                       core),
      core);
  Instruments().quarantines->Increment();
  obs::EventLog::Global().Log(
      obs::EventLevel::kWarn, "board", "core quarantined",
      {{"core", std::to_string(core)},
       {"failures",
        std::to_string(core_failures_[static_cast<size_t>(core)])}});
}

void Board::ResetQuarantine() {
  std::fill(quarantined_.begin(), quarantined_.end(), false);
  std::fill(core_failures_.begin(), core_failures_.end(), 0);
  quarantined_list_.clear();
}

namespace {

/// Inputs to output verification (kept free of Board's private types so
/// the checker can live in this anonymous namespace).
struct VerifyView {
  std::span<const uint32_t> result;
  size_t a_size = 0;
  size_t b_size = 0;
  uint32_t lo = 0;
  uint32_t hi = 0xFFFFFFFFu;
  bool is_sort = false;
  SetOp op = SetOp::kIntersect;
};

/// Output verification of one partition attempt: the result must be
/// monotone (strictly increasing for set operations, non-decreasing for
/// sort), stay inside the partition's value range, and respect the
/// size bounds the operation implies. This is the second detection
/// layer of docs/FAULTS.md; anything it cannot see is caught by the
/// parity backstop in RunAttempt.
Status VerifyPartitionResult(const VerifyView& view) {
  if (view.is_sort) {
    if (view.result.size() != view.a_size) {
      return Status::DataLoss(
          "partition verification: sort result has " +
          std::to_string(view.result.size()) + " values, bucket had " +
          std::to_string(view.a_size));
    }
  } else {
    size_t max_size = 0;
    switch (view.op) {
      case SetOp::kIntersect:
        max_size = std::min(view.a_size, view.b_size);
        break;
      case SetOp::kUnion:
        max_size = view.a_size + view.b_size;
        break;
      case SetOp::kDifference:
        max_size = view.a_size;
        break;
      default:
        max_size = view.a_size + view.b_size;
        break;
    }
    if (view.result.size() > max_size) {
      return Status::DataLoss(
          "partition verification: result size " +
          std::to_string(view.result.size()) + " exceeds the bound " +
          std::to_string(max_size));
    }
    // A merge keeps every element of both inputs (duplicates included):
    // the size is exact, and only non-decreasing order can be required.
    if (view.op == SetOp::kMerge &&
        view.result.size() != view.a_size + view.b_size) {
      return Status::DataLoss(
          "partition verification: merge result has " +
          std::to_string(view.result.size()) + " values, inputs had " +
          std::to_string(view.a_size + view.b_size));
    }
  }
  const bool non_decreasing = view.is_sort || view.op == SetOp::kMerge;
  for (size_t i = 0; i < view.result.size(); ++i) {
    const uint32_t value = view.result[i];
    if (value < view.lo || value > view.hi) {
      return Status::DataLoss(
          "partition verification: value " + std::to_string(value) +
          " at index " + std::to_string(i) +
          " is outside the partition range [" + std::to_string(view.lo) +
          ", " + std::to_string(view.hi) + "]");
    }
    if (i > 0) {
      const bool bad = non_decreasing ? value < view.result[i - 1]
                                      : value <= view.result[i - 1];
      if (bad) {
        return Status::DataLoss(
            "partition verification: result is not " +
            std::string(non_decreasing ? "sorted" : "strictly increasing") +
            " at index " + std::to_string(i));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Board::AttemptOutcome Board::RunAttempt(int core_index,
                                        const PartitionWork& part,
                                        bool is_sort,
                                        const fault::AttemptSite& site,
                                        const PartitionRunner& runner) {
  AttemptOutcome out;
  Processor& core = *cores_[static_cast<size_t>(core_index)];
  fault::FaultDecision decision;
  if (injector_ != nullptr) decision = injector_->Decide(site);
  out.fault_injected = decision.any();

  if (decision.hang) {
    // A hung core makes no forward progress: run a branch-to-self
    // program on the real Cpu so the cycle watchdog -- not a simulated
    // status -- raises the error after the granted budget.
    const uint64_t budget = config_.fault_plan.hang_watchdog_cycles;
    out.compute_cycles = budget;
    core.cpu().ResetArchState();
    const Status load = core.cpu().LoadProgram(*hang_program_);
    if (!load.ok()) {
      out.status = load;
      return out;
    }
    auto stats =
        core.cpu().Run({.mode = config_.sim_mode, .max_cycles = budget});
    out.status = stats.ok()
                     ? Status::Internal("injected hang halted unexpectedly")
                     : Annotate(stats.status(), "injected core hang");
    return out;
  }
  if (decision.transfer_fail) {
    Instruments().noc_transfer_failures->Increment();
    out.compute_cycles = noc_.config().transfer_latency_cycles;
    out.status = Status::Unavailable("injected NoC transfer failure");
    return out;
  }
  if (decision.transfer_timeout) {
    Instruments().noc_transfer_timeouts->Increment();
    out.compute_cycles = noc_.TimeoutCycles();
    out.status = Status::DeadlineExceeded("injected NoC transfer timeout");
    return out;
  }

  // Defensive mode whenever faults can occur: the core checks its
  // inputs (detection layer 1) instead of trusting the scheduler.
  RunSettings settings;
  settings.sim_mode = config_.sim_mode;
  settings.validate_inputs = injector_ != nullptr;

  // Input flip: corrupt the staged copy of one input word, leaving the
  // host's original intact (the flip is local to this attempt's
  // local-store image).
  PartitionWork attempt_part = part;
  std::vector<uint32_t> corrupt_copy;
  bool corrupted = false;
  if (decision.flip_input) {
    const size_t total = part.a.size() + part.b.size();
    if (total > 0) {
      const size_t target =
          static_cast<size_t>(decision.flip_offset % total);
      if (target < part.a.size()) {
        corrupt_copy.assign(part.a.begin(), part.a.end());
        corrupt_copy[target] ^= 1u << decision.flip_bit;
        attempt_part.a = corrupt_copy;
      } else {
        corrupt_copy.assign(part.b.begin(), part.b.end());
        corrupt_copy[target - part.a.size()] ^= 1u << decision.flip_bit;
        attempt_part.b = corrupt_copy;
      }
      corrupted = true;
    }
  }

  const Status run_status =
      runner(core, attempt_part, settings, &out.result, &out.compute_cycles);
  if (!run_status.ok()) {
    // Detection layer 1 rejecting a fault-flipped input image is data
    // corruption, not a caller error: type it kDataLoss so the
    // recovery ladder (and the service above it) treats it as the
    // transient fault it is.
    out.status =
        corrupted && run_status.code() == StatusCode::kInvalidArgument
            ? Status::DataLoss(std::string(run_status.message()) +
                               " (injected input bit flip)")
            : run_status;
    return out;
  }

  if (decision.flip_result && !out.result.empty()) {
    const size_t target =
        static_cast<size_t>(decision.flip_offset % out.result.size());
    out.result[target] ^= 1u << decision.flip_bit;
    corrupted = true;
  }

  if (injector_ != nullptr && config_.recovery.verify_partitions) {
    VerifyView view;
    view.result = out.result;
    view.a_size = part.a.size();
    view.b_size = part.b.size();
    view.lo = part.lo;
    view.hi = part.hi;
    view.is_sort = is_sort;
    view.op = part.op;
    const Status verify = VerifyPartitionResult(view);
    if (!verify.ok()) {
      out.verification_failed = true;
      out.status = verify;
      return out;
    }
  }

  if (corrupted) {
    // Detection layer 3: a flip that slipped past input validation and
    // output verification is still caught by the word parity the result
    // transport carries (detected-uncorrectable ECC). An injected flip
    // therefore never produces a silently wrong board result.
    out.status = Status::DataLoss(
        "parity check failed on the partition result (injected bit flip)");
    return out;
  }

  out.status = Status::Ok();
  return out;
}

Result<ParallelRun> Board::ExecutePartitioned(
    std::vector<PartitionWork> parts, bool is_sort, uint64_t elements,
    const PartitionRunner& runner,
    std::vector<std::vector<uint32_t>>* item_results,
    uint64_t deadline_cycles) {
  const auto host_start = std::chrono::steady_clock::now();
  const uint64_t op_ordinal = op_ordinal_++;
  const BoardInstruments& instruments = Instruments();
  instruments.ops->Increment();
  ParallelRun run;
  run.per_core_cycles.assign(cores_.size(), 0);

  const int cores_n = num_cores();
  struct Slot {
    bool done = false;
    uint32_t attempts = 0;
    Status last_status;
    std::vector<uint32_t> result;
  };
  std::vector<Slot> slots(parts.size());

  // Healthy cores ordered by (cumulative failures, index): retries and
  // spilled partitions land on the most reliable cores first. The order
  // depends only on board state, never on host-thread scheduling.
  std::vector<int> healthy;
  const auto refresh_healthy = [&] {
    healthy.clear();
    for (int c = 0; c < cores_n; ++c) {
      if (!IsQuarantined(c)) healthy.push_back(c);
    }
    std::stable_sort(healthy.begin(), healthy.end(), [&](int x, int y) {
      return core_failures_[static_cast<size_t>(x)] <
             core_failures_[static_cast<size_t>(y)];
    });
  };
  refresh_healthy();
  if (healthy.empty()) {
    return Status::Unavailable(
        "all " + std::to_string(cores_n) +
        " cores are quarantined; call ResetQuarantine() after servicing");
  }

  // Round 0: partition i's home core is i mod num_cores (the identity
  // for the value-partitioned paths, waves for batches with more items
  // than cores). A benched home core spills the partition onto the
  // healthy cores right away (graceful degradation: the board finishes
  // on fewer cores).
  std::vector<std::pair<size_t, int>> pending;  // (partition, core)
  size_t spill = 0;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (!parts[i].active) {
      slots[i].done = true;
      continue;
    }
    const int home = static_cast<int>(i % static_cast<size_t>(cores_n));
    if (!IsQuarantined(home)) {
      pending.emplace_back(i, home);
    } else {
      pending.emplace_back(i, healthy[spill++ % healthy.size()]);
      ++run.recovery.requeues;
      instruments.requeues->Increment();
    }
  }

  uint64_t trace_cursor = 0;
  while (!pending.empty()) {
    ++run.recovery.rounds;
    instruments.rounds->Increment();
    const int streams = static_cast<int>(pending.size());

    // Fan this round out with one host task per core (a core is never
    // driven from two threads; a core with several requeued partitions
    // runs them back to back).
    std::vector<AttemptOutcome> outcomes(parts.size());
    std::vector<std::vector<size_t>> by_core(static_cast<size_t>(cores_n));
    for (const auto& [p, c] : pending) {
      by_core[static_cast<size_t>(c)].push_back(p);
    }
    std::vector<int> active_cores;
    for (int c = 0; c < cores_n; ++c) {
      if (!by_core[static_cast<size_t>(c)].empty()) active_cores.push_back(c);
    }
    ForEachCore(active_cores.size(), [&](size_t gi) {
      const int c = active_cores[gi];
      for (const size_t p : by_core[static_cast<size_t>(c)]) {
        fault::AttemptSite site;
        site.op_ordinal = op_ordinal;
        site.partition = static_cast<uint32_t>(p);
        site.core = static_cast<uint32_t>(c);
        site.attempt = slots[p].attempts;
        outcomes[p] = RunAttempt(c, parts[p], is_sort, site, runner);
      }
    });

    // Deterministic reduce in partition order: telemetry, cycle
    // accounting, and the retry set must not depend on which host
    // thread finished first.
    const uint64_t round_start = trace_cursor;
    uint64_t attempt_cursor = round_start;
    const bool tracing = trace_sink_ != nullptr && injector_ != nullptr;
    if (tracing) {
      trace_sink_->BeginRegion(round_start,
                               "recovery round " +
                                   std::to_string(run.recovery.rounds) +
                                   " (" + std::to_string(streams) +
                                   " partitions)");
    }
    std::vector<uint64_t> added(static_cast<size_t>(cores_n), 0);
    std::vector<std::pair<size_t, int>> failed;
    for (const auto& [p, c] : pending) {
      AttemptOutcome& out = outcomes[p];
      const uint32_t attempt = slots[p].attempts;
      ++slots[p].attempts;
      if (out.fault_injected) {
        ++run.recovery.faults_injected;
        instruments.faults_injected->Increment();
      }
      if (out.verification_failed) {
        ++run.recovery.verification_failures;
        instruments.verification_failures->Increment();
      }
      uint64_t cost = 0;
      if (out.status.ok()) {
        const uint64_t feed_cycles = noc_.TransferCycles(
            parts[p].feed_bytes + 4 * out.result.size(), streams);
        run.noc_bound |= feed_cycles > out.compute_cycles;
        cost = std::max(out.compute_cycles, feed_cycles);
        instruments.noc_feed_bytes->Increment(parts[p].feed_bytes +
                                              4 * out.result.size());
        instruments.partition_cycles->Observe(out.compute_cycles);
      } else {
        cost = out.compute_cycles;
      }
      if (attempt > 0) {
        // Exponential backoff: re-arbitration and re-transfer cost of
        // attempt k is backoff_base_cycles * 2^(k-1).
        cost += config_.recovery.backoff_base_cycles << (attempt - 1);
      }
      run.total_core_cycles += out.compute_cycles;
      added[static_cast<size_t>(c)] += cost;
      if (out.status.ok()) {
        slots[p].done = true;
        slots[p].result = std::move(out.result);
      } else {
        ++run.recovery.failed_attempts;
        instruments.failed_attempts->Increment();
        run.recovery.recovery_cycles += cost;
        instruments.recovery_cycles->Increment(cost);
        ++core_failures_[static_cast<size_t>(c)];
        slots[p].last_status = out.status;
        failed.emplace_back(p, c);
        if (tracing) {
          std::string name = "p";
          name += std::to_string(p);
          name += "@core";
          name += std::to_string(c);
          name += ": ";
          name += StatusCodeToString(out.status.code());
          trace_sink_->BeginRegion(attempt_cursor, name);
          attempt_cursor += cost;
          trace_sink_->EndRegion(attempt_cursor);
        }
      }
    }
    uint64_t round_max = 0;
    for (int c = 0; c < cores_n; ++c) {
      run.per_core_cycles[static_cast<size_t>(c)] +=
          added[static_cast<size_t>(c)];
      round_max = std::max(round_max, added[static_cast<size_t>(c)]);
    }
    run.makespan_cycles += round_max;
    trace_cursor = std::max(round_start + round_max, attempt_cursor);

    // Quarantine repeat offenders. The bench persists across
    // operations: a part that keeps failing stays benched until
    // ResetQuarantine().
    for (int c = 0; c < cores_n; ++c) {
      if (!IsQuarantined(c) &&
          core_failures_[static_cast<size_t>(c)] >=
              config_.recovery.quarantine_after) {
        Quarantine(c);
      }
    }
    if (tracing) {
      trace_sink_->EndRegion(trace_cursor);
      trace_sink_->Counter(trace_cursor, "board/failed_attempts",
                           run.recovery.failed_attempts);
      trace_sink_->Counter(trace_cursor, "board/retries",
                           run.recovery.retries);
      trace_sink_->Counter(
          trace_cursor, "board/healthy_cores",
          static_cast<double>(cores_.size() - quarantined_list_.size()));
    }

    pending.clear();
    if (failed.empty()) continue;

    // The caller's deadline budget bounds the retry ladder: once the
    // accumulated makespan has consumed it, scheduling another round
    // could not produce a result the caller would still accept, so the
    // operation sheds kDeadlineExceeded instead of burning the rest of
    // the ladder. (A clean first round never gets here: the check only
    // runs when retries are pending.)
    if (deadline_cycles > 0 && run.makespan_cycles >= deadline_cycles) {
      const size_t p = failed.front().first;
      instruments.op_failures->Increment();
      obs::EventLog::Global().Log(
          obs::EventLevel::kWarn, "board",
          "recovery deadline budget exhausted",
          {{"rounds", std::to_string(run.recovery.rounds)},
           {"budget_cycles", std::to_string(deadline_cycles)},
           {"partition", std::to_string(p)}});
      return Status::DeadlineExceeded(
          "recovery deadline budget (" + std::to_string(deadline_cycles) +
          " cycles) exhausted after " +
          std::to_string(run.recovery.rounds) + " rounds; partition " +
          std::to_string(p) +
          " last error: " + slots[p].last_status.message());
    }

    // A partition out of attempts fails the operation with its last
    // error (first such partition in partition order -- deterministic).
    for (const auto& [p, c] : failed) {
      (void)c;
      if (slots[p].attempts >=
          static_cast<uint32_t>(config_.recovery.max_attempts)) {
        std::string context = "partition ";
        context += std::to_string(p);
        context += " failed after ";
        context += std::to_string(slots[p].attempts);
        context += " attempts";
        instruments.op_failures->Increment();
        obs::EventLog::Global().Log(
            obs::EventLevel::kError, "board", "operation failed",
            {{"partition", std::to_string(p)},
             {"attempts", std::to_string(slots[p].attempts)},
             {"status", std::string(StatusCodeToString(
                            slots[p].last_status.code()))}});
        return Annotate(slots[p].last_status, context);
      }
    }
    refresh_healthy();
    if (healthy.empty()) {
      const size_t p = failed.front().first;
      std::string context = "all cores quarantined while retrying partition ";
      context += std::to_string(p);
      instruments.op_failures->Increment();
      obs::EventLog::Global().Log(
          obs::EventLevel::kError, "board",
          "all cores quarantined mid-operation",
          {{"partition", std::to_string(p)}});
      return Annotate(slots[p].last_status, context);
    }
    // Requeue failed partitions round-robin over the healthy cores,
    // most reliable first.
    size_t next = 0;
    for (const auto& [p, prev_core] : failed) {
      const int c = healthy[next++ % healthy.size()];
      ++run.recovery.retries;
      instruments.retries->Increment();
      if (c != prev_core) {
        ++run.recovery.requeues;
        instruments.requeues->Increment();
      }
      pending.emplace_back(p, c);
    }
  }

  run.recovery.degraded = !quarantined_list_.empty();
  run.recovery.quarantined_cores = quarantined_list_;
  instruments.op_makespan_cycles->Observe(run.makespan_cycles);
  instruments.healthy_cores->Set(
      static_cast<double>(cores_.size() - quarantined_list_.size()));
  instruments.quarantined_cores->Set(
      static_cast<double>(quarantined_list_.size()));
  if (item_results != nullptr) {
    // Batch mode: each partition is an independent request whose result
    // must come back separately, in submission order.
    item_results->clear();
    item_results->reserve(slots.size());
    for (Slot& slot : slots) {
      item_results->push_back(std::move(slot.result));
    }
  } else {
    for (Slot& slot : slots) {
      run.result.insert(run.result.end(), slot.result.begin(),
                        slot.result.end());
    }
  }
  FinishRun(&run, elements);
  run.host_wall_seconds = SecondsSince(host_start);
  return run;
}

Result<ParallelRun> Board::RunSetOperation(SetOp op,
                                           std::span<const uint32_t> a,
                                           std::span<const uint32_t> b) {
  const std::vector<uint32_t> splitters =
      PickSplitters(a.size() >= b.size() ? a : b, num_cores());
  const auto a_ranges = PartitionSorted(a, splitters);
  const auto b_ranges = PartitionSorted(b, splitters);

  std::vector<PartitionWork> parts(a_ranges.size());
  for (size_t i = 0; i < a_ranges.size(); ++i) {
    PartitionWork& part = parts[i];
    part.a = a_ranges[i];
    part.b = b_ranges[i];
    part.lo = i == 0 ? 0 : splitters[i - 1] + 1;
    part.hi = i < splitters.size() ? splitters[i] : 0xFFFFFFFFu;
    part.feed_bytes = 4 * (a_ranges[i].size() + b_ranges[i].size());
    part.active = !a_ranges[i].empty() || !b_ranges[i].empty();
    part.op = op;
  }

  const PartitionRunner runner =
      [op](Processor& core, const PartitionWork& part,
           const RunSettings& settings, std::vector<uint32_t>* result,
           uint64_t* compute_cycles) {
        return RunSetPartition(core, op, part.a, part.b, settings, result,
                               compute_cycles);
      };
  return ExecutePartitioned(std::move(parts), /*is_sort=*/false,
                            a.size() + b.size(), runner);
}

Result<ParallelRun> Board::RunSort(std::span<const uint32_t> values) {
  // Sample splitters (planner-side; in hardware this partitioning pass
  // would itself be a streaming primitive, cf. the HARP partitioner the
  // paper cites [37]).
  std::vector<uint32_t> sample;
  const size_t sample_size =
      std::min<size_t>(values.size(), static_cast<size_t>(num_cores()) * 64);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(values[i * values.size() / sample_size]);
  }
  std::sort(sample.begin(), sample.end());
  const std::vector<uint32_t> splitters = PickSplitters(sample, num_cores());

  // Bucket the input.
  std::vector<std::vector<uint32_t>> buckets(
      static_cast<size_t>(num_cores()));
  for (const uint32_t value : values) {
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(splitters.begin(), splitters.end(), value) -
        splitters.begin());
    buckets[bucket].push_back(value);
  }

  // Duplicate-heavy or tiny inputs can yield fewer than num_cores-1
  // splitters; buckets past splitters.size() are then always empty (the
  // lower_bound index never exceeds splitters.size()) but still need
  // in-bounds placeholder ranges.
  std::vector<PartitionWork> parts(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    PartitionWork& part = parts[i];
    part.a = buckets[i];
    part.lo = i == 0 ? 0
              : i <= splitters.size() ? splitters[i - 1] + 1
                                      : 0xFFFFFFFFu;
    part.hi = i < splitters.size() ? splitters[i] : 0xFFFFFFFFu;
    part.feed_bytes = 4 * buckets[i].size();  // result out adds the rest
    part.active = !buckets[i].empty();
    part.op = SetOp::kMerge;  // sort verification is non-decreasing
  }

  const PartitionRunner runner =
      [](Processor& core, const PartitionWork& part,
         const RunSettings& settings, std::vector<uint32_t>* result,
         uint64_t* compute_cycles) -> Status {
    DBA_ASSIGN_OR_RETURN(*compute_cycles,
                         ExternalSort(core, part.a, settings, result));
    return Status::Ok();
  };
  return ExecutePartitioned(std::move(parts), /*is_sort=*/true,
                            values.size(), runner);
}

Status Board::SetFaultPlan(const fault::FaultPlan& plan) {
  DBA_RETURN_IF_ERROR(plan.Validate());
  for (const int core : plan.broken_cores) {
    if (core >= num_cores()) {
      return Status::InvalidArgument(
          "FaultPlan::broken_cores lists core " + std::to_string(core) +
          " but the board has " + std::to_string(num_cores()) + " cores");
    }
  }
  config_.fault_plan = plan;
  if (plan.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(plan);
    if (hang_program_ == nullptr) {
      DBA_ASSIGN_OR_RETURN(isa::Program hang_loop,
                           fault::BuildHangLoopProgram());
      hang_program_ =
          std::make_shared<const isa::Program>(std::move(hang_loop));
    }
  } else {
    injector_.reset();
  }
  return Status::Ok();
}

Result<Board::BatchRun> Board::RunSetOperationBatch(
    std::span<const BatchItem> items, const BatchOptions& options) {
  BatchRun batch;
  if (items.empty()) {
    batch.run.per_core_cycles.assign(cores_.size(), 0);
    batch.run.host_threads_used = host_threads_;
    batch.run.sim_mode = config_.sim_mode;
    return batch;
  }
  uint64_t elements = 0;
  for (const BatchItem& item : items) {
    switch (item.op) {
      case SetOp::kIntersect:
      case SetOp::kUnion:
      case SetOp::kDifference:
      case SetOp::kMerge:
        break;
      default:
        return Status::InvalidArgument(
            "RunSetOperationBatch supports intersect/union/difference/merge");
    }
    elements += item.a.size() + item.b.size();
  }

  // Unlike the value-partitioned paths, a batch item is one whole
  // request executed on one core: partition i's home core is
  // i mod num_cores, so a batch larger than the board runs in waves.
  // The full recovery machinery (retries, requeues, quarantine,
  // verification) applies per item.
  std::vector<PartitionWork> parts(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    PartitionWork& part = parts[i];
    part.a = items[i].a;
    part.b = items[i].b;
    part.lo = 0;
    part.hi = 0xFFFFFFFFu;
    part.feed_bytes = 4 * (items[i].a.size() + items[i].b.size());
    part.active = !items[i].a.empty() || !items[i].b.empty();
    part.op = items[i].op;
  }

  const PartitionRunner runner =
      [](Processor& core, const PartitionWork& part,
         const RunSettings& settings, std::vector<uint32_t>* result,
         uint64_t* compute_cycles) {
        return RunSetPartition(core, part.op, part.a, part.b, settings,
                               result, compute_cycles);
      };
  DBA_ASSIGN_OR_RETURN(
      batch.run, ExecutePartitioned(std::move(parts), /*is_sort=*/false,
                                    elements, runner, &batch.results,
                                    options.deadline_cycles));
  return batch;
}

}  // namespace dba::system
