#include "system/board.h"

#include <algorithm>

#include "prefetch/streaming.h"

namespace dba::system {

namespace {

/// Value splitters that cut `reference` into `parts` roughly equal
/// ranges. Returned splitters are strictly increasing upper bounds; the
/// last range is unbounded.
std::vector<uint32_t> PickSplitters(std::span<const uint32_t> reference,
                                    int parts) {
  std::vector<uint32_t> splitters;
  if (reference.empty() || parts <= 1) return splitters;
  for (int i = 1; i < parts; ++i) {
    const size_t position = reference.size() * static_cast<size_t>(i) /
                            static_cast<size_t>(parts);
    const uint32_t candidate = reference[position];
    if (splitters.empty() || candidate > splitters.back()) {
      splitters.push_back(candidate);
    }
  }
  return splitters;
}

/// Splits a sorted array into the ranges defined by `splitters`:
/// range i = values in (splitters[i-1], splitters[i]].
std::vector<std::span<const uint32_t>> PartitionSorted(
    std::span<const uint32_t> values, const std::vector<uint32_t>& splitters) {
  std::vector<std::span<const uint32_t>> ranges;
  size_t begin = 0;
  for (const uint32_t splitter : splitters) {
    const size_t end = static_cast<size_t>(
        std::upper_bound(values.begin() + static_cast<ptrdiff_t>(begin),
                         values.end(), splitter) -
        values.begin());
    ranges.push_back(values.subspan(begin, end - begin));
    begin = end;
  }
  ranges.push_back(values.subspan(begin));
  return ranges;
}

/// Sorts arbitrarily large inputs on one core: local-store-sized chunks
/// via the merge-sort kernel, runs merged pairwise with the streamed
/// merge kernel. Returns total core cycles.
Result<uint64_t> ExternalSort(Processor& core,
                              std::span<const uint32_t> values,
                              std::vector<uint32_t>* sorted) {
  uint64_t cycles = 0;
  const uint32_t capacity = core.max_sort_elements();
  sorted->clear();
  if (values.size() <= capacity) {
    DBA_ASSIGN_OR_RETURN(SortRun run, core.RunSort(values));
    *sorted = std::move(run.sorted);
    return run.metrics.cycles;
  }
  prefetch::StreamingSetOperation streaming(&core, prefetch::DmaConfig{});
  for (size_t pos = 0; pos < values.size(); pos += capacity) {
    const size_t len = std::min<size_t>(capacity, values.size() - pos);
    DBA_ASSIGN_OR_RETURN(SortRun run,
                         core.RunSort(values.subspan(pos, len)));
    cycles += run.metrics.cycles;
    if (sorted->empty()) {
      *sorted = std::move(run.sorted);
    } else {
      DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun merge_run,
                           streaming.Run(SetOp::kMerge, *sorted, run.sorted));
      cycles += merge_run.total_cycles;
      *sorted = std::move(merge_run.result);
    }
  }
  return cycles;
}

}  // namespace

Result<std::unique_ptr<Board>> Board::Create(const BoardConfig& config) {
  if (config.num_cores < 1 || config.num_cores > 1024) {
    return Status::InvalidArgument("board supports 1..1024 cores");
  }
  std::vector<std::unique_ptr<Processor>> cores;
  cores.reserve(static_cast<size_t>(config.num_cores));
  for (int i = 0; i < config.num_cores; ++i) {
    DBA_ASSIGN_OR_RETURN(std::unique_ptr<Processor> core,
                         Processor::Create(config.core_kind,
                                           config.core_options));
    cores.push_back(std::move(core));
  }
  return std::unique_ptr<Board>(new Board(config, std::move(cores)));
}

void Board::FinishRun(ParallelRun* run, uint64_t elements) const {
  const double frequency = core_frequency_hz();
  if (run->makespan_cycles > 0) {
    run->throughput_meps = static_cast<double>(elements) /
                           (static_cast<double>(run->makespan_cycles) /
                            frequency) /
                           1e6;
  }
  run->board_power_mw = board_power_mw();
  run->energy_uj = static_cast<double>(run->total_core_cycles) / frequency *
                   cores_[0]->synthesis().power_mw * 1e3;
}

Result<ParallelRun> Board::RunSetOperation(SetOp op,
                                           std::span<const uint32_t> a,
                                           std::span<const uint32_t> b) {
  ParallelRun run;
  run.per_core_cycles.assign(cores_.size(), 0);

  const std::vector<uint32_t> splitters =
      PickSplitters(a.size() >= b.size() ? a : b, num_cores());
  const auto a_ranges = PartitionSorted(a, splitters);
  const auto b_ranges = PartitionSorted(b, splitters);

  int active_streams = 0;
  for (size_t i = 0; i < a_ranges.size(); ++i) {
    if (!a_ranges[i].empty() || !b_ranges[i].empty()) ++active_streams;
  }

  for (size_t i = 0; i < a_ranges.size(); ++i) {
    const std::span<const uint32_t> part_a = a_ranges[i];
    const std::span<const uint32_t> part_b = b_ranges[i];
    if (part_a.empty() && part_b.empty()) continue;
    Processor& core = *cores_[i];

    uint64_t compute_cycles = 0;
    std::vector<uint32_t> part_result;
    const bool fits =
        part_a.size() <=
            core.max_set_elements(static_cast<uint32_t>(part_b.size())) &&
        part_b.size() <=
            core.max_set_elements(static_cast<uint32_t>(part_a.size()));
    if (fits && !part_a.empty() && !part_b.empty()) {
      DBA_ASSIGN_OR_RETURN(SetOpRun core_run,
                           core.RunSetOperation(op, part_a, part_b));
      compute_cycles = core_run.metrics.cycles;
      part_result = std::move(core_run.result);
    } else if (part_a.empty() || part_b.empty()) {
      // Degenerate range.
      switch (op) {
        case SetOp::kIntersect:
          break;
        case SetOp::kUnion:
          part_result.assign(part_a.empty() ? part_b.begin() : part_a.begin(),
                             part_a.empty() ? part_b.end() : part_a.end());
          break;
        case SetOp::kDifference:
          part_result.assign(part_a.begin(), part_a.end());
          break;
        default:
          return Status::InvalidArgument("unsupported parallel operation");
      }
      compute_cycles = 3 * ((part_result.size() + 3) / 4);  // copy beats
    } else {
      prefetch::StreamingSetOperation streaming(&core,
                                                prefetch::DmaConfig{});
      DBA_ASSIGN_OR_RETURN(prefetch::StreamingRun core_run,
                           streaming.Run(op, part_a, part_b));
      compute_cycles = core_run.total_cycles;
      part_result = std::move(core_run.result);
    }

    // Feed over the shared interconnect, all active cores concurrently.
    const uint64_t bytes =
        4 * (part_a.size() + part_b.size() + part_result.size());
    const uint64_t feed_cycles = noc_.TransferCycles(bytes, active_streams);
    const uint64_t core_total = std::max(compute_cycles, feed_cycles);
    run.noc_bound |= feed_cycles > compute_cycles;
    run.per_core_cycles[i] = core_total;
    run.total_core_cycles += compute_cycles;
    run.makespan_cycles = std::max(run.makespan_cycles, core_total);
    run.result.insert(run.result.end(), part_result.begin(),
                      part_result.end());
  }

  FinishRun(&run, a.size() + b.size());
  return run;
}

Result<ParallelRun> Board::RunSort(std::span<const uint32_t> values) {
  ParallelRun run;
  run.per_core_cycles.assign(cores_.size(), 0);

  // Sample splitters (planner-side; in hardware this partitioning pass
  // would itself be a streaming primitive, cf. the HARP partitioner the
  // paper cites [37]).
  std::vector<uint32_t> sample;
  const size_t sample_size =
      std::min<size_t>(values.size(), static_cast<size_t>(num_cores()) * 64);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(values[i * values.size() / sample_size]);
  }
  std::sort(sample.begin(), sample.end());
  const std::vector<uint32_t> splitters = PickSplitters(sample, num_cores());

  // Bucket the input.
  std::vector<std::vector<uint32_t>> buckets(
      static_cast<size_t>(num_cores()));
  for (const uint32_t value : values) {
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(splitters.begin(), splitters.end(), value) -
        splitters.begin());
    buckets[bucket].push_back(value);
  }

  int active_streams = 0;
  for (const auto& bucket : buckets) {
    if (!bucket.empty()) ++active_streams;
  }

  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    Processor& core = *cores_[i];
    std::vector<uint32_t> sorted;
    DBA_ASSIGN_OR_RETURN(uint64_t compute_cycles,
                         ExternalSort(core, buckets[i], &sorted));
    const uint64_t bytes = 4 * 2 * buckets[i].size();  // in + out
    const uint64_t feed_cycles = noc_.TransferCycles(bytes, active_streams);
    const uint64_t core_total = std::max(compute_cycles, feed_cycles);
    run.noc_bound |= feed_cycles > compute_cycles;
    run.per_core_cycles[i] = core_total;
    run.total_core_cycles += compute_cycles;
    run.makespan_cycles = std::max(run.makespan_cycles, core_total);
    run.result.insert(run.result.end(), sorted.begin(), sorted.end());
  }

  FinishRun(&run, values.size());
  return run;
}

}  // namespace dba::system
