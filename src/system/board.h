#ifndef DBA_SYSTEM_BOARD_H_
#define DBA_SYSTEM_BOARD_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/processor.h"
#include "fault/fault.h"
#include "sim/trace_sink.h"
#include "system/noc.h"

namespace dba::system {

/// How the board reacts to failed partition attempts. The defaults
/// tolerate transient faults at the rates the fault plan models while
/// keeping the worst-case cost of a permanently broken core bounded.
struct RecoveryPolicy {
  /// Total attempts per partition (>= 1) before the operation fails
  /// with the partition's last error.
  int max_attempts = 4;
  /// Cumulative failed attempts after which a core is quarantined and
  /// receives no further work from this board (>= 1).
  int quarantine_after = 2;
  /// Retry attempt k (k >= 1) is charged backoff_base_cycles << (k-1)
  /// extra cycles -- the re-arbitration and re-transfer cost grows
  /// exponentially, discouraging hot retry loops.
  uint64_t backoff_base_cycles = 256;
  /// Verify every partition result (monotonicity, value-range bounds,
  /// size bounds) before accepting it. Only consulted when a fault plan
  /// is active; the fault-free path never pays for verification.
  bool verify_partitions = true;

  Status Validate() const;
};

/// Configuration of a multi-core accelerator board.
struct BoardConfig {
  ProcessorKind core_kind = ProcessorKind::kDba2LsuEis;
  ProcessorOptions core_options;
  int num_cores = 16;
  NocConfig noc;
  /// Host threads simulating the board's cores concurrently. 0 picks the
  /// host's hardware concurrency; 1 preserves the serial loop. The value
  /// only changes how fast the host simulates -- results, per-core
  /// cycles, makespan, and energy are bit-identical at any setting.
  int host_threads = 0;
  /// Execution mode of every core's run loop (sim/exec_mode.h). The
  /// default fast-forward keeps schedule, results, and all cycle
  /// accounting byte-identical to the interpreter; turbo keeps results
  /// exact and derives cycles from the loop model.
  sim::ExecMode sim_mode = sim::ExecMode::kFastForward;
  /// Deterministic fault schedule; a default plan injects nothing and
  /// keeps every run bit-identical to a fault-unaware board.
  fault::FaultPlan fault_plan;
  RecoveryPolicy recovery;
};

/// Retry/quarantine/degradation telemetry of one parallel operation.
/// All counters are zero (and `quarantined_cores` empty) when no fault
/// plan is configured.
struct RecoveryTelemetry {
  uint32_t faults_injected = 0;        // attempts that drew >= 1 fault
  uint32_t failed_attempts = 0;        // attempts that returned non-OK
  uint32_t retries = 0;                // re-executions scheduled
  uint32_t requeues = 0;               // retries moved to another core
  uint32_t verification_failures = 0;  // output checks that tripped
  uint32_t rounds = 0;                 // scheduling rounds (1 = clean)
  uint64_t recovery_cycles = 0;        // cycles spent on failed attempts
  std::vector<int> quarantined_cores;  // cores benched by this board
  bool degraded = false;               // finished on fewer cores
};

/// Result of one parallel operation.
struct ParallelRun {
  std::vector<uint32_t> result;
  uint64_t makespan_cycles = 0;      // slowest core incl. its feed
  uint64_t total_core_cycles = 0;    // sum over cores (for energy)
  std::vector<uint64_t> per_core_cycles;
  double throughput_meps = 0;        // at f_max, over the makespan
  double board_power_mw = 0;         // num_cores x core power
  double energy_uj = 0;              // total core cycles x power
  bool noc_bound = false;
  /// Host-side telemetry: how long the simulator itself took (wall
  /// clock), how many host threads simulated the cores, and which
  /// execution mode the core run loops used.
  double host_wall_seconds = 0;
  int host_threads_used = 1;
  sim::ExecMode sim_mode = sim::ExecMode::kFastForward;
  RecoveryTelemetry recovery;
};

/// A board of identical DBA cores with value-range-partitioned parallel
/// set operations and sample-sort. Every core is a full cycle-accurate
/// Processor; the board schedules partitions, models the shared
/// interconnect feed, and reports makespan and energy. This substantiates
/// the paper's scale-out argument (Section 5.4: "the number of cores of
/// DBA_2LSU_EIS could be largely increased until it occupies the same
/// area as the Intel Q9550 processor").
///
/// Host execution: the per-core simulations are independent (each core
/// owns its Cpu, memories, and extension state, and all cores read one
/// immutable ProgramCache), so the board fans them out across a host
/// thread pool and then reduces the cross-core telemetry -- the NoC feed
/// model, per-core cycles, makespan, energy, and the concatenated result
/// -- in partition order after the join. See docs/ARCHITECTURE.md.
///
/// Fault tolerance: when the config carries a FaultPlan, attempts run
/// in barrier-synchronized rounds. Failed partitions (hang, transfer
/// fault, or a result that fails verification) are retried with
/// exponential cycle backoff, requeued onto the healthiest cores, and
/// repeatedly-failing cores are quarantined -- the board finishes on
/// fewer cores and reports it in RecoveryTelemetry rather than erroring
/// out. See docs/FAULTS.md for the fault model and detection layers.
class Board {
 public:
  static Result<std::unique_ptr<Board>> Create(const BoardConfig& config);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  const BoardConfig& config() const { return config_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  double core_frequency_hz() const { return cores_[0]->frequency_hz(); }
  double board_power_mw() const {
    return cores_[0]->synthesis().power_mw * num_cores();
  }
  double board_area_mm2() const {
    return cores_[0]->synthesis().total_area_mm2() * num_cores();
  }

  /// Resolved host parallelism (>= 1); 1 means the serial loop.
  int host_threads() const { return host_threads_; }
  /// The board's host worker pool (null when host_threads() == 1).
  /// Callers may borrow it for their own independent work, e.g.
  /// QueryEngine::EnableConcurrentSorts.
  common::ThreadPool* host_pool() const { return pool_.get(); }
  /// Direct access to core `i` (for borrowing an idle core as a sibling
  /// executor; the board and the caller must not run it concurrently).
  Processor* core(int i) { return cores_[static_cast<size_t>(i)].get(); }
  /// The kernel programs shared by all cores of this board.
  const std::shared_ptr<const ProgramCache>& programs() const {
    return programs_;
  }

  /// Board-level trace receiver (non-owning; may be null): recovery
  /// rounds, failed attempts, and quarantine/health counters are
  /// emitted as regions and counter tracks. Render with
  /// obs::ChromeTraceWriter for ui.perfetto.dev.
  void set_trace_sink(sim::CycleTraceSink* sink) { trace_sink_ = sink; }

  /// Cores currently quarantined by the recovery policy (persists
  /// across operations: a benched part stays benched).
  const std::vector<int>& quarantined_cores() const {
    return quarantined_list_;
  }
  /// Returns all quarantined cores to service and clears the failure
  /// history (an operator replacing the bad parts).
  void ResetQuarantine();

  /// Parallel sorted-set operation: inputs are partitioned into
  /// disjoint value ranges (one per core), each core processes its
  /// range (streaming through its prefetcher if needed), and the
  /// concatenated per-range results form the output.
  Result<ParallelRun> RunSetOperation(SetOp op, std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);

  /// Parallel sample-sort: values are bucketed by sampled splitters,
  /// each core sorts its bucket, buckets concatenate in splitter order.
  Result<ParallelRun> RunSort(std::span<const uint32_t> values);

  /// One request of a multi-request batch (RunSetOperationBatch). The
  /// spans must stay valid for the duration of the call; inputs must be
  /// sorted (and duplicate-free for intersect/union/difference).
  struct BatchItem {
    SetOp op = SetOp::kIntersect;
    std::span<const uint32_t> a;
    std::span<const uint32_t> b;
  };

  /// Result of one batched multi-request operation: per-item outputs in
  /// submission order plus the usual board telemetry (the ParallelRun's
  /// own `result` stays empty -- outputs live in `results`).
  struct BatchRun {
    std::vector<std::vector<uint32_t>> results;
    ParallelRun run;
  };

  /// Per-call limits on one batched operation.
  struct BatchOptions {
    /// Simulated-cycle budget for the recovery ladder: once the batch's
    /// accumulated makespan reaches this, no further retry round is
    /// scheduled and the operation fails with kDeadlineExceeded instead
    /// of completing the full ladder. Derived from the caller's
    /// remaining wall deadline (cycles = remaining_ns * f_max / 1e9);
    /// 0 = unbounded. A fault-free first round is never cut short.
    uint64_t deadline_cycles = 0;
  };

  /// Multi-request scheduling: executes `items` -- independent whole set
  /// operations, possibly of mixed ops -- across the board's cores in
  /// waves (item i starts on core i mod num_cores; a core runs its
  /// items back to back), sharing one program load per core via the
  /// board's ProgramCache. Items do not value-partition: each is one
  /// request from the service batcher, small enough for one core. The
  /// round-based recovery machinery (retry, requeue, quarantine) applies
  /// per item exactly as it does per partition, and results reduce in
  /// item order -- bit-identical at any host_threads.
  Result<BatchRun> RunSetOperationBatch(std::span<const BatchItem> items,
                                        const BatchOptions& options);
  Result<BatchRun> RunSetOperationBatch(std::span<const BatchItem> items) {
    return RunSetOperationBatch(items, BatchOptions{});
  }

  /// Replaces the board's fault schedule in place (the chaos harness's
  /// entry point: a ChaosSchedule phase is one FaultPlan). Validates
  /// like Create; an empty plan restores the fault-free fast path. Call
  /// only while no board operation is running -- the service guarantees
  /// this between dispatch batches.
  Status SetFaultPlan(const fault::FaultPlan& plan);

 private:
  /// One partition of a board operation: the input span(s), the value
  /// range it owns (for output verification), and its NoC feed bytes
  /// excluding the result (which is only known after the attempt).
  struct PartitionWork {
    std::span<const uint32_t> a;  // set ops: left input; sort: bucket
    std::span<const uint32_t> b;  // set ops only
    SetOp op = SetOp::kIntersect; // per-partition op (batches mix ops)
    uint32_t lo = 0;              // inclusive value-range lower bound
    uint32_t hi = 0xFFFFFFFFu;    // inclusive value-range upper bound
    uint64_t feed_bytes = 0;
    bool active = false;          // inactive partitions are empty
  };

  /// Executes one partition attempt on one core: result + pure compute
  /// cycles. NoC feed cycles are applied in the reduce step (they
  /// depend on the number of concurrently streaming cores).
  using PartitionRunner = std::function<Status(
      Processor&, const PartitionWork&, const RunSettings&,
      std::vector<uint32_t>*, uint64_t*)>;

  /// What one attempt produced, before the cross-core reduce.
  struct AttemptOutcome {
    Status status;
    uint64_t compute_cycles = 0;
    std::vector<uint32_t> result;
    bool fault_injected = false;
    bool verification_failed = false;
  };

  Board(BoardConfig config, std::vector<std::unique_ptr<Processor>> cores,
        std::shared_ptr<const ProgramCache> programs, int host_threads);

  /// Runs fn(0..n-1): inline when serial, over the pool otherwise.
  void ForEachCore(size_t n, const std::function<void(size_t)>& fn);

  void FinishRun(ParallelRun* run, uint64_t elements) const;

  /// The shared round-based scheduler behind RunSetOperation/RunSort/
  /// RunSetOperationBatch: fan out pending partitions, reduce
  /// deterministically in partition order, retry/requeue/quarantine,
  /// repeat until done or exhausted. When `item_results` is non-null,
  /// per-partition outputs are moved there (in partition order) instead
  /// of concatenating into ParallelRun::result.
  Result<ParallelRun> ExecutePartitioned(
      std::vector<PartitionWork> parts, bool is_sort, uint64_t elements,
      const PartitionRunner& runner,
      std::vector<std::vector<uint32_t>>* item_results = nullptr,
      uint64_t deadline_cycles = 0);

  AttemptOutcome RunAttempt(int core_index, const PartitionWork& part,
                            bool is_sort, const fault::AttemptSite& site,
                            const PartitionRunner& runner);

  void Quarantine(int core);
  bool IsQuarantined(int core) const {
    return quarantined_[static_cast<size_t>(core)];
  }

  BoardConfig config_;
  Noc noc_;
  std::vector<std::unique_ptr<Processor>> cores_;
  std::shared_ptr<const ProgramCache> programs_;
  int host_threads_ = 1;
  std::unique_ptr<common::ThreadPool> pool_;

  /// Fault machinery; injector_ is null when the plan injects nothing,
  /// and the fault-free path skips every recovery branch.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::shared_ptr<const isa::Program> hang_program_;
  uint64_t op_ordinal_ = 0;

  /// Persistent core health: cumulative failed attempts and the
  /// quarantine set (a part that keeps failing stays benched across
  /// operations until ResetQuarantine).
  std::vector<int> core_failures_;
  std::vector<bool> quarantined_;
  std::vector<int> quarantined_list_;

  sim::CycleTraceSink* trace_sink_ = nullptr;
};

}  // namespace dba::system

#endif  // DBA_SYSTEM_BOARD_H_
