#ifndef DBA_SYSTEM_BOARD_H_
#define DBA_SYSTEM_BOARD_H_

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/processor.h"
#include "system/noc.h"

namespace dba::system {

/// Configuration of a multi-core accelerator board.
struct BoardConfig {
  ProcessorKind core_kind = ProcessorKind::kDba2LsuEis;
  ProcessorOptions core_options;
  int num_cores = 16;
  NocConfig noc;
  /// Host threads simulating the board's cores concurrently. 0 picks the
  /// host's hardware concurrency; 1 preserves the serial loop. The value
  /// only changes how fast the host simulates -- results, per-core
  /// cycles, makespan, and energy are bit-identical at any setting.
  int host_threads = 0;
};

/// Result of one parallel operation.
struct ParallelRun {
  std::vector<uint32_t> result;
  uint64_t makespan_cycles = 0;      // slowest core incl. its feed
  uint64_t total_core_cycles = 0;    // sum over cores (for energy)
  std::vector<uint64_t> per_core_cycles;
  double throughput_meps = 0;        // at f_max, over the makespan
  double board_power_mw = 0;         // num_cores x core power
  double energy_uj = 0;              // total core cycles x power
  bool noc_bound = false;
  /// Host-side telemetry: how long the simulator itself took (wall
  /// clock) and how many host threads simulated the cores.
  double host_wall_seconds = 0;
  int host_threads_used = 1;
};

/// A board of identical DBA cores with value-range-partitioned parallel
/// set operations and sample-sort. Every core is a full cycle-accurate
/// Processor; the board schedules partitions, models the shared
/// interconnect feed, and reports makespan and energy. This substantiates
/// the paper's scale-out argument (Section 5.4: "the number of cores of
/// DBA_2LSU_EIS could be largely increased until it occupies the same
/// area as the Intel Q9550 processor").
///
/// Host execution: the per-core simulations are independent (each core
/// owns its Cpu, memories, and extension state, and all cores read one
/// immutable ProgramCache), so the board fans them out across a host
/// thread pool and then reduces the cross-core telemetry -- the NoC feed
/// model, per-core cycles, makespan, energy, and the concatenated result
/// -- in partition order after the join. See docs/ARCHITECTURE.md.
class Board {
 public:
  static Result<std::unique_ptr<Board>> Create(const BoardConfig& config);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  const BoardConfig& config() const { return config_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  double core_frequency_hz() const { return cores_[0]->frequency_hz(); }
  double board_power_mw() const {
    return cores_[0]->synthesis().power_mw * num_cores();
  }
  double board_area_mm2() const {
    return cores_[0]->synthesis().total_area_mm2() * num_cores();
  }

  /// Resolved host parallelism (>= 1); 1 means the serial loop.
  int host_threads() const { return host_threads_; }
  /// The board's host worker pool (null when host_threads() == 1).
  /// Callers may borrow it for their own independent work, e.g.
  /// QueryEngine::EnableConcurrentSorts.
  common::ThreadPool* host_pool() const { return pool_.get(); }
  /// Direct access to core `i` (for borrowing an idle core as a sibling
  /// executor; the board and the caller must not run it concurrently).
  Processor* core(int i) { return cores_[static_cast<size_t>(i)].get(); }
  /// The kernel programs shared by all cores of this board.
  const std::shared_ptr<const ProgramCache>& programs() const {
    return programs_;
  }

  /// Parallel sorted-set operation: inputs are partitioned into
  /// disjoint value ranges (one per core), each core processes its
  /// range (streaming through its prefetcher if needed), and the
  /// concatenated per-range results form the output.
  Result<ParallelRun> RunSetOperation(SetOp op, std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);

  /// Parallel sample-sort: values are bucketed by sampled splitters,
  /// each core sorts its bucket, buckets concatenate in splitter order.
  Result<ParallelRun> RunSort(std::span<const uint32_t> values);

 private:
  /// What one core's simulation produces before the cross-core reduce:
  /// its partition result and pure compute cycles. NoC feed cycles are
  /// deliberately absent -- they depend on the number of active streams
  /// and are applied in the reduce step after the join.
  struct CoreRun {
    Status status;
    uint64_t compute_cycles = 0;
    std::vector<uint32_t> result;
  };

  Board(BoardConfig config, std::vector<std::unique_ptr<Processor>> cores,
        std::shared_ptr<const ProgramCache> programs, int host_threads)
      : config_(config),
        noc_(config.noc),
        cores_(std::move(cores)),
        programs_(std::move(programs)),
        host_threads_(host_threads) {
    if (host_threads_ > 1) {
      // Workers + the calling thread (which ParallelFor enlists).
      pool_ = std::make_unique<common::ThreadPool>(host_threads_ - 1);
    }
  }

  /// Runs fn(0..n-1): inline when serial, over the pool otherwise.
  void ForEachCore(size_t n, const std::function<void(size_t)>& fn);

  void FinishRun(ParallelRun* run, uint64_t elements) const;

  BoardConfig config_;
  Noc noc_;
  std::vector<std::unique_ptr<Processor>> cores_;
  std::shared_ptr<const ProgramCache> programs_;
  int host_threads_ = 1;
  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace dba::system

#endif  // DBA_SYSTEM_BOARD_H_
