#ifndef DBA_SYSTEM_BOARD_H_
#define DBA_SYSTEM_BOARD_H_

#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "system/noc.h"

namespace dba::system {

/// Configuration of a multi-core accelerator board.
struct BoardConfig {
  ProcessorKind core_kind = ProcessorKind::kDba2LsuEis;
  ProcessorOptions core_options;
  int num_cores = 16;
  NocConfig noc;
};

/// Result of one parallel operation.
struct ParallelRun {
  std::vector<uint32_t> result;
  uint64_t makespan_cycles = 0;      // slowest core incl. its feed
  uint64_t total_core_cycles = 0;    // sum over cores (for energy)
  std::vector<uint64_t> per_core_cycles;
  double throughput_meps = 0;        // at f_max, over the makespan
  double board_power_mw = 0;         // num_cores x core power
  double energy_uj = 0;              // total core cycles x power
  bool noc_bound = false;
};

/// A board of identical DBA cores with value-range-partitioned parallel
/// set operations and sample-sort. Every core is a full cycle-accurate
/// Processor; the board schedules partitions, models the shared
/// interconnect feed, and reports makespan and energy. This substantiates
/// the paper's scale-out argument (Section 5.4: "the number of cores of
/// DBA_2LSU_EIS could be largely increased until it occupies the same
/// area as the Intel Q9550 processor").
class Board {
 public:
  static Result<std::unique_ptr<Board>> Create(const BoardConfig& config);

  Board(const Board&) = delete;
  Board& operator=(const Board&) = delete;

  const BoardConfig& config() const { return config_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  double core_frequency_hz() const { return cores_[0]->frequency_hz(); }
  double board_power_mw() const {
    return cores_[0]->synthesis().power_mw * num_cores();
  }
  double board_area_mm2() const {
    return cores_[0]->synthesis().total_area_mm2() * num_cores();
  }

  /// Parallel sorted-set operation: inputs are partitioned into
  /// disjoint value ranges (one per core), each core processes its
  /// range (streaming through its prefetcher if needed), and the
  /// concatenated per-range results form the output.
  Result<ParallelRun> RunSetOperation(SetOp op, std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);

  /// Parallel sample-sort: values are bucketed by sampled splitters,
  /// each core sorts its bucket, buckets concatenate in splitter order.
  Result<ParallelRun> RunSort(std::span<const uint32_t> values);

 private:
  Board(BoardConfig config, std::vector<std::unique_ptr<Processor>> cores)
      : config_(config), noc_(config.noc), cores_(std::move(cores)) {}

  void FinishRun(ParallelRun* run, uint64_t elements) const;

  BoardConfig config_;
  Noc noc_;
  std::vector<std::unique_ptr<Processor>> cores_;
};

}  // namespace dba::system

#endif  // DBA_SYSTEM_BOARD_H_
