#ifndef DBA_COMMON_STATUS_H_
#define DBA_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace dba {

/// Error categories used across the library. Values are stable and may be
/// serialized in logs; append new codes at the end.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kResourceExhausted = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kNotFound = 7,
  kAlreadyExists = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
  kDataLoss = 11,
  /// Shed by an admission-control rate limit (a per-tenant token bucket
  /// ran dry). Distinct from kResourceExhausted: the *service* is fine,
  /// the *caller* exceeded its contract and should back off.
  kRateLimited = 12,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight status object modelled after absl::Status / rocksdb::Status.
///
/// The library does not use exceptions: fallible operations return `Status`
/// (or `Result<T>` when they also produce a value). An OK status carries no
/// message and no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(StatusCode::kRateLimited, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status. Modelled after
/// absl::StatusOr. Accessing the value of a non-OK Result aborts.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  ///   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 42; }
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status)                            // NOLINT(google-explicit-constructor)
      : storage_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(storage_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(storage_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(storage_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(storage_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> storage_;
};

namespace internal_status {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal_status::DieOnBadResultAccess(std::get<Status>(storage_));
}

}  // namespace dba

/// Propagates a non-OK status from an expression, RocksDB-style.
#define DBA_RETURN_IF_ERROR(expr)                        \
  do {                                                   \
    ::dba::Status dba_return_if_error_status = (expr);   \
    if (!dba_return_if_error_status.ok())                \
      return dba_return_if_error_status;                 \
  } while (false)

/// Evaluates a Result<T> expression and assigns its value, or propagates
/// the error. Usage: DBA_ASSIGN_OR_RETURN(auto x, ComputeX());
#define DBA_ASSIGN_OR_RETURN(decl, expr)                        \
  DBA_ASSIGN_OR_RETURN_IMPL_(                                   \
      DBA_STATUS_CONCAT_(dba_result_, __LINE__), decl, expr)
#define DBA_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  decl = std::move(tmp).value()
#define DBA_STATUS_CONCAT_(a, b) DBA_STATUS_CONCAT_IMPL_(a, b)
#define DBA_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // DBA_COMMON_STATUS_H_
