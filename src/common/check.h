#ifndef DBA_COMMON_CHECK_H_
#define DBA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Always-on invariant checks for conditions that indicate a programming
/// error inside the library (never for user input; user input errors are
/// reported via Status). Aborting keeps the failure close to the bug.
#define DBA_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DBA_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#define DBA_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "DBA_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // DBA_COMMON_CHECK_H_
