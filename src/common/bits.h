#ifndef DBA_COMMON_BITS_H_
#define DBA_COMMON_BITS_H_

#include <cstdint>

namespace dba {

/// Extracts `width` bits of `value` starting at bit `pos` (LSB = 0).
constexpr uint64_t ExtractBits(uint64_t value, int pos, int width) {
  return (value >> pos) & ((width >= 64) ? ~0ULL : ((1ULL << width) - 1));
}

/// Inserts the low `width` bits of `field` into `value` at bit `pos`.
constexpr uint64_t InsertBits(uint64_t value, int pos, int width,
                              uint64_t field) {
  const uint64_t mask =
      ((width >= 64) ? ~0ULL : ((1ULL << width) - 1)) << pos;
  return (value & ~mask) | ((field << pos) & mask);
}

/// Sign-extends the low `width` bits of `value` to 64 bits.
constexpr int64_t SignExtend(uint64_t value, int width) {
  const uint64_t sign_bit = 1ULL << (width - 1);
  const uint64_t masked = value & ((sign_bit << 1) - 1);
  return static_cast<int64_t>((masked ^ sign_bit)) -
         static_cast<int64_t>(sign_bit);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr bool IsPowerOfTwo(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace dba

#endif  // DBA_COMMON_BITS_H_
