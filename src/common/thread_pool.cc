#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace dba::common {

ThreadPool::ThreadPool(int num_threads) {
  const int count = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::HardwareConcurrency() {
  const unsigned count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<int>(count);
}

void ThreadPool::Run(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }

  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    std::mutex mutex;
    std::condition_variable all_done;
  };
  auto state = std::make_shared<SharedState>();
  state->total = n;

  auto drain = [state, &fn] {
    for (;;) {
      const size_t index = state->next.fetch_add(1);
      if (index >= state->total) return;
      fn(index);
      if (state->done.fetch_add(1) + 1 == state->total) {
        // Wake the caller; the lock orders the notify against its wait.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  // Helpers only speed things up while indices remain; each worker task
  // holds its own shared_ptr so a late wake-up after ParallelFor returned
  // finds the state alive (and no indices left).
  const size_t helpers =
      std::min(static_cast<size_t>(size()), n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Run([state, drain] { drain(); });
  }
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&state] {
    return state->done.load() == state->total;
  });
}

}  // namespace dba::common
