#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace dba {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kRateLimited:
      return "RateLimited";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace dba
