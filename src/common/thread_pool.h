#ifndef DBA_COMMON_THREAD_POOL_H_
#define DBA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dba::common {

/// A small dependency-free worker pool for host-side parallelism (the
/// board simulates its cores on these threads; the simulated hardware is
/// oblivious to it). Tasks are plain std::function<void()>; ParallelFor
/// is the only coordination primitive the simulator needs: results keyed
/// by index stay deterministic no matter which worker runs which index.
class ThreadPool {
 public:
  /// Creates `num_threads` workers. Values < 1 are clamped to 1. A pool
  /// of size 1 still runs tasks on its single worker thread; callers
  /// that want a strictly serial path should not construct a pool.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency with a sane floor of 1.
  static int HardwareConcurrency();

  /// Enqueues one task; returns immediately.
  void Run(std::function<void()> task);

  /// Runs fn(0) .. fn(n-1), distributing indices over the workers with
  /// the calling thread participating, and returns once all n calls have
  /// finished. Index assignment is dynamic (an atomic cursor), so the
  /// schedule is nondeterministic -- callers must write results into
  /// per-index slots, never into shared accumulators.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dba::common

#endif  // DBA_COMMON_THREAD_POOL_H_
