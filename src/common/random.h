#ifndef DBA_COMMON_RANDOM_H_
#define DBA_COMMON_RANDOM_H_

#include <cstdint>

namespace dba {

/// Deterministic 64-bit PRNG (xoshiro256**). Workloads and property tests
/// must be reproducible across platforms, so the library never uses
/// std::mt19937 (implementation-defined seeding helpers) or rand().
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace dba

#endif  // DBA_COMMON_RANDOM_H_
