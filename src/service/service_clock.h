#ifndef DBA_SERVICE_SERVICE_CLOCK_H_
#define DBA_SERVICE_SERVICE_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace dba::service {

/// Time source of the query service's batching window and deadline
/// checks. Production uses SystemClock; the deterministic concurrency
/// harness injects a VirtualClock and steps it explicitly, making batch
/// formation a pure function of the submission schedule.
class ServiceClock {
 public:
  virtual ~ServiceClock() = default;

  /// Nanoseconds since an arbitrary fixed origin (monotonic).
  virtual uint64_t NowNs() = 0;

  /// Blocks on `cv` -- whose associated mutex `lock` holds -- until
  /// roughly `deadline_ns`. Spurious wakeups are expected: callers
  /// re-check their condition and the clock in a loop.
  virtual void WaitUntil(std::unique_lock<std::mutex>& lock,
                         std::condition_variable& cv,
                         uint64_t deadline_ns) = 0;

  /// Registers the (mutex, cv) pair a waiter blocks on, so a virtual
  /// clock can wake it when time advances. No-op for real clocks. The
  /// pair must outlive the clock's last AdvanceTo.
  virtual void Watch(std::mutex* /*mutex*/,
                     std::condition_variable* /*cv*/) {}
};

/// Wall-clock time via std::chrono::steady_clock.
class SystemClock : public ServiceClock {
 public:
  SystemClock() : origin_(std::chrono::steady_clock::now()) {}

  uint64_t NowNs() override;
  void WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, uint64_t deadline_ns) override;

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Manually-stepped time for deterministic tests: NowNs only moves when
/// a test calls AdvanceTo/AdvanceBy. Waiters never time out on their
/// own -- AdvanceTo locks each watched mutex before notifying, so a
/// waiter that checked the clock and then blocked cannot miss the
/// advance (no lost wakeups).
class VirtualClock : public ServiceClock {
 public:
  explicit VirtualClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

  uint64_t NowNs() override;
  void WaitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, uint64_t deadline_ns) override;
  void Watch(std::mutex* mutex, std::condition_variable* cv) override;

  /// Moves time forward to `ns` (never backward) and wakes every
  /// watched waiter.
  void AdvanceTo(uint64_t ns);
  void AdvanceBy(uint64_t delta_ns);

 private:
  std::mutex mu_;
  uint64_t now_ns_;
  std::vector<std::pair<std::mutex*, std::condition_variable*>> watchers_;
};

}  // namespace dba::service

#endif  // DBA_SERVICE_SERVICE_CLOCK_H_
