#include "service/query_service.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "obs/metrics/metrics.h"

namespace dba::service {

namespace {

struct ServiceInstruments {
  obs::Counter* submitted;
  obs::Counter* rejected;
  /// Shed paths, labeled dba_service_shed_total{reason=...} and indexed
  /// by ShedReason.
  obs::Counter* shed_reason[kNumShedReasons];
  obs::Counter* degraded;
  obs::Counter* breaker_transitions;
  obs::Gauge* breaker_state;
  obs::Counter* dispatched;
  obs::Counter* batches;
  obs::Counter* deduplicated;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_evictions;
  obs::Counter* cache_invalidations;
  obs::Counter* retries;
  obs::Gauge* queue_depth;
  obs::Histogram* batch_size;
  obs::Histogram* latency_ns;
};

const ServiceInstruments& Instruments() {
  static const ServiceInstruments instruments = [] {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    ServiceInstruments out;
    out.submitted = registry.GetCounter("dba_service_submitted_total",
                                        "Requests submitted to the service.");
    out.rejected = registry.GetCounter(
        "dba_service_rejected_total",
        "Requests shed at admission (queue full -> kUnavailable).");
    for (size_t r = 0; r < kNumShedReasons; ++r) {
      out.shed_reason[r] = registry.GetCounter(
          "dba_service_shed_total", "reason",
          ShedReasonName(static_cast<ShedReason>(r)),
          "Requests shed instead of executed, by reason.");
    }
    out.degraded = registry.GetCounter(
        "dba_service_degraded_total",
        "Responses served by host fallback while the breaker was open.");
    out.breaker_transitions =
        registry.GetCounter("dba_service_breaker_transitions_total",
                            "Circuit-breaker state changes.");
    out.breaker_state = registry.GetGauge(
        "dba_service_breaker_state",
        "Circuit-breaker state (0 closed, 1 half-open, 2 open).");
    out.dispatched = registry.GetCounter(
        "dba_service_dispatched_total", "Requests that reached execution.");
    out.batches = registry.GetCounter("dba_service_batches_total",
                                      "Dispatch batches executed.");
    out.deduplicated = registry.GetCounter(
        "dba_service_dedup_total",
        "Requests answered by an identical request in the same batch.");
    out.cache_hits = registry.GetCounter("dba_service_cache_hits_total",
                                         "Result-cache hits.");
    out.cache_misses = registry.GetCounter("dba_service_cache_misses_total",
                                           "Result-cache misses.");
    out.cache_evictions = registry.GetCounter(
        "dba_service_cache_evictions_total", "Result-cache LRU evictions.");
    out.cache_invalidations = registry.GetCounter(
        "dba_service_cache_invalidations_total",
        "Result-cache entries dropped for version staleness.");
    out.retries = registry.GetCounter(
        "dba_service_retries_total",
        "Transient re-executions across engine and board recovery.");
    out.queue_depth = registry.GetGauge("dba_service_queue_depth",
                                        "Requests currently queued.");
    out.batch_size = registry.GetHistogram("dba_service_batch_size",
                                           "Requests per dispatch batch.");
    out.latency_ns = registry.GetHistogram(
        "dba_service_latency_ns",
        "Submit-to-response latency (service-clock ns; deterministic "
        "only under an injected VirtualClock).");
    return out;
  }();
  return instruments;
}

/// Mirrors a ResultCache stats delta into the global instruments.
void MirrorCacheDelta(const CacheStats& before, const CacheStats& after) {
  const ServiceInstruments& ins = Instruments();
  ins.cache_hits->Increment(after.hits - before.hits);
  ins.cache_misses->Increment(after.misses - before.misses);
  ins.cache_evictions->Increment(after.evictions - before.evictions);
  ins.cache_invalidations->Increment(after.invalidations -
                                     before.invalidations);
}

/// Distinct columns referenced by a predicate tree, in first-seen order.
void CollectColumns(const query::Predicate& predicate,
                    std::vector<std::string>* out) {
  if (predicate.is_leaf()) {
    if (std::find(out->begin(), out->end(), predicate.column) == out->end()) {
      out->push_back(predicate.column);
    }
    return;
  }
  for (const auto& child : predicate.children) CollectColumns(*child, out);
}

}  // namespace

Status ServiceConfig::Validate() const {
  if (board == nullptr) {
    return Status::InvalidArgument("ServiceConfig::board is required");
  }
  if (queue_capacity < 1) {
    return Status::InvalidArgument(
        "ServiceConfig::queue_capacity must be >= 1");
  }
  if (max_batch < 1) {
    return Status::InvalidArgument("ServiceConfig::max_batch must be >= 1");
  }
  if (max_attempts < 1) {
    return Status::InvalidArgument(
        "ServiceConfig::max_attempts must be >= 1");
  }
  for (const auto& [tenant, policy] : tenant_policies) {
    const Status status = policy.Validate();
    if (!status.ok()) {
      return Status(status.code(),
                    "tenant '" + tenant + "': " + status.message());
    }
  }
  DBA_RETURN_IF_ERROR(breaker.Validate());
  DBA_RETURN_IF_ERROR(retry.Validate());
  return Status::Ok();
}

Result<std::unique_ptr<QueryService>> QueryService::Create(
    const ServiceConfig& config) {
  DBA_RETURN_IF_ERROR(config.Validate());
  return std::unique_ptr<QueryService>(new QueryService(config));
}

QueryService::QueryService(const ServiceConfig& config)
    : config_(config),
      queue_(config.queue_capacity),
      breaker_(std::make_unique<CircuitBreaker>(config.breaker)),
      cache_(config.cache_capacity) {
  if (config_.clock == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = config_.clock;
  }
  clock_->Watch(&mu_, &cv_);
  scheduler_ = std::thread(&QueryService::SchedulerLoop, this);
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  queue_.ConsumeAll([](Job&& job) {
    ServiceResponse response;
    response.status = Status::Unavailable("service stopped");
    job.promise.set_value(std::move(response));
  });
  Instruments().queue_depth->Set(0.0);
  drain_cv_.notify_all();
}

Status QueryService::RegisterTable(std::unique_ptr<query::Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("RegisterTable requires a table");
  }
  std::unique_lock<std::shared_mutex> tables_lock(tables_mu_);
  const std::string name = table->name();
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  TableEntry entry;
  entry.core = next_core_;
  next_core_ = (next_core_ + 1) % config_.board->num_cores();
  entry.mu = std::make_unique<std::shared_mutex>();
  entry.table = std::move(table);
  entry.engine = std::make_unique<query::QueryEngine>(
      entry.table.get(), config_.board->core(entry.core));
  entry.engine->SetMaxAttempts(config_.max_attempts);
  if (fault_hook_) entry.engine->SetAttemptFaultHook(fault_hook_);
  if (degraded_routing_) {
    query::PlannerOptions options;
    options.force_route = query::Route::kGalloping;
    options.allow_partition_index = false;
    entry.engine->EnableAdaptivePlanner(options);
  }
  for (const std::string& column : entry.table->ColumnNames()) {
    DBA_RETURN_IF_ERROR(entry.engine->BuildIndex(column));
  }
  tables_.emplace(name, std::move(entry));
  return Status::Ok();
}

Status QueryService::UpdateColumn(const std::string& table,
                                  const std::string& column,
                                  std::vector<uint32_t> values) {
  TableEntry* entry = nullptr;
  {
    std::shared_lock<std::shared_mutex> tables_lock(tables_mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) {
      return Status::NotFound("unknown table '" + table + "'");
    }
    // Map nodes are address-stable and never erased: the pointer stays
    // valid after the registry lock drops.
    entry = &it->second;
  }
  {
    std::unique_lock<std::shared_mutex> table_lock(*entry->mu);
    DBA_RETURN_IF_ERROR(entry->table->UpdateColumn(column, std::move(values)));
  }
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  const CacheStats before = cache_.stats();
  cache_.InvalidateColumn(table, column);
  MirrorCacheDelta(before, cache_.stats());
  return Status::Ok();
}

std::future<ServiceResponse> QueryService::Submit(ServiceRequest request) {
  const ServiceInstruments& ins = Instruments();
  Job job;
  job.request = std::move(request);
  std::future<ServiceResponse> future = job.promise.get_future();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  ins.submitted->Increment();
  int priority = job.request.priority;
  const auto boost = config_.tenant_priorities.find(job.request.tenant);
  if (boost != config_.tenant_priorities.end()) priority += boost->second;
  const TenantPolicy* policy = nullptr;
  const auto policy_it = config_.tenant_policies.find(job.request.tenant);
  if (policy_it != config_.tenant_policies.end()) {
    policy = &policy_it->second;
    priority += SloPriorityBoost(policy->slo);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ServiceResponse response;
      response.status = Status::Unavailable("service stopped");
      job.promise.set_value(std::move(response));
      return future;
    }
    job.enqueue_ns = clock_->NowNs();
    if (policy != nullptr) {
      // SLO class: requests without an explicit deadline inherit the
      // class default, relative to the submit time.
      if (job.request.deadline_ns == 0) {
        const uint64_t slo_deadline = SloDefaultDeadlineNs(policy->slo);
        if (slo_deadline != 0) {
          job.request.deadline_ns = job.enqueue_ns + slo_deadline;
        }
      }
      if (policy->rate_per_sec > 0) {
        auto bucket = buckets_.find(job.request.tenant);
        if (bucket == buckets_.end()) {
          bucket = buckets_
                       .emplace(job.request.tenant,
                                TokenBucket(policy->rate_per_sec,
                                            policy->burst))
                       .first;
        }
        if (!bucket->second.TryAcquire(job.enqueue_ns)) {
          rate_limited_.fetch_add(1, std::memory_order_relaxed);
          ins.shed_reason[static_cast<size_t>(ShedReason::kRateLimited)]
              ->Increment();
          ServiceResponse response;
          response.status = Status::RateLimited(
              "tenant '" + job.request.tenant +
              "' exceeded its admission rate");
          job.promise.set_value(std::move(response));
          return future;
        }
      }
    }
    const Status admitted = queue_.Push(priority, std::move(job));
    if (!admitted.ok()) {
      // Push leaves the job untouched on overflow: shed explicitly.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      ins.rejected->Increment();
      ins.shed_reason[static_cast<size_t>(ShedReason::kQueueFull)]
          ->Increment();
      ServiceResponse response;
      response.status = admitted;
      job.promise.set_value(std::move(response));
      return future;
    }
    ins.queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

void QueryService::PauseDispatch() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }
  cv_.notify_all();
}

void QueryService::ResumeDispatch() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] {
    return (queue_.empty() && !dispatching_) || stopping_;
  });
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServiceCounters QueryService::counters() const {
  ServiceCounters out;
  out.submitted = submitted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.shed = shed_.load(std::memory_order_relaxed);
  out.dispatched = dispatched_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.deduplicated = deduplicated_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  out.breaker_sheds = breaker_sheds_.load(std::memory_order_relaxed);
  out.degraded = degraded_.load(std::memory_order_relaxed);
  out.breaker_transitions =
      breaker_transitions_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  const CacheStats& stats = cache_.stats();
  out.cache_hits = stats.hits;
  out.cache_misses = stats.misses;
  out.cache_evictions = stats.evictions;
  out.cache_invalidations = stats.invalidations;
  return out;
}

std::vector<std::string> QueryService::CacheKeysMruToLru() const {
  std::lock_guard<std::mutex> cache_lock(cache_mu_);
  return cache_.KeysMruToLru();
}

void QueryService::SetAttemptFaultHook(fault::AttemptFaultHook hook) {
  std::unique_lock<std::shared_mutex> tables_lock(tables_mu_);
  fault_hook_ = std::move(hook);
  for (auto& [name, entry] : tables_) {
    (void)name;
    entry.engine->SetAttemptFaultHook(fault_hook_);
  }
}

void QueryService::SetDegradedRouting(bool degraded) {
  std::unique_lock<std::shared_mutex> tables_lock(tables_mu_);
  if (degraded_routing_ == degraded) return;
  degraded_routing_ = degraded;
  for (auto& [name, entry] : tables_) {
    (void)name;
    // The per-table lock serializes against any in-flight query of the
    // table (none can be: only the scheduler thread executes queries,
    // and it is the caller here).
    std::unique_lock<std::shared_mutex> table_lock(*entry.mu);
    if (degraded) {
      query::PlannerOptions options;
      options.force_route = query::Route::kGalloping;
      options.allow_partition_index = false;
      entry.engine->EnableAdaptivePlanner(options);
    } else {
      entry.engine->DisableAdaptivePlanner();
    }
  }
}

void QueryService::MirrorBreaker(uint64_t now_ns) {
  const ServiceInstruments& ins = Instruments();
  const BreakerState state = breaker_->StateAt(now_ns);
  breaker_state_.store(static_cast<uint8_t>(state),
                       std::memory_order_relaxed);
  ins.breaker_state->Set(static_cast<double>(state));
  const uint64_t transitions = breaker_->transitions();
  if (transitions > mirrored_transitions_) {
    const uint64_t delta = transitions - mirrored_transitions_;
    mirrored_transitions_ = transitions;
    breaker_transitions_.fetch_add(delta, std::memory_order_relaxed);
    ins.breaker_transitions->Increment(delta);
  }
}

uint64_t QueryService::OldestEnqueueNsLocked() const {
  uint64_t oldest = UINT64_MAX;
  queue_.ForEach(
      [&](const Job& job) { oldest = std::min(oldest, job.enqueue_ns); });
  return oldest == UINT64_MAX ? 0 : oldest;
}

void QueryService::SchedulerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [&] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_) return;

    if (config_.batch_window_ns > 0) {
      // Hold the batch open until the oldest pending request has waited
      // a full window, or the batch is already full. New arrivals and
      // clock advances both notify cv_, so the deadline re-derives from
      // the (possibly older) oldest request each pass.
      while (!stopping_ && !paused_ && !queue_.empty() &&
             queue_.size() < static_cast<size_t>(config_.max_batch)) {
        const uint64_t deadline =
            OldestEnqueueNsLocked() + config_.batch_window_ns;
        if (clock_->NowNs() >= deadline) break;
        clock_->WaitUntil(lock, cv_, deadline);
      }
      if (stopping_) return;
      if (paused_ || queue_.empty()) continue;
    }

    std::vector<Job> batch;
    batch.reserve(static_cast<size_t>(config_.max_batch));
    Job job;
    while (batch.size() < static_cast<size_t>(config_.max_batch) &&
           queue_.Pop(&job)) {
      batch.push_back(std::move(job));
    }
    Instruments().queue_depth->Set(static_cast<double>(queue_.size()));
    dispatching_ = true;
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
    dispatching_ = false;
    drain_cv_.notify_all();
  }
}

void QueryService::ExecuteBatch(std::vector<Job> batch) {
  const ServiceInstruments& ins = Instruments();
  const uint64_t start_ns = clock_->NowNs();
  const uint32_t batch_size = static_cast<uint32_t>(batch.size());
  const uint64_t batch_ordinal =
      batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  ins.batches->Increment();
  ins.batch_size->Observe(batch_size);
  if (config_.trace_sink != nullptr) {
    config_.trace_sink->BeginRegion(
        start_ns, "service batch " + std::to_string(batch_ordinal) + " (" +
                      std::to_string(batch_size) + " requests)");
  }

  /// One distinct piece of work in the batch; identical requests
  /// (same predicate+table, or same direct op+inputs) share a Unique.
  struct Unique {
    size_t owner = 0;  // first batch index with this work
    bool is_predicate = false;
    std::string key;   // predicate cache key ("" for direct ops)
    bool ready = false;
    Status status = Status::Internal("not executed");
    std::vector<uint32_t> values;
    bool cache_hit = false;
    bool degraded = false;
    uint32_t retries = 0;
    uint64_t cycles = 0;
    TableEntry* entry = nullptr;
    std::vector<ColumnVersion> versions;  // stamped at execution
  };
  std::vector<Unique> uniques;
  std::vector<int> unique_of(batch.size(), -1);  // -1 = shed

  // Shed expired deadlines, then deduplicate the rest.
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServiceRequest& request = batch[i].request;
    if (request.deadline_ns != 0 && start_ns > request.deadline_ns) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      ins.shed_reason[static_cast<size_t>(ShedReason::kDeadline)]
          ->Increment();
      continue;
    }
    int found = -1;
    if (request.predicate != nullptr) {
      std::string key =
          "q|" + request.table + "|" + request.predicate->ToString();
      for (size_t u = 0; u < uniques.size(); ++u) {
        if (uniques[u].is_predicate && uniques[u].key == key) {
          found = static_cast<int>(u);
          break;
        }
      }
      if (found < 0) {
        Unique unique;
        unique.owner = i;
        unique.is_predicate = true;
        unique.key = std::move(key);
        found = static_cast<int>(uniques.size());
        uniques.push_back(std::move(unique));
      }
    } else {
      for (size_t u = 0; u < uniques.size(); ++u) {
        if (uniques[u].is_predicate) continue;
        const ServiceRequest& other = batch[uniques[u].owner].request;
        if (other.op == request.op && other.a == request.a &&
            other.b == request.b) {
          found = static_cast<int>(u);
          break;
        }
      }
      if (found < 0) {
        Unique unique;
        unique.owner = i;
        found = static_cast<int>(uniques.size());
        uniques.push_back(std::move(unique));
      }
    }
    unique_of[i] = found;
    if (uniques[static_cast<size_t>(found)].owner != i) {
      deduplicated_.fetch_add(1, std::memory_order_relaxed);
      ins.deduplicated->Increment();
    }
  }

  // Resolve predicate work against the table registry.
  {
    std::shared_lock<std::shared_mutex> tables_lock(tables_mu_);
    for (Unique& unique : uniques) {
      if (!unique.is_predicate) continue;
      const ServiceRequest& request = batch[unique.owner].request;
      auto it = tables_.find(request.table);
      if (it == tables_.end()) {
        unique.status =
            Status::NotFound("unknown table '" + request.table + "'");
        unique.ready = true;
        continue;
      }
      unique.entry = &it->second;  // map nodes are address-stable
    }
  }

  // Result-cache lookups (scheduler thread only; cache_mu_ guards
  // against concurrent UpdateColumn invalidation and inspection).
  for (Unique& unique : uniques) {
    if (!unique.is_predicate || unique.ready) continue;
    const ServiceRequest& request = batch[unique.owner].request;
    std::vector<std::string> columns;
    CollectColumns(*request.predicate, &columns);
    std::vector<ColumnVersion> current;
    bool versions_ok = true;
    {
      std::shared_lock<std::shared_mutex> table_lock(*unique.entry->mu);
      for (const std::string& column : columns) {
        Result<uint64_t> version = unique.entry->table->ColumnVersion(column);
        if (!version.ok()) {
          versions_ok = false;  // execution reports the real error
          break;
        }
        current.push_back(ColumnVersion{request.table, column, *version});
      }
    }
    if (!versions_ok) continue;
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const CacheStats before = cache_.stats();
    if (cache_.Lookup(unique.key, current, &unique.values)) {
      unique.cache_hit = true;
      unique.status = Status::Ok();
      unique.ready = true;
    }
    MirrorCacheDelta(before, cache_.stats());
  }

  // Direct set operations: one multi-request board batch, governed by
  // the circuit breaker, a shared deadline budget, and the service's
  // deadline-aware retry policy.
  uint64_t batch_retries = 0;
  std::vector<size_t> direct;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (!uniques[u].is_predicate && !uniques[u].ready) direct.push_back(u);
  }
  if (!direct.empty()) {
    const int n_cores = config_.board->num_cores();

    // The batch's wall deadline: the largest remaining deadline among
    // the direct riders (a rider with no deadline leaves the batch
    // unbounded -- never cut work short that someone still wants).
    uint64_t batch_deadline_ns = 0;
    bool unbounded = false;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (unique_of[i] < 0) continue;
      const Unique& unique = uniques[static_cast<size_t>(unique_of[i])];
      if (unique.is_predicate || unique.ready) continue;
      const uint64_t deadline = batch[i].request.deadline_ns;
      if (deadline == 0) {
        unbounded = true;
      } else {
        batch_deadline_ns = std::max(batch_deadline_ns, deadline);
      }
    }
    if (unbounded) batch_deadline_ns = 0;

    // Wall deadline -> simulated-cycle budget for the board's recovery
    // ladder: the board's simulated makespan at f_max must fit in the
    // remaining wall time (deterministic: derived from the service
    // clock, not host time).
    system::Board::BatchOptions board_options;
    if (batch_deadline_ns != 0) {
      const uint64_t remaining_ns =
          batch_deadline_ns > start_ns ? batch_deadline_ns - start_ns : 1;
      board_options.deadline_cycles = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(remaining_ns) *
                                   config_.board->core_frequency_hz() /
                                   1e9));
    }

    std::vector<system::Board::BatchItem> items;
    items.reserve(direct.size());
    for (const size_t u : direct) {
      const ServiceRequest& request = batch[uniques[u].owner].request;
      items.push_back(
          system::Board::BatchItem{request.op, request.a, request.b});
    }

    // Consult the breaker: open routes around the board entirely;
    // half-open grants a bounded number of probe dispatches.
    bool use_board = true;
    if (config_.breaker.enabled) {
      const BreakerState state = breaker_->StateAt(start_ns);
      if (state == BreakerState::kOpen) {
        use_board = false;
      } else if (state == BreakerState::kHalfOpen) {
        use_board = breaker_->AllowProbe(start_ns);
      }
    }

    const auto transient = [](StatusCode code) {
      return code == StatusCode::kUnavailable ||
             code == StatusCode::kDeadlineExceeded ||
             code == StatusCode::kDataLoss;
    };

    Result<system::Board::BatchRun> run =
        Status::Unavailable("circuit breaker open");
    if (use_board) {
      // Deadline-aware re-submit ladder: backoff delays are modeled
      // against the riders' shared deadline, so a retry that could only
      // finish past expiry is never attempted.
      RetryBudget budget(config_.retry, batch_deadline_ns, batch_ordinal);
      uint64_t modeled_delay_ns = 0;
      while (true) {
        run = config_.board->RunSetOperationBatch(items, board_options);
        if (run.ok()) {
          breaker_->OnBoardResult(true, &run->run.recovery, n_cores,
                                  start_ns);
          break;
        }
        breaker_->OnBoardResult(false, nullptr, n_cores, start_ns);
        if (!transient(run.status().code())) break;
        if (config_.breaker.enabled &&
            breaker_->StateAt(start_ns) == BreakerState::kOpen) {
          break;  // tripped mid-ladder: fall through to degraded mode
        }
        const std::optional<uint64_t> delay =
            budget.NextDelayNs(start_ns + modeled_delay_ns);
        if (!delay.has_value()) break;
        modeled_delay_ns += *delay;
        ++batch_retries;
      }
    }

    if (run.ok()) {
      batch_retries += run->run.recovery.retries;
      for (size_t k = 0; k < direct.size(); ++k) {
        Unique& unique = uniques[direct[k]];
        unique.values = std::move(run->results[k]);
        unique.status = Status::Ok();
        // Per-item cycles are not individually attributable: every
        // direct response of the batch reports the batch makespan.
        unique.cycles = run->run.makespan_cycles;
        unique.ready = true;
      }
    } else if (config_.host_fallback && config_.breaker.enabled &&
               breaker_->StateAt(start_ns) == BreakerState::kOpen) {
      // Degraded mode: the breaker is open (either at batch start or
      // tripped by the failures above), so the planner's host kernels
      // stand in for the board -- bit-exact results, flagged degraded.
      for (const size_t u : direct) {
        const ServiceRequest& request = batch[uniques[u].owner].request;
        Result<std::vector<uint32_t>> fallback =
            RunHostFallbackOp(request.op, request.a, request.b);
        Unique& unique = uniques[u];
        if (fallback.ok()) {
          unique.values = std::move(*fallback);
          unique.status = Status::Ok();
          unique.degraded = true;
          unique.cycles = 0;
        } else {
          unique.status = fallback.status();
        }
        unique.ready = true;
      }
    } else if (!use_board) {
      // Breaker open, fallback disabled: a typed per-request shed.
      uint32_t riders = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        if (unique_of[i] < 0) continue;
        const Unique& unique = uniques[static_cast<size_t>(unique_of[i])];
        if (!unique.is_predicate && !unique.ready) ++riders;
      }
      breaker_sheds_.fetch_add(riders, std::memory_order_relaxed);
      ins.shed_reason[static_cast<size_t>(ShedReason::kBreakerOpen)]
          ->Increment(riders);
      for (const size_t u : direct) {
        uniques[u].status = Status::Unavailable(
            "circuit breaker open and host fallback disabled");
        uniques[u].ready = true;
      }
    } else {
      for (const size_t u : direct) {
        uniques[u].status = run.status();
        uniques[u].ready = true;
      }
    }
  }

  // Keep predicate routing in step with the breaker: while open,
  // RID-set intersections take the planner's host routes instead of
  // the board cores' EIS datapath.
  const bool degrade_predicates =
      config_.breaker.enabled &&
      breaker_->StateAt(start_ns) == BreakerState::kOpen;
  SetDegradedRouting(degrade_predicates);

  // Predicate queries: engines grouped by their pinned board core (one
  // thread per core; a core's tables run back to back), fanned out over
  // the board's host pool when available.
  std::map<int, std::vector<size_t>> by_core;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (uniques[u].is_predicate && !uniques[u].ready) {
      by_core[uniques[u].entry->core].push_back(u);
    }
  }
  std::vector<std::vector<size_t>> groups;
  groups.reserve(by_core.size());
  for (auto& [core, members] : by_core) {
    (void)core;
    groups.push_back(std::move(members));
  }
  const auto run_group = [&](size_t gi) {
    for (const size_t uidx : groups[gi]) {
      Unique& unique = uniques[uidx];
      const ServiceRequest& request = batch[unique.owner].request;
      std::shared_lock<std::shared_mutex> table_lock(*unique.entry->mu);
      // Stamp versions under the same shared lock that covers the
      // execution: UpdateColumn's unique lock cannot interleave, so
      // the stamps and the computed values are mutually consistent.
      std::vector<std::string> columns;
      CollectColumns(*request.predicate, &columns);
      bool versions_ok = true;
      for (const std::string& column : columns) {
        Result<uint64_t> version = unique.entry->table->ColumnVersion(column);
        if (!version.ok()) {
          unique.status = version.status();
          versions_ok = false;
          break;
        }
        unique.versions.push_back(
            ColumnVersion{request.table, column, *version});
      }
      if (!versions_ok) {
        unique.ready = true;
        continue;
      }
      query::QueryStats stats;
      Result<std::vector<query::Rid>> result =
          unique.entry->engine->Select(*request.predicate, &stats);
      if (result.ok()) {
        unique.values = std::move(*result);
        unique.status = Status::Ok();
        unique.retries = stats.retries;
        unique.cycles = stats.accelerator_cycles;
        // Freshly executed under forced host routing: the values are
        // bit-identical, but the venue was degraded. (Cache hits keep
        // degraded = false -- they were computed before the outage.)
        unique.degraded = degrade_predicates;
      } else {
        unique.status = result.status();
      }
      unique.ready = true;
    }
  };
  common::ThreadPool* pool = config_.board->host_pool();
  if (pool != nullptr && groups.size() > 1) {
    pool->ParallelFor(groups.size(), run_group);
  } else {
    for (size_t gi = 0; gi < groups.size(); ++gi) run_group(gi);
  }

  // Fresh predicate results enter the cache with their version stamps.
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const CacheStats before = cache_.stats();
    for (Unique& unique : uniques) {
      if (unique.is_predicate && unique.status.ok() && !unique.cache_hit) {
        cache_.Insert(unique.key, unique.values, unique.versions);
      }
    }
    MirrorCacheDelta(before, cache_.stats());
  }

  for (const Unique& unique : uniques) {
    batch_retries += unique.retries;
  }
  if (batch_retries > 0) {
    retries_.fetch_add(batch_retries, std::memory_order_relaxed);
    ins.retries->Increment(batch_retries);
  }

  // Fulfill every promise (shed requests included) exactly once.
  const uint64_t done_ns = clock_->NowNs();
  for (size_t i = 0; i < batch.size(); ++i) {
    ServiceResponse response;
    response.batch_size = batch_size;
    response.dispatch_seq = ++dispatch_seq_;
    if (unique_of[i] < 0) {
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
    } else {
      const Unique& unique = uniques[static_cast<size_t>(unique_of[i])];
      response.status = unique.status;
      response.values = unique.values;
      response.cache_hit = unique.cache_hit;
      response.deduplicated = unique.owner != i;
      response.retries = unique.retries;
      response.accelerator_cycles = unique.cycles;
      response.degraded = unique.degraded;
      if (unique.degraded) {
        degraded_.fetch_add(1, std::memory_order_relaxed);
        ins.degraded->Increment();
      }
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      ins.dispatched->Increment();
    }
    ins.latency_ns->Observe(done_ns - batch[i].enqueue_ns);
    batch[i].promise.set_value(std::move(response));
  }
  MirrorBreaker(done_ns);
  if (config_.trace_sink != nullptr) {
    config_.trace_sink->EndRegion(done_ns);
  }
}

}  // namespace dba::service
