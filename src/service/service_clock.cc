#include "service/service_clock.h"

#include <algorithm>

namespace dba::service {

uint64_t SystemClock::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

void SystemClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                            std::condition_variable& cv,
                            uint64_t deadline_ns) {
  const uint64_t now = NowNs();
  if (now >= deadline_ns) return;
  cv.wait_for(lock, std::chrono::nanoseconds(deadline_ns - now));
}

uint64_t VirtualClock::NowNs() {
  std::lock_guard<std::mutex> guard(mu_);
  return now_ns_;
}

void VirtualClock::WaitUntil(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv,
                             uint64_t deadline_ns) {
  if (NowNs() >= deadline_ns) return;
  // One blocking wait; AdvanceTo (or any producer-side notify) wakes
  // us and the caller's loop re-checks. AdvanceTo acquires the mutex
  // `lock` holds before notifying, so the advance cannot slip between
  // the NowNs check above and the wait below.
  cv.wait(lock);
}

void VirtualClock::Watch(std::mutex* mutex, std::condition_variable* cv) {
  std::lock_guard<std::mutex> guard(mu_);
  watchers_.emplace_back(mutex, cv);
}

void VirtualClock::AdvanceTo(uint64_t ns) {
  std::vector<std::pair<std::mutex*, std::condition_variable*>> watchers;
  {
    std::lock_guard<std::mutex> guard(mu_);
    now_ns_ = std::max(now_ns_, ns);
    watchers = watchers_;
  }
  for (auto& [mutex, cv] : watchers) {
    // Lock-then-notify: a waiter holding `mutex` is either before its
    // clock check (it will see the new time) or already blocked in
    // wait (the notify reaches it). Either way the advance is seen.
    std::lock_guard<std::mutex> held(*mutex);
    cv->notify_all();
  }
}

void VirtualClock::AdvanceBy(uint64_t delta_ns) {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> guard(mu_);
    target = now_ns_ + delta_ns;
  }
  AdvanceTo(target);
}

}  // namespace dba::service
