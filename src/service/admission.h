#ifndef DBA_SERVICE_ADMISSION_H_
#define DBA_SERVICE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include <string_view>

#include "common/status.h"

namespace dba::service {

/// Why a request was shed instead of executed. Every shed path is
/// explicit and typed; the reason labels the
/// dba_service_shed_total{reason=...} counter family.
enum class ShedReason : uint8_t {
  kQueueFull = 0,     // admission overflow -> kUnavailable
  kDeadline = 1,      // deadline expired while queued -> kDeadlineExceeded
  kRateLimited = 2,   // tenant token bucket dry -> kRateLimited
  kBreakerOpen = 3,   // breaker open, no fallback -> kUnavailable
};
inline constexpr size_t kNumShedReasons = 4;

inline std::string_view ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadline:
      return "deadline";
    case ShedReason::kRateLimited:
      return "rate_limited";
    case ShedReason::kBreakerOpen:
      return "breaker_open";
  }
  return "unknown";
}

/// Bounded admission queue with strict priority ordering: Pop returns
/// the highest-priority item, FIFO within a priority level. A Push
/// beyond capacity is rejected with kUnavailable -- load shedding is
/// always an explicit error to the caller, never a silent drop.
///
/// Not internally synchronized: the owner (QueryService) serializes
/// access under its own mutex, which also guards the condition
/// variables admission interacts with.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Enqueues at `priority` (higher runs first). Fails with
  /// kUnavailable when the queue is at capacity; `item` is untouched.
  Status Push(int priority, T&& item) {
    if (size_ >= capacity_) {
      return Status::Unavailable("admission queue full (capacity " +
                                 std::to_string(capacity_) + ")");
    }
    by_priority_[priority].push_back(std::move(item));
    ++size_;
    return Status::Ok();
  }

  /// Dequeues the oldest item of the highest non-empty priority.
  /// Returns false when empty.
  bool Pop(T* out) {
    if (size_ == 0) return false;
    auto it = by_priority_.begin();  // descending: highest priority first
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) by_priority_.erase(it);
    --size_;
    return true;
  }

  /// Visits every queued item in priority-then-FIFO order (e.g. to find
  /// the oldest enqueue time for the batch window).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [priority, items] : by_priority_) {
      (void)priority;
      for (const T& item : items) fn(item);
    }
  }

  /// Moves every queued item out through `fn` (e.g. failing pending
  /// promises at shutdown) and empties the queue.
  template <typename Fn>
  void ConsumeAll(Fn&& fn) {
    for (auto& [priority, items] : by_priority_) {
      (void)priority;
      for (T& item : items) fn(std::move(item));
    }
    by_priority_.clear();
    size_ = 0;
  }

 private:
  size_t capacity_;
  size_t size_ = 0;
  // Descending priority; deque gives FIFO within a level.
  std::map<int, std::deque<T>, std::greater<int>> by_priority_;
};

}  // namespace dba::service

#endif  // DBA_SERVICE_ADMISSION_H_
