#include "service/result_cache.h"

#include <algorithm>
#include <utility>

namespace dba::service {

bool ResultCache::Lookup(const std::string& key,
                         std::span<const ColumnVersion> current,
                         std::vector<uint32_t>* out) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  for (const ColumnVersion& stamp : it->second->versions) {
    const auto match = std::find_if(
        current.begin(), current.end(), [&](const ColumnVersion& now) {
          return now.table == stamp.table && now.column == stamp.column;
        });
    if (match == current.end() || match->version != stamp.version) {
      // Stale: the column moved past the stamped version (or the
      // caller no longer vouches for it). Never serve it.
      lru_.erase(it->second);
      index_.erase(it);
      ++stats_.invalidations;
      ++stats_.misses;
      return false;
    }
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  *out = it->second->values;
  ++stats_.hits;
  return true;
}

void ResultCache::Insert(std::string key, std::vector<uint32_t> values,
                         std::vector<ColumnVersion> versions) {
  if (capacity_ == 0) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->values = std::move(values);
    it->second->versions = std::move(versions);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(
      Entry{std::move(key), std::move(values), std::move(versions)});
  index_[lru_.front().key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::InvalidateColumn(std::string_view table,
                                   std::string_view column) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    const bool depends = std::any_of(
        it->versions.begin(), it->versions.end(),
        [&](const ColumnVersion& stamp) {
          return stamp.table == table && stamp.column == column;
        });
    if (depends) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

std::vector<std::string> ResultCache::KeysMruToLru() const {
  std::vector<std::string> keys;
  keys.reserve(lru_.size());
  for (const Entry& entry : lru_) keys.push_back(entry.key);
  return keys;
}

}  // namespace dba::service
