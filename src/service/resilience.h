#ifndef DBA_SERVICE_RESILIENCE_H_
#define DBA_SERVICE_RESILIENCE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "system/board.h"

namespace dba::service {

// ---------------------------------------------------------------------------
// SLO classes and per-tenant admission policies
// ---------------------------------------------------------------------------

/// Service-level-objective classes a tenant can be assigned to. A class
/// fixes the default deadline stamped on requests that carry none and an
/// additive priority boost on top of ServiceConfig::tenant_priorities.
enum class SloClass : uint8_t {
  kInteractive = 0,  // tight deadline, boosted priority
  kStandard = 1,     // moderate deadline, neutral priority
  kBatch = 2,        // no implied deadline, deboosted priority
};

std::string_view SloClassName(SloClass slo);

/// The class's default *relative* deadline in service-clock ns (added to
/// the submit time when the request has deadline_ns == 0); 0 = none.
uint64_t SloDefaultDeadlineNs(SloClass slo);

/// The class's additive priority boost.
int SloPriorityBoost(SloClass slo);

/// Per-tenant admission policy: an SLO class plus a token-bucket rate
/// limit. Tenants without a policy are unlimited kStandard.
struct TenantPolicy {
  SloClass slo = SloClass::kStandard;
  /// Sustained admission rate in requests/second (0 = unlimited).
  double rate_per_sec = 0;
  /// Bucket depth in requests (>= 1 when rate-limited): how large a
  /// burst the tenant may submit at once before the limiter sheds.
  double burst = 1;

  Status Validate() const;
};

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

/// Deterministic token bucket over an injectable clock. Internally the
/// GCRA (virtual-scheduling) form: pure integer nanosecond arithmetic --
/// one token every emission_interval_ns with burst_tolerance_ns of
/// credit -- so replays under a VirtualClock admit the exact same
/// request sequence at any host-thread count. Not thread-safe; callers
/// serialize (QueryService acquires under its admission mutex).
class TokenBucket {
 public:
  /// Unlimited bucket: every TryAcquire succeeds.
  TokenBucket() = default;
  /// rate_per_sec <= 0 is unlimited; burst < 1 is clamped to 1.
  TokenBucket(double rate_per_sec, double burst);

  bool unlimited() const { return interval_ns_ == 0; }
  /// ns between sustained admissions (0 when unlimited).
  uint64_t emission_interval_ns() const { return interval_ns_; }
  /// Extra credit in ns: (burst - 1) * emission_interval_ns.
  uint64_t burst_tolerance_ns() const { return tolerance_ns_; }

  /// Takes one token at `now_ns`; false = the bucket is dry (shed).
  bool TryAcquire(uint64_t now_ns);

 private:
  uint64_t interval_ns_ = 0;   // 0 = unlimited
  uint64_t tolerance_ns_ = 0;
  uint64_t tat_ns_ = 0;        // theoretical arrival time of next token
};

// ---------------------------------------------------------------------------
// Deadline-aware retry budget
// ---------------------------------------------------------------------------

/// Service-level re-submit policy for transiently failed board work.
struct RetryConfig {
  /// Re-submits per dispatched operation after the first attempt (0
  /// disables service-level retries; board-internal recovery rounds are
  /// governed separately by RecoveryPolicy).
  int max_retries = 2;
  /// Backoff before retry k (k >= 1): backoff_base_ns << (k-1), plus
  /// deterministic jitter in [0, delay/2], capped at backoff_cap_ns.
  uint64_t backoff_base_ns = 100'000;
  uint64_t backoff_cap_ns = 10'000'000;
  /// Seed for the jitter hash (mixed with the per-operation key).
  uint64_t jitter_seed = 0xd1cef00dULL;

  Status Validate() const;
};

/// One operation's retry budget: exponential backoff with seeded jitter,
/// bounded by both the retry count and the request deadline -- a retry
/// whose backoff would land past the deadline is refused, so board
/// rounds and service-level re-submits share one expiry. Jitter is a
/// pure function of (jitter_seed, key, attempt): deterministic at any
/// host-thread count.
class RetryBudget {
 public:
  /// `deadline_ns` is the absolute service-clock deadline (0 = none);
  /// `key` identifies the operation (e.g. the batch ordinal).
  RetryBudget(const RetryConfig& config, uint64_t deadline_ns, uint64_t key);

  /// The backoff delay to charge before the next retry, or nullopt when
  /// the budget (retries or deadline) is exhausted. Consumes one retry.
  std::optional<uint64_t> NextDelayNs(uint64_t now_ns);

  int retries_used() const { return retries_; }
  uint64_t deadline_ns() const { return deadline_ns_; }

 private:
  RetryConfig config_;
  uint64_t deadline_ns_ = 0;
  uint64_t key_ = 0;
  int retries_ = 0;
};

// ---------------------------------------------------------------------------
// Board-health circuit breaker
// ---------------------------------------------------------------------------

enum class BreakerState : uint8_t {
  kClosed = 0,    // board healthy: all work dispatches normally
  kHalfOpen = 1,  // cool-down elapsed: limited probes test the board
  kOpen = 2,      // board unhealthy: direct ops fall back or shed
};

std::string_view BreakerStateName(BreakerState state);

struct BreakerConfig {
  bool enabled = true;
  /// Consecutive board-level failures that trip the breaker open.
  int failure_threshold = 3;
  /// Fraction of cores quarantined that trips the breaker immediately,
  /// even off an otherwise successful (degraded) operation.
  double quarantine_fraction = 0.5;
  /// Board-internal retries within one operation that count as a
  /// failure signal even when the operation succeeded (0 disables).
  uint32_t retry_alarm = 8;
  /// Cool-down after tripping before probes are admitted (half-open).
  uint64_t open_duration_ns = 1'000'000;
  /// Probe requests admitted per half-open period (>= 1).
  int half_open_probes = 2;
  /// Probe successes that close the breaker (1..half_open_probes).
  int probe_successes_to_close = 1;

  Status Validate() const;
};

/// Closed/open/half-open circuit breaker over the board's health,
/// fed by operation outcomes and RecoveryTelemetry (quarantine count,
/// retry rate, round failures). All timing comes from caller-supplied
/// service-clock timestamps, so transitions are deterministic under a
/// VirtualClock. Not thread-safe: the scheduler thread owns it.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config);

  /// Current state at `now_ns` (applies the open -> half-open cool-down
  /// transition as a side effect).
  BreakerState StateAt(uint64_t now_ns);

  /// In half-open: grants up to half_open_probes probe slots per
  /// period. Elsewhere: false.
  bool AllowProbe(uint64_t now_ns);

  /// Feed the outcome of one board-level operation. `telemetry` may be
  /// null when the operation failed before producing one; `num_cores`
  /// scales the quarantine fraction.
  void OnBoardResult(bool ok, const system::RecoveryTelemetry* telemetry,
                     int num_cores, uint64_t now_ns);

  /// Granular signals (OnBoardResult composes these; unit tests drive
  /// them directly).
  void RecordSuccess(uint64_t now_ns);
  void RecordFailure(uint64_t now_ns);

  uint64_t transitions() const { return transitions_; }
  int consecutive_failures() const { return consecutive_failures_; }
  const BreakerConfig& config() const { return config_; }

 private:
  void TripOpen(uint64_t now_ns);
  void Close();

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  uint64_t opened_at_ns_ = 0;
  int probes_granted_ = 0;
  int probe_successes_ = 0;
  uint64_t transitions_ = 0;
};

// ---------------------------------------------------------------------------
// Host-fallback execution (degraded mode)
// ---------------------------------------------------------------------------

/// Executes one direct set operation entirely on host kernels --
/// byte-identical to the board path, zero accelerator cycles.
/// Intersections route through the planner's host kernels (galloping,
/// SIMD merge, or a transient PartitionIndex probe, picked by the
/// planner's cost model); union/difference use the scalar baselines;
/// merge is a duplicate-preserving host merge. Empty-operand inputs
/// mirror the board's degenerate-range semantics bit for bit.
Result<std::vector<uint32_t>> RunHostFallbackOp(SetOp op,
                                                std::span<const uint32_t> a,
                                                std::span<const uint32_t> b);

}  // namespace dba::service

#endif  // DBA_SERVICE_RESILIENCE_H_
