#ifndef DBA_SERVICE_QUERY_SERVICE_H_
#define DBA_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/processor.h"
#include "fault/fault.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/table.h"
#include "service/admission.h"
#include "service/resilience.h"
#include "service/result_cache.h"
#include "service/service_clock.h"
#include "sim/trace_sink.h"
#include "system/board.h"

namespace dba::service {

/// Configuration of a QueryService.
struct ServiceConfig {
  /// The accelerator board executing the service's work (required,
  /// non-owning; the board must outlive the service and must not be
  /// driven by the caller while the service is live).
  system::Board* board = nullptr;
  /// Admission-queue bound: a Submit beyond this depth is shed with
  /// kUnavailable (>= 1).
  size_t queue_capacity = 256;
  /// Requests dispatched together per batch (>= 1).
  int max_batch = 64;
  /// How long the scheduler holds a batch open after the oldest pending
  /// request arrived, coalescing compatible work. 0 dispatches eagerly.
  uint64_t batch_window_ns = 0;
  /// Result-cache entries (0 disables caching).
  size_t cache_capacity = 128;
  /// QueryEngine::SetMaxAttempts applied to every registered table's
  /// engine: per-request transient-failure retries (>= 1).
  int max_attempts = 1;
  /// Additive per-tenant priority boost (tenants absent here get 0).
  /// A request's effective priority is request.priority + boost.
  std::map<std::string, int> tenant_priorities;
  /// Per-tenant admission policies: token-bucket rate limits and SLO
  /// classes (service/resilience.h). A rate-limited tenant whose bucket
  /// runs dry is shed at admission with kRateLimited; an SLO class
  /// stamps its default deadline on requests that carry none and adds
  /// its priority boost on top of tenant_priorities. Tenants absent
  /// here are unlimited kStandard.
  std::map<std::string, TenantPolicy> tenant_policies;
  /// Board-health circuit breaker fed by direct-op outcomes and
  /// RecoveryTelemetry. While open, direct set ops route through host
  /// kernels (host_fallback) or shed with kUnavailable, and predicate
  /// RID-set intersections force the planner's host routes.
  BreakerConfig breaker;
  /// Serve direct set ops from host kernels while the breaker is open
  /// (bit-exact, flagged ServiceResponse::degraded). When false they
  /// shed with kUnavailable instead.
  bool host_fallback = true;
  /// Deadline-aware service-level re-submit policy for transiently
  /// failed direct-op board batches (exponential backoff + jitter,
  /// never past the riders' deadline).
  RetryConfig retry;
  /// Time source for the batch window and deadline shedding. Null uses
  /// a wall SystemClock; tests inject a VirtualClock (non-owning).
  ServiceClock* clock = nullptr;
  /// Batch-level trace regions (non-owning; may be null). Timestamps
  /// are the service clock's nanoseconds.
  sim::CycleTraceSink* trace_sink = nullptr;

  Status Validate() const;
};

/// One request: either a predicate query against a registered table
/// (predicate != null) or a direct set operation on caller-supplied
/// sorted inputs (predicate == null).
struct ServiceRequest {
  std::string tenant;
  int priority = 0;
  /// Absolute service-clock deadline; 0 = none. A request still queued
  /// past its deadline is shed with kDeadlineExceeded at dispatch.
  uint64_t deadline_ns = 0;

  // --- Predicate query ---
  std::string table;
  std::shared_ptr<const query::Predicate> predicate;

  // --- Direct set operation (predicate == nullptr) ---
  SetOp op = SetOp::kIntersect;
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
};

struct ServiceResponse {
  Status status;
  std::vector<uint32_t> values;  // RIDs (predicate) or op output (direct)
  bool cache_hit = false;        // served from the result cache
  bool deduplicated = false;     // rode an identical request in the batch
  uint32_t batch_size = 0;       // requests in this dispatch batch
  uint64_t dispatch_seq = 0;     // global dispatch order (priority proof)
  uint32_t retries = 0;          // transient re-executions
  uint64_t accelerator_cycles = 0;
  /// Served in degraded mode: host kernels stood in for the board while
  /// the circuit breaker was open. Values are bit-identical to the
  /// board path; only the execution venue differs.
  bool degraded = false;
};

/// Monotonic service counters (mirrored as dba_service_* instruments in
/// the global obs::MetricsRegistry).
struct ServiceCounters {
  uint64_t submitted = 0;
  uint64_t rejected = 0;    // admission overflow
  uint64_t shed = 0;        // deadline expired while queued
  uint64_t dispatched = 0;  // requests that reached execution
  uint64_t batches = 0;
  uint64_t deduplicated = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  uint64_t retries = 0;
  // --- Resilience (the pre-existing fields above keep their exact
  // meaning: `rejected` = queue-full sheds, `shed` = deadline sheds) ---
  uint64_t rate_limited = 0;        // admission sheds: token bucket dry
  uint64_t breaker_sheds = 0;       // sheds while open, fallback disabled
  uint64_t degraded = 0;            // responses served by host fallback
  uint64_t breaker_transitions = 0; // breaker state changes
};

/// Async multi-tenant frontend over a system::Board: requests are
/// admitted into a bounded priority queue (load-shedding, never silent
/// drops), coalesced within a batch window, deduplicated, answered from
/// a column-version-validated LRU result cache when possible, and
/// executed -- direct set ops batched onto the board's cores via
/// Board::RunSetOperationBatch, predicate queries on per-table
/// QueryEngines pinned round-robin to board cores. Results are
/// byte-identical to serial per-call QueryEngine/Processor execution.
/// See docs/SERVICE.md.
class QueryService {
 public:
  static Result<std::unique_ptr<QueryService>> Create(
      const ServiceConfig& config);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Stops the scheduler; every still-queued request fails with
  /// kUnavailable ("service stopped").
  ~QueryService();

  /// Takes ownership of `table`, builds secondary indexes on all its
  /// columns, and pins its QueryEngine to a board core (round-robin).
  Status RegisterTable(std::unique_ptr<query::Table> table);

  /// Replaces a column's values: bumps the column version (stale
  /// secondary/partition indexes rebuild on next use) and invalidates
  /// every cached result depending on the column. Serialized against
  /// in-flight queries of the same table.
  Status UpdateColumn(const std::string& table, const std::string& column,
                      std::vector<uint32_t> values);

  /// Admits `request` and returns a future for its response. The future
  /// is always fulfilled: with the result, kUnavailable (queue full or
  /// service stopped), kDeadlineExceeded (shed), or the execution error.
  std::future<ServiceResponse> Submit(ServiceRequest request);

  /// Test hooks: freeze/unfreeze dispatch (queued work keeps admitting
  /// up to capacity while paused) and block until the queue is empty
  /// and no batch is executing.
  void PauseDispatch();
  void ResumeDispatch();
  void Drain();

  size_t queue_depth() const;
  ServiceCounters counters() const;
  std::vector<std::string> CacheKeysMruToLru() const;
  system::Board* board() { return config_.board; }
  /// The circuit breaker's state as of the last dispatch batch (the
  /// breaker itself is scheduler-thread-owned; this is a mirror).
  BreakerState breaker_state() const {
    return static_cast<BreakerState>(
        breaker_state_.load(std::memory_order_relaxed));
  }

  /// Forwards a deterministic attempt-fault hook to every registered
  /// table's engine (and tables registered later). Call while idle.
  void SetAttemptFaultHook(fault::AttemptFaultHook hook);

 private:
  struct Job {
    ServiceRequest request;
    std::promise<ServiceResponse> promise;
    uint64_t enqueue_ns = 0;
  };

  struct TableEntry {
    std::unique_ptr<query::Table> table;
    std::unique_ptr<query::QueryEngine> engine;
    int core = 0;
    /// UpdateColumn holds it unique; query execution holds it shared.
    std::unique_ptr<std::shared_mutex> mu;
  };

  explicit QueryService(const ServiceConfig& config);

  void SchedulerLoop();
  void ExecuteBatch(std::vector<Job> batch);
  uint64_t OldestEnqueueNsLocked() const;
  /// Toggles degraded predicate routing (force the planner's host
  /// intersect route on every registered engine) to match the breaker
  /// state. Scheduler thread (or RegisterTable) only; takes tables_mu_.
  void SetDegradedRouting(bool degraded);
  /// Mirrors breaker state/transition deltas into the atomics and
  /// global instruments after a dispatch batch (scheduler thread).
  void MirrorBreaker(uint64_t now_ns);

  ServiceConfig config_;
  std::unique_ptr<SystemClock> owned_clock_;  // when config_.clock == null
  ServiceClock* clock_ = nullptr;

  mutable std::mutex mu_;           // queue + scheduler state
  std::condition_variable cv_;      // scheduler wakeups
  std::condition_variable drain_cv_;
  AdmissionQueue<Job> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  bool dispatching_ = false;
  /// Per-tenant token buckets (guarded by mu_; built lazily from
  /// tenant_policies on a tenant's first submission).
  std::map<std::string, TokenBucket> buckets_;

  mutable std::shared_mutex tables_mu_;
  std::map<std::string, TableEntry> tables_;
  int next_core_ = 0;
  fault::AttemptFaultHook fault_hook_;  // guarded by tables_mu_
  bool degraded_routing_ = false;       // guarded by tables_mu_

  /// Board-health breaker (scheduler thread only; see breaker_state_
  /// for the cross-thread mirror).
  std::unique_ptr<CircuitBreaker> breaker_;
  uint64_t mirrored_transitions_ = 0;  // scheduler thread only

  mutable std::mutex cache_mu_;
  ResultCache cache_;

  uint64_t dispatch_seq_ = 0;  // scheduler thread only
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> dispatched_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> deduplicated_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> rate_limited_{0};
  std::atomic<uint64_t> breaker_sheds_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> breaker_transitions_{0};
  std::atomic<uint8_t> breaker_state_{0};  // BreakerState mirror

  std::thread scheduler_;
};

}  // namespace dba::service

#endif  // DBA_SERVICE_QUERY_SERVICE_H_
