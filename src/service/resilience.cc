#include "service/resilience.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "baseline/scalar_baseline.h"
#include "query/planner.h"

namespace dba::service {

namespace {

/// SplitMix64 finalizer: the jitter hash (matches the fault layer's
/// mixing idiom; self-contained so resilience has no fault dependency).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

// --- SLO classes -----------------------------------------------------------

std::string_view SloClassName(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return "interactive";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBatch:
      return "batch";
  }
  return "unknown";
}

uint64_t SloDefaultDeadlineNs(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return 5'000'000;  // 5 ms
    case SloClass::kStandard:
      return 50'000'000;  // 50 ms
    case SloClass::kBatch:
      return 0;  // unbounded
  }
  return 0;
}

int SloPriorityBoost(SloClass slo) {
  switch (slo) {
    case SloClass::kInteractive:
      return 10;
    case SloClass::kStandard:
      return 0;
    case SloClass::kBatch:
      return -10;
  }
  return 0;
}

Status TenantPolicy::Validate() const {
  if (!std::isfinite(rate_per_sec) || rate_per_sec < 0) {
    return Status::InvalidArgument(
        "TenantPolicy::rate_per_sec must be finite and >= 0");
  }
  if (rate_per_sec > 1e9) {
    return Status::InvalidArgument(
        "TenantPolicy::rate_per_sec must be <= 1e9");
  }
  if (rate_per_sec > 0 && (!std::isfinite(burst) || burst < 1)) {
    return Status::InvalidArgument(
        "TenantPolicy::burst must be >= 1 when rate-limited");
  }
  if (burst > 1e9) {
    return Status::InvalidArgument("TenantPolicy::burst must be <= 1e9");
  }
  return Status::Ok();
}

// --- TokenBucket -----------------------------------------------------------

TokenBucket::TokenBucket(double rate_per_sec, double burst) {
  if (rate_per_sec <= 0) return;  // unlimited
  const double interval = 1e9 / rate_per_sec;
  interval_ns_ = interval < 1 ? 1 : static_cast<uint64_t>(interval + 0.5);
  const double depth = burst < 1 ? 1 : burst;
  tolerance_ns_ = static_cast<uint64_t>((depth - 1) *
                                        static_cast<double>(interval_ns_));
}

bool TokenBucket::TryAcquire(uint64_t now_ns) {
  if (interval_ns_ == 0) return true;
  // GCRA conformance: the next theoretical arrival may lag `now` by at
  // most the burst tolerance.
  if (tat_ns_ > now_ns && tat_ns_ - now_ns > tolerance_ns_) return false;
  tat_ns_ = std::max(tat_ns_, now_ns) + interval_ns_;
  return true;
}

// --- RetryBudget -----------------------------------------------------------

Status RetryConfig::Validate() const {
  if (max_retries < 0 || max_retries > 16) {
    return Status::InvalidArgument(
        "RetryConfig::max_retries must be in 0..16");
  }
  if (max_retries > 0 && backoff_base_ns < 1) {
    return Status::InvalidArgument(
        "RetryConfig::backoff_base_ns must be >= 1");
  }
  if (backoff_cap_ns < backoff_base_ns) {
    return Status::InvalidArgument(
        "RetryConfig::backoff_cap_ns must be >= backoff_base_ns");
  }
  return Status::Ok();
}

RetryBudget::RetryBudget(const RetryConfig& config, uint64_t deadline_ns,
                         uint64_t key)
    : config_(config), deadline_ns_(deadline_ns), key_(key) {}

std::optional<uint64_t> RetryBudget::NextDelayNs(uint64_t now_ns) {
  if (retries_ >= config_.max_retries) return std::nullopt;
  uint64_t delay = retries_ >= 63
                       ? config_.backoff_cap_ns
                       : config_.backoff_base_ns << retries_;
  delay = std::min(delay, config_.backoff_cap_ns);
  // Deterministic jitter in [0, delay/2]: decorrelates retry storms
  // without breaking same-seed replays.
  const uint64_t jitter_window = delay / 2 + 1;
  delay += Mix64(config_.jitter_seed ^ Mix64(key_ ^
                                             static_cast<uint64_t>(retries_))) %
           jitter_window;
  delay = std::min(delay, config_.backoff_cap_ns);
  if (deadline_ns_ != 0 && now_ns + delay > deadline_ns_) {
    return std::nullopt;  // the retry would land past the deadline
  }
  ++retries_;
  return delay;
}

// --- CircuitBreaker --------------------------------------------------------

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
  }
  return "unknown";
}

Status BreakerConfig::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument(
        "BreakerConfig::failure_threshold must be >= 1");
  }
  if (!std::isfinite(quarantine_fraction) || quarantine_fraction <= 0 ||
      quarantine_fraction > 1) {
    return Status::InvalidArgument(
        "BreakerConfig::quarantine_fraction must be in (0, 1]");
  }
  if (open_duration_ns < 1) {
    return Status::InvalidArgument(
        "BreakerConfig::open_duration_ns must be >= 1");
  }
  if (half_open_probes < 1) {
    return Status::InvalidArgument(
        "BreakerConfig::half_open_probes must be >= 1");
  }
  if (probe_successes_to_close < 1 ||
      probe_successes_to_close > half_open_probes) {
    return Status::InvalidArgument(
        "BreakerConfig::probe_successes_to_close must be in "
        "1..half_open_probes");
  }
  return Status::Ok();
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config) {}

void CircuitBreaker::TripOpen(uint64_t now_ns) {
  state_ = BreakerState::kOpen;
  opened_at_ns_ = now_ns;
  probes_granted_ = 0;
  probe_successes_ = 0;
  ++transitions_;
}

void CircuitBreaker::Close() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  probes_granted_ = 0;
  probe_successes_ = 0;
  ++transitions_;
}

BreakerState CircuitBreaker::StateAt(uint64_t now_ns) {
  if (!config_.enabled) return BreakerState::kClosed;
  if (state_ == BreakerState::kOpen &&
      now_ns >= opened_at_ns_ + config_.open_duration_ns) {
    state_ = BreakerState::kHalfOpen;
    probes_granted_ = 0;
    probe_successes_ = 0;
    ++transitions_;
  }
  return state_;
}

bool CircuitBreaker::AllowProbe(uint64_t now_ns) {
  if (StateAt(now_ns) != BreakerState::kHalfOpen) return false;
  if (probes_granted_ >= config_.half_open_probes) return false;
  ++probes_granted_;
  return true;
}

void CircuitBreaker::RecordSuccess(uint64_t now_ns) {
  if (!config_.enabled) return;
  switch (StateAt(now_ns)) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++probe_successes_ >= config_.probe_successes_to_close) Close();
      break;
    case BreakerState::kOpen:
      break;  // stale success from before the trip: ignore
  }
}

void CircuitBreaker::RecordFailure(uint64_t now_ns) {
  if (!config_.enabled) return;
  switch (StateAt(now_ns)) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        TripOpen(now_ns);
      }
      break;
    case BreakerState::kHalfOpen:
      TripOpen(now_ns);  // a failed probe re-arms the cool-down
      break;
    case BreakerState::kOpen:
      break;
  }
}

void CircuitBreaker::OnBoardResult(bool ok,
                                   const system::RecoveryTelemetry* telemetry,
                                   int num_cores, uint64_t now_ns) {
  if (!config_.enabled) return;
  // Quarantine fraction trips immediately, even off a degraded success:
  // a board finishing on too few cores is already unhealthy.
  if (telemetry != nullptr && num_cores > 0 &&
      static_cast<double>(telemetry->quarantined_cores.size()) + 1e-9 >=
          config_.quarantine_fraction * static_cast<double>(num_cores)) {
    if (StateAt(now_ns) != BreakerState::kOpen) TripOpen(now_ns);
    return;
  }
  const bool retry_storm = telemetry != nullptr && config_.retry_alarm > 0 &&
                           telemetry->retries >= config_.retry_alarm;
  if (!ok || retry_storm) {
    RecordFailure(now_ns);
  } else {
    RecordSuccess(now_ns);
  }
}

// --- Host fallback ---------------------------------------------------------

Result<std::vector<uint32_t>> RunHostFallbackOp(SetOp op,
                                                std::span<const uint32_t> a,
                                                std::span<const uint32_t> b) {
  std::vector<uint32_t> out;
  if (a.empty() || b.empty()) {
    // Mirror Board::RunDegenerateRange bit for bit: intersect drops
    // everything, union/merge keep the non-empty operand, difference
    // keeps a.
    switch (op) {
      case SetOp::kIntersect:
        break;
      case SetOp::kUnion:
      case SetOp::kMerge:
        out.assign(a.empty() ? b.begin() : a.begin(),
                   a.empty() ? b.end() : a.end());
        break;
      case SetOp::kDifference:
        out.assign(a.begin(), a.end());
        break;
      default:
        return Status::InvalidArgument(
            "host fallback supports intersect/union/difference/merge");
    }
    return out;
  }
  switch (op) {
    case SetOp::kIntersect: {
      // The planner's host kernels, picked by its cost model (the EIS
      // route is exactly what degraded mode must avoid). A transient
      // partition probe pays its build on every call, so it only wins
      // at extreme skew.
      const query::CostModel model = query::DefaultCostModel();
      query::Route route = query::Route::kSimdMerge;
      double best = model.SimdMergeNs(a.size(), b.size());
      const double gallop = model.GallopingNs(a.size(), b.size());
      if (gallop < best) {
        best = gallop;
        route = query::Route::kGalloping;
      }
      const double probe =
          model.PartitionProbeNs(a.size(), b.size()) +
          model.PartitionBuildNs(std::max(a.size(), b.size()));
      if (probe < best) route = query::Route::kPartitionProbe;
      DBA_ASSIGN_OR_RETURN(query::RouteRun run,
                           query::RunIntersectRoute(route, a, b,
                                                    /*processor=*/nullptr));
      return std::move(run.result);
    }
    case SetOp::kUnion:
      return baseline::ScalarUnion(a, b);
    case SetOp::kDifference:
      return baseline::ScalarDifference(a, b);
    case SetOp::kMerge:
      out.resize(a.size() + b.size());
      std::merge(a.begin(), a.end(), b.begin(), b.end(), out.begin());
      return out;
    default:
      return Status::InvalidArgument(
          "host fallback supports intersect/union/difference/merge");
  }
}

}  // namespace dba::service
