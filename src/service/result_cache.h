#ifndef DBA_SERVICE_RESULT_CACHE_H_
#define DBA_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dba::service {

/// One column-version stamp a cached result depends on. Entries are
/// valid only while every stamped column is still at the stamped
/// version (Table::ColumnVersion).
struct ColumnVersion {
  std::string table;
  std::string column;
  uint64_t version = 0;

  bool operator==(const ColumnVersion&) const = default;
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // version-stale lookups + explicit drops
};

/// LRU cache of query results keyed by a canonical query string and
/// guarded by column-version stamps: a lookup whose current versions
/// disagree with the stored stamps drops the entry and misses (a stale
/// result is never served). Explicit invalidation (InvalidateColumn)
/// drops every entry depending on a column, so a mutation immediately
/// clears derived results even before their next lookup.
///
/// Not internally synchronized: QueryService serializes access.
class ResultCache {
 public:
  /// `capacity` is the max entry count; 0 disables caching entirely.
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the cached values into `*out` and refreshes the entry's
  /// recency iff `key` is present and every stored stamp matches the
  /// same (table, column) stamp in `current`. A version mismatch
  /// erases the entry and counts an invalidation plus a miss.
  bool Lookup(const std::string& key, std::span<const ColumnVersion> current,
              std::vector<uint32_t>* out);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used
  /// entry when over capacity. No-op when capacity is 0.
  void Insert(std::string key, std::vector<uint32_t> values,
              std::vector<ColumnVersion> versions);

  /// Drops every entry stamped with (table, column); each counts one
  /// invalidation.
  void InvalidateColumn(std::string_view table, std::string_view column);

  const CacheStats& stats() const { return stats_; }
  size_t size() const { return lru_.size(); }

  /// Cache keys, most-recently-used first (pins the eviction order in
  /// tests).
  std::vector<std::string> KeysMruToLru() const;

 private:
  struct Entry {
    std::string key;
    std::vector<uint32_t> values;
    std::vector<ColumnVersion> versions;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace dba::service

#endif  // DBA_SERVICE_RESULT_CACHE_H_
