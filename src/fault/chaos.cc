#include "fault/chaos.h"

#include <algorithm>

namespace dba::fault {

namespace {

/// SplitMix64 finalizer: the schedule's only entropy source.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from one mixed draw.
double MixUnit(uint64_t x) {
  return static_cast<double>(Mix64(x) >> 11) * 0x1.0p-53;
}

/// A fresh plan carrying the schedule-wide watchdog budget and a
/// per-phase injector seed.
FaultPlan BasePlan(uint64_t seed, size_t phase, const ChaosOptions& options) {
  FaultPlan plan;
  plan.seed = Mix64(seed ^ (0xC4A05ull + phase));
  plan.hang_watchdog_cycles = options.hang_watchdog_cycles;
  return plan;
}

/// `count` distinct cores drawn from [0, num_cores), seeded.
std::vector<int> DrawCores(uint64_t seed, int num_cores, int count) {
  std::vector<int> all(static_cast<size_t>(num_cores));
  for (int c = 0; c < num_cores; ++c) all[static_cast<size_t>(c)] = c;
  // Fisher-Yates prefix shuffle with mixed draws.
  for (int i = 0; i < count && i < num_cores; ++i) {
    const int j =
        i + static_cast<int>(Mix64(seed ^ static_cast<uint64_t>(i)) %
                             static_cast<uint64_t>(num_cores - i));
    std::swap(all[static_cast<size_t>(i)], all[static_cast<size_t>(j)]);
  }
  all.resize(static_cast<size_t>(std::min(count, num_cores)));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

std::string_view ChaosProfileName(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kCalm:
      return "calm";
    case ChaosProfile::kRamp:
      return "ramp";
    case ChaosProfile::kWaves:
      return "waves";
    case ChaosProfile::kBrownout:
      return "brownout";
    case ChaosProfile::kMeltdown:
      return "meltdown";
  }
  return "unknown";
}

Result<ChaosProfile> ChaosProfileFromName(std::string_view name) {
  for (size_t p = 0; p < kNumChaosProfiles; ++p) {
    const ChaosProfile profile = static_cast<ChaosProfile>(p);
    if (name == ChaosProfileName(profile)) return profile;
  }
  return Status::InvalidArgument(
      "unknown chaos profile '" + std::string(name) +
      "' (expected calm|ramp|waves|brownout|meltdown)");
}

Status ChaosOptions::Validate() const {
  if (num_cores < 1) {
    return Status::InvalidArgument("ChaosOptions::num_cores must be >= 1");
  }
  if (steps_per_phase < 1) {
    return Status::InvalidArgument(
        "ChaosOptions::steps_per_phase must be >= 1");
  }
  if (hang_watchdog_cycles < 1) {
    return Status::InvalidArgument(
        "ChaosOptions::hang_watchdog_cycles must be >= 1");
  }
  return Status::Ok();
}

Result<ChaosSchedule> ChaosSchedule::Make(ChaosProfile profile, uint64_t seed,
                                          const ChaosOptions& options) {
  DBA_RETURN_IF_ERROR(options.Validate());
  ChaosSchedule schedule;
  schedule.profile_ = profile;
  schedule.seed_ = seed;
  std::vector<ChaosPhase>& phases = schedule.phases_;

  const auto push = [&](std::string label, FaultPlan plan,
                        bool heal = false) {
    ChaosPhase phase;
    phase.label = std::move(label);
    phase.plan = std::move(plan);
    phase.steps = options.steps_per_phase;
    phase.heal = heal;
    phases.push_back(std::move(phase));
  };

  switch (profile) {
    case ChaosProfile::kCalm: {
      push("calm", BasePlan(seed, 0, options));
      push("still calm", BasePlan(seed, 1, options));
      break;
    }

    case ChaosProfile::kRamp: {
      // Transient rates climb over three phases, then the board
      // recovers: rate_k = base * (k + 1), base in [0.02, 0.08).
      const double base = 0.02 + 0.06 * MixUnit(seed ^ 0x4A3Full);
      for (size_t k = 0; k < 3; ++k) {
        FaultPlan plan = BasePlan(seed, k, options);
        const double rate = base * static_cast<double>(k + 1);
        plan.input_flip_rate = rate;
        plan.result_flip_rate = rate * 0.5;
        plan.transfer_fail_rate = rate * 0.5;
        plan.hang_rate = rate * 0.25;
        push("ramp " + std::to_string(k + 1), std::move(plan));
      }
      push("recovered", BasePlan(seed, 3, options), /*heal=*/true);
      break;
    }

    case ChaosProfile::kWaves: {
      // Cores die in waves; the operator swaps the dead parts (heal)
      // before each calm interlude.
      const int max_wave = std::max(1, options.num_cores / 2);
      for (size_t wave = 0; wave < 3; ++wave) {
        FaultPlan plan = BasePlan(seed, 2 * wave, options);
        const int dead =
            1 + static_cast<int>(Mix64(seed ^ (0xDEADull + wave)) %
                                 static_cast<uint64_t>(max_wave));
        plan.broken_cores = DrawCores(Mix64(seed ^ (0xC0DEull + wave)),
                                      options.num_cores, dead);
        push("wave " + std::to_string(wave + 1) + " (" +
                 std::to_string(dead) + " dead)",
             std::move(plan));
        push("healed " + std::to_string(wave + 1),
             BasePlan(seed, 2 * wave + 1, options), /*heal=*/true);
      }
      break;
    }

    case ChaosProfile::kBrownout: {
      // The NoC browns out in the middle of the run: transfer failures
      // and timeouts spike, compute stays healthy.
      push("pre-brownout", BasePlan(seed, 0, options));
      for (size_t k = 0; k < 2; ++k) {
        FaultPlan plan = BasePlan(seed, k + 1, options);
        plan.transfer_fail_rate = 0.3 + 0.3 * MixUnit(seed ^ (0xB0ull + k));
        plan.transfer_timeout_rate =
            0.1 + 0.2 * MixUnit(seed ^ (0xB1ull + k));
        push("brownout " + std::to_string(k + 1), std::move(plan));
      }
      push("cleared", BasePlan(seed, 3, options), /*heal=*/true);
      break;
    }

    case ChaosProfile::kMeltdown: {
      // Every core breaks at once -- the breaker must trip and the
      // service must ride it out on host fallback -- then the operator
      // replaces the board and traffic returns.
      push("pre-meltdown", BasePlan(seed, 0, options));
      FaultPlan melted = BasePlan(seed, 1, options);
      melted.broken_cores.resize(static_cast<size_t>(options.num_cores));
      for (int c = 0; c < options.num_cores; ++c) {
        melted.broken_cores[static_cast<size_t>(c)] = c;
      }
      push("meltdown (all cores dead)", std::move(melted));
      push("board replaced", BasePlan(seed, 2, options), /*heal=*/true);
      break;
    }
  }

  for (const ChaosPhase& phase : phases) {
    DBA_RETURN_IF_ERROR(phase.plan.Validate());
  }
  return schedule;
}

uint64_t ChaosSchedule::total_steps() const {
  uint64_t total = 0;
  for (const ChaosPhase& phase : phases_) {
    total += static_cast<uint64_t>(phase.steps);
  }
  return total;
}

size_t ChaosSchedule::PhaseIndexForStep(uint64_t step) const {
  uint64_t consumed = 0;
  for (size_t p = 0; p < phases_.size(); ++p) {
    consumed += static_cast<uint64_t>(phases_[p].steps);
    if (step < consumed) return p;
  }
  return phases_.empty() ? 0 : phases_.size() - 1;
}

}  // namespace dba::fault
