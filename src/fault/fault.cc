#include "fault/fault.h"

#include <algorithm>
#include <utility>

#include "common/random.h"
#include "isa/assembler.h"
#include "obs/metrics/metrics.h"

namespace dba::fault {

namespace {

// Per-kind injected-fault counters.  Decide() is pure and thread-safe;
// counting decisions keeps totals deterministic because the set of
// attempt sites a board run evaluates does not depend on host threads.
obs::Counter* InjectedCounter(FaultKind kind) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static constexpr std::string_view kHelp = "Injected fault decisions by kind.";
  static obs::Counter* const hang = registry.GetCounter(
      "dba_fault_injected_total", "kind", FaultKindName(FaultKind::kCoreHang),
      kHelp);
  static obs::Counter* const input_flip = registry.GetCounter(
      "dba_fault_injected_total", "kind",
      FaultKindName(FaultKind::kLocalStoreBitFlip), kHelp);
  static obs::Counter* const result_flip = registry.GetCounter(
      "dba_fault_injected_total", "kind",
      FaultKindName(FaultKind::kResultBitFlip), kHelp);
  static obs::Counter* const transfer_fail = registry.GetCounter(
      "dba_fault_injected_total", "kind",
      FaultKindName(FaultKind::kTransferFail), kHelp);
  static obs::Counter* const transfer_timeout = registry.GetCounter(
      "dba_fault_injected_total", "kind",
      FaultKindName(FaultKind::kTransferTimeout), kHelp);
  switch (kind) {
    case FaultKind::kCoreHang:
      return hang;
    case FaultKind::kLocalStoreBitFlip:
      return input_flip;
    case FaultKind::kResultBitFlip:
      return result_flip;
    case FaultKind::kTransferFail:
      return transfer_fail;
    case FaultKind::kTransferTimeout:
      return transfer_timeout;
    case FaultKind::kNone:
      break;
  }
  return nullptr;
}

void CountDecision(const FaultDecision& decision) {
  if (decision.hang) InjectedCounter(FaultKind::kCoreHang)->Increment();
  if (decision.transfer_fail) {
    InjectedCounter(FaultKind::kTransferFail)->Increment();
  }
  if (decision.transfer_timeout) {
    InjectedCounter(FaultKind::kTransferTimeout)->Increment();
  }
  if (decision.flip_input) {
    InjectedCounter(FaultKind::kLocalStoreBitFlip)->Increment();
  }
  if (decision.flip_result) {
    InjectedCounter(FaultKind::kResultBitFlip)->Increment();
  }
}

/// SplitMix-style combiner; the per-site seed must decorrelate sites
/// that differ in a single field.
uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  return h;
}

Status ValidateRate(double rate, const char* name) {
  if (rate < 0 || rate > 1) {
    return Status::InvalidArgument(std::string("FaultPlan::") + name +
                                   " must be in [0, 1]");
  }
  return Status::Ok();
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kCoreHang:
      return "core_hang";
    case FaultKind::kLocalStoreBitFlip:
      return "local_store_bit_flip";
    case FaultKind::kResultBitFlip:
      return "result_bit_flip";
    case FaultKind::kTransferFail:
      return "transfer_fail";
    case FaultKind::kTransferTimeout:
      return "transfer_timeout";
  }
  return "unknown";
}

Status FaultPlan::Validate() const {
  DBA_RETURN_IF_ERROR(ValidateRate(hang_rate, "hang_rate"));
  DBA_RETURN_IF_ERROR(ValidateRate(input_flip_rate, "input_flip_rate"));
  DBA_RETURN_IF_ERROR(ValidateRate(result_flip_rate, "result_flip_rate"));
  DBA_RETURN_IF_ERROR(ValidateRate(transfer_fail_rate, "transfer_fail_rate"));
  DBA_RETURN_IF_ERROR(
      ValidateRate(transfer_timeout_rate, "transfer_timeout_rate"));
  for (const int core : broken_cores) {
    if (core < 0) {
      return Status::InvalidArgument(
          "FaultPlan::broken_cores entries must be >= 0");
    }
  }
  if (hang_watchdog_cycles == 0) {
    return Status::InvalidArgument(
        "FaultPlan::hang_watchdog_cycles must be >= 1");
  }
  return Status::Ok();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::IsBroken(uint32_t core) const {
  return std::find(plan_.broken_cores.begin(), plan_.broken_cores.end(),
                   static_cast<int>(core)) != plan_.broken_cores.end();
}

FaultDecision FaultInjector::Decide(const AttemptSite& site) const {
  FaultDecision decision;
  // Permanent failures key off the core: wherever a partition lands,
  // a dead part stays dead.
  if (IsBroken(site.core)) decision.hang = true;
  if (plan_.hang_rate == 0 && plan_.input_flip_rate == 0 &&
      plan_.result_flip_rate == 0 && plan_.transfer_fail_rate == 0 &&
      plan_.transfer_timeout_rate == 0) {
    CountDecision(decision);
    return decision;
  }
  // Transient faults key off the work item (not the core): the schedule
  // must not change when a retry lands on a different core, and must
  // not depend on host-thread scheduling. Draws happen in a fixed order
  // so every rate consumes the same entropy.
  uint64_t h = Mix(plan_.seed ^ 0xD1B54A32D192ED03ULL, site.op_ordinal);
  h = Mix(h, site.partition);
  h = Mix(h, site.attempt);
  Random rng(h);
  decision.hang |= rng.Bernoulli(plan_.hang_rate);
  decision.transfer_fail = rng.Bernoulli(plan_.transfer_fail_rate);
  decision.transfer_timeout = rng.Bernoulli(plan_.transfer_timeout_rate);
  decision.flip_input = rng.Bernoulli(plan_.input_flip_rate);
  decision.flip_result = rng.Bernoulli(plan_.result_flip_rate);
  decision.flip_offset = rng.Next64();
  decision.flip_bit = static_cast<uint32_t>(rng.Uniform(32));
  CountDecision(decision);
  return decision;
}

AttemptFaultHook MakeTransientFaultHook(uint64_t seed, double rate,
                                        StatusCode code) {
  return [seed, rate, code](std::string_view op_key, int attempt) -> Status {
    uint64_t h = Mix(seed ^ 0xA24BAED4963EE407ULL,
                     static_cast<uint64_t>(attempt));
    for (const char c : op_key) {
      h = Mix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    Random rng(h);
    if (!rng.Bernoulli(rate)) return Status::Ok();
    return Status(code, "injected transient host fault on '" +
                            std::string(op_key) + "' attempt " +
                            std::to_string(attempt));
  };
}

Result<isa::Program> BuildHangLoopProgram() {
  isa::Assembler masm;
  isa::Label loop;
  masm.Bind(&loop, "hang");
  masm.J(&loop);
  // Unreachable; keeps the program well-formed for tools that expect a
  // terminating instruction.
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::fault
