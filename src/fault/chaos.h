#ifndef DBA_FAULT_CHAOS_H_
#define DBA_FAULT_CHAOS_H_

// Chaos harness: seeded, phased fault schedules for driving a live
// board (and the query service above it) through realistic outage
// shapes -- fault-rate ramps, core-death waves, NoC brownouts, and a
// full-board meltdown. A ChaosSchedule is pure data: an ordered list of
// phases, each a FaultPlan plus how many workload steps it covers and
// whether the operator "healed" the board (quarantine reset) at phase
// entry. Callers step it against a Board with SetFaultPlan /
// ResetQuarantine at step boundaries, while the board is idle.
//
// Everything is a pure function of (profile, seed, options): the same
// schedule replays bit-identically at any host-thread count, which is
// what lets the chaos property suite compare against a serial
// reference.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fault/fault.h"

namespace dba::fault {

/// The outage shapes the harness can generate.
enum class ChaosProfile : uint8_t {
  kCalm = 0,      // no faults (control group)
  kRamp = 1,      // transient fault rates ramp up, then recover
  kWaves = 2,     // cores die in waves, operator heals between waves
  kBrownout = 3,  // NoC transfer failures/timeouts spike, then clear
  kMeltdown = 4,  // every core breaks at once, then the board is healed
};
inline constexpr size_t kNumChaosProfiles = 5;

std::string_view ChaosProfileName(ChaosProfile profile);

/// Parses a profile name ("calm", "ramp", "waves", "brownout",
/// "meltdown"); kInvalidArgument on anything else.
Result<ChaosProfile> ChaosProfileFromName(std::string_view name);

/// One phase of a chaos schedule.
struct ChaosPhase {
  std::string label;
  /// The fault schedule in force for the phase (Board::SetFaultPlan at
  /// phase entry). A default plan restores the fault-free fast path.
  FaultPlan plan;
  /// Workload steps (dispatch batches, actions, ...) the phase covers.
  int steps = 1;
  /// Operator intervention at phase entry: return quarantined cores to
  /// service (Board::ResetQuarantine) before applying `plan`.
  bool heal = false;
};

/// Knobs for schedule generation.
struct ChaosOptions {
  /// Cores of the target board (bounds broken-core draws).
  int num_cores = 4;
  /// Steps each generated phase covers (>= 1).
  int steps_per_phase = 4;
  /// Watchdog budget stamped into every phase plan. The chaos suites
  /// use a small budget so hung-core trials stay fast; the default
  /// FaultPlan value (50000) models production patience.
  uint64_t hang_watchdog_cycles = 2000;

  Status Validate() const;
};

/// A seeded, phased fault schedule (see file comment).
class ChaosSchedule {
 public:
  /// Builds the schedule for `profile`: phase shapes are fixed by the
  /// profile, rates / core choices / per-phase injector seeds derive
  /// deterministically from `seed`.
  static Result<ChaosSchedule> Make(ChaosProfile profile, uint64_t seed,
                                    const ChaosOptions& options);
  static Result<ChaosSchedule> Make(ChaosProfile profile, uint64_t seed) {
    return Make(profile, seed, ChaosOptions{});
  }

  ChaosProfile profile() const { return profile_; }
  uint64_t seed() const { return seed_; }
  const std::vector<ChaosPhase>& phases() const { return phases_; }

  /// Sum of phase step counts.
  uint64_t total_steps() const;

  /// Index of the phase covering step `step` (0-based); steps past the
  /// end clamp to the last phase (its plan simply stays in force).
  size_t PhaseIndexForStep(uint64_t step) const;
  const ChaosPhase& PhaseForStep(uint64_t step) const {
    return phases_[PhaseIndexForStep(step)];
  }

 private:
  ChaosSchedule() = default;

  ChaosProfile profile_ = ChaosProfile::kCalm;
  uint64_t seed_ = 0;
  std::vector<ChaosPhase> phases_;
};

}  // namespace dba::fault

#endif  // DBA_FAULT_CHAOS_H_
