#ifndef DBA_FAULT_FAULT_H_
#define DBA_FAULT_FAULT_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "isa/program.h"

namespace dba::fault {

/// The fault classes the injector can produce. At the part counts the
/// paper targets (Section 1: "hundreds of chips on a single board"),
/// all of these are steady-state events, not exceptions.
enum class FaultKind : uint8_t {
  kNone = 0,
  kCoreHang = 1,          // core stops making progress; watchdog trips
  kLocalStoreBitFlip = 2, // transient flip in a staged input word
  kResultBitFlip = 3,     // transient flip in a partition result word
  kTransferFail = 4,      // NoC transfer aborts (link error)
  kTransferTimeout = 5,   // NoC transfer never completes
};

std::string_view FaultKindName(FaultKind kind);

/// Identifies one execution attempt of one partition. The injector's
/// decision is a pure function of the plan seed and this site, so the
/// fault schedule is attached to the *work item*, not to whichever host
/// thread or core happens to execute it -- that is what makes recovery
/// reproducible at any host_threads setting and across requeues.
struct AttemptSite {
  uint64_t op_ordinal = 0;  // nth board-level operation since creation
  uint32_t partition = 0;   // partition index within the operation
  uint32_t core = 0;        // core executing the attempt
  uint32_t attempt = 0;     // 0 = first try, 1 = first retry, ...
};

/// What the injector decided for one attempt. Multiple faults can hit
/// the same attempt; the hang (if any) preempts the rest.
struct FaultDecision {
  bool hang = false;
  bool transfer_fail = false;
  bool transfer_timeout = false;
  bool flip_input = false;
  bool flip_result = false;
  /// Entropy for placing a flip: the target word is flip_offset modulo
  /// the affected array's size, the target bit is flip_bit.
  uint64_t flip_offset = 0;
  uint32_t flip_bit = 0;

  bool any() const {
    return hang || transfer_fail || transfer_timeout || flip_input ||
           flip_result;
  }
};

/// A deterministic, seeded fault schedule. Rates are per-attempt
/// probabilities; `broken_cores` lists cores that hang on every attempt
/// (permanent failures). A default-constructed plan injects nothing.
struct FaultPlan {
  uint64_t seed = 0;
  double hang_rate = 0;
  double input_flip_rate = 0;
  double result_flip_rate = 0;
  double transfer_fail_rate = 0;
  double transfer_timeout_rate = 0;
  /// Cores that permanently hang (simulating dead parts).
  std::vector<int> broken_cores;
  /// Watchdog budget a fault-aware caller grants a possibly-hung core;
  /// also the cycle cost charged for a detected hang.
  uint64_t hang_watchdog_cycles = 50000;

  /// True when the plan can inject at least one fault.
  bool enabled() const {
    return hang_rate > 0 || input_flip_rate > 0 || result_flip_rate > 0 ||
           transfer_fail_rate > 0 || transfer_timeout_rate > 0 ||
           !broken_cores.empty();
  }

  Status Validate() const;
};

/// Draws fault decisions from a FaultPlan. Thread-safe: Decide is a
/// pure function of (plan, site) with no mutable state, so concurrent
/// host threads can consult one injector.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// True when `core` is in the plan's broken_cores list.
  bool IsBroken(uint32_t core) const;

  /// The (deterministic) fault decision for one attempt.
  FaultDecision Decide(const AttemptSite& site) const;

 private:
  FaultPlan plan_;
};

/// A two-instruction program that branches to itself forever: loading it
/// into a core makes the real sim::Cpu watchdog trip after exactly the
/// caller's max_cycles budget -- a genuine hang, not a simulated status.
Result<isa::Program> BuildHangLoopProgram();

/// Per-attempt transient-fault hook for host-side execution paths
/// (QueryEngine host routes, QueryService dispatches) that never touch
/// the board's FaultInjector. The hook is consulted once per
/// (operation key, attempt) before the attempt runs; a non-OK return
/// fails that attempt with the returned status, and the caller's normal
/// transient-retry policy decides what happens next. Hooks must be
/// deterministic and thread-safe: like FaultInjector::Decide, the
/// decision has to key off the work item, not the executing thread.
using AttemptFaultHook =
    std::function<Status(std::string_view op_key, int attempt)>;

/// A seeded hook that fails each attempt independently with probability
/// `rate`, returning a status with `code` (one of the transient codes:
/// kDeadlineExceeded, kUnavailable, kDataLoss). The decision is a pure
/// function of (seed, op_key, attempt), so replays with the same seed
/// see the same fault schedule at any host-thread count.
AttemptFaultHook MakeTransientFaultHook(
    uint64_t seed, double rate,
    StatusCode code = StatusCode::kUnavailable);

}  // namespace dba::fault

#endif  // DBA_FAULT_FAULT_H_
