#include "dbkern/partition_kernels.h"

#include "isa/assembler.h"
#include "tie/partition_extension.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;

Result<isa::Program> BuildPartitionKernel(bool use_extension, int buckets) {
  if (buckets < 2 || buckets > tie::PartitionExtension::kMaxBuckets) {
    return Status::InvalidArgument("bucket count must be 2..16");
  }
  Assembler masm;
  Label loop, done;

  if (use_extension) {
    masm.Movi(Reg::a7, 0);
    masm.Tie(tie::PartitionExtension::kInit,
             static_cast<uint16_t>(buckets));
    masm.Bind(&loop, "partition_loop");
    masm.Tie(tie::PartitionExtension::kPartitionBeat, 6);
    masm.Bne(Reg::a6, Reg::a7, &loop);
    masm.Tie(tie::PartitionExtension::kFlush);
    masm.Halt();
    return masm.Finish();
  }

  // Software: per value, a branch-free compare-accumulate chain over the
  // splitters, then a read-modify-write of the bucket count.
  Label inner, inner_done;
  masm.Movi(Reg::a15, 0);
  masm.Slli(Reg::a7, Reg::a2, 2);
  masm.Add(Reg::a7, Reg::a0, Reg::a7);  // source end
  masm.Mv(Reg::a6, Reg::a0);            // cursor
  masm.Bind(&loop, "value_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &done);
  masm.Lw(Reg::a8, Reg::a6, 0);  // value
  masm.Movi(Reg::a9, 0);         // bucket
  masm.Mv(Reg::a11, Reg::a1);    // splitter cursor
  masm.Movi(Reg::a13, buckets - 1);
  masm.Bind(&inner, "splitter_loop");
  masm.Beq(Reg::a13, Reg::a15, &inner_done);
  masm.Lw(Reg::a10, Reg::a11, 0);
  masm.Sltu(Reg::a12, Reg::a8, Reg::a10);  // value < splitter
  masm.Xori(Reg::a12, Reg::a12, 1);        // value >= splitter
  masm.Add(Reg::a9, Reg::a9, Reg::a12);
  masm.Addi(Reg::a11, Reg::a11, 4);
  masm.Addi(Reg::a13, Reg::a13, -1);
  masm.J(&inner);
  masm.Bind(&inner_done, "route");
  // count address = a5 + 4*bucket; slot = base + 4*(bucket*cap + count).
  masm.Slli(Reg::a10, Reg::a9, 2);
  masm.Add(Reg::a10, Reg::a5, Reg::a10);
  masm.Lw(Reg::a12, Reg::a10, 0);
  masm.Mul(Reg::a14, Reg::a9, Reg::a3);
  masm.Add(Reg::a14, Reg::a14, Reg::a12);
  masm.Slli(Reg::a14, Reg::a14, 2);
  masm.Add(Reg::a14, Reg::a4, Reg::a14);
  masm.Sw(Reg::a8, Reg::a14, 0);
  masm.Addi(Reg::a12, Reg::a12, 1);
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&loop);
  masm.Bind(&done, "done");
  masm.Mv(Reg::a5, Reg::a2);
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
