#include "dbkern/scalar_kernels.h"

#include "isa/assembler.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;

namespace {

// Register plan shared by the scalar set-operation kernels:
//   a6  = cursor into A (byte address)     a7  = end of A
//   a8  = cursor into B                    a9  = end of B
//   a10 = output cursor                    a11 = *A, a12 = *B
void EmitSetOpPrologue(Assembler& masm) {
  masm.Slli(Reg::a7, Reg::a2, 2);
  masm.Add(Reg::a7, Reg::a0, Reg::a7);
  masm.Slli(Reg::a9, Reg::a3, 2);
  masm.Add(Reg::a9, Reg::a1, Reg::a9);
  masm.Mv(Reg::a6, Reg::a0);
  masm.Mv(Reg::a8, Reg::a1);
  masm.Mv(Reg::a10, Reg::a4);
}

// Epilogue: a5 = number of 32-bit elements written.
void EmitSetOpEpilogue(Assembler& masm, Label* done) {
  masm.Bind(done, "done");
  masm.Sub(Reg::a5, Reg::a10, Reg::a4);
  masm.Srli(Reg::a5, Reg::a5, 2);
  masm.Halt();
}

// Copies [cursor, end) to the output; used for the remainder loops of
// union ("remaining values ... are written at the end", Figure 2).
void EmitTailCopy(Assembler& masm, Reg cursor, Reg end, Label* copy_loop,
                  Label* done) {
  masm.Bind(copy_loop);
  masm.Bgeu(cursor, end, done);
  masm.Lw(Reg::a11, cursor, 0);
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(cursor, cursor, 4);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.J(copy_loop);
}

Result<isa::Program> BuildScalarIntersect() {
  Assembler masm;
  Label loop, match, less_a, done;

  EmitSetOpPrologue(masm);
  masm.Bind(&loop, "core_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &done);
  masm.Bgeu(Reg::a8, Reg::a9, &done);
  masm.Lw(Reg::a11, Reg::a6, 0);
  masm.Lw(Reg::a12, Reg::a8, 0);
  // The data-dependent branch pair of Figure 3: match / A-smaller / else.
  masm.Beq(Reg::a11, Reg::a12, &match);
  masm.Bltu(Reg::a11, Reg::a12, &less_a);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.J(&loop);
  masm.Bind(&less_a, "advance_a");
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&loop);
  masm.Bind(&match, "match");
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.J(&loop);
  EmitSetOpEpilogue(masm, &done);
  return masm.Finish();
}

Result<isa::Program> BuildScalarUnion() {
  Assembler masm;
  Label loop, match, take_a, take_b, tail_a, tail_b, done;

  EmitSetOpPrologue(masm);
  masm.Bind(&loop, "core_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &tail_b);
  masm.Bgeu(Reg::a8, Reg::a9, &tail_a);
  masm.Lw(Reg::a11, Reg::a6, 0);
  masm.Lw(Reg::a12, Reg::a8, 0);
  masm.Beq(Reg::a11, Reg::a12, &match);
  masm.Bltu(Reg::a11, Reg::a12, &take_a);
  masm.Bind(&take_b, "take_b");
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.J(&loop);
  masm.Bind(&take_a, "take_a");
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&loop);
  masm.Bind(&match, "match");
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.J(&loop);
  EmitTailCopy(masm, Reg::a6, Reg::a7, &tail_a, &done);
  EmitTailCopy(masm, Reg::a8, Reg::a9, &tail_b, &done);
  EmitSetOpEpilogue(masm, &done);
  return masm.Finish();
}

Result<isa::Program> BuildScalarDifference() {
  Assembler masm;
  Label loop, match, take_a, tail_a, done;

  EmitSetOpPrologue(masm);
  masm.Bind(&loop, "core_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &done);
  masm.Bgeu(Reg::a8, Reg::a9, &tail_a);
  masm.Lw(Reg::a11, Reg::a6, 0);
  masm.Lw(Reg::a12, Reg::a8, 0);
  masm.Beq(Reg::a11, Reg::a12, &match);
  masm.Bltu(Reg::a11, Reg::a12, &take_a);
  masm.Addi(Reg::a8, Reg::a8, 4);  // B smaller: discard
  masm.J(&loop);
  masm.Bind(&take_a, "emit_a");
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&loop);
  masm.Bind(&match, "match");
  masm.Addi(Reg::a6, Reg::a6, 4);  // present in both: suppressed
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.J(&loop);
  EmitTailCopy(masm, Reg::a6, Reg::a7, &tail_a, &done);
  EmitSetOpEpilogue(masm, &done);
  return masm.Finish();
}

}  // namespace

Result<isa::Program> BuildScalarSetOp(eis::SopMode mode) {
  switch (mode) {
    case eis::SopMode::kIntersect:
      return BuildScalarIntersect();
    case eis::SopMode::kUnion:
      return BuildScalarUnion();
    case eis::SopMode::kDifference:
      return BuildScalarDifference();
    case eis::SopMode::kMerge:
      return Status::InvalidArgument(
          "merge is not a standalone scalar kernel; use BuildScalarMergeSort");
  }
  return Status::InvalidArgument("unknown set operation");
}

Result<isa::Program> BuildScalarMergePair() {
  // Figure 2: two cursors, the hardly predictable branch, and the two
  // remainder-copy loops.
  Assembler masm;
  Label loop, take_b, advance, tail_a, tail_b, done;

  EmitSetOpPrologue(masm);
  masm.Bind(&loop, "core_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &tail_b);
  masm.Bgeu(Reg::a8, Reg::a9, &tail_a);
  masm.Lw(Reg::a11, Reg::a6, 0);
  masm.Lw(Reg::a12, Reg::a8, 0);
  masm.Bltu(Reg::a12, Reg::a11, &take_b);
  masm.Sw(Reg::a11, Reg::a10, 0);  // A[pos_a] <= B[pos_b]
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&advance);
  masm.Bind(&take_b, "take_b");
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.Bind(&advance);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.J(&loop);
  EmitTailCopy(masm, Reg::a6, Reg::a7, &tail_a, &done);
  EmitTailCopy(masm, Reg::a8, Reg::a9, &tail_b, &done);
  EmitSetOpEpilogue(masm, &done);
  return masm.Finish();
}

Result<isa::Program> BuildScalarMergeSort() {
  // Bottom-up merge sort between buffer0 (a0) and buffer1 (a4), run
  // length doubling each pass; the inner loop is the merge procedure of
  // Figure 2 with its hardly predictable branch.
  //
  // Register plan:
  //   a6 = run length L (elements)   a13 = source buffer, a14 = dest
  //   a15 = pair offset pos          a1 = run1 cursor, a7 = run1 end
  //   a8 = run2 cursor, a9 = run2 end, a10 = output cursor
  //   a11/a12 = loaded values        a3/a5 = temporaries
  Assembler masm;
  Label pass_loop, pair_loop, pair_end, pass_end, done;
  Label has_b, len2_done, merge_loop, take_b, advance;
  Label drain_a, drain_a_loop, drain_b, drain_b_loop;

  masm.Movi(Reg::a6, 1);
  masm.Mv(Reg::a13, Reg::a0);
  masm.Mv(Reg::a14, Reg::a4);

  masm.Bind(&pass_loop, "pass_loop");
  masm.Bgeu(Reg::a6, Reg::a2, &done);  // L >= n: fully sorted
  masm.Movi(Reg::a15, 0);

  masm.Bind(&pair_loop, "pair_loop");
  masm.Bgeu(Reg::a15, Reg::a2, &pass_end);
  // run1 = [src + 4*pos, +4*min(L, n-pos))
  masm.Slli(Reg::a3, Reg::a15, 2);
  masm.Add(Reg::a1, Reg::a13, Reg::a3);
  masm.Sub(Reg::a5, Reg::a2, Reg::a15);
  masm.Min(Reg::a5, Reg::a5, Reg::a6);
  masm.Slli(Reg::a5, Reg::a5, 2);
  masm.Add(Reg::a7, Reg::a1, Reg::a5);
  // run2 = [run1 end, +4*min(L, max(0, n-pos-L)))
  masm.Mv(Reg::a8, Reg::a7);
  masm.Sub(Reg::a5, Reg::a2, Reg::a15);
  masm.Bltu(Reg::a6, Reg::a5, &has_b);
  masm.Movi(Reg::a5, 0);
  masm.J(&len2_done);
  masm.Bind(&has_b);
  masm.Sub(Reg::a5, Reg::a5, Reg::a6);
  masm.Min(Reg::a5, Reg::a5, Reg::a6);
  masm.Bind(&len2_done);
  masm.Slli(Reg::a5, Reg::a5, 2);
  masm.Add(Reg::a9, Reg::a8, Reg::a5);
  // out = dst + 4*pos
  masm.Add(Reg::a10, Reg::a14, Reg::a3);

  masm.Bind(&merge_loop, "merge_loop");
  masm.Bgeu(Reg::a1, Reg::a7, &drain_b);
  masm.Bgeu(Reg::a8, Reg::a9, &drain_a);
  masm.Lw(Reg::a11, Reg::a1, 0);
  masm.Lw(Reg::a12, Reg::a8, 0);
  masm.Bltu(Reg::a12, Reg::a11, &take_b);  // the unpredictable branch
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a1, Reg::a1, 4);
  masm.J(&advance);
  masm.Bind(&take_b, "take_b");
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.Bind(&advance);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.J(&merge_loop);

  masm.Bind(&drain_a, "drain_a");
  masm.Bind(&drain_a_loop);
  masm.Bgeu(Reg::a1, Reg::a7, &pair_end);
  masm.Lw(Reg::a11, Reg::a1, 0);
  masm.Sw(Reg::a11, Reg::a10, 0);
  masm.Addi(Reg::a1, Reg::a1, 4);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.J(&drain_a_loop);

  masm.Bind(&drain_b, "drain_b");
  masm.Bind(&drain_b_loop);
  masm.Bgeu(Reg::a8, Reg::a9, &pair_end);
  masm.Lw(Reg::a12, Reg::a8, 0);
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a8, Reg::a8, 4);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.J(&drain_b_loop);

  masm.Bind(&pair_end, "pair_end");
  masm.Add(Reg::a15, Reg::a15, Reg::a6);
  masm.Add(Reg::a15, Reg::a15, Reg::a6);
  masm.J(&pair_loop);

  masm.Bind(&pass_end, "pass_end");
  masm.Mv(Reg::a3, Reg::a13);  // swap source and destination buffers
  masm.Mv(Reg::a13, Reg::a14);
  masm.Mv(Reg::a14, Reg::a3);
  masm.Add(Reg::a6, Reg::a6, Reg::a6);  // L *= 2
  masm.J(&pass_loop);

  masm.Bind(&done, "done");
  masm.Mv(Reg::a5, Reg::a13);  // pointer to the sorted buffer
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
