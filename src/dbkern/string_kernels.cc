#include "dbkern/string_kernels.h"

#include "isa/assembler.h"
#include "tie/string_extension.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;

Result<isa::Program> BuildStringScanKernel(bool use_extension) {
  Assembler masm;
  Label loop, done;

  if (use_extension) {
    masm.Movi(Reg::a7, 0);
    masm.Tie(tie::StringExtension::kInit);
    masm.Bind(&loop, "scan_loop");
    masm.Tie(tie::StringExtension::kScan, 6);
    masm.Bne(Reg::a6, Reg::a7, &loop);
    masm.Tie(tie::StringExtension::kFlush);
    masm.Halt();
    return masm.Finish();
  }

  // Software: word-wise masked compare, short-circuiting on the first
  // mismatching word (the common case for selective predicates).
  Label no_match;
  masm.Slli(Reg::a7, Reg::a2, 4);      // 16 bytes per row
  masm.Add(Reg::a7, Reg::a0, Reg::a7);  // column end
  masm.Mv(Reg::a6, Reg::a0);            // row cursor
  masm.Movi(Reg::a8, 0);                // rid
  masm.Mv(Reg::a9, Reg::a4);            // output cursor
  masm.Movi(Reg::a15, 0);
  masm.Bind(&loop, "row_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &done);
  for (int word = 0; word < 4; ++word) {
    masm.Lw(Reg::a10, Reg::a6, 4 * word);  // row word
    masm.Lw(Reg::a11, Reg::a1, 4 * word);  // pattern word
    masm.Lw(Reg::a12, Reg::a3, 4 * word);  // mask word
    masm.Xor(Reg::a10, Reg::a10, Reg::a11);
    masm.And(Reg::a10, Reg::a10, Reg::a12);
    masm.Bne(Reg::a10, Reg::a15, &no_match);  // a15 = 0
  }
  masm.Sw(Reg::a8, Reg::a9, 0);  // match: record the rid
  masm.Addi(Reg::a9, Reg::a9, 4);
  masm.Bind(&no_match, "next_row");
  masm.Addi(Reg::a6, Reg::a6, 16);
  masm.Addi(Reg::a8, Reg::a8, 1);
  masm.J(&loop);
  masm.Bind(&done, "done");
  masm.Sub(Reg::a5, Reg::a9, Reg::a4);
  masm.Srli(Reg::a5, Reg::a5, 2);
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
