#include "dbkern/bitmanip_kernels.h"

#include "isa/assembler.h"
#include "tie/bitmanip_extension.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;
using tie::BitmanipExtension;

namespace {

// Shared loop scaffold: a6 = cursor, a7 = end (byte addresses).
void EmitArrayLoopHead(Assembler& masm) {
  masm.Slli(Reg::a7, Reg::a2, 2);
  masm.Add(Reg::a7, Reg::a0, Reg::a7);
  masm.Mv(Reg::a6, Reg::a0);
}

/// Operand for the bitmanip ops: [3:0] src AR, [7:4] dst AR.
constexpr uint16_t BitmanipOperand(Reg src, Reg dst) {
  return static_cast<uint16_t>(isa::RegIndex(src) |
                               (isa::RegIndex(dst) << 4));
}

}  // namespace

Result<isa::Program> BuildCrc32Kernel(bool use_extension) {
  Assembler masm;
  Label loop, done;

  EmitArrayLoopHead(masm);
  if (use_extension) {
    masm.Tie(BitmanipExtension::kCrcReset);
    masm.Bind(&loop, "word_loop");
    masm.Bgeu(Reg::a6, Reg::a7, &done);
    masm.Lw(Reg::a10, Reg::a6, 0);
    // One crc32_step per byte, little-endian: the merged instruction
    // absorbs the 8-stage shift/xor cascade.
    for (int byte = 0; byte < 4; ++byte) {
      masm.Tie(BitmanipExtension::kCrcStep,
               BitmanipOperand(Reg::a10, Reg::a10));
      if (byte < 3) masm.Srli(Reg::a10, Reg::a10, 8);
    }
    masm.Addi(Reg::a6, Reg::a6, 4);
    masm.J(&loop);
    masm.Bind(&done, "done");
    masm.Tie(BitmanipExtension::kCrcRead, BitmanipOperand(Reg::a0, Reg::a5));
    masm.Halt();
    return masm.Finish();
  }

  // Software: crc ^= word; 32 x branchless bit step
  //   crc = (crc >> 1) ^ (poly & -(crc & 1)).
  Label bit_loop;
  masm.Movi(Reg::a5, -1);  // crc = 0xFFFFFFFF
  masm.LoadImm32(Reg::a11, BitmanipExtension::kCrc32Polynomial);
  masm.Movi(Reg::a12, 0);  // zero
  masm.Bind(&loop, "word_loop");
  masm.Bgeu(Reg::a6, Reg::a7, &done);
  masm.Lw(Reg::a10, Reg::a6, 0);
  masm.Xor(Reg::a5, Reg::a5, Reg::a10);
  masm.Movi(Reg::a13, 32);  // bit counter
  masm.Bind(&bit_loop, "bit_loop");
  masm.Andi(Reg::a14, Reg::a5, 1);
  masm.Sub(Reg::a14, Reg::a12, Reg::a14);  // -(crc & 1)
  masm.And(Reg::a14, Reg::a14, Reg::a11);  // poly or 0
  masm.Srli(Reg::a5, Reg::a5, 1);
  masm.Xor(Reg::a5, Reg::a5, Reg::a14);
  masm.Addi(Reg::a13, Reg::a13, -1);
  masm.Bne(Reg::a13, Reg::a12, &bit_loop);
  masm.Addi(Reg::a6, Reg::a6, 4);
  masm.J(&loop);
  masm.Bind(&done, "done");
  masm.Xori(Reg::a5, Reg::a5, -1);  // final inversion
  masm.Halt();
  return masm.Finish();
}

Result<isa::Program> BuildBitReverseKernel(bool use_extension) {
  Assembler masm;
  Label loop, done;

  EmitArrayLoopHead(masm);
  masm.Mv(Reg::a10, Reg::a4);  // output cursor
  if (use_extension) {
    masm.Bind(&loop, "word_loop");
    masm.Bgeu(Reg::a6, Reg::a7, &done);
    masm.Lw(Reg::a11, Reg::a6, 0);
    masm.Tie(BitmanipExtension::kBitReverse,
             BitmanipOperand(Reg::a11, Reg::a11));
    masm.Sw(Reg::a11, Reg::a10, 0);
    masm.Addi(Reg::a6, Reg::a6, 4);
    masm.Addi(Reg::a10, Reg::a10, 4);
    masm.J(&loop);
  } else {
    // The five-stage cascade; masks hoisted into registers.
    masm.LoadImm32(Reg::a11, 0x55555555);
    masm.LoadImm32(Reg::a12, 0x33333333);
    masm.LoadImm32(Reg::a13, 0x0F0F0F0F);
    masm.LoadImm32(Reg::a14, 0x00FF00FF);
    masm.Bind(&loop, "word_loop");
    masm.Bgeu(Reg::a6, Reg::a7, &done);
    masm.Lw(Reg::a15, Reg::a6, 0);
    const Reg masks[4] = {Reg::a11, Reg::a12, Reg::a13, Reg::a14};
    const int shifts[4] = {1, 2, 4, 8};
    for (int stage = 0; stage < 4; ++stage) {
      // v = ((v & m) << k) | ((v >> k) & m)
      masm.And(Reg::a8, Reg::a15, masks[stage]);
      masm.Slli(Reg::a8, Reg::a8, shifts[stage]);
      masm.Srli(Reg::a9, Reg::a15, shifts[stage]);
      masm.And(Reg::a9, Reg::a9, masks[stage]);
      masm.Or(Reg::a15, Reg::a8, Reg::a9);
    }
    masm.Slli(Reg::a8, Reg::a15, 16);  // final 16-bit rotate
    masm.Srli(Reg::a9, Reg::a15, 16);
    masm.Or(Reg::a15, Reg::a8, Reg::a9);
    masm.Sw(Reg::a15, Reg::a10, 0);
    masm.Addi(Reg::a6, Reg::a6, 4);
    masm.Addi(Reg::a10, Reg::a10, 4);
    masm.J(&loop);
  }
  masm.Bind(&done, "done");
  masm.Mv(Reg::a5, Reg::a2);
  masm.Halt();
  return masm.Finish();
}

Result<isa::Program> BuildPopcountKernel(bool use_extension) {
  Assembler masm;
  Label loop, done;

  EmitArrayLoopHead(masm);
  masm.Movi(Reg::a5, 0);  // total
  if (use_extension) {
    masm.Bind(&loop, "word_loop");
    masm.Bgeu(Reg::a6, Reg::a7, &done);
    masm.Lw(Reg::a10, Reg::a6, 0);
    masm.Tie(BitmanipExtension::kPopcount,
             BitmanipOperand(Reg::a10, Reg::a10));
    masm.Add(Reg::a5, Reg::a5, Reg::a10);
    masm.Addi(Reg::a6, Reg::a6, 4);
    masm.J(&loop);
  } else {
    // SWAR popcount: v -= (v>>1)&m1; v = (v&m2)+((v>>2)&m2);
    // v = (v+(v>>4))&m3; v = (v*0x01010101)>>24.
    masm.LoadImm32(Reg::a11, 0x55555555);
    masm.LoadImm32(Reg::a12, 0x33333333);
    masm.LoadImm32(Reg::a13, 0x0F0F0F0F);
    masm.LoadImm32(Reg::a14, 0x01010101);
    masm.Bind(&loop, "word_loop");
    masm.Bgeu(Reg::a6, Reg::a7, &done);
    masm.Lw(Reg::a10, Reg::a6, 0);
    masm.Srli(Reg::a8, Reg::a10, 1);
    masm.And(Reg::a8, Reg::a8, Reg::a11);
    masm.Sub(Reg::a10, Reg::a10, Reg::a8);
    masm.Srli(Reg::a8, Reg::a10, 2);
    masm.And(Reg::a8, Reg::a8, Reg::a12);
    masm.And(Reg::a10, Reg::a10, Reg::a12);
    masm.Add(Reg::a10, Reg::a10, Reg::a8);
    masm.Srli(Reg::a8, Reg::a10, 4);
    masm.Add(Reg::a10, Reg::a10, Reg::a8);
    masm.And(Reg::a10, Reg::a10, Reg::a13);
    masm.Mul(Reg::a10, Reg::a10, Reg::a14);
    masm.Srli(Reg::a10, Reg::a10, 24);
    masm.Add(Reg::a5, Reg::a5, Reg::a10);
    masm.Addi(Reg::a6, Reg::a6, 4);
    masm.J(&loop);
  }
  masm.Bind(&done, "done");
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
