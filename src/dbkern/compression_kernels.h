#ifndef DBA_DBKERN_COMPRESSION_KERNELS_H_
#define DBA_DBKERN_COMPRESSION_KERNELS_H_

#include "common/status.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Bit-unpacking kernels for compressed column scans (the "compression"
/// candidate primitive; cf. SIMD-scan [36]).
///
/// ABI: a0 = packed source (16-byte aligned, padded to a full beat),
/// a2 = value count, a4 = destination (16-byte aligned); returns a5 =
/// values produced.
///
/// The software variant decodes one value per ~17 base instructions
/// (word pair load, shift/combine/mask); the extension variant streams
/// four values per unpack_beat through tie::PackScanExtension.
Result<isa::Program> BuildUnpackKernel(bool use_extension, int bits);

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_COMPRESSION_KERNELS_H_
