#include "dbkern/compression_kernels.h"

#include "isa/assembler.h"
#include "tie/packscan_extension.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;

Result<isa::Program> BuildUnpackKernel(bool use_extension, int bits) {
  if (bits < 1 || bits > 32) {
    return Status::InvalidArgument("bit width must be 1..32");
  }
  Assembler masm;
  Label loop, done;

  if (use_extension) {
    masm.Movi(Reg::a7, 0);
    masm.Tie(tie::PackScanExtension::kInit, static_cast<uint16_t>(bits));
    masm.Bind(&loop, "unpack_loop");
    masm.Tie(tie::PackScanExtension::kUnpackBeat, 6);
    masm.Bne(Reg::a6, Reg::a7, &loop);
    masm.Halt();
    return masm.Finish();
  }

  // Software bit unpack, branchless word-boundary handling:
  //   value = ((lo >> sh) | ((hi << 1) << (31 - sh))) & mask
  // (the double shift keeps the shift amounts in 0..31; for sh == 0 the
  // high word contributes nothing, as required).
  const uint32_t mask =
      bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
  masm.Movi(Reg::a8, 0);  // bit position
  masm.Mv(Reg::a10, Reg::a4);
  masm.LoadImm32(Reg::a11, mask);
  masm.Slli(Reg::a7, Reg::a2, 2);
  masm.Add(Reg::a7, Reg::a4, Reg::a7);  // output end
  masm.Bind(&loop, "unpack_loop");
  masm.Bgeu(Reg::a10, Reg::a7, &done);
  masm.Srli(Reg::a9, Reg::a8, 5);  // word index
  masm.Slli(Reg::a9, Reg::a9, 2);
  masm.Add(Reg::a9, Reg::a0, Reg::a9);
  masm.Lw(Reg::a12, Reg::a9, 0);  // lo word
  masm.Lw(Reg::a13, Reg::a9, 4);  // hi word (source padded to a beat)
  masm.Andi(Reg::a14, Reg::a8, 31);  // sh
  masm.Srl(Reg::a12, Reg::a12, Reg::a14);
  masm.Movi(Reg::a15, 31);
  masm.Sub(Reg::a15, Reg::a15, Reg::a14);
  masm.Slli(Reg::a13, Reg::a13, 1);
  masm.Sll(Reg::a13, Reg::a13, Reg::a15);
  masm.Or(Reg::a12, Reg::a12, Reg::a13);
  masm.And(Reg::a12, Reg::a12, Reg::a11);
  masm.Sw(Reg::a12, Reg::a10, 0);
  masm.Addi(Reg::a10, Reg::a10, 4);
  masm.Addi(Reg::a8, Reg::a8, bits);
  masm.J(&loop);
  masm.Bind(&done, "done");
  masm.Mv(Reg::a5, Reg::a2);
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
