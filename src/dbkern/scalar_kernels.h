#ifndef DBA_DBKERN_SCALAR_KERNELS_H_
#define DBA_DBKERN_SCALAR_KERNELS_H_

#include "common/status.h"
#include "eis/sop.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Scalar (base-ISA) kernels: the merge-based set-operation and
/// merge-sort algorithms of paper Figures 2 and 3, hand-compiled for the
/// base core. These run on every configuration, including 108Mini and
/// DBA_1LSU, which lack the instruction-set extension.
///
/// Calling convention (see isa::abi):
///   set ops:    a0=A, a1=B, a2=|A|, a3=|B|, a4=C; returns a5=|C|
///   merge-sort: a0=buffer0 (input), a2=n, a4=buffer1 (scratch);
///               returns a5 = pointer to the sorted buffer (0 or 1)
///
/// kMerge is not a set-operation kernel; use BuildScalarMergePair.
Result<isa::Program> BuildScalarSetOp(eis::SopMode mode);

/// The merge procedure of Figure 2, verbatim: merges two sorted
/// sequences (duplicates preserved) into C. Standard set-op ABI;
/// returns a5 = |A| + |B|.
Result<isa::Program> BuildScalarMergePair();

Result<isa::Program> BuildScalarMergeSort();

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_SCALAR_KERNELS_H_
