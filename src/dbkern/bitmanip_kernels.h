#ifndef DBA_DBKERN_BITMANIP_KERNELS_H_
#define DBA_DBKERN_BITMANIP_KERNELS_H_

#include "common/status.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Kernels for the instruction-merging study of paper Section 2.2: each
/// primitive exists as a software routine on the base ISA and as a
/// single merged TIE instruction (tie::BitmanipExtension). The
/// `instruction_merging` bench compares their cycle counts.
///
/// Common ABI: a0 = input word array, a2 = word count; results in a5
/// (CRC value / total popcount); bit-reverse writes the transformed
/// array to a4 and returns the count in a5.

/// CRC-32 (IEEE, reflected) over a word array. The software version is
/// the branchless bitwise loop (6 base instructions per bit); the
/// hardware version issues one crc32_step per byte.
Result<isa::Program> BuildCrc32Kernel(bool use_extension);

/// Reverses the bit order of every word. Software: the five-stage
/// mask-and-shift cascade ("requires dozens of instructions in
/// software"); hardware: one bit_reverse per word.
Result<isa::Program> BuildBitReverseKernel(bool use_extension);

/// Sums the population count of every word. Software: the classic
/// SWAR sequence; hardware: one popcount per word.
Result<isa::Program> BuildPopcountKernel(bool use_extension);

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_BITMANIP_KERNELS_H_
