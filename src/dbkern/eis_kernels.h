#ifndef DBA_DBKERN_EIS_KERNELS_H_
#define DBA_DBKERN_EIS_KERNELS_H_

#include "common/status.h"
#include "eis/sop.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Default unroll factor of the EIS set-operation core loop; 32 unrolled
/// iterations reduce the average loop cost to (2*32+1)/32 = 2.03 cycles
/// (Section 4: "if 32 loops are unrolled the average number of cycles
/// per loop is reduced to 2.03").
inline constexpr int kDefaultUnroll = 32;

/// EIS set-operation kernel: the core loop of Figure 11,
///
///   INIT_STATES(); LD_LDP_SHUFFLE();
///   while (STORE_SOP()) { LD_LDP_SHUFFLE(); }
///
/// unrolled `unroll` times, followed by a FLUSH draining the result
/// FIFO. ABI as in isa::abi; a5 returns the result count.
Result<isa::Program> BuildEisSetOp(eis::SopMode mode, bool partial_loading,
                                   int unroll = kDefaultUnroll);

/// EIS pair-merge kernel: merges two sorted sequences (duplicates
/// preserved) with the Figure 12 inner loop. Standard set-op ABI;
/// returns a5 = |A| + |B|.
Result<isa::Program> BuildEisMergePair();

/// EIS merge-sort kernel: a presorting pass building sorted runs of four
/// with the hardware sorting network, then bottom-up merge passes whose
/// inner loop is Figure 12:
///
///   INIT_STATES(); LD();
///   while (LD()) { STORE_MERGE(); }
///
/// ABI: a0 = buffer0 (input), a2 = n, a4 = buffer1 (scratch); a5 returns
/// the pointer to the buffer holding the sorted output.
Result<isa::Program> BuildEisMergeSort();

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_EIS_KERNELS_H_
