#include "dbkern/eis_kernels.h"

#include "eis/eis_extension.h"
#include "isa/assembler.h"

namespace dba::dbkern {

using isa::Assembler;
using isa::Label;
using isa::Reg;

namespace {

// The loop-continuation flag lives in a6; a7 holds constant zero.
constexpr uint16_t kFlagOperand = 6;

}  // namespace

Result<isa::Program> BuildEisSetOp(eis::SopMode mode, bool partial_loading,
                                   int unroll) {
  if (mode == eis::SopMode::kMerge) {
    return Status::InvalidArgument(
        "merge mode is driven by BuildEisMergeSort");
  }
  if (unroll < 1 || unroll > 256) {
    return Status::InvalidArgument("unroll factor must be in 1..256");
  }

  Assembler masm;
  Label loop;

  masm.Movi(Reg::a7, 0);
  masm.Tie(eis::op::kInit, eis::MakeInitOperand(mode, partial_loading));
  masm.Tie(eis::op::kLdLdpShuffle);
  masm.Bind(&loop, "core_loop");
  for (int i = 0; i < unroll; ++i) {
    masm.Tie(eis::op::kStoreSop, kFlagOperand);
    masm.Tie(eis::op::kLdLdpShuffle);
  }
  masm.Bne(Reg::a6, Reg::a7, &loop);
  masm.Tie(eis::op::kFlush);
  masm.Halt();
  return masm.Finish();
}

Result<isa::Program> BuildEisMergePair() {
  // Figure 12 core loop on a single pair of runs:
  //   INIT_STATES(); LD(); while (LD()) { STORE_MERGE(); } flush.
  Assembler masm;
  Label inner;
  masm.Movi(Reg::a7, 0);
  masm.Tie(eis::op::kInit,
           eis::MakeInitOperand(eis::SopMode::kMerge, /*partial=*/true));
  masm.Tie(eis::op::kLdMerge, kFlagOperand);
  masm.Bind(&inner, "core_loop");
  masm.Tie(eis::op::kStoreSop, kFlagOperand);  // STORE_MERGE
  masm.Tie(eis::op::kLdMerge, kFlagOperand);
  masm.Bne(Reg::a6, Reg::a7, &inner);
  masm.Tie(eis::op::kFlush);
  masm.Halt();
  return masm.Finish();
}

Result<isa::Program> BuildEisMergeSort() {
  // Register plan:
  //   a6 = flag, a7 = zero, a8 = run length L, a11 = n,
  //   a12 = source buffer, a13 = destination buffer, a15 = pair offset,
  //   a9/a10 = temporaries; a0..a4 are rewritten per INIT call.
  Assembler masm;
  Label presort_loop, pass_loop, pair_loop, pair_end, pass_end, done;
  Label has_b, len2_done, inner;

  masm.Movi(Reg::a7, 0);
  masm.Mv(Reg::a11, Reg::a2);
  masm.Mv(Reg::a12, Reg::a0);
  masm.Mv(Reg::a13, Reg::a4);

  // --- Presorting pass: buffer0 -> buffer1 in sorted runs of 4 ---
  // INIT consumes a0 (source), a2 (count), a4 (destination) as set.
  masm.Tie(eis::op::kInit,
           eis::MakeInitOperand(eis::SopMode::kMerge, /*partial=*/true));
  masm.Bind(&presort_loop, "presort_loop");
  masm.Tie(eis::op::kSortBeat, kFlagOperand);
  masm.Bne(Reg::a6, Reg::a7, &presort_loop);

  // Runs of 4 now live in buffer1: src = buffer1, dst = buffer0, L = 4.
  masm.Mv(Reg::a9, Reg::a12);
  masm.Mv(Reg::a12, Reg::a13);
  masm.Mv(Reg::a13, Reg::a9);
  masm.Movi(Reg::a8, 4);

  masm.Bind(&pass_loop, "pass_loop");
  masm.Bgeu(Reg::a8, Reg::a11, &done);  // L >= n: sorted
  masm.Movi(Reg::a15, 0);

  masm.Bind(&pair_loop, "pair_loop");
  masm.Bgeu(Reg::a15, Reg::a11, &pass_end);
  // a0 = src + 4*pos; a2 = len1 = min(L, n - pos)
  masm.Slli(Reg::a9, Reg::a15, 2);
  masm.Add(Reg::a0, Reg::a12, Reg::a9);
  masm.Sub(Reg::a2, Reg::a11, Reg::a15);
  masm.Min(Reg::a2, Reg::a2, Reg::a8);
  // a1 = a0 + 4*len1; a3 = len2 = min(L, n - pos - len1)
  masm.Slli(Reg::a10, Reg::a2, 2);
  masm.Add(Reg::a1, Reg::a0, Reg::a10);
  masm.Sub(Reg::a3, Reg::a11, Reg::a15);
  masm.Bltu(Reg::a8, Reg::a3, &has_b);
  masm.Movi(Reg::a3, 0);
  masm.J(&len2_done);
  masm.Bind(&has_b);
  masm.Sub(Reg::a3, Reg::a3, Reg::a8);
  masm.Min(Reg::a3, Reg::a3, Reg::a8);
  masm.Bind(&len2_done);
  // a4 = dst + 4*pos
  masm.Add(Reg::a4, Reg::a13, Reg::a9);

  // Figure 12 core loop: INIT; LD; while (LD()) { STORE_MERGE(); }
  masm.Tie(eis::op::kInit,
           eis::MakeInitOperand(eis::SopMode::kMerge, /*partial=*/true));
  masm.Tie(eis::op::kLdMerge, kFlagOperand);
  masm.Bind(&inner);
  masm.Tie(eis::op::kStoreSop, kFlagOperand);  // STORE_MERGE
  masm.Tie(eis::op::kLdMerge, kFlagOperand);
  masm.Bne(Reg::a6, Reg::a7, &inner);
  masm.Tie(eis::op::kFlush);

  masm.Add(Reg::a15, Reg::a15, Reg::a8);  // pos += 2L
  masm.Add(Reg::a15, Reg::a15, Reg::a8);
  masm.J(&pair_loop);

  masm.Bind(&pass_end, "pass_end");
  masm.Mv(Reg::a9, Reg::a12);  // swap buffers, L *= 2
  masm.Mv(Reg::a12, Reg::a13);
  masm.Mv(Reg::a13, Reg::a9);
  masm.Add(Reg::a8, Reg::a8, Reg::a8);
  masm.J(&pass_loop);

  masm.Bind(&done, "done");
  masm.Mv(Reg::a5, Reg::a12);  // sorted buffer pointer
  masm.Halt();
  return masm.Finish();
}

}  // namespace dba::dbkern
