#ifndef DBA_DBKERN_STRING_KERNELS_H_
#define DBA_DBKERN_STRING_KERNELS_H_

#include "common/status.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Masked fixed-width string-scan kernels (the "string operations"
/// candidate primitive; cf. the SSE4.2 string instructions the paper
/// cites as the existing general-purpose example).
///
/// ABI: a0 = column base (16 bytes/row, 16-byte aligned), a1 = pattern
/// pointer (16 bytes), a2 = row count, a3 = mask pointer (16 bytes,
/// each byte 0x00 = wildcard or 0xFF = must match), a4 = result RID
/// buffer (16-byte aligned). Returns a5 = number of matching rows.
///
/// The software variant compares four 32-bit words per row with
/// load/xor/and/branch sequences (~28 instructions per row); the
/// extension variant tests a full row per str_scan instruction.
Result<isa::Program> BuildStringScanKernel(bool use_extension);

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_STRING_KERNELS_H_
