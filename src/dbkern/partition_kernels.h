#ifndef DBA_DBKERN_PARTITION_KERNELS_H_
#define DBA_DBKERN_PARTITION_KERNELS_H_

#include "common/status.h"
#include "isa/program.h"

namespace dba::dbkern {

/// Range-partitioning kernels (the "partitioning" candidate primitive;
/// cf. the HARP accelerator [37] discussed in paper Section 6).
///
/// ABI: a0 = source (16-byte aligned), a1 = splitter table
/// (`buckets`-1 strictly increasing u32), a2 = value count,
/// a3 = per-bucket capacity in elements (multiple of 4),
/// a4 = bucket region base (bucket i at a4 + i*capacity*4),
/// a5 = bucket-count table (in; `buckets` u32 slots, zero-initialized
/// for the software variant). Returns a5 = total values routed.
///
/// The software variant classifies each value with a branch-free
/// compare-accumulate chain over the memory-resident splitter table
/// (~7 instructions per splitter per value); the extension variant
/// streams four values per partition_beat.
Result<isa::Program> BuildPartitionKernel(bool use_extension, int buckets);

}  // namespace dba::dbkern

#endif  // DBA_DBKERN_PARTITION_KERNELS_H_
