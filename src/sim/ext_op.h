#ifndef DBA_SIM_EXT_OP_H_
#define DBA_SIM_EXT_OP_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "isa/registers.h"
#include "mem/memory.h"

namespace dba::sim {

class Cpu;

/// Execution context handed to a TIE extension operation. It is the
/// hardware interface of an extension datapath:
///
///  - beats: 128-bit memory transactions issued through a load-store
///    unit. Multiple beats on the same LSU within one operation
///    serialize, costing one extra cycle each (port contention). An LSU
///    index beyond the configured count folds onto LSU 0 -- issuing the
///    same extension on a 1-LSU core automatically costs the extra port
///    cycles, which reproduces the DBA_1LSU_EIS vs DBA_2LSU_EIS gap.
///  - AR registers: extensions may read operands from and write results
///    (e.g. a loop-continuation flag) to the base register file.
///  - AddCycles: declares additional datapath cycles for multi-cycle
///    operations (e.g. draining a full result FIFO).
class ExtContext {
 public:
  ExtContext(Cpu* cpu, uint16_t operand) : cpu_(cpu), operand_(operand) {}

  ExtContext(const ExtContext&) = delete;
  ExtContext& operator=(const ExtContext&) = delete;

  uint16_t operand() const { return operand_; }
  int num_lsus() const;

  uint32_t reg(isa::Reg r) const;
  void set_reg(isa::Reg r, uint32_t value);

  /// 128-bit aligned load/store through `lsu`. Requires a 128-bit data
  /// bus; fails with FailedPrecondition otherwise.
  Result<mem::Beat128> LoadBeat(int lsu, uint64_t addr);
  Status StoreBeat(int lsu, uint64_t addr, const mem::Beat128& beat);

  /// Narrow 32-bit access through `lsu` (counts as a full beat slot).
  Result<uint32_t> LoadWord(int lsu, uint64_t addr);
  Status StoreWord(int lsu, uint64_t addr, uint32_t value);

  /// Declares `extra` additional cycles consumed by this operation.
  void AddCycles(uint32_t extra);

 private:
  friend class Cpu;

  Cpu* cpu_;
  uint16_t operand_;
  uint32_t beats_[2] = {0, 0};
  uint32_t extra_cycles_ = 0;
};

/// Semantic function of one TIE extension operation.
using ExtOpFn = std::function<Status(ExtContext&)>;

}  // namespace dba::sim

#endif  // DBA_SIM_EXT_OP_H_
