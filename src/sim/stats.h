#ifndef DBA_SIM_STATS_H_
#define DBA_SIM_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dba::sim {

/// Cycle-accurate execution statistics of one Cpu::Run. The profiler in
/// src/toolchain renders these into hotspot reports (the first box of
/// the paper's Figure 4 tool flow).
struct ExecStats {
  uint64_t cycles = 0;
  uint64_t bundles = 0;        // issued program words
  uint64_t instructions = 0;   // base instructions + TIE slot operations

  uint64_t taken_branches = 0;
  uint64_t mispredicted_branches = 0;
  uint64_t branch_penalty_cycles = 0;

  uint64_t load_stall_cycles = 0;   // scalar loads beyond 1 cycle
  uint64_t store_stall_cycles = 0;  // scalar stores beyond 1 cycle
  uint64_t port_stall_cycles = 0;   // TIE beats serialized on an LSU port
  uint64_t ext_extra_cycles = 0;    // multi-cycle TIE operations

  uint64_t lsu_beats[2] = {0, 0};   // 128-bit beats per load-store unit

  /// Per-pc execution counts; filled only when RunOptions::profile.
  std::vector<uint64_t> pc_counts;

  /// Dynamic instruction mix; filled only when RunOptions::profile.
  std::map<std::string, uint64_t> mnemonic_counts;

  /// Rendered trace of the first RunOptions::trace_limit issued words:
  /// "cycle pc: disassembly".
  std::vector<std::string> trace;

  void Accumulate(const ExecStats& other) {
    cycles += other.cycles;
    bundles += other.bundles;
    instructions += other.instructions;
    taken_branches += other.taken_branches;
    mispredicted_branches += other.mispredicted_branches;
    branch_penalty_cycles += other.branch_penalty_cycles;
    load_stall_cycles += other.load_stall_cycles;
    store_stall_cycles += other.store_stall_cycles;
    port_stall_cycles += other.port_stall_cycles;
    ext_extra_cycles += other.ext_extra_cycles;
    lsu_beats[0] += other.lsu_beats[0];
    lsu_beats[1] += other.lsu_beats[1];
    for (const auto& [name, count] : other.mnemonic_counts) {
      mnemonic_counts[name] += count;
    }
  }
};

}  // namespace dba::sim

#endif  // DBA_SIM_STATS_H_
