#ifndef DBA_SIM_STATS_H_
#define DBA_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dba::sim {

/// Where the cycles of one program word went. Collected per pc when
/// RunOptions::profile so the observability layer (src/obs) can
/// attribute stalls to the enclosing program label; the invariant
///   total_cycles() summed over all pcs == ExecStats::cycles
/// holds for a complete profiled run.
struct PcCycleBreakdown {
  uint64_t issue_cycles = 0;  // one per issue of this word
  uint64_t branch_penalty_cycles = 0;
  uint64_t load_stall_cycles = 0;
  uint64_t store_stall_cycles = 0;
  uint64_t port_stall_cycles = 0;
  uint64_t ext_extra_cycles = 0;
  uint64_t lsu_beats[2] = {0, 0};  // not cycles; utilization bookkeeping

  uint64_t total_cycles() const {
    return issue_cycles + branch_penalty_cycles + load_stall_cycles +
           store_stall_cycles + port_stall_cycles + ext_extra_cycles;
  }

  void Accumulate(const PcCycleBreakdown& other) {
    issue_cycles += other.issue_cycles;
    branch_penalty_cycles += other.branch_penalty_cycles;
    load_stall_cycles += other.load_stall_cycles;
    store_stall_cycles += other.store_stall_cycles;
    port_stall_cycles += other.port_stall_cycles;
    ext_extra_cycles += other.ext_extra_cycles;
    lsu_beats[0] += other.lsu_beats[0];
    lsu_beats[1] += other.lsu_beats[1];
  }
};

/// Cycle-accurate execution statistics of one Cpu::Run. The profiler in
/// src/toolchain renders these into hotspot reports (the first box of
/// the paper's Figure 4 tool flow); src/obs serializes them to JSON and
/// builds the stall-attribution report.
struct ExecStats {
  uint64_t cycles = 0;
  uint64_t bundles = 0;        // issued program words
  uint64_t instructions = 0;   // base instructions + TIE slot operations

  uint64_t taken_branches = 0;
  uint64_t mispredicted_branches = 0;
  uint64_t branch_penalty_cycles = 0;

  uint64_t load_stall_cycles = 0;   // scalar loads beyond 1 cycle
  uint64_t store_stall_cycles = 0;  // scalar stores beyond 1 cycle
  uint64_t port_stall_cycles = 0;   // TIE beats serialized on an LSU port
  uint64_t ext_extra_cycles = 0;    // multi-cycle TIE operations

  uint64_t lsu_beats[2] = {0, 0};   // 128-bit beats per load-store unit

  /// Per-pc execution counts; filled only when RunOptions::profile.
  std::vector<uint64_t> pc_counts;

  /// Per-pc cycle attribution; filled only when RunOptions::profile.
  /// Indexed like pc_counts.
  std::vector<PcCycleBreakdown> pc_cycles;

  /// Dynamic instruction mix; filled only when RunOptions::profile.
  std::map<std::string, uint64_t> mnemonic_counts;

  /// Rendered trace of the first RunOptions::trace_limit issued words:
  /// "cycle pc: disassembly".
  std::vector<std::string> trace;

  /// Merges the counters of another run into this one. Per-pc vectors
  /// are added element-wise (the result covers the larger program), so
  /// accumulating runs of the same program keeps hotspot and stall
  /// attribution exact. `trace` is intentionally NOT merged: it is a
  /// rendered debug listing of one specific run, and interleaving the
  /// lines of two runs would produce a listing that never happened.
  void Accumulate(const ExecStats& other) {
    cycles += other.cycles;
    bundles += other.bundles;
    instructions += other.instructions;
    taken_branches += other.taken_branches;
    mispredicted_branches += other.mispredicted_branches;
    branch_penalty_cycles += other.branch_penalty_cycles;
    load_stall_cycles += other.load_stall_cycles;
    store_stall_cycles += other.store_stall_cycles;
    port_stall_cycles += other.port_stall_cycles;
    ext_extra_cycles += other.ext_extra_cycles;
    lsu_beats[0] += other.lsu_beats[0];
    lsu_beats[1] += other.lsu_beats[1];
    if (pc_counts.size() < other.pc_counts.size()) {
      pc_counts.resize(other.pc_counts.size(), 0);
    }
    for (size_t pc = 0; pc < other.pc_counts.size(); ++pc) {
      pc_counts[pc] += other.pc_counts[pc];
    }
    if (pc_cycles.size() < other.pc_cycles.size()) {
      pc_cycles.resize(other.pc_cycles.size());
    }
    for (size_t pc = 0; pc < other.pc_cycles.size(); ++pc) {
      pc_cycles[pc].Accumulate(other.pc_cycles[pc]);
    }
    for (const auto& [name, count] : other.mnemonic_counts) {
      mnemonic_counts[name] += count;
    }
  }
};

}  // namespace dba::sim

#endif  // DBA_SIM_STATS_H_
