#include "sim/exec_mode.h"

#include <string>

namespace dba::sim {

std::string_view ExecModeName(ExecMode mode) {
  switch (mode) {
    case ExecMode::kInterpret:
      return "interpret";
    case ExecMode::kFastForward:
      return "fast-forward";
    case ExecMode::kTurbo:
      return "turbo";
  }
  return "?";
}

Result<ExecMode> ParseExecMode(std::string_view name) {
  if (name == "interpret") return ExecMode::kInterpret;
  if (name == "fast-forward" || name == "fastforward") {
    return ExecMode::kFastForward;
  }
  if (name == "turbo") return ExecMode::kTurbo;
  return Status::InvalidArgument("unknown sim mode '" + std::string(name) +
                                 "' (expected interpret, fast-forward, or "
                                 "turbo)");
}

}  // namespace dba::sim
