#ifndef DBA_SIM_EXEC_MODE_H_
#define DBA_SIM_EXEC_MODE_H_

#include <string_view>

#include "common/status.h"

namespace dba::sim {

/// How Cpu::Run advances the machine. All three modes execute the same
/// architectural semantics; they differ in how cycle accounting is
/// produced and how much per-word bookkeeping the hot loop pays.
///
///  - kInterpret: the legacy reference loop. One dispatch per program
///    word through the registered extension-op table. Slowest; kept as
///    the baseline that the fast paths are differential-tested against.
///  - kFastForward: decode-once superblocks with pre-resolved extension
///    handlers. Steady-state loops execute as fast-forward steps that
///    accumulate ExecStats with the same per-word arithmetic as the
///    interpreter -- cycles, stall decomposition, pc_counts/pc_cycles,
///    and trace-sink events are bit-identical to kInterpret.
///  - kTurbo: opt-in. Recognized steady-state kernel loops run through
///    the extension's batch engine; cycles are computed from the loop
///    model (issue counts plus beat-derived stalls) rather than
///    simulated word by word. Results are exact; cycle totals match the
///    cycle-accurate path for the shipped kernels (pinned by the
///    differential suite) but are model-derived, and per-pc profiling
///    falls back to the fast-forward path.
enum class ExecMode : uint8_t {
  kInterpret = 0,
  kFastForward = 1,
  kTurbo = 2,
};

std::string_view ExecModeName(ExecMode mode);

/// Parses "interpret" / "fast-forward" / "turbo".
Result<ExecMode> ParseExecMode(std::string_view name);

}  // namespace dba::sim

#endif  // DBA_SIM_EXEC_MODE_H_
