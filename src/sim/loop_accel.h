#ifndef DBA_SIM_LOOP_ACCEL_H_
#define DBA_SIM_LOOP_ACCEL_H_

#include <cstdint>
#include <span>

#include "common/status.h"
#include "isa/instruction.h"
#include "sim/stats.h"

namespace dba::sim {

class Cpu;

/// A superblock that is a steady-state extension loop: a straight-line
/// body of base TIE words followed by one backward conditional branch to
/// the head. The fast-forward/turbo run loops hand such blocks to the
/// registered LoopAccelerator so whole iterations execute inside the
/// extension (direct dispatch, cached memory routes) instead of going
/// through the per-word issue machinery.
struct TieLoop {
  /// pc of the first body word.
  uint32_t head = 0;
  /// The body's pre-decoded micro-trace: base kTie instructions at
  /// pcs [head, head + body.size()).
  std::span<const isa::Instruction> body;
  /// The terminating conditional branch (at pc head + body.size());
  /// its imm is negative and its target is `head`.
  isa::Instruction branch;
};

/// Batch executor for TieLoop superblocks, implemented by an extension
/// that recognizes its own kernel loops (EisExtension registers one).
///
/// Contract: RunTieLoop either declines (returns false, having touched
/// nothing) or executes one or more *complete* loop iterations --
/// including the backward branch and its prediction accounting -- and
/// leaves architectural state, extension state, memory, `cpu.pc()`, and
/// `*stats` exactly as the per-word path would. When the loop exits
/// (branch not taken) the accelerator sets pc to the fall-through word.
/// When it stops early (e.g. watchdog margin) it leaves pc at `head` so
/// the caller's per-word loop continues seamlessly.
class LoopAccelerator {
 public:
  virtual ~LoopAccelerator() = default;

  /// Static shape check; called once per superblock and cached. Must not
  /// depend on run-time state (register values, extension state).
  virtual bool MatchesTieLoop(const TieLoop& loop) const = 0;

  /// Runs loop iterations until the branch falls through, `max_cycles`
  /// is near, or the accelerator decides to yield. `exact` selects
  /// cycle-exact fast-forward accounting (per-word watchdog checks);
  /// otherwise the turbo loop model may batch iterations and check the
  /// watchdog at iteration granularity with a conservative margin.
  /// Returns false when declining at run time (caller falls back to the
  /// per-word path without any state change).
  virtual Result<bool> RunTieLoop(const TieLoop& loop, Cpu& cpu, bool exact,
                                  uint64_t max_cycles, ExecStats* stats) = 0;
};

}  // namespace dba::sim

#endif  // DBA_SIM_LOOP_ACCEL_H_
