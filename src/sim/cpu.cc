#include "sim/cpu.h"

#include <cstdio>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "isa/encoding.h"
#include "isa/opcode.h"
#include "obs/metrics/metrics.h"

namespace dba::sim {

using isa::Instruction;
using isa::Opcode;
using isa::Reg;

namespace {

// Registry lookups happen once (function-local statics); the hot path is a
// single relaxed fetch_add per Cpu::Run / LoadProgram, never per instruction.
obs::Counter* SimRunCounter(ExecMode mode) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const interpret = registry.GetCounter(
      "dba_sim_runs_total", "mode", "interpret",
      "Cpu::Run invocations by execution mode.");
  static obs::Counter* const fast_forward = registry.GetCounter(
      "dba_sim_runs_total", "mode", "fast-forward",
      "Cpu::Run invocations by execution mode.");
  static obs::Counter* const turbo = registry.GetCounter(
      "dba_sim_runs_total", "mode", "turbo",
      "Cpu::Run invocations by execution mode.");
  switch (mode) {
    case ExecMode::kInterpret:
      return interpret;
    case ExecMode::kFastForward:
      return fast_forward;
    case ExecMode::kTurbo:
      return turbo;
  }
  return fast_forward;
}

}  // namespace

Cpu::Cpu(CoreConfig config) : config_(std::move(config)) {
  DBA_CHECK_MSG(config_.num_lsus >= 1 && config_.num_lsus <= 2,
                "core supports 1 or 2 load-store units");
}

Status Cpu::AttachMemory(mem::Memory* memory) {
  return memory_system_.AddRegion(memory);
}

Status Cpu::RegisterExtOp(uint16_t ext_id, std::string name, ExtOpFn fn) {
  if (ext_id == 0 || ext_id > isa::kMaxExtId) {
    return Status::InvalidArgument("ext_id must be in 1..4095");
  }
  if (ext_ops_.count(ext_id) != 0) {
    return Status::AlreadyExists("ext_id " + std::to_string(ext_id) +
                                 " already registered as '" +
                                 ext_ops_[ext_id].name + "'");
  }
  if (!fn) return Status::InvalidArgument("extension function must be set");
  ext_ops_.emplace(ext_id, ExtOp{std::move(name), std::move(fn)});
  return Status::Ok();
}

isa::ExtNameResolver Cpu::MakeExtNameResolver() const {
  return [this](uint16_t ext_id) -> std::string {
    auto it = ext_ops_.find(ext_id);
    return it == ext_ops_.end() ? std::string() : it->second.name;
  };
}

Status Cpu::LoadProgram(const isa::Program& program) {
  if (program.empty()) {
    return Status::InvalidArgument("cannot load an empty program");
  }
  // Reloading the program that is already resident (a board core runs
  // the same kernel for every partition) only resets the pc. The check
  // compares content, not identity, so a different program that happens
  // to reuse a freed address can never hit the fast path.
  if (program.words() == loaded_words_ &&
      program.labels() == loaded_labels_) {
    static obs::Counter* const reloads =
        obs::MetricsRegistry::Global().GetCounter(
            "dba_sim_program_reloads_total",
            "Program loads that reused the resident decode and exec plan.");
    reloads->Increment();
    program_ = &program;
    pc_ = 0;
    return Status::Ok();
  }
  std::vector<isa::DecodedWord> decoded;
  decoded.reserve(program.size());
  uint64_t bytes = 0;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    auto word = isa::Decode(program.word(pc));
    if (!word.ok()) {
      return Status::InvalidArgument("program word " + std::to_string(pc) +
                                     ": " + word.status().message());
    }
    if (word->kind == isa::DecodedWord::Kind::kFlix) {
      if (config_.instruction_bus_bits < 64) {
        return Status::FailedPrecondition(
            "FLIX bundles require a 64-bit instruction bus; core '" +
            config_.name + "' has " +
            std::to_string(config_.instruction_bus_bits) + " bits");
      }
      for (const isa::TieSlot& slot : word->slots) {
        if (!slot.empty() && ext_ops_.count(slot.ext_id) == 0) {
          return Status::NotFound("program word " + std::to_string(pc) +
                                  " uses unregistered extension op " +
                                  std::to_string(slot.ext_id));
        }
      }
      bytes += 8;
    } else {
      if (word->base.opcode == Opcode::kTie &&
          ext_ops_.count(word->base.ext_id) == 0) {
        return Status::NotFound("program word " + std::to_string(pc) +
                                " uses unregistered extension op " +
                                std::to_string(word->base.ext_id));
      }
      bytes += 4;
    }
    decoded.push_back(*std::move(word));
  }
  if (config_.instruction_memory_bytes != 0 &&
      bytes > config_.instruction_memory_bytes) {
    return Status::ResourceExhausted(
        "program needs " + std::to_string(bytes) +
        " bytes of instruction memory; core '" + config_.name + "' has " +
        std::to_string(config_.instruction_memory_bytes));
  }
  decoded_ = std::move(decoded);
  program_ = &program;
  loaded_words_ = program.words();
  loaded_labels_ = program.labels();
  // Enclosing label per pc: the label bound at the greatest position at
  // or before it.
  pc_labels_.assign(decoded_.size(), std::string());
  auto sorted_labels = program.labels();
  std::stable_sort(sorted_labels.begin(), sorted_labels.end(),
                   [](const auto& x, const auto& y) {
                     return x.second < y.second;
                   });
  for (const auto& [name, position] : sorted_labels) {
    for (size_t pc = position; pc < decoded_.size(); ++pc) {
      pc_labels_[pc] = name;
    }
  }
  BuildExecPlan();
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const decodes = registry.GetCounter(
        "dba_sim_program_decodes_total",
        "Program loads that required a full decode.");
    static obs::Counter* const rebuilds = registry.GetCounter(
        "dba_sim_superblock_rebuilds_total",
        "Superblock exec-plan rebuilds (one per full program decode).");
    static obs::Counter* const superblocks = registry.GetCounter(
        "dba_sim_superblocks_built_total",
        "Superblocks constructed across all exec-plan rebuilds.");
    decodes->Increment();
    rebuilds->Increment();
    superblocks->Increment(blocks_.size());
  }
  pc_ = 0;
  return Status::Ok();
}

namespace {
bool IsCondBranch(Opcode opcode) {
  switch (opcode) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBltu:
    case Opcode::kBge:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}
}  // namespace

void Cpu::BuildExecPlan() {
  const size_t n = decoded_.size();
  ext_of_.assign(n, nullptr);
  slot_ext_of_.assign(n, {});

  // Superblock heads: entry, every branch/jump target, the word after
  // every control-flow word, and every label position. A control-flow
  // word can therefore only ever be the last word of its block.
  std::vector<uint8_t> is_head(n, 0);
  if (n > 0) is_head[0] = 1;
  auto mark_head = [&](uint64_t pc) {
    if (pc < n) is_head[pc] = 1;
  };
  for (const auto& [name, position] : loaded_labels_) mark_head(position);
  for (size_t pc = 0; pc < n; ++pc) {
    const isa::DecodedWord& word = decoded_[pc];
    if (word.kind == isa::DecodedWord::Kind::kFlix) {
      for (int i = 0; i < isa::kMaxFlixSlots; ++i) {
        const isa::TieSlot& slot = word.slots[static_cast<size_t>(i)];
        if (!slot.empty()) {
          slot_ext_of_[pc][static_cast<size_t>(i)] =
              &ext_ops_.find(slot.ext_id)->second;
        }
      }
      continue;
    }
    const Instruction& instr = word.base;
    if (instr.opcode == Opcode::kTie) {
      ext_of_[pc] = &ext_ops_.find(instr.ext_id)->second;
    } else if (IsCondBranch(instr.opcode) || instr.opcode == Opcode::kJ) {
      mark_head(static_cast<uint64_t>(static_cast<int64_t>(pc) + 1 +
                                      instr.imm));
      mark_head(pc + 1);
    } else if (instr.opcode == Opcode::kHalt) {
      mark_head(pc + 1);
    }
  }

  blocks_.clear();
  block_of_.assign(n, 0);
  for (size_t pc = 0; pc < n; ++pc) {
    if (is_head[pc]) {
      SuperBlock block;
      block.head = static_cast<uint32_t>(pc);
      blocks_.push_back(std::move(block));
    }
    block_of_[pc] = static_cast<uint32_t>(blocks_.size() - 1);
    ++blocks_.back().len;
  }

  // Steady-state TIE loops: a body of base kTie words closed by one
  // backward conditional branch to the block head. Their pre-decoded
  // micro-trace is what the loop accelerator consumes.
  for (SuperBlock& block : blocks_) {
    if (block.len < 2) continue;
    const uint32_t last = block.head + block.len - 1;
    const isa::DecodedWord& tail = decoded_[last];
    if (tail.kind != isa::DecodedWord::Kind::kBase ||
        !IsCondBranch(tail.base.opcode) || tail.base.imm >= 0 ||
        static_cast<int64_t>(last) + 1 + tail.base.imm != block.head) {
      continue;
    }
    bool all_tie = true;
    for (uint32_t pc = block.head; pc < last; ++pc) {
      const isa::DecodedWord& word = decoded_[pc];
      if (word.kind != isa::DecodedWord::Kind::kBase ||
          word.base.opcode != Opcode::kTie) {
        all_tie = false;
        break;
      }
    }
    if (!all_tie) continue;
    block.tie_loop = true;
    block.tie_body.reserve(block.len - 1);
    for (uint32_t pc = block.head; pc < last; ++pc) {
      block.tie_body.push_back(decoded_[pc].base);
    }
    block.tie_branch = tail.base;
  }
}

void Cpu::ResetArchState() {
  regs_.fill(0);
  pc_ = 0;
}

Result<mem::Memory*> Cpu::RouteData(uint64_t addr, uint64_t bytes) {
  return memory_system_.Route(addr, bytes);
}

// --- ExtContext ---

int ExtContext::num_lsus() const { return cpu_->config().num_lsus; }

uint32_t ExtContext::reg(Reg r) const { return cpu_->reg(r); }

void ExtContext::set_reg(Reg r, uint32_t value) { cpu_->set_reg(r, value); }

void ExtContext::AddCycles(uint32_t extra) { extra_cycles_ += extra; }

namespace {
int FoldLsu(int lsu, int num_lsus) {
  return (lsu < 0 || lsu >= num_lsus) ? 0 : lsu;
}
}  // namespace

Result<mem::Beat128> ExtContext::LoadBeat(int lsu, uint64_t addr) {
  if (cpu_->config().data_bus_bits < 128) {
    return Status::FailedPrecondition(
        "128-bit beats require a 128-bit data bus");
  }
  lsu = FoldLsu(lsu, num_lsus());
  DBA_ASSIGN_OR_RETURN(mem::Memory * memory, cpu_->RouteData(addr, 16));
  beats_[lsu] += memory->config().access_latency;
  return memory->Load128(addr);
}

Status ExtContext::StoreBeat(int lsu, uint64_t addr,
                             const mem::Beat128& beat) {
  if (cpu_->config().data_bus_bits < 128) {
    return Status::FailedPrecondition(
        "128-bit beats require a 128-bit data bus");
  }
  lsu = FoldLsu(lsu, num_lsus());
  DBA_ASSIGN_OR_RETURN(mem::Memory * memory, cpu_->RouteData(addr, 16));
  beats_[lsu] += memory->config().access_latency;
  return memory->Store128(addr, beat);
}

Result<uint32_t> ExtContext::LoadWord(int lsu, uint64_t addr) {
  lsu = FoldLsu(lsu, num_lsus());
  DBA_ASSIGN_OR_RETURN(mem::Memory * memory, cpu_->RouteData(addr, 4));
  beats_[lsu] += memory->config().access_latency;
  return memory->LoadU32(addr);
}

Status ExtContext::StoreWord(int lsu, uint64_t addr, uint32_t value) {
  lsu = FoldLsu(lsu, num_lsus());
  DBA_ASSIGN_OR_RETURN(mem::Memory * memory, cpu_->RouteData(addr, 4));
  beats_[lsu] += memory->config().access_latency;
  return memory->StoreU32(addr, value);
}

// --- Execution ---

Status Cpu::ExecuteTieOp(uint16_t ext_id, uint16_t operand,
                         ExecStats* stats) {
  auto it = ext_ops_.find(ext_id);
  if (it == ext_ops_.end()) {
    return Status::NotFound("unregistered extension op " +
                            std::to_string(ext_id));
  }
  return ExecuteTieOpResolved(it->second, operand, stats);
}

Status Cpu::ExecuteTieOpResolved(const ExtOp& op, uint16_t operand,
                                 ExecStats* stats) {
  ExtContext ctx(this, operand);
  DBA_RETURN_IF_ERROR(op.fn(ctx));
  const uint32_t port_cycles = std::max(ctx.beats_[0], ctx.beats_[1]);
  if (port_cycles > 1) {
    stats->port_stall_cycles += port_cycles - 1;
    stats->cycles += port_cycles - 1;
  }
  stats->ext_extra_cycles += ctx.extra_cycles_;
  stats->cycles += ctx.extra_cycles_;
  stats->lsu_beats[0] += ctx.beats_[0];
  stats->lsu_beats[1] += ctx.beats_[1];
  return Status::Ok();
}

Status Cpu::ExecuteBase(const Instruction& instr, ExecStats* stats,
                        bool* halted, const ExtOp* resolved) {
  const uint32_t rs1 = reg(instr.rs1);
  const uint32_t rs2 = reg(instr.rs2);
  const auto imm = static_cast<uint32_t>(instr.imm);
  uint32_t next_pc = pc_ + 1;

  switch (instr.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      *halted = true;
      break;

    case Opcode::kAdd:
      set_reg(instr.rd, rs1 + rs2);
      break;
    case Opcode::kSub:
      set_reg(instr.rd, rs1 - rs2);
      break;
    case Opcode::kAnd:
      set_reg(instr.rd, rs1 & rs2);
      break;
    case Opcode::kOr:
      set_reg(instr.rd, rs1 | rs2);
      break;
    case Opcode::kXor:
      set_reg(instr.rd, rs1 ^ rs2);
      break;
    case Opcode::kSll:
      set_reg(instr.rd, rs1 << (rs2 & 31));
      break;
    case Opcode::kSrl:
      set_reg(instr.rd, rs1 >> (rs2 & 31));
      break;
    case Opcode::kSra:
      set_reg(instr.rd, static_cast<uint32_t>(static_cast<int32_t>(rs1) >>
                                              (rs2 & 31)));
      break;
    case Opcode::kSlt:
      set_reg(instr.rd, static_cast<int32_t>(rs1) < static_cast<int32_t>(rs2)
                            ? 1u
                            : 0u);
      break;
    case Opcode::kSltu:
      set_reg(instr.rd, rs1 < rs2 ? 1u : 0u);
      break;
    case Opcode::kMul:
      set_reg(instr.rd, rs1 * rs2);
      break;
    case Opcode::kMin:
      set_reg(instr.rd, rs1 < rs2 ? rs1 : rs2);
      break;
    case Opcode::kMax:
      set_reg(instr.rd, rs1 > rs2 ? rs1 : rs2);
      break;

    case Opcode::kAddi:
      set_reg(instr.rd, rs1 + imm);
      break;
    case Opcode::kAndi:
      set_reg(instr.rd, rs1 & imm);
      break;
    case Opcode::kOri:
      set_reg(instr.rd, rs1 | imm);
      break;
    case Opcode::kXori:
      set_reg(instr.rd, rs1 ^ imm);
      break;
    case Opcode::kSlli:
      set_reg(instr.rd, rs1 << (imm & 31));
      break;
    case Opcode::kSrli:
      set_reg(instr.rd, rs1 >> (imm & 31));
      break;
    case Opcode::kSrai:
      set_reg(instr.rd,
              static_cast<uint32_t>(static_cast<int32_t>(rs1) >> (imm & 31)));
      break;
    case Opcode::kSlti:
      set_reg(instr.rd,
              static_cast<int32_t>(rs1) < instr.imm ? 1u : 0u);
      break;
    case Opcode::kSltiu:
      set_reg(instr.rd, rs1 < imm ? 1u : 0u);
      break;

    case Opcode::kMovi:
      set_reg(instr.rd, imm);
      break;
    case Opcode::kLui:
      set_reg(instr.rd, static_cast<uint32_t>(instr.imm) << 12);
      break;

    case Opcode::kLw: {
      const uint32_t addr = rs1 + imm;
      DBA_ASSIGN_OR_RETURN(mem::Memory * memory, RouteData(addr, 4));
      DBA_ASSIGN_OR_RETURN(uint32_t value, memory->LoadU32(addr));
      set_reg(instr.rd, value);
      const uint32_t stall = memory->config().access_latency - 1;
      stats->load_stall_cycles += stall;
      stats->cycles += stall;
      break;
    }
    case Opcode::kSw: {
      const uint32_t addr = rs1 + imm;
      DBA_ASSIGN_OR_RETURN(mem::Memory * memory, RouteData(addr, 4));
      DBA_RETURN_IF_ERROR(memory->StoreU32(addr, rs2));
      const uint32_t stall = memory->config().access_latency - 1;
      stats->store_stall_cycles += stall;
      stats->cycles += stall;
      break;
    }

    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBltu:
    case Opcode::kBge:
    case Opcode::kBgeu: {
      bool taken = false;
      switch (instr.opcode) {
        case Opcode::kBeq:
          taken = rs1 == rs2;
          break;
        case Opcode::kBne:
          taken = rs1 != rs2;
          break;
        case Opcode::kBlt:
          taken = static_cast<int32_t>(rs1) < static_cast<int32_t>(rs2);
          break;
        case Opcode::kBltu:
          taken = rs1 < rs2;
          break;
        case Opcode::kBge:
          taken = static_cast<int32_t>(rs1) >= static_cast<int32_t>(rs2);
          break;
        case Opcode::kBgeu:
          taken = rs1 >= rs2;
          break;
        default:
          break;
      }
      // Static BTFN prediction: backward branches predicted taken,
      // forward branches predicted not-taken.
      const bool predicted_taken = instr.imm < 0;
      if (taken) {
        ++stats->taken_branches;
        next_pc = static_cast<uint32_t>(static_cast<int64_t>(pc_) + 1 +
                                        instr.imm);
      }
      if (taken != predicted_taken) {
        ++stats->mispredicted_branches;
        stats->branch_penalty_cycles += config_.branch_mispredict_penalty;
        stats->cycles += config_.branch_mispredict_penalty;
      }
      break;
    }
    case Opcode::kJ:
      next_pc =
          static_cast<uint32_t>(static_cast<int64_t>(pc_) + 1 + instr.imm);
      break;

    case Opcode::kTie:
      DBA_RETURN_IF_ERROR(
          resolved != nullptr
              ? ExecuteTieOpResolved(*resolved, instr.operand, stats)
              : ExecuteTieOp(instr.ext_id, instr.operand, stats));
      break;
  }

  if (!*halted) pc_ = next_pc;
  return Status::Ok();
}

Result<ExecStats> Cpu::Run(const RunOptions& options) {
  if (decoded_.empty()) {
    return Status::FailedPrecondition("no program loaded");
  }
  SimRunCounter(options.mode)->Increment();
  Result<ExecStats> result = options.mode == ExecMode::kInterpret
                                 ? RunInterpret(options)
                                 : RunFast(options);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (result.ok()) {
    static obs::Counter* const cycles = registry.GetCounter(
        "dba_sim_run_cycles_total",
        "Simulated cycles accumulated by successful Cpu::Run calls.");
    cycles->Increment(result->cycles);
  } else {
    static obs::Counter* const failures = registry.GetCounter(
        "dba_sim_run_failures_total",
        "Cpu::Run calls that returned an error (watchdog, faults).");
    failures->Increment();
  }
  return result;
}

Result<ExecStats> Cpu::RunInterpret(const RunOptions& options) {
  ExecStats stats;
  if (options.profile) {
    stats.pc_counts.resize(decoded_.size(), 0);
    stats.pc_cycles.resize(decoded_.size());
  }

  CycleTraceSink* sink = options.trace_sink;
  auto sample_counters = [&stats, sink](uint64_t cycle) {
    sink->Counter(cycle, "stall/branch",
                  static_cast<double>(stats.branch_penalty_cycles));
    sink->Counter(cycle, "stall/load",
                  static_cast<double>(stats.load_stall_cycles));
    sink->Counter(cycle, "stall/store",
                  static_cast<double>(stats.store_stall_cycles));
    sink->Counter(cycle, "stall/port",
                  static_cast<double>(stats.port_stall_cycles));
    sink->Counter(cycle, "stall/ext",
                  static_cast<double>(stats.ext_extra_cycles));
    sink->Counter(cycle, "lsu0/beats",
                  static_cast<double>(stats.lsu_beats[0]));
    sink->Counter(cycle, "lsu1/beats",
                  static_cast<double>(stats.lsu_beats[1]));
  };
  const std::string* open_region = nullptr;  // label of the open region

  bool halted = false;
  while (!halted) {
    if (stats.cycles >= options.max_cycles) {
      return Status::DeadlineExceeded(
          "watchdog: exceeded " + std::to_string(options.max_cycles) +
          " cycles at pc " + std::to_string(pc_));
    }
    if (pc_ >= decoded_.size()) {
      return Status::Internal("pc " + std::to_string(pc_) +
                              " outside the program (missing halt?)");
    }
    const uint32_t issue_pc = pc_;
    const isa::DecodedWord& word = decoded_[pc_];
    if (options.profile) ++stats.pc_counts[pc_];
    if (sink != nullptr) {
      const std::string& label = pc_labels_[issue_pc];
      if (open_region == nullptr || label != *open_region) {
        if (open_region != nullptr) {
          sink->EndRegion(stats.cycles);
          sample_counters(stats.cycles);
        }
        sink->BeginRegion(stats.cycles,
                          label.empty() ? std::string_view("(entry)")
                                        : std::string_view(label));
        open_region = &label;
      }
    }
    if (stats.trace.size() < options.trace_limit) {
      char head[32];
      std::snprintf(head, sizeof head, "%8llu %4u: ",
                    static_cast<unsigned long long>(stats.cycles), pc_);
      stats.trace.push_back(
          head + isa::DisassembleWord(word, MakeExtNameResolver()));
    }
    ++stats.bundles;
    ++stats.cycles;  // issue cycle

    // Snapshot the stall counters so the deltas of this word can be
    // attributed to its pc (and through it, to its enclosing label).
    PcCycleBreakdown before;
    if (options.profile) {
      before.branch_penalty_cycles = stats.branch_penalty_cycles;
      before.load_stall_cycles = stats.load_stall_cycles;
      before.store_stall_cycles = stats.store_stall_cycles;
      before.port_stall_cycles = stats.port_stall_cycles;
      before.ext_extra_cycles = stats.ext_extra_cycles;
      before.lsu_beats[0] = stats.lsu_beats[0];
      before.lsu_beats[1] = stats.lsu_beats[1];
    }

    if (word.kind == isa::DecodedWord::Kind::kBase) {
      ++stats.instructions;
      if (options.profile) {
        if (word.base.opcode == Opcode::kTie) {
          ++stats.mnemonic_counts[ext_ops_[word.base.ext_id].name];
        } else {
          ++stats.mnemonic_counts[std::string(
              isa::OpcodeName(word.base.opcode))];
        }
      }
      DBA_RETURN_IF_ERROR(ExecuteBase(word.base, &stats, &halted));
    } else {
      // FLIX bundle: all slots issue in the same cycle and share the
      // LSU ports; port contention across slots serializes beats.
      ExtContext ctx(this, 0);
      for (const isa::TieSlot& slot : word.slots) {
        if (slot.empty()) continue;
        ++stats.instructions;
        auto it = ext_ops_.find(slot.ext_id);
        DBA_CHECK(it != ext_ops_.end());  // validated by LoadProgram
        if (options.profile) ++stats.mnemonic_counts[it->second.name];
        ctx.operand_ = slot.operand;
        DBA_RETURN_IF_ERROR(it->second.fn(ctx));
      }
      const uint32_t port_cycles = std::max(ctx.beats_[0], ctx.beats_[1]);
      if (port_cycles > 1) {
        stats.port_stall_cycles += port_cycles - 1;
        stats.cycles += port_cycles - 1;
      }
      stats.ext_extra_cycles += ctx.extra_cycles_;
      stats.cycles += ctx.extra_cycles_;
      stats.lsu_beats[0] += ctx.beats_[0];
      stats.lsu_beats[1] += ctx.beats_[1];
      pc_ = pc_ + 1;
    }

    if (options.profile) {
      PcCycleBreakdown& slot = stats.pc_cycles[issue_pc];
      slot.issue_cycles += 1;
      slot.branch_penalty_cycles +=
          stats.branch_penalty_cycles - before.branch_penalty_cycles;
      slot.load_stall_cycles +=
          stats.load_stall_cycles - before.load_stall_cycles;
      slot.store_stall_cycles +=
          stats.store_stall_cycles - before.store_stall_cycles;
      slot.port_stall_cycles +=
          stats.port_stall_cycles - before.port_stall_cycles;
      slot.ext_extra_cycles +=
          stats.ext_extra_cycles - before.ext_extra_cycles;
      slot.lsu_beats[0] += stats.lsu_beats[0] - before.lsu_beats[0];
      slot.lsu_beats[1] += stats.lsu_beats[1] - before.lsu_beats[1];
    }
  }

  if (sink != nullptr && open_region != nullptr) {
    sink->EndRegion(stats.cycles);
    sample_counters(stats.cycles);
  }
  return stats;
}

Result<ExecStats> Cpu::RunFast(const RunOptions& options) {
  ExecStats stats;
  const bool lean = !options.profile && options.trace_limit == 0 &&
                    options.trace_sink == nullptr;
  Status status = Status::Ok();
  if (lean && loop_accel_ != nullptr) {
    status = RunFastLoop<true, true>(options, stats);
  } else if (lean) {
    status = RunFastLoop<true, false>(options, stats);
  } else {
    // Profiling, tracing, and cycle-trace sinks need per-word
    // bookkeeping; the superblock loop provides it bit-identically, but
    // the loop accelerator cannot, so it stays out of the picture.
    status = RunFastLoop<false, false>(options, stats);
  }
  if (!status.ok()) return status;
  return stats;
}

template <bool kLean, bool kAccel>
Status Cpu::RunFastLoop(const RunOptions& options, ExecStats& stats) {
  if (!kLean && options.profile) {
    stats.pc_counts.resize(decoded_.size(), 0);
    stats.pc_cycles.resize(decoded_.size());
  }
  CycleTraceSink* sink = kLean ? nullptr : options.trace_sink;
  auto sample_counters = [&stats, sink](uint64_t cycle) {
    sink->Counter(cycle, "stall/branch",
                  static_cast<double>(stats.branch_penalty_cycles));
    sink->Counter(cycle, "stall/load",
                  static_cast<double>(stats.load_stall_cycles));
    sink->Counter(cycle, "stall/store",
                  static_cast<double>(stats.store_stall_cycles));
    sink->Counter(cycle, "stall/port",
                  static_cast<double>(stats.port_stall_cycles));
    sink->Counter(cycle, "stall/ext",
                  static_cast<double>(stats.ext_extra_cycles));
    sink->Counter(cycle, "lsu0/beats",
                  static_cast<double>(stats.lsu_beats[0]));
    sink->Counter(cycle, "lsu1/beats",
                  static_cast<double>(stats.lsu_beats[1]));
  };
  const std::string* open_region = nullptr;  // label of the open region

  const size_t program_size = decoded_.size();
  const bool exact = options.mode != ExecMode::kTurbo;
  bool halted = false;
  while (!halted) {
    if (stats.cycles >= options.max_cycles) {
      return Status::DeadlineExceeded(
          "watchdog: exceeded " + std::to_string(options.max_cycles) +
          " cycles at pc " + std::to_string(pc_));
    }
    if (pc_ >= program_size) {
      return Status::Internal("pc " + std::to_string(pc_) +
                              " outside the program (missing halt?)");
    }
    SuperBlock& block = blocks_[block_of_[pc_]];
    if constexpr (kAccel) {
      if (block.tie_loop && pc_ == block.head && block.accel_state != 2) {
        const TieLoop loop{block.head,
                           std::span<const isa::Instruction>(block.tie_body),
                           block.tie_branch};
        if (block.accel_state == 0) {
          block.accel_state =
              loop_accel_->MatchesTieLoop(loop) ? uint8_t{1} : uint8_t{2};
        }
        if (block.accel_state == 1) {
          DBA_ASSIGN_OR_RETURN(
              bool handled,
              loop_accel_->RunTieLoop(loop, *this, exact, options.max_cycles,
                                      &stats));
          if (handled) continue;
        }
      }
    }
    const uint32_t head = block.head;
    const uint32_t end = head + block.len;
    // Straight-line execution of one superblock. A taken backward
    // branch to `head` (the steady-state case) stays inside this loop;
    // any other control transfer exits to the block dispatcher above.
    bool first = true;
    while (true) {
      if (!first) {
        if (stats.cycles >= options.max_cycles) {
          return Status::DeadlineExceeded(
              "watchdog: exceeded " + std::to_string(options.max_cycles) +
              " cycles at pc " + std::to_string(pc_));
        }
        if (pc_ < head || pc_ >= end) break;
      }
      first = false;
      const uint32_t issue_pc = pc_;
      const isa::DecodedWord& word = decoded_[pc_];
      if constexpr (!kLean) {
        if (options.profile) ++stats.pc_counts[pc_];
        if (sink != nullptr) {
          const std::string& label = pc_labels_[issue_pc];
          if (open_region == nullptr || label != *open_region) {
            if (open_region != nullptr) {
              sink->EndRegion(stats.cycles);
              sample_counters(stats.cycles);
            }
            sink->BeginRegion(stats.cycles,
                              label.empty() ? std::string_view("(entry)")
                                            : std::string_view(label));
            open_region = &label;
          }
        }
        if (stats.trace.size() < options.trace_limit) {
          char head_buf[32];
          std::snprintf(head_buf, sizeof head_buf, "%8llu %4u: ",
                        static_cast<unsigned long long>(stats.cycles), pc_);
          stats.trace.push_back(
              head_buf + isa::DisassembleWord(word, MakeExtNameResolver()));
        }
      }
      ++stats.bundles;
      ++stats.cycles;  // issue cycle

      PcCycleBreakdown before;
      if constexpr (!kLean) {
        if (options.profile) {
          before.branch_penalty_cycles = stats.branch_penalty_cycles;
          before.load_stall_cycles = stats.load_stall_cycles;
          before.store_stall_cycles = stats.store_stall_cycles;
          before.port_stall_cycles = stats.port_stall_cycles;
          before.ext_extra_cycles = stats.ext_extra_cycles;
          before.lsu_beats[0] = stats.lsu_beats[0];
          before.lsu_beats[1] = stats.lsu_beats[1];
        }
      }

      if (word.kind == isa::DecodedWord::Kind::kBase) {
        ++stats.instructions;
        if constexpr (!kLean) {
          if (options.profile) {
            if (word.base.opcode == Opcode::kTie) {
              ++stats.mnemonic_counts[ext_of_[issue_pc]->name];
            } else {
              ++stats.mnemonic_counts[std::string(
                  isa::OpcodeName(word.base.opcode))];
            }
          }
        }
        DBA_RETURN_IF_ERROR(
            ExecuteBase(word.base, &stats, &halted, ext_of_[issue_pc]));
      } else {
        // FLIX bundle: all slots issue in the same cycle and share the
        // LSU ports; port contention across slots serializes beats.
        ExtContext ctx(this, 0);
        for (int i = 0; i < isa::kMaxFlixSlots; ++i) {
          const ExtOp* op = slot_ext_of_[issue_pc][static_cast<size_t>(i)];
          if (op == nullptr) continue;
          ++stats.instructions;
          if constexpr (!kLean) {
            if (options.profile) ++stats.mnemonic_counts[op->name];
          }
          ctx.operand_ = word.slots[static_cast<size_t>(i)].operand;
          DBA_RETURN_IF_ERROR(op->fn(ctx));
        }
        const uint32_t port_cycles = std::max(ctx.beats_[0], ctx.beats_[1]);
        if (port_cycles > 1) {
          stats.port_stall_cycles += port_cycles - 1;
          stats.cycles += port_cycles - 1;
        }
        stats.ext_extra_cycles += ctx.extra_cycles_;
        stats.cycles += ctx.extra_cycles_;
        stats.lsu_beats[0] += ctx.beats_[0];
        stats.lsu_beats[1] += ctx.beats_[1];
        pc_ = pc_ + 1;
      }

      if constexpr (!kLean) {
        if (options.profile) {
          PcCycleBreakdown& slot = stats.pc_cycles[issue_pc];
          slot.issue_cycles += 1;
          slot.branch_penalty_cycles +=
              stats.branch_penalty_cycles - before.branch_penalty_cycles;
          slot.load_stall_cycles +=
              stats.load_stall_cycles - before.load_stall_cycles;
          slot.store_stall_cycles +=
              stats.store_stall_cycles - before.store_stall_cycles;
          slot.port_stall_cycles +=
              stats.port_stall_cycles - before.port_stall_cycles;
          slot.ext_extra_cycles +=
              stats.ext_extra_cycles - before.ext_extra_cycles;
          slot.lsu_beats[0] += stats.lsu_beats[0] - before.lsu_beats[0];
          slot.lsu_beats[1] += stats.lsu_beats[1] - before.lsu_beats[1];
        }
      }
      if (halted) break;
    }
  }

  if (sink != nullptr && open_region != nullptr) {
    sink->EndRegion(stats.cycles);
    sample_counters(stats.cycles);
  }
  return Status::Ok();
}

}  // namespace dba::sim
