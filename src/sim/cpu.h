#ifndef DBA_SIM_CPU_H_
#define DBA_SIM_CPU_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/disassembler.h"
#include "isa/instruction.h"
#include "isa/program.h"
#include "mem/memory.h"
#include "sim/core_config.h"
#include "sim/exec_mode.h"
#include "sim/ext_op.h"
#include "sim/loop_accel.h"
#include "sim/stats.h"
#include "sim/trace_sink.h"

namespace dba::sim {

/// Execution controls for Cpu::Run.
struct RunOptions {
  /// How the run loop advances the machine (see sim/exec_mode.h). The
  /// default fast-forward path is bit-identical to the interpreter;
  /// turbo is opt-in and trades per-pc profiling for batch execution of
  /// recognized kernel loops.
  ExecMode mode = ExecMode::kFastForward;
  /// Watchdog: abort with DeadlineExceeded after this many cycles.
  uint64_t max_cycles = 1ull << 36;
  /// Collect per-pc counts, per-pc cycle attribution, and the dynamic
  /// instruction mix (slower).
  bool profile = false;
  /// Record the first `trace_limit` issued words as rendered trace
  /// lines in ExecStats::trace (the debug interface of the processor
  /// model); 0 disables tracing.
  uint32_t trace_limit = 0;
  /// Cycle-trace receiver (non-owning; may be null). When set, the run
  /// emits a duration slice per enclosing label region and samples the
  /// stall/beat counter tracks at each region boundary. The Chrome
  /// trace-event writer in src/obs renders these for ui.perfetto.dev.
  CycleTraceSink* trace_sink = nullptr;
};

/// Cycle-accurate in-order model of the configurable core.
///
/// The model issues one program word per cycle and adds stall cycles for
/// the events that dominate the paper's analysis:
///   - memory latency of scalar loads/stores (local store vs. system
///     memory is the 108Mini vs. DBA_1LSU difference),
///   - mispredicted data-dependent branches (static BTFN predictor),
///   - load-store-unit port contention of extension beats (1 vs. 2 LSUs),
///   - extra datapath cycles declared by extension operations.
///
/// Instruction fetch is modelled as ideal for all configurations (see
/// DESIGN.md, deliberate deviations).
class Cpu {
 public:
  explicit Cpu(CoreConfig config);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  const CoreConfig& config() const { return config_; }

  /// Maps a memory into the core's address space (non-owning).
  Status AttachMemory(mem::Memory* memory);
  const mem::MemorySystem& memory_system() const { return memory_system_; }

  /// Registers a TIE extension operation under `ext_id` (1..0xFFF).
  Status RegisterExtOp(uint16_t ext_id, std::string name, ExtOpFn fn);
  bool HasExtOp(uint16_t ext_id) const { return ext_ops_.count(ext_id) != 0; }

  /// Registers the batch executor for steady-state extension loops
  /// (non-owning; may be null to clear). Consulted by the fast-forward
  /// and turbo run loops for superblocks that are TIE loops.
  void SetLoopAccelerator(LoopAccelerator* accel) { loop_accel_ = accel; }
  LoopAccelerator* loop_accelerator() const { return loop_accel_; }

  /// Mnemonic lookup for the disassembler.
  isa::ExtNameResolver MakeExtNameResolver() const;

  /// Validates, decodes, and installs `program`; resets pc to 0.
  /// Fails if the program exceeds the local instruction memory, uses
  /// 64-bit FLIX words on a 32-bit instruction bus, or references
  /// unregistered extension operations.
  Status LoadProgram(const isa::Program& program);

  // --- Architectural state ---
  uint32_t reg(isa::Reg r) const {
    return regs_[static_cast<size_t>(isa::RegIndex(r))];
  }
  void set_reg(isa::Reg r, uint32_t value) {
    regs_[static_cast<size_t>(isa::RegIndex(r))] = value;
  }
  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  /// Resets pc and registers (memories and extension state untouched).
  void ResetArchState();

  /// Runs until kHalt. Returns the cycle-accurate statistics.
  Result<ExecStats> Run(const RunOptions& options = {});

  /// Decode-once superblocks of the resident program (tests and the
  /// toolchain introspect these; rebuilt by LoadProgram whenever the
  /// program words change).
  struct SuperBlock {
    uint32_t head = 0;  // first pc of the straight-line region
    uint32_t len = 0;   // words in [head, head + len)
    /// The block is a steady-state TIE loop: `len - 1` base kTie words
    /// followed by a backward conditional branch to `head`. Such blocks
    /// are offered to the registered LoopAccelerator.
    bool tie_loop = false;
    /// Cached MatchesTieLoop verdict (0 unknown, 1 yes, 2 no).
    uint8_t accel_state = 0;
    /// Pre-decoded micro-trace of a tie_loop body plus its branch.
    std::vector<isa::Instruction> tie_body;
    isa::Instruction tie_branch;
  };
  size_t num_superblocks() const { return blocks_.size(); }
  const SuperBlock& superblock_at(uint32_t pc) const {
    return blocks_[block_of_[pc]];
  }

 private:
  friend class ExtContext;

  struct ExtOp {
    std::string name;
    ExtOpFn fn;
  };

  Status ExecuteBase(const isa::Instruction& instr, ExecStats* stats,
                     bool* halted, const ExtOp* resolved = nullptr);
  Status ExecuteTieOp(uint16_t ext_id, uint16_t operand, ExecStats* stats);
  Status ExecuteTieOpResolved(const ExtOp& op, uint16_t operand,
                              ExecStats* stats);
  Result<mem::Memory*> RouteData(uint64_t addr, uint64_t bytes);

  /// Segments the freshly decoded program into superblocks and resolves
  /// the per-pc extension handlers (decode-once micro-traces).
  void BuildExecPlan();

  Result<ExecStats> RunInterpret(const RunOptions& options);
  Result<ExecStats> RunFast(const RunOptions& options);
  template <bool kLean, bool kAccel>
  Status RunFastLoop(const RunOptions& options, ExecStats& stats);

  CoreConfig config_;
  mem::MemorySystem memory_system_;
  std::map<uint16_t, ExtOp> ext_ops_;
  LoopAccelerator* loop_accel_ = nullptr;

  std::vector<isa::DecodedWord> decoded_;
  const isa::Program* program_ = nullptr;  // for diagnostics only
  /// Copy of the resident program's words/labels; LoadProgram skips the
  /// decode when asked to load identical content again.
  std::vector<uint64_t> loaded_words_;
  std::vector<std::pair<std::string, uint32_t>> loaded_labels_;
  /// Enclosing label per pc (empty when none), rebuilt by LoadProgram;
  /// names the cycle-trace regions and the stall-attribution rows.
  std::vector<std::string> pc_labels_;

  /// Execution plan of the resident program: superblock table, pc ->
  /// block map, and pre-resolved extension handlers (no map lookup on
  /// the fast paths). Lives and dies with decoded_.
  std::vector<SuperBlock> blocks_;
  std::vector<uint32_t> block_of_;
  std::vector<const ExtOp*> ext_of_;  // base kTie words only, else null
  std::vector<std::array<const ExtOp*, isa::kMaxFlixSlots>> slot_ext_of_;

  std::array<uint32_t, isa::kNumRegs> regs_{};
  uint32_t pc_ = 0;
};

}  // namespace dba::sim

#endif  // DBA_SIM_CPU_H_
