#ifndef DBA_SIM_CPU_H_
#define DBA_SIM_CPU_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/disassembler.h"
#include "isa/instruction.h"
#include "isa/program.h"
#include "mem/memory.h"
#include "sim/core_config.h"
#include "sim/ext_op.h"
#include "sim/stats.h"
#include "sim/trace_sink.h"

namespace dba::sim {

/// Execution controls for Cpu::Run.
struct RunOptions {
  /// Watchdog: abort with DeadlineExceeded after this many cycles.
  uint64_t max_cycles = 1ull << 36;
  /// Collect per-pc counts, per-pc cycle attribution, and the dynamic
  /// instruction mix (slower).
  bool profile = false;
  /// Record the first `trace_limit` issued words as rendered trace
  /// lines in ExecStats::trace (the debug interface of the processor
  /// model); 0 disables tracing.
  uint32_t trace_limit = 0;
  /// Cycle-trace receiver (non-owning; may be null). When set, the run
  /// emits a duration slice per enclosing label region and samples the
  /// stall/beat counter tracks at each region boundary. The Chrome
  /// trace-event writer in src/obs renders these for ui.perfetto.dev.
  CycleTraceSink* trace_sink = nullptr;
};

/// Cycle-accurate in-order model of the configurable core.
///
/// The model issues one program word per cycle and adds stall cycles for
/// the events that dominate the paper's analysis:
///   - memory latency of scalar loads/stores (local store vs. system
///     memory is the 108Mini vs. DBA_1LSU difference),
///   - mispredicted data-dependent branches (static BTFN predictor),
///   - load-store-unit port contention of extension beats (1 vs. 2 LSUs),
///   - extra datapath cycles declared by extension operations.
///
/// Instruction fetch is modelled as ideal for all configurations (see
/// DESIGN.md, deliberate deviations).
class Cpu {
 public:
  explicit Cpu(CoreConfig config);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  const CoreConfig& config() const { return config_; }

  /// Maps a memory into the core's address space (non-owning).
  Status AttachMemory(mem::Memory* memory);
  const mem::MemorySystem& memory_system() const { return memory_system_; }

  /// Registers a TIE extension operation under `ext_id` (1..0xFFF).
  Status RegisterExtOp(uint16_t ext_id, std::string name, ExtOpFn fn);
  bool HasExtOp(uint16_t ext_id) const { return ext_ops_.count(ext_id) != 0; }

  /// Mnemonic lookup for the disassembler.
  isa::ExtNameResolver MakeExtNameResolver() const;

  /// Validates, decodes, and installs `program`; resets pc to 0.
  /// Fails if the program exceeds the local instruction memory, uses
  /// 64-bit FLIX words on a 32-bit instruction bus, or references
  /// unregistered extension operations.
  Status LoadProgram(const isa::Program& program);

  // --- Architectural state ---
  uint32_t reg(isa::Reg r) const {
    return regs_[static_cast<size_t>(isa::RegIndex(r))];
  }
  void set_reg(isa::Reg r, uint32_t value) {
    regs_[static_cast<size_t>(isa::RegIndex(r))] = value;
  }
  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  /// Resets pc and registers (memories and extension state untouched).
  void ResetArchState();

  /// Runs until kHalt. Returns the cycle-accurate statistics.
  Result<ExecStats> Run(const RunOptions& options = {});

 private:
  friend class ExtContext;

  struct ExtOp {
    std::string name;
    ExtOpFn fn;
  };

  Status ExecuteBase(const isa::Instruction& instr, ExecStats* stats,
                     bool* halted);
  Status ExecuteTieOp(uint16_t ext_id, uint16_t operand, ExecStats* stats);
  Result<mem::Memory*> RouteData(uint64_t addr, uint64_t bytes);

  CoreConfig config_;
  mem::MemorySystem memory_system_;
  std::map<uint16_t, ExtOp> ext_ops_;

  std::vector<isa::DecodedWord> decoded_;
  const isa::Program* program_ = nullptr;  // for diagnostics only
  /// Copy of the resident program's words/labels; LoadProgram skips the
  /// decode when asked to load identical content again.
  std::vector<uint64_t> loaded_words_;
  std::vector<std::pair<std::string, uint32_t>> loaded_labels_;
  /// Enclosing label per pc (empty when none), rebuilt by LoadProgram;
  /// names the cycle-trace regions and the stall-attribution rows.
  std::vector<std::string> pc_labels_;

  std::array<uint32_t, isa::kNumRegs> regs_{};
  uint32_t pc_ = 0;
};

}  // namespace dba::sim

#endif  // DBA_SIM_CPU_H_
