#ifndef DBA_SIM_TRACE_SINK_H_
#define DBA_SIM_TRACE_SINK_H_

#include <cstdint>
#include <string_view>

namespace dba::sim {

/// Receiver of cycle-trace events emitted by Cpu::Run (and by the layers
/// above it, e.g. Processor kernel phases). Timestamps are cycle numbers
/// relative to the start of the run; regions nest like a call stack.
///
/// The simulator only depends on this interface; concrete sinks (the
/// Chrome trace-event / Perfetto writer) live in src/obs.
class CycleTraceSink {
 public:
  virtual ~CycleTraceSink() = default;

  /// A named region begins at `cycle`. Regions are emitted in nesting
  /// order: a BeginRegion opens a child of the innermost open region.
  virtual void BeginRegion(uint64_t cycle, std::string_view name) = 0;

  /// The innermost open region ends at `cycle`.
  virtual void EndRegion(uint64_t cycle) = 0;

  /// Sample of a cumulative counter track (stall cycles, LSU beats) at
  /// `cycle`.
  virtual void Counter(uint64_t cycle, std::string_view name,
                       double value) = 0;
};

}  // namespace dba::sim

#endif  // DBA_SIM_TRACE_SINK_H_
