#ifndef DBA_SIM_CORE_CONFIG_H_
#define DBA_SIM_CORE_CONFIG_H_

#include <cstdint>
#include <string>

namespace dba::sim {

/// Static parameters of a configurable core, mirroring the knobs the
/// paper turns on the Tensilica LX4 base (Section 3.2 / 5.1): number of
/// load-store units, bus widths, and local-store presence. Timing
/// parameters of the in-order pipeline are explicit so that experiments
/// can ablate them.
struct CoreConfig {
  std::string name = "core";

  /// Number of load-store units (1 or 2). TIE operations address LSUs by
  /// index; on a single-LSU core all accesses serialize on LSU 0, which
  /// is exactly the DBA_1LSU_EIS vs DBA_2LSU_EIS distinction.
  int num_lsus = 1;

  /// Width of the data bus between LSUs and memory in bits. 128-bit
  /// beats (Beat128) require 128; scalar 32-bit accesses always work.
  uint32_t data_bus_bits = 32;

  /// Width of fetched instruction words in bits; 64 enables FLIX bundles.
  uint32_t instruction_bus_bits = 32;

  /// Penalty in cycles for a mispredicted conditional branch. The core
  /// uses a static backward-taken/forward-not-taken (BTFN) predictor, so
  /// loop back-edges are free while data-dependent forward branches --
  /// the "hardly predictable branch" of the merge loop (Section 2.3) --
  /// pay this penalty about half the time.
  uint32_t branch_mispredict_penalty = 3;

  /// Local instruction memory capacity in bytes (0 = unlimited fetch,
  /// used by baseline cores without a local store).
  uint64_t instruction_memory_bytes = 0;

  friend bool operator==(const CoreConfig&, const CoreConfig&) = default;
};

}  // namespace dba::sim

#endif  // DBA_SIM_CORE_CONFIG_H_
