#include "mem/memory.h"

#include <cstring>
#include <utility>

#include "common/bits.h"

namespace dba::mem {

Memory::Memory(MemoryConfig config) : config_(std::move(config)) {
  data_.resize(config_.size, 0);
}

Result<Memory> Memory::Create(MemoryConfig config) {
  if (config.size == 0 || !IsAligned(config.size, kBeatBytes)) {
    return Status::InvalidArgument("memory size must be a non-zero multiple of " +
                                   std::to_string(kBeatBytes));
  }
  if (!IsAligned(config.base, kBeatBytes)) {
    return Status::InvalidArgument("memory base must be 16-byte aligned");
  }
  if (config.access_latency == 0) {
    return Status::InvalidArgument("access latency must be >= 1 cycle");
  }
  return Memory(std::move(config));
}

Status Memory::CheckAccess(uint64_t addr, uint64_t bytes,
                           uint64_t alignment) const {
  if (!IsAligned(addr, alignment)) {
    return Status::InvalidArgument(config_.name + ": unaligned access at 0x" +
                                   std::to_string(addr));
  }
  if (!Contains(addr, bytes)) {
    return Status::OutOfRange(config_.name + ": access at 0x" +
                              std::to_string(addr) + " (+" +
                              std::to_string(bytes) + ") out of bounds");
  }
  return Status::Ok();
}

Result<uint32_t> Memory::LoadU32(uint64_t addr) const {
  DBA_RETURN_IF_ERROR(CheckAccess(addr, 4, 4));
  uint32_t value = 0;
  std::memcpy(&value, data_.data() + (addr - config_.base), 4);
  return value;
}

Status Memory::StoreU32(uint64_t addr, uint32_t value) {
  DBA_RETURN_IF_ERROR(CheckAccess(addr, 4, 4));
  std::memcpy(data_.data() + (addr - config_.base), &value, 4);
  return Status::Ok();
}

Result<Beat128> Memory::Load128(uint64_t addr) const {
  DBA_RETURN_IF_ERROR(CheckAccess(addr, kBeatBytes, kBeatBytes));
  Beat128 beat;
  std::memcpy(beat.data(), data_.data() + (addr - config_.base), kBeatBytes);
  return beat;
}

Status Memory::Store128(uint64_t addr, const Beat128& beat) {
  DBA_RETURN_IF_ERROR(CheckAccess(addr, kBeatBytes, kBeatBytes));
  std::memcpy(data_.data() + (addr - config_.base), beat.data(), kBeatBytes);
  return Status::Ok();
}

Status Memory::WriteBlock(uint64_t addr, std::span<const uint32_t> values) {
  if (values.empty()) return Status::Ok();
  DBA_RETURN_IF_ERROR(CheckAccess(addr, values.size() * 4, 4));
  std::memcpy(data_.data() + (addr - config_.base), values.data(),
              values.size() * 4);
  return Status::Ok();
}

Result<std::vector<uint32_t>> Memory::ReadBlock(uint64_t addr,
                                                size_t count) const {
  if (count == 0) return std::vector<uint32_t>{};
  DBA_RETURN_IF_ERROR(CheckAccess(addr, count * 4, 4));
  std::vector<uint32_t> values(count);
  std::memcpy(values.data(), data_.data() + (addr - config_.base), count * 4);
  return values;
}

Status Memory::FlipBit(uint64_t addr, uint32_t bit) {
  if (bit >= 32) {
    return Status::InvalidArgument(config_.name +
                                   ": FlipBit bit index must be in 0..31");
  }
  DBA_ASSIGN_OR_RETURN(uint32_t word, LoadU32(addr));
  return StoreU32(addr, word ^ (1u << bit));
}

void Memory::Clear() { std::fill(data_.begin(), data_.end(), 0); }

Status MemorySystem::AddRegion(Memory* memory) {
  const MemoryConfig& config = memory->config();
  for (const Memory* existing : regions_) {
    const MemoryConfig& other = existing->config();
    const bool disjoint = config.base + config.size <= other.base ||
                          other.base + other.size <= config.base;
    if (!disjoint) {
      return Status::AlreadyExists("memory region '" + config.name +
                                   "' overlaps '" + other.name + "'");
    }
  }
  regions_.push_back(memory);
  return Status::Ok();
}

Result<Memory*> MemorySystem::Route(uint64_t addr, uint64_t bytes) const {
  for (Memory* memory : regions_) {
    if (memory->Contains(addr, bytes)) return memory;
  }
  return Status::NotFound("no memory region backs address 0x" +
                          std::to_string(addr));
}

}  // namespace dba::mem
