#ifndef DBA_MEM_MEMORY_H_
#define DBA_MEM_MEMORY_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace dba::mem {

/// 128-bit memory beat: four little-endian 32-bit words, matching the
/// LSU-to-local-memory interface width of the DBA processor.
using Beat128 = std::array<uint32_t, 4>;
inline constexpr uint32_t kBeatBytes = 16;

/// Configuration of one physical memory in the processor model.
struct MemoryConfig {
  std::string name;              // for diagnostics: "ldm0", "sysmem", ...
  uint64_t base = 0;             // base address in the flat address space
  uint64_t size = 0;             // bytes; must be a multiple of 16
  uint32_t access_latency = 1;   // cycles per access as seen by the core
  bool dual_port = false;        // second port for the data prefetcher
};

/// A byte-addressable little-endian memory: local instruction/data
/// memories (single-cycle scratchpads), or the slower system memory used
/// by cache-less baseline configurations and as DMA source/sink.
///
/// The memory itself is purely functional; timing (latency, port
/// arbitration) is accounted by the simulator's load-store units using
/// `config().access_latency` and `config().dual_port`.
class Memory {
 public:
  /// Fails if size is zero, not 16-byte aligned, or base is unaligned.
  static Result<Memory> Create(MemoryConfig config);

  Memory(Memory&&) = default;
  Memory& operator=(Memory&&) = default;
  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  const MemoryConfig& config() const { return config_; }
  bool Contains(uint64_t addr, uint64_t bytes = 1) const {
    return addr >= config_.base && addr - config_.base + bytes <= config_.size;
  }

  // --- Word access (32-bit, 4-byte aligned) ---
  Result<uint32_t> LoadU32(uint64_t addr) const;
  Status StoreU32(uint64_t addr, uint32_t value);

  // --- Wide access (128-bit, 16-byte aligned) ---
  Result<Beat128> Load128(uint64_t addr) const;
  Status Store128(uint64_t addr, const Beat128& beat);

  // --- Bulk host-side access (test and driver setup; no timing) ---
  Status WriteBlock(uint64_t addr, std::span<const uint32_t> values);
  Result<std::vector<uint32_t>> ReadBlock(uint64_t addr, size_t count) const;

  /// Inverts bit `bit` (0..31) of the 32-bit word at `addr` -- the
  /// fault injector's model of a transient single-event upset.
  Status FlipBit(uint64_t addr, uint32_t bit);

  /// Zeroes the full memory contents.
  void Clear();

  // --- Raw host-side views (fast-path steppers; no timing, no bounds
  // help: byte i maps to address config().base + i) ---
  std::span<const uint8_t> raw() const { return data_; }
  std::span<uint8_t> mutable_raw() { return data_; }

 private:
  explicit Memory(MemoryConfig config);

  Status CheckAccess(uint64_t addr, uint64_t bytes, uint64_t alignment) const;

  MemoryConfig config_;
  std::vector<uint8_t> data_;
};

/// Routes flat addresses to the memory that backs them. Regions must not
/// overlap. Non-owning: the processor model owns the memories.
class MemorySystem {
 public:
  MemorySystem() = default;

  /// Fails if the region overlaps an existing one.
  Status AddRegion(Memory* memory);

  /// Memory backing `addr` for an access of `bytes`, or NotFound.
  Result<Memory*> Route(uint64_t addr, uint64_t bytes = 4) const;

  const std::vector<Memory*>& regions() const { return regions_; }

 private:
  std::vector<Memory*> regions_;
};

}  // namespace dba::mem

#endif  // DBA_MEM_MEMORY_H_
