#ifndef DBA_TOOLCHAIN_EQUIVALENCE_H_
#define DBA_TOOLCHAIN_EQUIVALENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/processor.h"

namespace dba::toolchain {

/// Result of an equivalence-check campaign (the "equivalence checks" of
/// the paper's Figure 4 verification stage: the extension kernels must
/// produce bit-identical results to the scalar reference kernels on the
/// same core).
struct EquivalenceReport {
  std::string subject;
  uint32_t trials = 0;
  uint32_t failures = 0;
  /// First few mismatches, rendered for the log.
  std::vector<std::string> failure_details;

  bool passed() const { return failures == 0 && trials > 0; }
  std::string ToString() const;
};

/// Cross-checks the EIS set-operation kernel against the scalar kernel
/// on `processor` (must be an EIS configuration) over `trials`
/// randomized workloads of varying size and selectivity.
Result<EquivalenceReport> CheckSetOpEquivalence(Processor& processor,
                                                SetOp op, int trials,
                                                uint64_t seed);

/// Cross-checks the EIS merge-sort kernel against the scalar one.
Result<EquivalenceReport> CheckSortEquivalence(Processor& processor,
                                               int trials, uint64_t seed);

}  // namespace dba::toolchain

#endif  // DBA_TOOLCHAIN_EQUIVALENCE_H_
