#include "toolchain/profiler.h"

#include <algorithm>
#include <cstdio>

#include "isa/encoding.h"

namespace dba::toolchain {

ProfileReport BuildProfile(const isa::Program& program,
                           const sim::ExecStats& stats,
                           const isa::ExtNameResolver& resolver, int top_n) {
  ProfileReport report;
  report.cycles = stats.cycles;
  report.instructions = stats.instructions;
  if (stats.instructions > 0) {
    report.cycles_per_instruction = static_cast<double>(stats.cycles) /
                                    static_cast<double>(stats.instructions);
  }

  // Rank program words by execution count.
  std::vector<std::pair<uint32_t, uint64_t>> ranked;
  for (size_t pc = 0; pc < stats.pc_counts.size(); ++pc) {
    if (stats.pc_counts[pc] > 0) {
      ranked.emplace_back(static_cast<uint32_t>(pc), stats.pc_counts[pc]);
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });
  if (top_n > 0 && ranked.size() > static_cast<size_t>(top_n)) {
    ranked.resize(static_cast<size_t>(top_n));
  }

  // Enclosing label per pc: last label bound at or before it.
  auto enclosing_label = [&program](uint32_t pc) {
    std::string best;
    uint32_t best_pos = 0;
    for (const auto& [name, position] : program.labels()) {
      if (position <= pc && (best.empty() || position >= best_pos)) {
        best = name;
        best_pos = position;
      }
    }
    return best;
  };

  for (const auto& [pc, count] : ranked) {
    HotspotEntry entry;
    entry.pc = pc;
    entry.count = count;
    entry.percent = stats.bundles > 0 ? 100.0 * static_cast<double>(count) /
                                            static_cast<double>(stats.bundles)
                                      : 0.0;
    entry.label = enclosing_label(pc);
    auto decoded = isa::Decode(program.word(pc));
    entry.disassembly =
        decoded.ok() ? isa::DisassembleWord(*decoded, resolver) : "<invalid>";
    report.hotspots.push_back(std::move(entry));
  }

  report.instruction_mix.assign(stats.mnemonic_counts.begin(),
                                stats.mnemonic_counts.end());
  std::stable_sort(report.instruction_mix.begin(),
                   report.instruction_mix.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });
  return report;
}

std::string ProfileReport::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "cycles=%llu instructions=%llu CPI=%.2f\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(instructions),
                cycles_per_instruction);
  out += line;
  out += "hotspots:\n";
  for (const HotspotEntry& entry : hotspots) {
    std::snprintf(line, sizeof line, "  pc %4u  %10llu (%5.1f%%)  %-12s %s\n",
                  entry.pc, static_cast<unsigned long long>(entry.count),
                  entry.percent, entry.label.c_str(),
                  entry.disassembly.c_str());
    out += line;
  }
  out += "instruction mix:\n";
  for (const auto& [name, count] : instruction_mix) {
    std::snprintf(line, sizeof line, "  %-16s %10llu\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  return out;
}

}  // namespace dba::toolchain
