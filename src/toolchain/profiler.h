#ifndef DBA_TOOLCHAIN_PROFILER_H_
#define DBA_TOOLCHAIN_PROFILER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/disassembler.h"
#include "isa/program.h"
#include "sim/stats.h"

namespace dba::toolchain {

/// One hot program location.
struct HotspotEntry {
  uint32_t pc = 0;
  uint64_t count = 0;
  double percent = 0;  // of all issued words
  std::string label;   // enclosing label, if any
  std::string disassembly;
};

/// Cycle-accurate profile of one run: the entry point of the paper's
/// Figure 4 tool flow ("cycle-accurate profiling of an application to
/// analyze its runtime behavior ... unveils hotspots").
struct ProfileReport {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double cycles_per_instruction = 0;
  std::vector<HotspotEntry> hotspots;  // descending by count
  std::vector<std::pair<std::string, uint64_t>> instruction_mix;

  std::string ToString() const;
};

/// Builds a profile from a run executed with RunOptions::profile = true.
/// `resolver` names TIE operations in the disassembly (see
/// Cpu::MakeExtNameResolver).
ProfileReport BuildProfile(const isa::Program& program,
                           const sim::ExecStats& stats,
                           const isa::ExtNameResolver& resolver = nullptr,
                           int top_n = 10);

}  // namespace dba::toolchain

#endif  // DBA_TOOLCHAIN_PROFILER_H_
