#include "toolchain/equivalence.h"

#include <algorithm>

#include "common/random.h"
#include "core/workload.h"

namespace dba::toolchain {

namespace {

constexpr int kMaxRecordedFailures = 5;

void RecordFailure(EquivalenceReport* report, std::string detail) {
  ++report->failures;
  if (report->failure_details.size() < kMaxRecordedFailures) {
    report->failure_details.push_back(std::move(detail));
  }
}

}  // namespace

std::string EquivalenceReport::ToString() const {
  std::string out = subject + ": " + std::to_string(trials) + " trials, " +
                    std::to_string(failures) + " failures";
  out += passed() ? " [PASS]" : " [FAIL]";
  for (const std::string& detail : failure_details) {
    out += "\n  " + detail;
  }
  return out;
}

Result<EquivalenceReport> CheckSetOpEquivalence(Processor& processor,
                                                SetOp op, int trials,
                                                uint64_t seed) {
  if (!processor.has_eis()) {
    return Status::FailedPrecondition(
        "equivalence checking needs an EIS configuration");
  }
  EquivalenceReport report;
  report.subject = "setop/" + std::string(eis::SopModeName(op));
  Random rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const auto size_a = static_cast<uint32_t>(rng.Uniform(3000));
    const auto size_b = static_cast<uint32_t>(rng.Uniform(3000));
    const double selectivity = rng.NextDouble();
    DBA_ASSIGN_OR_RETURN(
        SetPair pair,
        GenerateSetPair(size_a, size_b, selectivity, rng.Next64()));

    DBA_ASSIGN_OR_RETURN(SetOpRun eis_run,
                         processor.RunSetOperation(op, pair.a, pair.b));
    DBA_ASSIGN_OR_RETURN(
        SetOpRun scalar_run,
        processor.RunSetOperation(op, pair.a, pair.b,
                                  {.force_scalar = true}));
    ++report.trials;
    if (eis_run.result != scalar_run.result) {
      RecordFailure(&report,
                    "trial " + std::to_string(trial) + ": |A|=" +
                        std::to_string(size_a) + " |B|=" +
                        std::to_string(size_b) + " -> EIS " +
                        std::to_string(eis_run.result.size()) +
                        " elements vs scalar " +
                        std::to_string(scalar_run.result.size()));
    }
  }
  return report;
}

Result<EquivalenceReport> CheckSortEquivalence(Processor& processor,
                                               int trials, uint64_t seed) {
  if (!processor.has_eis()) {
    return Status::FailedPrecondition(
        "equivalence checking needs an EIS configuration");
  }
  EquivalenceReport report;
  report.subject = "merge-sort";
  Random rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    const auto n = static_cast<uint32_t>(
        rng.Uniform(processor.max_sort_elements()));
    const std::vector<uint32_t> values = GenerateSortInput(n, rng.Next64());

    DBA_ASSIGN_OR_RETURN(SortRun eis_run, processor.RunSort(values));
    DBA_ASSIGN_OR_RETURN(SortRun scalar_run,
                         processor.RunSort(values, {.force_scalar = true}));
    ++report.trials;
    if (eis_run.sorted != scalar_run.sorted) {
      RecordFailure(&report, "trial " + std::to_string(trial) + ": n=" +
                                 std::to_string(n) + " mismatch");
    }
  }
  return report;
}

}  // namespace dba::toolchain
