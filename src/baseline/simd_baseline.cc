#include "baseline/simd_baseline.h"

#include <algorithm>
#include <array>
#include <bit>

#if defined(__SSE4_1__)
#include <smmintrin.h>
#if defined(__SSSE3__)
#include <tmmintrin.h>
#endif
#define DBA_BASELINE_HAVE_SSE41 1
#else
#define DBA_BASELINE_HAVE_SSE41 0
#endif

namespace dba::baseline {

bool SimdBaselineUsesVectorUnit() { return DBA_BASELINE_HAVE_SSE41 != 0; }

namespace {

#if DBA_BASELINE_HAVE_SSE41

using V4 = __m128i;

inline V4 Load(const uint32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
inline void Store(uint32_t* p, V4 v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// Bitonic merge network: va/vb sorted ascending in, va = lower four,
/// vb = upper four of the merged eight out (three min/max stages).
inline void VectorMerge(V4& va, V4& vb) {
  const V4 rev_b = _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 1, 2, 3));
  const V4 t0 = _mm_min_epu32(va, rev_b);
  const V4 t1 = _mm_max_epu32(va, rev_b);
  const V4 u0 = _mm_unpacklo_epi64(t0, t1);
  const V4 u1 = _mm_unpackhi_epi64(t0, t1);
  const V4 v_min = _mm_min_epu32(u0, u1);
  const V4 v_max = _mm_max_epu32(u0, u1);
  const V4 e0 = _mm_unpacklo_epi32(v_min, v_max);
  const V4 e1 = _mm_unpackhi_epi32(v_min, v_max);
  const V4 f0 = _mm_unpacklo_epi64(e0, e1);
  const V4 f1 = _mm_unpackhi_epi64(e0, e1);
  const V4 g0 = _mm_min_epu32(f0, f1);
  const V4 g1 = _mm_max_epu32(f0, f1);
  va = _mm_unpacklo_epi32(g0, g1);
  vb = _mm_unpackhi_epi32(g0, g1);
}

/// Sorts 16 values (4 vectors) into four sorted runs of four via a
/// column sorting network plus a 4x4 transpose (Chhugani et al.).
inline void SortColumns16(uint32_t* p) {
  V4 r0 = Load(p);
  V4 r1 = Load(p + 4);
  V4 r2 = Load(p + 8);
  V4 r3 = Load(p + 12);
  // Column sort (each lane independently): network (0,1)(2,3)(0,2)(1,3)(1,2).
  auto cmpswap = [](V4& lo, V4& hi) {
    const V4 t = _mm_min_epu32(lo, hi);
    hi = _mm_max_epu32(lo, hi);
    lo = t;
  };
  cmpswap(r0, r1);
  cmpswap(r2, r3);
  cmpswap(r0, r2);
  cmpswap(r1, r3);
  cmpswap(r1, r2);
  // 4x4 transpose: rows become sorted runs.
  const V4 t0 = _mm_unpacklo_epi32(r0, r1);
  const V4 t1 = _mm_unpacklo_epi32(r2, r3);
  const V4 t2 = _mm_unpackhi_epi32(r0, r1);
  const V4 t3 = _mm_unpackhi_epi32(r2, r3);
  Store(p, _mm_unpacklo_epi64(t0, t1));
  Store(p + 4, _mm_unpackhi_epi64(t0, t1));
  Store(p + 8, _mm_unpacklo_epi64(t2, t3));
  Store(p + 12, _mm_unpackhi_epi64(t2, t3));
}

/// Compaction shuffle masks: entry m rearranges the lanes whose bit is
/// set in m to the front (for _mm_shuffle_epi8).
inline const std::array<std::array<uint8_t, 16>, 16>& CompactTable() {
  static const std::array<std::array<uint8_t, 16>, 16> table = [] {
    std::array<std::array<uint8_t, 16>, 16> t{};
    for (int mask = 0; mask < 16; ++mask) {
      int out = 0;
      for (int lane = 0; lane < 4; ++lane) {
        if ((mask >> lane) & 1) {
          for (int byte = 0; byte < 4; ++byte) {
            t[static_cast<size_t>(mask)][static_cast<size_t>(4 * out + byte)] =
                static_cast<uint8_t>(4 * lane + byte);
          }
          ++out;
        }
      }
      for (int byte = 4 * out; byte < 16; ++byte) {
        t[static_cast<size_t>(mask)][static_cast<size_t>(byte)] = 0x80;
      }
    }
    return t;
  }();
  return table;
}

#else  // !DBA_BASELINE_HAVE_SSE41

/// Portable 4-lane stand-in with identical semantics.
struct V4 {
  uint32_t lane[4];
};

inline V4 Load(const uint32_t* p) { return V4{{p[0], p[1], p[2], p[3]}}; }
inline void Store(uint32_t* p, V4 v) {
  for (int i = 0; i < 4; ++i) p[i] = v.lane[i];
}

inline void VectorMerge(V4& va, V4& vb) {
  uint32_t merged[8];
  std::merge(va.lane, va.lane + 4, vb.lane, vb.lane + 4, merged);
  for (int i = 0; i < 4; ++i) {
    va.lane[i] = merged[i];
    vb.lane[i] = merged[i + 4];
  }
}

inline void SortColumns16(uint32_t* p) {
  for (int run = 0; run < 4; ++run) std::sort(p + 4 * run, p + 4 * run + 4);
}

#endif  // DBA_BASELINE_HAVE_SSE41

/// Three-way scalar merge used to drain the SIMD merge kernel's tail;
/// allocation-free (it runs once per merged run pair).
void MergeThreeWay(std::span<const uint32_t> x, std::span<const uint32_t> y,
                   std::span<const uint32_t> z, uint32_t* out) {
  size_t i = 0;
  size_t j = 0;
  size_t k = 0;
  while (i < x.size() || j < y.size() || k < z.size()) {
    uint32_t best = 0xFFFFFFFFu;
    int source = -1;
    if (i < x.size()) {
      best = x[i];
      source = 0;
    }
    if (j < y.size() && (source < 0 || y[j] < best)) {
      best = y[j];
      source = 1;
    }
    if (k < z.size() && (source < 0 || z[k] < best)) {
      best = z[k];
      source = 2;
    }
    *out++ = best;
    if (source == 0) {
      ++i;
    } else if (source == 1) {
      ++j;
    } else {
      ++k;
    }
  }
}

/// Merges [a, a_end) and [b, b_end) (both sorted) into `out` using the
/// 4-wide bitonic merge kernel for the bulk and a scalar drain.
void MergeRunsSimd(const uint32_t* a, const uint32_t* a_end,
                   const uint32_t* b, const uint32_t* b_end, uint32_t* out) {
  if (a_end - a < 4 || b_end - b < 4) {
    std::merge(a, a_end, b, b_end, out);
    return;
  }
  V4 va = Load(a);
  a += 4;
  V4 vb = Load(b);
  b += 4;
  VectorMerge(va, vb);
  Store(out, va);
  out += 4;
  while (a_end - a >= 4 && b_end - b >= 4) {
    // Refill from the run whose next element is smaller (its values
    // interleave first with the kept upper half).
    if (*a <= *b) {
      va = Load(a);
      a += 4;
    } else {
      va = Load(b);
      b += 4;
    }
    VectorMerge(va, vb);
    Store(out, va);
    out += 4;
  }
  uint32_t kept[4];
  Store(kept, vb);
  MergeThreeWay({kept, 4}, {a, static_cast<size_t>(a_end - a)},
                {b, static_cast<size_t>(b_end - b)}, out);
}

}  // namespace

std::vector<uint32_t> SimdMergeSort(std::span<const uint32_t> values) {
  std::vector<uint32_t> src(values.begin(), values.end());
  const size_t n = src.size();
  if (n <= 4) {
    std::sort(src.begin(), src.end());
    return src;
  }
  // Pass 0: sorted runs of four (in-register networks for full blocks
  // of 16, scalar for the tail).
  size_t pos = 0;
  for (; pos + 16 <= n; pos += 16) SortColumns16(src.data() + pos);
  for (; pos < n; pos += 4) {
    std::sort(src.begin() + static_cast<ptrdiff_t>(pos),
              src.begin() + static_cast<ptrdiff_t>(std::min(pos + 4, n)));
  }
  // Merge passes with the 4x4 bitonic kernel.
  std::vector<uint32_t> dst(n);
  for (size_t run = 4; run < n; run *= 2) {
    for (size_t start = 0; start < n; start += 2 * run) {
      const size_t mid = std::min(start + run, n);
      const size_t end = std::min(start + 2 * run, n);
      MergeRunsSimd(src.data() + start, src.data() + mid, src.data() + mid,
                    src.data() + end, dst.data() + start);
    }
    std::swap(src, dst);
  }
  return src;
}

std::vector<uint32_t> SimdIntersect(std::span<const uint32_t> a,
                                    std::span<const uint32_t> b) {
  std::vector<uint32_t> out(std::min(a.size(), b.size()) + 4);
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;

#if DBA_BASELINE_HAVE_SSE41
  const auto& table = CompactTable();
  while (i + 4 <= a.size() && j + 4 <= b.size()) {
    const V4 va = Load(a.data() + i);
    const V4 vb = Load(b.data() + j);
    // All-to-all comparison: va against the four rotations of vb.
    V4 match = _mm_cmpeq_epi32(va, vb);
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
    match = _mm_or_si128(
        match, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(match));
    const V4 shuffle = Load(reinterpret_cast<const uint32_t*>(
        table[static_cast<size_t>(mask)].data()));
    const V4 packed = _mm_shuffle_epi8(va, shuffle);
    Store(out.data() + count, packed);
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(mask)));
    const uint32_t a_max = a[i + 3];
    const uint32_t b_max = b[j + 3];
    if (a_max <= b_max) i += 4;
    if (b_max <= a_max) j += 4;
  }
#endif

  // Scalar path / tail.
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out[count++] = a[i];
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  out.resize(count);
  return out;
}

}  // namespace dba::baseline
