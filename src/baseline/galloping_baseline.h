#ifndef DBA_BASELINE_GALLOPING_BASELINE_H_
#define DBA_BASELINE_GALLOPING_BASELINE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dba::baseline {

/// Host-executed galloping (exponential-probe + binary-search) sorted-set
/// intersection, the classic small-vs-large algorithm (Bentley & Yao;
/// used by Ding & Koenig's "Fast Set Intersection in Memory" as the
/// skewed-size baseline the partition structures are compared against).
///
/// Each element of the smaller input is located in the larger one by
/// doubling a probe offset from a monotone cursor and binary-searching
/// the final run, so the cost is O(|small| * log(|large| / |small|))
/// instead of the O(|A| + |B|) of the merge loop -- the regime where the
/// EIS merge datapath is weakest. Inputs must be sorted and
/// duplicate-free (the paper's RID-set contract); the output is the
/// sorted intersection, byte-identical to ScalarIntersect.
std::vector<uint32_t> GallopingIntersect(std::span<const uint32_t> a,
                                         std::span<const uint32_t> b);

}  // namespace dba::baseline

#endif  // DBA_BASELINE_GALLOPING_BASELINE_H_
