#ifndef DBA_BASELINE_SCALAR_BASELINE_H_
#define DBA_BASELINE_SCALAR_BASELINE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dba::baseline {

/// Host-executed scalar reference implementations (paper Figures 2/3
/// compiled for the host x86). These serve three roles: correctness
/// oracles for the simulator kernels, the scalar end of the Section 5.4
/// comparison, and the starting point the SIMD baselines improve on.

std::vector<uint32_t> ScalarIntersect(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b);
std::vector<uint32_t> ScalarUnion(std::span<const uint32_t> a,
                                  std::span<const uint32_t> b);
std::vector<uint32_t> ScalarDifference(std::span<const uint32_t> a,
                                       std::span<const uint32_t> b);

/// Out-of-place bottom-up merge sort (the scalar merge of Figure 2).
std::vector<uint32_t> ScalarMergeSort(std::span<const uint32_t> values);

}  // namespace dba::baseline

#endif  // DBA_BASELINE_SCALAR_BASELINE_H_
