#include "baseline/scalar_baseline.h"

#include <algorithm>

namespace dba::baseline {

std::vector<uint32_t> ScalarIntersect(std::span<const uint32_t> a,
                                      std::span<const uint32_t> b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out.push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

std::vector<uint32_t> ScalarUnion(std::span<const uint32_t> a,
                                  std::span<const uint32_t> b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      out.push_back(a[i]);
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else {
      out.push_back(b[j++]);
    }
  }
  out.insert(out.end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  out.insert(out.end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
  return out;
}

std::vector<uint32_t> ScalarDifference(std::span<const uint32_t> a,
                                       std::span<const uint32_t> b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      out.push_back(a[i++]);
    } else {
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  return out;
}

std::vector<uint32_t> ScalarMergeSort(std::span<const uint32_t> values) {
  std::vector<uint32_t> src(values.begin(), values.end());
  std::vector<uint32_t> dst(values.size());
  const size_t n = src.size();
  for (size_t run = 1; run < n; run *= 2) {
    for (size_t pos = 0; pos < n; pos += 2 * run) {
      const size_t mid = std::min(pos + run, n);
      const size_t end = std::min(pos + 2 * run, n);
      size_t i = pos;
      size_t j = mid;
      size_t out = pos;
      while (i < mid && j < end) {
        dst[out++] = src[j] < src[i] ? src[j++] : src[i++];
      }
      while (i < mid) dst[out++] = src[i++];
      while (j < end) dst[out++] = src[j++];
    }
    std::swap(src, dst);
  }
  return src;
}

}  // namespace dba::baseline
