#ifndef DBA_BASELINE_SIMD_BASELINE_H_
#define DBA_BASELINE_SIMD_BASELINE_H_

#include <cstdint>
#include <span>
#include <vector>

namespace dba::baseline {

/// Host-executed 4-wide SIMD baselines of Section 5.4:
///
///  - SimdMergeSort: the merge-sort of Chhugani et al. [6] -- in-register
///    sorting networks build runs of four, bitonic 4x4 merge networks
///    drive the merge passes ("swsort").
///  - SimdIntersect: the sorted-set intersection of Schlegel et al. [33]
///    -- blockwise all-to-all comparison with shuffle-based compaction
///    ("swset").
///
/// Both use SSE4.1 intrinsics when the build target supports them and a
/// functionally identical portable fallback otherwise.

/// True when the SIMD code path is compiled in (SSE4.1).
bool SimdBaselineUsesVectorUnit();

std::vector<uint32_t> SimdMergeSort(std::span<const uint32_t> values);

std::vector<uint32_t> SimdIntersect(std::span<const uint32_t> a,
                                    std::span<const uint32_t> b);

}  // namespace dba::baseline

#endif  // DBA_BASELINE_SIMD_BASELINE_H_
