#include "baseline/galloping_baseline.h"

#include <algorithm>

namespace dba::baseline {

namespace {

/// First position in [lo, hi) of `haystack` with haystack[pos] >= value,
/// found by doubling the probe distance from `lo` and binary-searching
/// the last octave. `lo` is a monotone cursor: successive probe values
/// are increasing, so the gallop restarts where the previous one ended.
size_t GallopLowerBound(std::span<const uint32_t> haystack, size_t lo,
                        uint32_t value) {
  const size_t n = haystack.size();
  if (lo >= n || haystack[lo] >= value) return lo;
  size_t step = 1;
  size_t prev = lo;
  while (lo + step < n && haystack[lo + step] < value) {
    prev = lo + step;
    step <<= 1;
  }
  const size_t hi = std::min(lo + step + 1, n);
  return static_cast<size_t>(
      std::lower_bound(haystack.begin() + static_cast<ptrdiff_t>(prev),
                       haystack.begin() + static_cast<ptrdiff_t>(hi), value) -
      haystack.begin());
}

}  // namespace

std::vector<uint32_t> GallopingIntersect(std::span<const uint32_t> a,
                                         std::span<const uint32_t> b) {
  // Gallop with the smaller set as the probe stream.
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  size_t cursor = 0;
  for (const uint32_t value : a) {
    cursor = GallopLowerBound(b, cursor, value);
    if (cursor == b.size()) break;
    if (b[cursor] == value) {
      out.push_back(value);
      ++cursor;  // inputs are duplicate-free: the next match is beyond.
    }
  }
  return out;
}

}  // namespace dba::baseline
