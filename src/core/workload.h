#ifndef DBA_CORE_WORKLOAD_H_
#define DBA_CORE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dba {

/// A pair of sorted, duplicate-free RID sets with a controlled overlap.
struct SetPair {
  std::vector<uint32_t> a;
  std::vector<uint32_t> b;
  uint32_t common = 0;  // |a intersect b|
};

/// Generates two sorted distinct uint32 sets whose intersection holds
/// `selectivity * min(size_a, size_b)` elements -- the paper's
/// selectivity definition (Section 5.2: 100% when both sets contain the
/// same elements). Values are strictly increasing with random gaps, and
/// which values are shared is randomized, so common and exclusive
/// elements interleave.
///
/// Fails if selectivity is outside [0, 1] or the value space would
/// overflow 32 bits.
Result<SetPair> GenerateSetPair(uint32_t size_a, uint32_t size_b,
                                double selectivity, uint64_t seed);

/// Uniformly random (unsorted, possibly duplicated) sort input.
std::vector<uint32_t> GenerateSortInput(uint32_t n, uint64_t seed);

}  // namespace dba

#endif  // DBA_CORE_WORKLOAD_H_
