#include "core/workload.h"

#include <algorithm>

#include "common/random.h"

namespace dba {

Result<SetPair> GenerateSetPair(uint32_t size_a, uint32_t size_b,
                                double selectivity, uint64_t seed) {
  if (selectivity < 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument("selectivity must be in [0, 1]");
  }
  const uint32_t min_size = std::min(size_a, size_b);
  const auto common =
      static_cast<uint32_t>(selectivity * static_cast<double>(min_size) + 0.5);
  const uint64_t total =
      static_cast<uint64_t>(size_a) + size_b - common;
  // Strictly increasing values with gaps in [1, 16]: the maximum value
  // stays below 17 * total.
  if (total * 17 > 0xFFFFFFFEull) {
    return Status::InvalidArgument("set sizes exceed the 32-bit value space");
  }

  Random rng(seed);

  // Tag each of the `total` distinct values: common / A-only / B-only,
  // then shuffle the tags so the classes interleave randomly.
  enum : uint8_t { kCommon = 0, kOnlyA = 1, kOnlyB = 2 };
  std::vector<uint8_t> tags;
  tags.reserve(total);
  tags.insert(tags.end(), common, kCommon);
  tags.insert(tags.end(), size_a - common, kOnlyA);
  tags.insert(tags.end(), size_b - common, kOnlyB);
  for (size_t i = tags.size(); i > 1; --i) {
    std::swap(tags[i - 1], tags[rng.Uniform(i)]);
  }

  SetPair pair;
  pair.a.reserve(size_a);
  pair.b.reserve(size_b);
  pair.common = common;
  uint32_t value = 0;
  for (const uint8_t tag : tags) {
    value += 1 + static_cast<uint32_t>(rng.Uniform(16));
    if (tag != kOnlyB) pair.a.push_back(value);
    if (tag != kOnlyA) pair.b.push_back(value);
  }
  return pair;
}

std::vector<uint32_t> GenerateSortInput(uint32_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint32_t> values(n);
  for (uint32_t& value : values) value = rng.Next32();
  return values;
}

}  // namespace dba
