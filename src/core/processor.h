#ifndef DBA_CORE_PROCESSOR_H_
#define DBA_CORE_PROCESSOR_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/program_cache.h"
#include "dbkern/eis_kernels.h"
#include "eis/eis_extension.h"
#include "eis/sop.h"
#include "hwmodel/synthesis.h"
#include "mem/memory.h"
#include "sim/cpu.h"

namespace dba {

/// The evaluated processor configurations; re-exported from the
/// hardware model so the public API has a single vocabulary.
using ProcessorKind = hwmodel::ConfigKind;
using SetOp = eis::SopMode;

/// Construction-time options of a processor instance.
struct ProcessorOptions {
  /// Partial loading of the Word states (EIS configurations only;
  /// Table 2 evaluates both settings).
  bool partial_loading = true;
  /// Unroll factor of the EIS set-operation core loop.
  int unroll = dbkern::kDefaultUnroll;
  /// Technology node used for frequency/power/energy conversions.
  hwmodel::TechNode tech = hwmodel::TechNode::k65nmTsmcLp;
};

/// Per-run overrides.
struct RunSettings {
  /// How the core's run loop advances the machine (sim/exec_mode.h):
  /// interpret (reference), fast-forward (default; bit-identical stats),
  /// or turbo (results exact, cycles from the loop model).
  sim::ExecMode sim_mode = sim::ExecMode::kFastForward;
  /// Run the scalar kernel even on an EIS-capable configuration
  /// (ablation support).
  bool force_scalar = false;
  /// Collect per-pc execution counts and the dynamic instruction mix in
  /// the returned stats (for toolchain::BuildProfile).
  bool profile = false;
  /// Record the first N issued words as rendered trace lines in the
  /// returned stats (0 = off).
  uint32_t trace_limit = 0;
  /// Validate that set-operation inputs are strictly increasing before
  /// running the kernel, returning InvalidArgument instead of silently
  /// producing garbage. Off by default: the hot path trusts its caller
  /// (the board turns it on for attempts that may see injected faults).
  bool validate_inputs = false;
  /// Watchdog budget for the kernel run in cycles; 0 keeps the
  /// simulator's default (2^36). Fault-tolerant callers set a tight
  /// budget so a hung core surfaces as DeadlineExceeded quickly.
  uint64_t max_cycles = 0;
  /// Cycle-trace receiver (non-owning; may be null). The run is wrapped
  /// in a kernel-phase region (e.g. "intersect[DBA_2LSU_EIS]") and the
  /// core emits label-region slices and stall/beat counter tracks into
  /// it; render with obs::ChromeTraceWriter for ui.perfetto.dev.
  sim::CycleTraceSink* trace_sink = nullptr;
};

/// Timing/energy results of one kernel execution.
struct RunMetrics {
  uint64_t cycles = 0;
  double seconds = 0;
  double throughput_meps = 0;        // million elements per second
  double energy_nj_per_element = 0;  // at the synthesis power estimate
  sim::ExecStats stats;
};

struct SetOpRun {
  std::vector<uint32_t> result;
  RunMetrics metrics;
};

struct SortRun {
  std::vector<uint32_t> sorted;
  RunMetrics metrics;
};

/// A fully assembled processor: the cycle-accurate core, its memories,
/// the instruction-set extension (for EIS configurations), the kernel
/// programs, and the synthesis-model figures that convert cycle counts
/// to wall-clock and energy.
///
/// This is the primary entry point of the library:
///
///   auto processor = dba::Processor::Create(
///       dba::ProcessorKind::kDba2LsuEis, {});
///   auto run = (*processor)->RunSetOperation(
///       dba::SetOp::kIntersect, rid_list_a, rid_list_b);
///   // run->result, run->metrics.throughput_meps, ...
class Processor {
 public:
  static Result<std::unique_ptr<Processor>> Create(
      ProcessorKind kind, const ProcessorOptions& options = {});

  /// Creates a processor that reads its kernel programs from a shared
  /// immutable cache instead of assembling its own (the board hands one
  /// cache to all of its cores; see ProgramCache). `programs` must have
  /// been built with the same kernel options and outlives nothing -- the
  /// processor keeps a shared reference. Fails on an options mismatch.
  static Result<std::unique_ptr<Processor>> Create(
      ProcessorKind kind, const ProcessorOptions& options,
      std::shared_ptr<const ProgramCache> programs);

  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  ProcessorKind kind() const { return kind_; }
  const ProcessorOptions& options() const { return options_; }
  bool has_eis() const { return eis_ != nullptr; }
  const hwmodel::SynthesisReport& synthesis() const { return synthesis_; }
  double frequency_hz() const { return synthesis_.fmax_hz(); }

  /// Capacity limits implied by the local-store sizes (Section 5.2:
  /// 5000-element sets / 6500-value sort inputs "fit in the local data
  /// memories"). Baseline 108Mini runs from system memory and is
  /// limited only by its size.
  uint32_t max_set_elements(uint32_t other_set_size) const;
  uint32_t max_sort_elements() const;

  /// Executes a sorted-set operation (intersection, union, difference).
  /// Inputs must be strictly increasing (sorted, duplicate-free) and
  /// within capacity; set RunSettings::validate_inputs to have the
  /// processor check the ordering instead of trusting the caller. Uses
  /// the EIS kernel when available.
  Result<SetOpRun> RunSetOperation(SetOp op, std::span<const uint32_t> a,
                                   std::span<const uint32_t> b,
                                   const RunSettings& settings = {});

  /// Merges two sorted sequences (duplicates allowed) into one sorted
  /// sequence with the merge kernel (the paper's Figure 2 merge
  /// procedure / Figure 12 EIS loop). Same capacity rules as
  /// RunSetOperation; the building block of external sorting.
  Result<SetOpRun> RunMerge(std::span<const uint32_t> a,
                            std::span<const uint32_t> b,
                            const RunSettings& settings = {});

  /// Sorts `values` with the configuration's merge-sort kernel.
  Result<SortRun> RunSort(std::span<const uint32_t> values,
                          const RunSettings& settings = {});

  // --- Advanced access (profiling, custom programs, tests) ---
  sim::Cpu& cpu() { return *cpu_; }
  eis::EisExtension* eis() { return eis_.get(); }

  /// Kernel programs as loaded into the instruction memory -- input for
  /// the disassembler and toolchain::BuildProfile.
  Result<const isa::Program*> setop_program(SetOp op, bool scalar);
  Result<const isa::Program*> sort_program(bool scalar);

 private:
  Processor(ProcessorKind kind, const ProcessorOptions& options);

  Status Build();
  bool uses_local_store() const {
    return kind_ != ProcessorKind::k108Mini;
  }
  bool kind_has_eis() const {
    return kind_ == ProcessorKind::kDba1LsuEis ||
           kind_ == ProcessorKind::kDba2LsuEis;
  }
  int num_lsus() const {
    return (kind_ == ProcessorKind::kDba2Lsu ||
            kind_ == ProcessorKind::kDba2LsuEis)
               ? 2
               : 1;
  }

  Result<const isa::Program*> GetProgram(SetOp op, bool scalar);
  Result<SetOpRun> ExecuteBinaryKernel(const isa::Program& program,
                                       std::span<const uint32_t> a,
                                       std::span<const uint32_t> b,
                                       const RunSettings& settings,
                                       std::string_view phase);
  RunMetrics MakeMetrics(uint64_t elements, sim::ExecStats stats) const;

  ProcessorKind kind_;
  ProcessorOptions options_;
  hwmodel::SynthesisReport synthesis_;

  std::unique_ptr<sim::Cpu> cpu_;
  std::unique_ptr<eis::EisExtension> eis_;
  std::vector<std::unique_ptr<mem::Memory>> memories_;
  mem::Memory* ldm0_ = nullptr;    // local data memory of LSU0
  mem::Memory* ldm1_ = nullptr;    // local data memory of LSU1 (2-LSU)
  mem::Memory* result_ = nullptr;  // result region on the store port
  mem::Memory* sysmem_ = nullptr;  // system memory (108Mini)

  /// Pre-built programs shared across cores (may be null); the lazy
  /// per-instance map below serves processors created without one.
  std::shared_ptr<const ProgramCache> shared_programs_;
  std::map<std::pair<int, bool>, isa::Program> program_cache_;
};

}  // namespace dba

#endif  // DBA_CORE_PROCESSOR_H_
