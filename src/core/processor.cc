#include "core/processor.h"

#include <algorithm>
#include <utility>

#include "common/bits.h"
#include "dbkern/scalar_kernels.h"
#include "isa/registers.h"
#include "obs/metrics/metrics.h"

namespace dba {

namespace {

using isa::Reg;

obs::Histogram* KernelCyclesHistogram() {
  static obs::Histogram* const histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "dba_core_kernel_cycles",
          "Simulated cycles per kernel invocation.");
  return histogram;
}

// One invocation counter per kernel label ("intersect[DBA_2LSU_EIS]" ->
// kernel="intersect").  The registry lookup is a mutex + map find, paid
// once per kernel run, which is negligible next to the run itself.
void CountKernelInvocation(std::string_view phase) {
  const std::string_view kernel = phase.substr(0, phase.find('['));
  obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "dba_core_kernel_invocations_total", "kernel", kernel,
      "Kernel invocations by kernel label.");
  if (counter != nullptr) counter->Increment();
}

obs::Counter* ProgramCacheHits() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter(
          "dba_core_program_cache_hits_total",
          "Kernel program lookups served from a built program cache.");
  return counter;
}

obs::Counter* ProgramBuilds() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Global().GetCounter(
          "dba_core_program_builds_total",
          "Kernel programs assembled (lazy per-processor builds).");
  return counter;
}

// Flat address map of the processor model. LSU0 serves LDM0, LSU1
// serves LDM1; the result region sits on the store port. 108Mini has no
// local store and runs entirely from the (slower) system memory.
constexpr uint64_t kLdm0Base = 0x0001'0000;
constexpr uint64_t kLdm1Base = 0x0010'0000;
constexpr uint64_t kResultBase = 0x0020'0000;
constexpr uint64_t kResultSize = 1ull << 20;
constexpr uint64_t kSysBase = 0x1000'0000;
constexpr uint64_t kSysSize = 32ull << 20;
constexpr uint32_t kSysLatencyCycles = 4;
constexpr uint64_t kLocalDataBytesTotal = 64ull << 10;

constexpr int kSortProgramKey = 99;

Status ValidateStrictlyIncreasing(std::span<const uint32_t> values,
                                  const char* which) {
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i] <= values[i - 1]) {
      return Status::InvalidArgument(
          std::string("input set ") + which +
          " must be sorted and duplicate-free (violation at index " +
          std::to_string(i) + ")");
    }
  }
  return Status::Ok();
}

/// Bytes a set occupies in a local memory, including beat padding.
uint64_t PaddedBytes(uint64_t elements) {
  return AlignUp(elements * 4, mem::kBeatBytes);
}

/// Zeroes the beat-padding tail of a staged input block: bytes
/// [addr + 4*elements, addr + PaddedBytes(elements)). The kernels read
/// whole 128-bit beats, so the final partial beat must be deterministic;
/// everything else the core reads back is written by the kernel itself.
/// Zeroing only the tail (instead of Clear()-ing whole memories) keeps
/// the staging cost independent of memory size -- the streaming path
/// invokes a kernel every few thousand elements, and a 1 MiB result-bank
/// memset per invocation would dominate the fast-forward run loop.
void ZeroPadTail(mem::Memory* memory, uint64_t addr, uint64_t elements) {
  const uint64_t used = elements * 4;
  const uint64_t padded = PaddedBytes(elements);
  if (padded == used) return;
  std::span<uint8_t> raw = memory->mutable_raw();
  std::fill_n(raw.begin() +
                  static_cast<ptrdiff_t>(addr - memory->config().base + used),
              static_cast<ptrdiff_t>(padded - used), uint8_t{0});
}

}  // namespace

Processor::Processor(ProcessorKind kind, const ProcessorOptions& options)
    : kind_(kind),
      options_(options),
      synthesis_(hwmodel::Synthesize(kind, options.tech)) {}

Result<std::unique_ptr<Processor>> Processor::Create(
    ProcessorKind kind, const ProcessorOptions& options) {
  return Create(kind, options, nullptr);
}

Result<std::unique_ptr<Processor>> Processor::Create(
    ProcessorKind kind, const ProcessorOptions& options,
    std::shared_ptr<const ProgramCache> programs) {
  if (options.unroll < 1 || options.unroll > 256) {
    return Status::InvalidArgument("unroll factor must be in 1..256");
  }
  if (programs != nullptr &&
      (programs->partial_loading() != options.partial_loading ||
       programs->unroll() != options.unroll)) {
    return Status::InvalidArgument(
        "shared ProgramCache was built with different kernel options");
  }
  std::unique_ptr<Processor> processor(new Processor(kind, options));
  processor->shared_programs_ = std::move(programs);
  DBA_RETURN_IF_ERROR(processor->Build());
  return processor;
}

Status Processor::Build() {
  sim::CoreConfig config;
  config.name = std::string(hwmodel::ConfigKindName(kind_));
  config.num_lsus = num_lsus();
  config.branch_mispredict_penalty = 3;
  if (uses_local_store()) {
    config.data_bus_bits = 128;
    config.instruction_bus_bits = 64;
    config.instruction_memory_bytes = 32ull << 10;
  } else {
    config.data_bus_bits = 32;
    config.instruction_bus_bits = 32;
    config.instruction_memory_bytes = 0;  // fetched from system memory
  }
  cpu_ = std::make_unique<sim::Cpu>(config);

  auto add_memory = [this](mem::MemoryConfig mem_config,
                           mem::Memory** out) -> Status {
    DBA_ASSIGN_OR_RETURN(mem::Memory memory,
                         mem::Memory::Create(std::move(mem_config)));
    memories_.push_back(std::make_unique<mem::Memory>(std::move(memory)));
    *out = memories_.back().get();
    return cpu_->AttachMemory(memories_.back().get());
  };

  if (uses_local_store()) {
    const uint64_t bank_bytes =
        num_lsus() == 2 ? kLocalDataBytesTotal / 2 : kLocalDataBytesTotal;
    DBA_RETURN_IF_ERROR(add_memory(
        {.name = "ldm0", .base = kLdm0Base, .size = bank_bytes,
         .access_latency = 1, .dual_port = true},
        &ldm0_));
    if (num_lsus() == 2) {
      DBA_RETURN_IF_ERROR(add_memory(
          {.name = "ldm1", .base = kLdm1Base, .size = bank_bytes,
           .access_latency = 1, .dual_port = true},
          &ldm1_));
    }
    DBA_RETURN_IF_ERROR(add_memory(
        {.name = "result", .base = kResultBase, .size = kResultSize,
         .access_latency = 1, .dual_port = true},
        &result_));
  } else {
    DBA_RETURN_IF_ERROR(add_memory(
        {.name = "sysmem", .base = kSysBase, .size = kSysSize,
         .access_latency = kSysLatencyCycles},
        &sysmem_));
  }

  if (kind_has_eis()) {
    eis_ = std::make_unique<eis::EisExtension>();
    DBA_RETURN_IF_ERROR(eis_->Attach(cpu_.get()));
    cpu_->SetLoopAccelerator(eis_.get());
  }
  return Status::Ok();
}

uint32_t Processor::max_set_elements(uint32_t other_set_size) const {
  if (!uses_local_store()) {
    return static_cast<uint32_t>(kSysSize / 16);  // plenty; shared region
  }
  if (num_lsus() == 2) {
    // Each set lives in its own 32 KiB bank.
    return static_cast<uint32_t>(kLocalDataBytesTotal / 2 / 4 - 4);
  }
  // Both sets share the 64 KiB bank.
  const uint64_t other_bytes = PaddedBytes(other_set_size);
  if (other_bytes + mem::kBeatBytes >= kLocalDataBytesTotal) return 0;
  return static_cast<uint32_t>(
      (kLocalDataBytesTotal - other_bytes) / 4 - 4);
}

uint32_t Processor::max_sort_elements() const {
  if (!uses_local_store()) {
    return static_cast<uint32_t>(kSysSize / 16);
  }
  // Two ping-pong buffers of 4n bytes each across the local store.
  return static_cast<uint32_t>(kLocalDataBytesTotal / 8 - 8);
}

Result<const isa::Program*> Processor::setop_program(SetOp op,
                                                     bool scalar) {
  return GetProgram(op, scalar);
}

Result<const isa::Program*> Processor::sort_program(bool scalar) {
  if (shared_programs_ != nullptr) {
    const isa::Program* program = shared_programs_->sort(scalar);
    if (program == nullptr) {
      return Status::Internal("shared ProgramCache lacks the sort kernel");
    }
    ProgramCacheHits()->Increment();
    return program;
  }
  const auto key = std::make_pair(kSortProgramKey, scalar);
  auto it = program_cache_.find(key);
  if (it == program_cache_.end()) {
    Result<isa::Program> built = scalar ? dbkern::BuildScalarMergeSort()
                                        : dbkern::BuildEisMergeSort();
    if (!built.ok()) return built.status();
    it = program_cache_.emplace(key, *std::move(built)).first;
    ProgramBuilds()->Increment();
  } else {
    ProgramCacheHits()->Increment();
  }
  return &it->second;
}

Result<const isa::Program*> Processor::GetProgram(SetOp op, bool scalar) {
  if (shared_programs_ != nullptr) {
    const isa::Program* program = shared_programs_->setop(op, scalar);
    if (program == nullptr) {
      return Status::Internal(
          "shared ProgramCache lacks a built kernel for this operation");
    }
    ProgramCacheHits()->Increment();
    return program;
  }
  const int op_key = static_cast<int>(op);
  const auto key = std::make_pair(op_key, scalar);
  auto it = program_cache_.find(key);
  if (it == program_cache_.end()) {
    Result<isa::Program> built =
        op == SetOp::kMerge
            ? (scalar ? dbkern::BuildScalarMergePair()
                      : dbkern::BuildEisMergePair())
            : (scalar ? dbkern::BuildScalarSetOp(op)
                      : dbkern::BuildEisSetOp(op, options_.partial_loading,
                                              options_.unroll));
    if (!built.ok()) return built.status();
    it = program_cache_.emplace(key, *std::move(built)).first;
    ProgramBuilds()->Increment();
  } else {
    ProgramCacheHits()->Increment();
  }
  return &it->second;
}

RunMetrics Processor::MakeMetrics(uint64_t elements,
                                  sim::ExecStats stats) const {
  RunMetrics metrics;
  metrics.cycles = stats.cycles;
  metrics.seconds = static_cast<double>(stats.cycles) / frequency_hz();
  if (metrics.seconds > 0) {
    metrics.throughput_meps =
        static_cast<double>(elements) / metrics.seconds / 1e6;
  }
  if (metrics.throughput_meps > 0) {
    metrics.energy_nj_per_element =
        synthesis_.power_mw / metrics.throughput_meps;
  }
  metrics.stats = std::move(stats);
  return metrics;
}

Result<SetOpRun> Processor::RunSetOperation(SetOp op,
                                            std::span<const uint32_t> a,
                                            std::span<const uint32_t> b,
                                            const RunSettings& settings) {
  if (op == SetOp::kMerge) {
    return Status::InvalidArgument(
        "kMerge is the merge-sort building block; use RunSort");
  }
  if (settings.validate_inputs) {
    DBA_RETURN_IF_ERROR(ValidateStrictlyIncreasing(a, "A"));
    DBA_RETURN_IF_ERROR(ValidateStrictlyIncreasing(b, "B"));
  }
  if (a.size() > max_set_elements(static_cast<uint32_t>(b.size())) ||
      b.size() > max_set_elements(static_cast<uint32_t>(a.size()))) {
    return Status::ResourceExhausted(
        "input sets exceed the local data memories of " +
        std::string(hwmodel::ConfigKindName(kind_)) +
        "; stream larger sets with the data prefetcher (src/prefetch)");
  }
  const bool scalar = settings.force_scalar || !kind_has_eis();
  DBA_ASSIGN_OR_RETURN(const isa::Program* program, GetProgram(op, scalar));
  const std::string phase = std::string(eis::SopModeName(op)) + "[" +
                            std::string(hwmodel::ConfigKindName(kind_)) + "]";
  return ExecuteBinaryKernel(*program, a, b, settings, phase);
}

Result<SetOpRun> Processor::RunMerge(std::span<const uint32_t> a,
                                     std::span<const uint32_t> b,
                                     const RunSettings& settings) {
  auto validate_sorted = [](std::span<const uint32_t> values,
                            const char* which) -> Status {
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i] < values[i - 1]) {
        return Status::InvalidArgument(std::string("merge input ") + which +
                                       " must be sorted");
      }
    }
    return Status::Ok();
  };
  DBA_RETURN_IF_ERROR(validate_sorted(a, "A"));
  DBA_RETURN_IF_ERROR(validate_sorted(b, "B"));
  if (a.size() > max_set_elements(static_cast<uint32_t>(b.size())) ||
      b.size() > max_set_elements(static_cast<uint32_t>(a.size()))) {
    return Status::ResourceExhausted(
        "merge inputs exceed the local data memories of " +
        std::string(hwmodel::ConfigKindName(kind_)));
  }
  const bool scalar = settings.force_scalar || !kind_has_eis();
  DBA_ASSIGN_OR_RETURN(const isa::Program* program,
                       GetProgram(SetOp::kMerge, scalar));
  const std::string phase = "merge[" +
                            std::string(hwmodel::ConfigKindName(kind_)) + "]";
  return ExecuteBinaryKernel(*program, a, b, settings, phase);
}

Result<SetOpRun> Processor::ExecuteBinaryKernel(
    const isa::Program& program, std::span<const uint32_t> a,
    std::span<const uint32_t> b, const RunSettings& settings,
    std::string_view phase) {
  // Place the inputs. 2-LSU: A in LDM0, B in LDM1. 1-LSU: both in LDM0.
  // 108Mini: everything in system memory.
  uint64_t addr_a = 0;
  uint64_t addr_b = 0;
  uint64_t addr_c = 0;
  if (!uses_local_store()) {
    addr_a = kSysBase;
    addr_b = addr_a + PaddedBytes(a.size());
    addr_c = addr_b + PaddedBytes(b.size());
    DBA_RETURN_IF_ERROR(sysmem_->WriteBlock(addr_a, a));
    ZeroPadTail(sysmem_, addr_a, a.size());
    DBA_RETURN_IF_ERROR(sysmem_->WriteBlock(addr_b, b));
    ZeroPadTail(sysmem_, addr_b, b.size());
  } else {
    addr_a = kLdm0Base;
    DBA_RETURN_IF_ERROR(ldm0_->WriteBlock(addr_a, a));
    ZeroPadTail(ldm0_, addr_a, a.size());
    if (num_lsus() == 2) {
      addr_b = kLdm1Base;
      DBA_RETURN_IF_ERROR(ldm1_->WriteBlock(addr_b, b));
      ZeroPadTail(ldm1_, addr_b, b.size());
    } else {
      addr_b = addr_a + PaddedBytes(a.size());
      DBA_RETURN_IF_ERROR(ldm0_->WriteBlock(addr_b, b));
      ZeroPadTail(ldm0_, addr_b, b.size());
    }
    addr_c = kResultBase;
  }

  cpu_->ResetArchState();
  if (eis_) eis_->ResetState();
  DBA_RETURN_IF_ERROR(cpu_->LoadProgram(program));
  cpu_->set_reg(isa::abi::kPtrA, static_cast<uint32_t>(addr_a));
  cpu_->set_reg(isa::abi::kPtrB, static_cast<uint32_t>(addr_b));
  cpu_->set_reg(isa::abi::kLenA, static_cast<uint32_t>(a.size()));
  cpu_->set_reg(isa::abi::kLenB, static_cast<uint32_t>(b.size()));
  cpu_->set_reg(isa::abi::kPtrC, static_cast<uint32_t>(addr_c));

  sim::RunOptions run_options;
  run_options.mode = settings.sim_mode;
  run_options.profile = settings.profile;
  run_options.trace_limit = settings.trace_limit;
  run_options.trace_sink = settings.trace_sink;
  if (settings.max_cycles > 0) run_options.max_cycles = settings.max_cycles;
  CountKernelInvocation(phase);
  // The span begins the trace region and, once SetEndCycle runs, feeds the
  // kernel-cycles histogram and ends the region. On failure the phase
  // region stays open; the trace writer closes dangling regions at the
  // last seen timestamp.
  obs::ScopedSpan span(KernelCyclesHistogram(), settings.trace_sink, phase);
  auto run_result = cpu_->Run(run_options);
  if (!run_result.ok()) return run_result.status();
  sim::ExecStats stats = *std::move(run_result);
  span.SetEndCycle(stats.cycles);

  const uint32_t count = cpu_->reg(isa::abi::kLenC);
  DBA_ASSIGN_OR_RETURN(mem::Memory * result_memory,
                       cpu_->memory_system().Route(addr_c, 4));
  SetOpRun run;
  if (count > 0) {
    DBA_ASSIGN_OR_RETURN(run.result, result_memory->ReadBlock(addr_c, count));
  }
  run.metrics = MakeMetrics(a.size() + b.size(), std::move(stats));
  return run;
}

Result<SortRun> Processor::RunSort(std::span<const uint32_t> values,
                                   const RunSettings& settings) {
  if (values.size() > max_sort_elements()) {
    return Status::ResourceExhausted(
        "sort input exceeds the local data memories of " +
        std::string(hwmodel::ConfigKindName(kind_)));
  }
  const bool scalar = settings.force_scalar || !kind_has_eis();
  DBA_ASSIGN_OR_RETURN(const isa::Program* program_ptr,
                       sort_program(scalar));
  const isa::Program& program = *program_ptr;

  // Ping-pong buffers: LDM0 + LDM1 on 2-LSU cores, both halves of LDM0
  // on 1-LSU cores, system memory on 108Mini.
  uint64_t buf0 = 0;
  uint64_t buf1 = 0;
  const uint64_t bytes = PaddedBytes(values.size());
  if (!uses_local_store()) {
    buf0 = kSysBase;
    buf1 = buf0 + bytes;
    DBA_RETURN_IF_ERROR(sysmem_->WriteBlock(buf0, values));
    ZeroPadTail(sysmem_, buf0, values.size());
    ZeroPadTail(sysmem_, buf1, values.size());
  } else if (num_lsus() == 2) {
    buf0 = kLdm0Base;
    buf1 = kLdm1Base;
    DBA_RETURN_IF_ERROR(ldm0_->WriteBlock(buf0, values));
    ZeroPadTail(ldm0_, buf0, values.size());
    ZeroPadTail(ldm1_, buf1, values.size());
  } else {
    buf0 = kLdm0Base;
    buf1 = buf0 + bytes;
    DBA_RETURN_IF_ERROR(ldm0_->WriteBlock(buf0, values));
    ZeroPadTail(ldm0_, buf0, values.size());
    ZeroPadTail(ldm0_, buf1, values.size());
  }

  cpu_->ResetArchState();
  if (eis_) eis_->ResetState();
  DBA_RETURN_IF_ERROR(cpu_->LoadProgram(program));
  cpu_->set_reg(isa::abi::kPtrA, static_cast<uint32_t>(buf0));
  cpu_->set_reg(isa::abi::kLenA, static_cast<uint32_t>(values.size()));
  cpu_->set_reg(isa::abi::kPtrC, static_cast<uint32_t>(buf1));

  sim::RunOptions run_options;
  run_options.mode = settings.sim_mode;
  run_options.profile = settings.profile;
  run_options.trace_limit = settings.trace_limit;
  run_options.trace_sink = settings.trace_sink;
  if (settings.max_cycles > 0) run_options.max_cycles = settings.max_cycles;
  const std::string phase =
      "sort[" + std::string(hwmodel::ConfigKindName(kind_)) + "]";
  CountKernelInvocation(phase);
  obs::ScopedSpan span(KernelCyclesHistogram(), settings.trace_sink, phase);
  auto run_result = cpu_->Run(run_options);
  if (!run_result.ok()) return run_result.status();
  sim::ExecStats stats = *std::move(run_result);
  span.SetEndCycle(stats.cycles);

  SortRun run;
  const uint32_t sorted_ptr = cpu_->reg(isa::abi::kLenC);
  if (!values.empty()) {
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory,
                         cpu_->memory_system().Route(sorted_ptr, 4));
    DBA_ASSIGN_OR_RETURN(run.sorted,
                         memory->ReadBlock(sorted_ptr, values.size()));
  }
  run.metrics = MakeMetrics(values.size(), std::move(stats));
  return run;
}

}  // namespace dba
