#ifndef DBA_CORE_PROGRAM_CACHE_H_
#define DBA_CORE_PROGRAM_CACHE_H_

#include <map>
#include <memory>
#include <utility>

#include "common/status.h"
#include "eis/sop.h"
#include "isa/program.h"

namespace dba {

struct ProcessorOptions;

/// All kernel programs a processor configuration can execute, built once
/// and shared read-only. A board of N identical cores hands the same
/// cache to every core instead of letting each Processor assemble its
/// own copies on first use -- the assembly output depends only on the
/// kernel options (partial loading, unroll), not on which core runs it,
/// and an immutable cache is safe to read from concurrent host threads.
///
/// Contents: scalar and EIS variants of the three set operations, the
/// merge-pair kernel, and merge-sort (ten programs total).
class ProgramCache {
 public:
  /// Builds every kernel variant for `options`. The result is immutable.
  static Result<std::shared_ptr<const ProgramCache>> Build(
      const ProcessorOptions& options);

  ProgramCache(const ProgramCache&) = delete;
  ProgramCache& operator=(const ProgramCache&) = delete;

  /// The kernel options the cache was built with; a Processor refuses a
  /// cache whose options disagree with its own.
  bool partial_loading() const { return partial_loading_; }
  int unroll() const { return unroll_; }

  /// Never null: every (op, scalar) combination is built by Build.
  const isa::Program* setop(eis::SopMode op, bool scalar) const;
  const isa::Program* sort(bool scalar) const;

 private:
  ProgramCache() = default;

  bool partial_loading_ = true;
  int unroll_ = 1;
  std::map<std::pair<int, bool>, isa::Program> programs_;
};

}  // namespace dba

#endif  // DBA_CORE_PROGRAM_CACHE_H_
