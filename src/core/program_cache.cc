#include "core/program_cache.h"

#include "core/processor.h"
#include "dbkern/eis_kernels.h"
#include "dbkern/scalar_kernels.h"
#include "obs/metrics/metrics.h"

namespace dba {

namespace {

// Shares the key space of Processor's lazy per-instance cache: set
// operations key on their SopMode value, merge-sort on a sentinel.
constexpr int kSortKey = 99;

}  // namespace

Result<std::shared_ptr<const ProgramCache>> ProgramCache::Build(
    const ProcessorOptions& options) {
  std::shared_ptr<ProgramCache> cache(new ProgramCache);
  cache->partial_loading_ = options.partial_loading;
  cache->unroll_ = options.unroll;

  auto add = [&cache](int key, bool scalar,
                      Result<isa::Program> built) -> Status {
    if (!built.ok()) return built.status();
    cache->programs_.emplace(std::make_pair(key, scalar), *std::move(built));
    return Status::Ok();
  };

  for (const eis::SopMode op :
       {eis::SopMode::kIntersect, eis::SopMode::kUnion,
        eis::SopMode::kDifference}) {
    const int key = static_cast<int>(op);
    DBA_RETURN_IF_ERROR(add(key, true, dbkern::BuildScalarSetOp(op)));
    DBA_RETURN_IF_ERROR(
        add(key, false,
            dbkern::BuildEisSetOp(op, options.partial_loading,
                                  options.unroll)));
  }
  const int merge_key = static_cast<int>(eis::SopMode::kMerge);
  DBA_RETURN_IF_ERROR(add(merge_key, true, dbkern::BuildScalarMergePair()));
  DBA_RETURN_IF_ERROR(add(merge_key, false, dbkern::BuildEisMergePair()));
  DBA_RETURN_IF_ERROR(add(kSortKey, true, dbkern::BuildScalarMergeSort()));
  DBA_RETURN_IF_ERROR(add(kSortKey, false, dbkern::BuildEisMergeSort()));
  static obs::Counter* const builds =
      obs::MetricsRegistry::Global().GetCounter(
          "dba_core_program_builds_total",
          "Kernel programs assembled (lazy per-processor builds).");
  builds->Increment(cache->programs_.size());
  return std::shared_ptr<const ProgramCache>(std::move(cache));
}

const isa::Program* ProgramCache::setop(eis::SopMode op, bool scalar) const {
  const auto it =
      programs_.find(std::make_pair(static_cast<int>(op), scalar));
  return it == programs_.end() ? nullptr : &it->second;
}

const isa::Program* ProgramCache::sort(bool scalar) const {
  const auto it = programs_.find(std::make_pair(kSortKey, scalar));
  return it == programs_.end() ? nullptr : &it->second;
}

}  // namespace dba
