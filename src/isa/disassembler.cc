#include "isa/disassembler.h"

#include <cstdio>

#include "isa/encoding.h"

namespace dba::isa {

namespace {

std::string ExtName(uint16_t ext_id, const ExtNameResolver& resolver) {
  if (resolver) {
    std::string name = resolver(ext_id);
    if (!name.empty()) return name;
  }
  return "tie." + std::to_string(ext_id);
}

std::string RegStr(Reg r) { return std::string(RegName(r)); }

}  // namespace

std::string DisassembleWord(const DecodedWord& word,
                            const ExtNameResolver& resolver) {
  if (word.kind == DecodedWord::Kind::kFlix) {
    std::string out = "{ ";
    bool first = true;
    for (const TieSlot& slot : word.slots) {
      if (slot.empty()) continue;
      if (!first) out += "; ";
      first = false;
      out += ExtName(slot.ext_id, resolver);
      if (slot.operand != 0) out += " #" + std::to_string(slot.operand);
    }
    out += " }";
    return out;
  }

  const Instruction& instr = word.base;
  std::string name(OpcodeName(instr.opcode));
  switch (OpcodeFormat(instr.opcode)) {
    case Format::kNone:
      return name;
    case Format::kR:
      return name + " " + RegStr(instr.rd) + ", " + RegStr(instr.rs1) + ", " +
             RegStr(instr.rs2);
    case Format::kI:
      if (instr.opcode == Opcode::kMovi) {
        return name + " " + RegStr(instr.rd) + ", " + std::to_string(instr.imm);
      }
      if (instr.opcode == Opcode::kLw) {
        return name + " " + RegStr(instr.rd) + ", " +
               std::to_string(instr.imm) + "(" + RegStr(instr.rs1) + ")";
      }
      return name + " " + RegStr(instr.rd) + ", " + RegStr(instr.rs1) + ", " +
             std::to_string(instr.imm);
    case Format::kS:
      return name + " " + RegStr(instr.rs2) + ", " + std::to_string(instr.imm) +
             "(" + RegStr(instr.rs1) + ")";
    case Format::kB:
      return name + " " + RegStr(instr.rs1) + ", " + RegStr(instr.rs2) + ", " +
             std::to_string(instr.imm);
    case Format::kJ:
      return name + " " + std::to_string(instr.imm);
    case Format::kU:
      return name + " " + RegStr(instr.rd) + ", 0x" + [&] {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%x", static_cast<uint32_t>(instr.imm));
        return std::string(buf);
      }();
    case Format::kTie:
      if (instr.operand != 0) {
        return ExtName(instr.ext_id, resolver) + " #" +
               std::to_string(instr.operand);
      }
      return ExtName(instr.ext_id, resolver);
  }
  return name;
}

std::string DisassembleProgram(const Program& program,
                               const ExtNameResolver& resolver) {
  std::string out;
  for (size_t pc = 0; pc < program.size(); ++pc) {
    const std::string label = program.LabelAt(static_cast<uint32_t>(pc));
    if (!label.empty()) {
      out += label;
      out += ":\n";
    }
    auto decoded = Decode(program.word(pc));
    char head[48];
    std::snprintf(head, sizeof head, "  %4zu: %016llx  ", pc,
                  static_cast<unsigned long long>(program.word(pc)));
    out += head;
    out += decoded.ok() ? DisassembleWord(*decoded, resolver)
                        : "<invalid: " + decoded.status().ToString() + ">";
    out += "\n";
  }
  return out;
}

}  // namespace dba::isa
