#ifndef DBA_ISA_INSTRUCTION_H_
#define DBA_ISA_INSTRUCTION_H_

#include <array>
#include <cstdint>

#include "isa/opcode.h"
#include "isa/registers.h"

namespace dba::isa {

/// One decoded base instruction. Fields not used by the opcode's format
/// are zero.
struct Instruction {
  Opcode opcode = Opcode::kNop;
  Reg rd = Reg::a0;
  Reg rs1 = Reg::a0;
  Reg rs2 = Reg::a0;
  int32_t imm = 0;      // sign-extended imm12 / imm24; raw imm20 for kLui
  uint16_t ext_id = 0;  // kTie only: extension operation identifier
  uint16_t operand = 0; // kTie only: 12-bit operand field

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// One slot of a FLIX (VLIW) bundle. FLIX slots carry TIE extension
/// operations only; the base ISA always issues as single instructions.
struct TieSlot {
  uint16_t ext_id = 0;   // 0 = empty slot
  uint16_t operand = 0;  // 8-bit operand field in the bundle encoding

  bool empty() const { return ext_id == 0; }
  friend bool operator==(const TieSlot&, const TieSlot&) = default;
};

inline constexpr int kMaxFlixSlots = 3;

/// A decoded 64-bit program word: either one base instruction or a FLIX
/// bundle of up to kMaxFlixSlots TIE operations issued in the same cycle.
struct DecodedWord {
  enum class Kind : uint8_t { kBase, kFlix };

  Kind kind = Kind::kBase;
  Instruction base;
  std::array<TieSlot, kMaxFlixSlots> slots{};

  int num_slots() const {
    int n = 0;
    for (const TieSlot& s : slots) {
      if (!s.empty()) ++n;
    }
    return n;
  }

  friend bool operator==(const DecodedWord&, const DecodedWord&) = default;
};

}  // namespace dba::isa

#endif  // DBA_ISA_INSTRUCTION_H_
