#include "isa/encoding.h"

#include <string>

#include "common/bits.h"

namespace dba::isa {

namespace {

uint64_t EncodeSlot(const TieSlot& slot) {
  return (static_cast<uint64_t>(slot.operand & 0xFF) << 12) |
         (slot.ext_id & 0xFFFu);
}

TieSlot DecodeSlot(uint64_t raw20) {
  TieSlot slot;
  slot.ext_id = static_cast<uint16_t>(raw20 & 0xFFF);
  slot.operand = static_cast<uint16_t>((raw20 >> 12) & 0xFF);
  return slot;
}

}  // namespace

uint64_t EncodeBase(const Instruction& instr) {
  uint64_t word = static_cast<uint8_t>(instr.opcode);
  switch (OpcodeFormat(instr.opcode)) {
    case Format::kNone:
      break;
    case Format::kR:
      word = InsertBits(word, 8, 4, static_cast<uint64_t>(RegIndex(instr.rd)));
      word =
          InsertBits(word, 12, 4, static_cast<uint64_t>(RegIndex(instr.rs1)));
      word =
          InsertBits(word, 16, 4, static_cast<uint64_t>(RegIndex(instr.rs2)));
      break;
    case Format::kI:
      word = InsertBits(word, 8, 4, static_cast<uint64_t>(RegIndex(instr.rd)));
      word =
          InsertBits(word, 12, 4, static_cast<uint64_t>(RegIndex(instr.rs1)));
      word = InsertBits(word, 20, 12, static_cast<uint64_t>(
                                          static_cast<uint32_t>(instr.imm)));
      break;
    case Format::kS:
    case Format::kB:
      word =
          InsertBits(word, 12, 4, static_cast<uint64_t>(RegIndex(instr.rs1)));
      word =
          InsertBits(word, 16, 4, static_cast<uint64_t>(RegIndex(instr.rs2)));
      word = InsertBits(word, 20, 12, static_cast<uint64_t>(
                                          static_cast<uint32_t>(instr.imm)));
      break;
    case Format::kJ:
      word = InsertBits(word, 8, 24, static_cast<uint64_t>(
                                         static_cast<uint32_t>(instr.imm)));
      break;
    case Format::kU:
      word = InsertBits(word, 8, 4, static_cast<uint64_t>(RegIndex(instr.rd)));
      word = InsertBits(word, 12, 20, static_cast<uint64_t>(
                                          static_cast<uint32_t>(instr.imm)));
      break;
    case Format::kTie:
      word = InsertBits(word, 8, 12, instr.ext_id);
      word = InsertBits(word, 20, 12, instr.operand);
      break;
  }
  return word;
}

uint64_t EncodeFlix(const std::array<TieSlot, kMaxFlixSlots>& slots) {
  uint64_t word = kFlixFormatBit;
  for (int i = 0; i < kMaxFlixSlots; ++i) {
    word |= EncodeSlot(slots[static_cast<size_t>(i)]) << (20 * i);
  }
  return word;
}

Result<DecodedWord> Decode(uint64_t word) {
  DecodedWord decoded;
  if (word & kFlixFormatBit) {
    decoded.kind = DecodedWord::Kind::kFlix;
    bool any = false;
    for (int i = 0; i < kMaxFlixSlots; ++i) {
      decoded.slots[static_cast<size_t>(i)] =
          DecodeSlot(ExtractBits(word, 20 * i, 20));
      any = any || !decoded.slots[static_cast<size_t>(i)].empty();
    }
    if (!any) {
      return Status::InvalidArgument("FLIX bundle with no occupied slot");
    }
    return decoded;
  }

  const auto raw_opcode = static_cast<uint8_t>(ExtractBits(word, 0, 8));
  if (!IsValidOpcode(raw_opcode)) {
    return Status::InvalidArgument("unknown opcode byte " +
                                   std::to_string(raw_opcode));
  }
  decoded.kind = DecodedWord::Kind::kBase;
  Instruction& instr = decoded.base;
  instr.opcode = static_cast<Opcode>(raw_opcode);
  switch (OpcodeFormat(instr.opcode)) {
    case Format::kNone:
      break;
    case Format::kR:
      instr.rd = RegFromIndex(static_cast<int>(ExtractBits(word, 8, 4)));
      instr.rs1 = RegFromIndex(static_cast<int>(ExtractBits(word, 12, 4)));
      instr.rs2 = RegFromIndex(static_cast<int>(ExtractBits(word, 16, 4)));
      break;
    case Format::kI:
      instr.rd = RegFromIndex(static_cast<int>(ExtractBits(word, 8, 4)));
      instr.rs1 = RegFromIndex(static_cast<int>(ExtractBits(word, 12, 4)));
      instr.imm = static_cast<int32_t>(SignExtend(ExtractBits(word, 20, 12), 12));
      break;
    case Format::kS:
    case Format::kB:
      instr.rs1 = RegFromIndex(static_cast<int>(ExtractBits(word, 12, 4)));
      instr.rs2 = RegFromIndex(static_cast<int>(ExtractBits(word, 16, 4)));
      instr.imm = static_cast<int32_t>(SignExtend(ExtractBits(word, 20, 12), 12));
      break;
    case Format::kJ:
      instr.imm = static_cast<int32_t>(SignExtend(ExtractBits(word, 8, 24), 24));
      break;
    case Format::kU:
      instr.rd = RegFromIndex(static_cast<int>(ExtractBits(word, 8, 4)));
      instr.imm = static_cast<int32_t>(ExtractBits(word, 12, 20));
      break;
    case Format::kTie:
      instr.ext_id = static_cast<uint16_t>(ExtractBits(word, 8, 12));
      instr.operand = static_cast<uint16_t>(ExtractBits(word, 20, 12));
      break;
  }
  return decoded;
}

}  // namespace dba::isa
