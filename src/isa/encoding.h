#ifndef DBA_ISA_ENCODING_H_
#define DBA_ISA_ENCODING_H_

#include <cstdint>

#include "common/status.h"
#include "isa/instruction.h"

namespace dba::isa {

/// Binary program-word layout.
///
/// Every program word is 64 bits. Bit 63 selects the format:
///
///   bit 63 = 0: single base instruction in bits [31:0]
///     [7:0]   opcode
///     [11:8]  rd
///     [15:12] rs1
///     [19:16] rs2
///     [31:20] imm12 (signed)          -- formats I, S, B
///     [31:8]  imm24 (signed)          -- format J
///     [31:12] imm20 (zero-extended)   -- format U
///     [19:8]  ext_id, [31:20] operand -- format TIE
///
///   bit 63 = 1: FLIX bundle; three 20-bit slots at [19:0], [39:20],
///     [59:40], each slot = ext_id [11:0] | operand [19:12]; ext_id 0
///     marks an empty slot.
inline constexpr uint64_t kFlixFormatBit = 1ULL << 63;

/// Encodes a base instruction. The instruction is assumed well-formed
/// (the assembler validates ranges before encoding).
uint64_t EncodeBase(const Instruction& instr);

/// Encodes a FLIX bundle from up to kMaxFlixSlots slots.
uint64_t EncodeFlix(const std::array<TieSlot, kMaxFlixSlots>& slots);

/// Decodes a program word. Fails with InvalidArgument on unknown opcodes
/// or malformed bundles (e.g., all-empty FLIX).
Result<DecodedWord> Decode(uint64_t word);

/// Range limits implied by the encoding.
inline constexpr int32_t kMaxImm12 = 2047;
inline constexpr int32_t kMinImm12 = -2048;
inline constexpr int32_t kMaxImm24 = (1 << 23) - 1;
inline constexpr int32_t kMinImm24 = -(1 << 23);
inline constexpr uint32_t kMaxImm20 = (1u << 20) - 1;
inline constexpr uint16_t kMaxExtId = 0xFFF;
inline constexpr uint16_t kMaxTieOperand = 0xFFF;   // single-issue TIE form
inline constexpr uint16_t kMaxSlotOperand = 0xFF;   // FLIX slot form

}  // namespace dba::isa

#endif  // DBA_ISA_ENCODING_H_
