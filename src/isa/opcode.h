#ifndef DBA_ISA_OPCODE_H_
#define DBA_ISA_OPCODE_H_

#include <cstdint>
#include <string_view>

namespace dba::isa {

/// Base RISC instruction set of the configurable core. This models the
/// subset of a Tensilica-class base ISA that the paper's scalar database
/// kernels need; everything database-specific is added through the TIE
/// extension mechanism (see src/tie) rather than here.
enum class Opcode : uint8_t {
  kNop = 0x00,
  kHalt = 0x01,

  // Register-register ALU (format R: rd, rs1, rs2).
  kAdd = 0x10,
  kSub = 0x11,
  kAnd = 0x12,
  kOr = 0x13,
  kXor = 0x14,
  kSll = 0x15,
  kSrl = 0x16,
  kSra = 0x17,
  kSlt = 0x18,   // rd = (int32)rs1 < (int32)rs2
  kSltu = 0x19,  // rd = (uint32)rs1 < (uint32)rs2
  kMul = 0x1A,
  kMin = 0x1B,   // rd = min((uint32)rs1, (uint32)rs2); DSP-style helper
  kMax = 0x1C,   // rd = max((uint32)rs1, (uint32)rs2)

  // Register-immediate ALU (format I: rd, rs1, imm12).
  kAddi = 0x20,
  kAndi = 0x21,
  kOri = 0x22,
  kXori = 0x23,
  kSlli = 0x24,
  kSrli = 0x25,
  kSrai = 0x26,
  kSlti = 0x27,
  kSltiu = 0x28,

  // Immediate materialization.
  kMovi = 0x29,  // rd = signext(imm12)                   (format I, rs1 unused)
  kLui = 0x2A,   // rd = imm20 << 12                      (format U)

  // Memory (format I / S; address = rs1 + signext(imm12), byte address).
  kLw = 0x30,  // rd = *(uint32*)(rs1 + imm)
  kSw = 0x31,  // *(uint32*)(rs1 + imm) = rs2

  // Control flow (format B: rs1, rs2, imm12 word offset; format J: imm24).
  kBeq = 0x40,
  kBne = 0x41,
  kBlt = 0x42,   // signed
  kBltu = 0x43,  // unsigned
  kBge = 0x44,   // signed
  kBgeu = 0x45,  // unsigned
  kJ = 0x46,

  // Gateway into the TIE extension space (format TIE: ext_id, operand).
  kTie = 0x7F,
};

/// Operand layout class of an opcode.
enum class Format : uint8_t {
  kNone,  // kNop, kHalt
  kR,     // rd, rs1, rs2
  kI,     // rd, rs1, imm12
  kS,     // rs1, rs2, imm12 (store)
  kB,     // rs1, rs2, imm12 (branch offset in words)
  kJ,     // imm24 (jump offset in words)
  kU,     // rd, imm20
  kTie,   // ext_id, operand
};

std::string_view OpcodeName(Opcode op);
Format OpcodeFormat(Opcode op);
bool IsBranch(Opcode op);       // conditional branches only
bool IsControlFlow(Opcode op);  // branches and jumps
bool IsMemory(Opcode op);
bool IsValidOpcode(uint8_t raw);

}  // namespace dba::isa

#endif  // DBA_ISA_OPCODE_H_
