#ifndef DBA_ISA_DISASSEMBLER_H_
#define DBA_ISA_DISASSEMBLER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "isa/instruction.h"
#include "isa/program.h"

namespace dba::isa {

/// Resolves a TIE extension-operation id to a mnemonic. Returning an empty
/// string falls back to "tie.<id>".
using ExtNameResolver = std::function<std::string(uint16_t ext_id)>;

/// Renders one decoded word, e.g. "blt a7, a8, -3" or
/// "{ sop, st }" for FLIX bundles.
std::string DisassembleWord(const DecodedWord& word,
                            const ExtNameResolver& resolver = nullptr);

/// Renders a whole program with pc, encoding, labels, and mnemonics —
/// the software face of the debug interface in the processor model.
std::string DisassembleProgram(const Program& program,
                               const ExtNameResolver& resolver = nullptr);

}  // namespace dba::isa

#endif  // DBA_ISA_DISASSEMBLER_H_
