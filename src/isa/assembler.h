#ifndef DBA_ISA_ASSEMBLER_H_
#define DBA_ISA_ASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace dba::isa {

/// A branch target. Labels may be referenced before they are bound
/// (forward branches); Assembler::Finish patches all references.
class Label {
 public:
  Label() = default;

 private:
  friend class Assembler;
  int id_ = -1;
};

/// Single-pass assembler for the base ISA and TIE extension space.
///
/// The assembler is the "compiler intrinsics" layer of the reproduction:
/// where the paper writes C code with generated intrinsics, kernels here
/// are emitted through this interface (see src/dbkern). All range errors
/// are collected and reported by Finish(); emission calls never fail.
///
/// Example:
///   Assembler masm;
///   Label loop;
///   masm.Movi(Reg::a6, 0);
///   masm.Bind(&loop, "loop");
///   masm.Addi(Reg::a6, Reg::a6, 1);
///   masm.Blt(Reg::a6, Reg::a2, &loop);
///   masm.Halt();
///   Result<Program> program = masm.Finish();
class Assembler {
 public:
  Assembler() = default;
  Assembler(const Assembler&) = delete;
  Assembler& operator=(const Assembler&) = delete;

  // --- Labels ---
  void Bind(Label* label, std::string name = {});

  // --- No-operand ---
  void Nop() { EmitNone(Opcode::kNop); }
  void Halt() { EmitNone(Opcode::kHalt); }

  // --- Register-register ALU ---
  void Add(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kAdd, rd, rs1, rs2); }
  void Sub(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSub, rd, rs1, rs2); }
  void And(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kAnd, rd, rs1, rs2); }
  void Or(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kOr, rd, rs1, rs2); }
  void Xor(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kXor, rd, rs1, rs2); }
  void Sll(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSll, rd, rs1, rs2); }
  void Srl(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSrl, rd, rs1, rs2); }
  void Sra(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSra, rd, rs1, rs2); }
  void Slt(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSlt, rd, rs1, rs2); }
  void Sltu(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kSltu, rd, rs1, rs2); }
  void Mul(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kMul, rd, rs1, rs2); }
  void Min(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kMin, rd, rs1, rs2); }
  void Max(Reg rd, Reg rs1, Reg rs2) { EmitR(Opcode::kMax, rd, rs1, rs2); }

  // --- Register-immediate ALU ---
  void Addi(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kAddi, rd, rs1, imm); }
  void Andi(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kAndi, rd, rs1, imm); }
  void Ori(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kOri, rd, rs1, imm); }
  void Xori(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kXori, rd, rs1, imm); }
  void Slli(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kSlli, rd, rs1, imm); }
  void Srli(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kSrli, rd, rs1, imm); }
  void Srai(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kSrai, rd, rs1, imm); }
  void Slti(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kSlti, rd, rs1, imm); }
  void Sltiu(Reg rd, Reg rs1, int32_t imm) { EmitI(Opcode::kSltiu, rd, rs1, imm); }

  // --- Immediates ---
  void Movi(Reg rd, int32_t imm) { EmitI(Opcode::kMovi, rd, Reg::a0, imm); }
  void Lui(Reg rd, uint32_t imm20);

  // --- Memory ---
  void Lw(Reg rd, Reg base, int32_t offset) {
    EmitI(Opcode::kLw, rd, base, offset);
  }
  void Sw(Reg value, Reg base, int32_t offset);

  // --- Control flow ---
  void Beq(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBeq, rs1, rs2, target); }
  void Bne(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBne, rs1, rs2, target); }
  void Blt(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBlt, rs1, rs2, target); }
  void Bltu(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBltu, rs1, rs2, target); }
  void Bge(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBge, rs1, rs2, target); }
  void Bgeu(Reg rs1, Reg rs2, Label* target) { EmitB(Opcode::kBgeu, rs1, rs2, target); }
  void J(Label* target);

  // --- TIE extension space ---
  /// Single-issue TIE operation (the common case for fused operations).
  void Tie(uint16_t ext_id, uint16_t operand = 0);
  /// FLIX bundle of up to kMaxFlixSlots TIE operations issued together.
  void Flix(std::initializer_list<TieSlot> slots);

  // --- Pseudo-instructions ---
  void Mv(Reg rd, Reg rs) { Addi(rd, rs, 0); }
  /// Materializes an arbitrary 32-bit constant (1 or 2 instructions).
  void LoadImm32(Reg rd, uint32_t value);

  /// Current emission position (pc of the next instruction).
  uint32_t pc() const { return static_cast<uint32_t>(words_.size()); }

  /// Validates, patches branch targets, and produces the program.
  /// The assembler is left empty and reusable afterwards.
  Result<Program> Finish();

 private:
  struct Fixup {
    uint32_t pc;
    int label_id;
  };

  void EmitNone(Opcode op);
  void EmitR(Opcode op, Reg rd, Reg rs1, Reg rs2);
  void EmitI(Opcode op, Reg rd, Reg rs1, int32_t imm);
  void EmitB(Opcode op, Reg rs1, Reg rs2, Label* target);
  int EnsureLabelId(Label* label);
  void AddError(const std::string& message);

  std::vector<uint64_t> words_;
  std::vector<int64_t> label_positions_;  // -1 = unbound
  std::vector<std::pair<std::string, uint32_t>> label_names_;
  std::vector<Fixup> fixups_;
  std::vector<std::string> errors_;
};

}  // namespace dba::isa

#endif  // DBA_ISA_ASSEMBLER_H_
