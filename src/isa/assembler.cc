#include "isa/assembler.h"

#include <utility>

#include "common/bits.h"

namespace dba::isa {

void Assembler::Bind(Label* label, std::string name) {
  const int id = EnsureLabelId(label);
  if (label_positions_[static_cast<size_t>(id)] >= 0) {
    AddError("label bound twice");
    return;
  }
  label_positions_[static_cast<size_t>(id)] = pc();
  if (!name.empty()) {
    label_names_.emplace_back(std::move(name), pc());
  }
}

void Assembler::EmitNone(Opcode op) {
  Instruction instr;
  instr.opcode = op;
  words_.push_back(EncodeBase(instr));
}

void Assembler::EmitR(Opcode op, Reg rd, Reg rs1, Reg rs2) {
  Instruction instr;
  instr.opcode = op;
  instr.rd = rd;
  instr.rs1 = rs1;
  instr.rs2 = rs2;
  words_.push_back(EncodeBase(instr));
}

void Assembler::EmitI(Opcode op, Reg rd, Reg rs1, int32_t imm) {
  if (imm < kMinImm12 || imm > kMaxImm12) {
    AddError("imm12 out of range: " + std::to_string(imm));
    imm = 0;
  }
  if ((op == Opcode::kSlli || op == Opcode::kSrli || op == Opcode::kSrai) &&
      (imm < 0 || imm > 31)) {
    AddError("shift amount out of range: " + std::to_string(imm));
    imm = 0;
  }
  Instruction instr;
  instr.opcode = op;
  instr.rd = rd;
  instr.rs1 = rs1;
  instr.imm = imm;
  words_.push_back(EncodeBase(instr));
}

void Assembler::Lui(Reg rd, uint32_t imm20) {
  if (imm20 > kMaxImm20) {
    AddError("imm20 out of range: " + std::to_string(imm20));
    imm20 = 0;
  }
  Instruction instr;
  instr.opcode = Opcode::kLui;
  instr.rd = rd;
  instr.imm = static_cast<int32_t>(imm20);
  words_.push_back(EncodeBase(instr));
}

void Assembler::Sw(Reg value, Reg base, int32_t offset) {
  if (offset < kMinImm12 || offset > kMaxImm12) {
    AddError("store offset out of range: " + std::to_string(offset));
    offset = 0;
  }
  Instruction instr;
  instr.opcode = Opcode::kSw;
  instr.rs1 = base;
  instr.rs2 = value;
  instr.imm = offset;
  words_.push_back(EncodeBase(instr));
}

void Assembler::EmitB(Opcode op, Reg rs1, Reg rs2, Label* target) {
  Instruction instr;
  instr.opcode = op;
  instr.rs1 = rs1;
  instr.rs2 = rs2;
  instr.imm = 0;
  fixups_.push_back(Fixup{pc(), EnsureLabelId(target)});
  words_.push_back(EncodeBase(instr));
}

void Assembler::J(Label* target) {
  Instruction instr;
  instr.opcode = Opcode::kJ;
  instr.imm = 0;
  fixups_.push_back(Fixup{pc(), EnsureLabelId(target)});
  words_.push_back(EncodeBase(instr));
}

void Assembler::Tie(uint16_t ext_id, uint16_t operand) {
  if (ext_id == 0 || ext_id > kMaxExtId) {
    AddError("TIE ext_id out of range: " + std::to_string(ext_id));
    ext_id = 1;
  }
  if (operand > kMaxTieOperand) {
    AddError("TIE operand out of range: " + std::to_string(operand));
    operand = 0;
  }
  Instruction instr;
  instr.opcode = Opcode::kTie;
  instr.ext_id = ext_id;
  instr.operand = operand;
  words_.push_back(EncodeBase(instr));
}

void Assembler::Flix(std::initializer_list<TieSlot> slots) {
  if (slots.size() == 0 || slots.size() > kMaxFlixSlots) {
    AddError("FLIX bundle must have 1.." + std::to_string(kMaxFlixSlots) +
             " slots");
    return;
  }
  std::array<TieSlot, kMaxFlixSlots> bundle{};
  size_t i = 0;
  for (const TieSlot& slot : slots) {
    if (slot.ext_id == 0 || slot.ext_id > kMaxExtId) {
      AddError("FLIX slot ext_id out of range");
      return;
    }
    if (slot.operand > kMaxSlotOperand) {
      AddError("FLIX slot operand out of range (8 bits in bundle form)");
      return;
    }
    bundle[i++] = slot;
  }
  words_.push_back(EncodeFlix(bundle));
}

void Assembler::LoadImm32(Reg rd, uint32_t value) {
  const auto signed_value = static_cast<int32_t>(value);
  if (signed_value >= kMinImm12 && signed_value <= kMaxImm12) {
    Movi(rd, signed_value);
    return;
  }
  // RISC-V-style hi/lo split: the +0x800 compensates for the sign
  // extension of the low 12 bits added by Addi.
  const uint32_t hi = (value + 0x800u) >> 12;
  const int32_t lo =
      static_cast<int32_t>(SignExtend(value & 0xFFFu, 12));
  Lui(rd, hi & kMaxImm20);
  if (lo != 0) Addi(rd, rd, lo);
}

int Assembler::EnsureLabelId(Label* label) {
  if (label->id_ < 0) {
    label->id_ = static_cast<int>(label_positions_.size());
    label_positions_.push_back(-1);
  }
  return label->id_;
}

void Assembler::AddError(const std::string& message) {
  errors_.push_back("at pc " + std::to_string(pc()) + ": " + message);
}

Result<Program> Assembler::Finish() {
  for (const Fixup& fixup : fixups_) {
    const int64_t target = label_positions_[static_cast<size_t>(fixup.label_id)];
    if (target < 0) {
      errors_.push_back("unbound label referenced at pc " +
                        std::to_string(fixup.pc));
      continue;
    }
    // Offsets are relative to the instruction after the branch.
    const int64_t offset = target - (fixup.pc + 1);
    auto decoded = Decode(words_[fixup.pc]);
    DBA_ASSIGN_OR_RETURN(DecodedWord word, std::move(decoded));
    const bool is_jump = word.base.opcode == Opcode::kJ;
    const int64_t lo = is_jump ? kMinImm24 : kMinImm12;
    const int64_t hi = is_jump ? kMaxImm24 : kMaxImm12;
    if (offset < lo || offset > hi) {
      errors_.push_back("branch offset out of range at pc " +
                        std::to_string(fixup.pc));
      continue;
    }
    word.base.imm = static_cast<int32_t>(offset);
    words_[fixup.pc] = EncodeBase(word.base);
  }

  if (!errors_.empty()) {
    std::string joined = "assembly failed:";
    for (const std::string& error : errors_) {
      joined += "\n  ";
      joined += error;
    }
    errors_.clear();
    return Status::InvalidArgument(joined);
  }

  Program program(std::move(words_), std::move(label_names_));
  words_.clear();
  label_names_.clear();
  label_positions_.clear();
  fixups_.clear();
  return program;
}

}  // namespace dba::isa
