#include "isa/opcode.h"

#include "isa/registers.h"

namespace dba::isa {

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop:
      return "nop";
    case Opcode::kHalt:
      return "halt";
    case Opcode::kAdd:
      return "add";
    case Opcode::kSub:
      return "sub";
    case Opcode::kAnd:
      return "and";
    case Opcode::kOr:
      return "or";
    case Opcode::kXor:
      return "xor";
    case Opcode::kSll:
      return "sll";
    case Opcode::kSrl:
      return "srl";
    case Opcode::kSra:
      return "sra";
    case Opcode::kSlt:
      return "slt";
    case Opcode::kSltu:
      return "sltu";
    case Opcode::kMul:
      return "mul";
    case Opcode::kMin:
      return "min";
    case Opcode::kMax:
      return "max";
    case Opcode::kAddi:
      return "addi";
    case Opcode::kAndi:
      return "andi";
    case Opcode::kOri:
      return "ori";
    case Opcode::kXori:
      return "xori";
    case Opcode::kSlli:
      return "slli";
    case Opcode::kSrli:
      return "srli";
    case Opcode::kSrai:
      return "srai";
    case Opcode::kSlti:
      return "slti";
    case Opcode::kSltiu:
      return "sltiu";
    case Opcode::kMovi:
      return "movi";
    case Opcode::kLui:
      return "lui";
    case Opcode::kLw:
      return "lw";
    case Opcode::kSw:
      return "sw";
    case Opcode::kBeq:
      return "beq";
    case Opcode::kBne:
      return "bne";
    case Opcode::kBlt:
      return "blt";
    case Opcode::kBltu:
      return "bltu";
    case Opcode::kBge:
      return "bge";
    case Opcode::kBgeu:
      return "bgeu";
    case Opcode::kJ:
      return "j";
    case Opcode::kTie:
      return "tie";
  }
  return "invalid";
}

Format OpcodeFormat(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return Format::kNone;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kMul:
    case Opcode::kMin:
    case Opcode::kMax:
      return Format::kR;
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kSltiu:
    case Opcode::kMovi:
    case Opcode::kLw:
      return Format::kI;
    case Opcode::kLui:
      return Format::kU;
    case Opcode::kSw:
      return Format::kS;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBltu:
    case Opcode::kBge:
    case Opcode::kBgeu:
      return Format::kB;
    case Opcode::kJ:
      return Format::kJ;
    case Opcode::kTie:
      return Format::kTie;
  }
  return Format::kNone;
}

bool IsBranch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBltu:
    case Opcode::kBge:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

bool IsControlFlow(Opcode op) { return IsBranch(op) || op == Opcode::kJ; }

bool IsMemory(Opcode op) {
  return op == Opcode::kLw || op == Opcode::kSw;
}

bool IsValidOpcode(uint8_t raw) {
  switch (static_cast<Opcode>(raw)) {
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kMul:
    case Opcode::kMin:
    case Opcode::kMax:
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kSltiu:
    case Opcode::kMovi:
    case Opcode::kLui:
    case Opcode::kLw:
    case Opcode::kSw:
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBltu:
    case Opcode::kBge:
    case Opcode::kBgeu:
    case Opcode::kJ:
    case Opcode::kTie:
      return true;
  }
  return false;
}

std::string_view RegName(Reg r) {
  static constexpr std::string_view kNames[kNumRegs] = {
      "a0", "a1", "a2",  "a3",  "a4",  "a5",  "a6",  "a7",
      "a8", "a9", "a10", "a11", "a12", "a13", "a14", "a15"};
  return kNames[RegIndex(r)];
}

}  // namespace dba::isa
