#ifndef DBA_ISA_PROGRAM_H_
#define DBA_ISA_PROGRAM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "isa/instruction.h"

namespace dba::isa {

/// An assembled program: a flat sequence of 64-bit program words plus the
/// label table kept for disassembly and profiling. The program counter of
/// the simulator indexes this sequence directly (one word per issue).
class Program {
 public:
  Program() = default;

  Program(std::vector<uint64_t> words,
          std::vector<std::pair<std::string, uint32_t>> labels)
      : words_(std::move(words)), labels_(std::move(labels)) {}

  const std::vector<uint64_t>& words() const { return words_; }
  size_t size() const { return words_.size(); }
  bool empty() const { return words_.empty(); }
  uint64_t word(size_t pc) const { return words_[pc]; }

  /// Label table in program order: (name, pc).
  const std::vector<std::pair<std::string, uint32_t>>& labels() const {
    return labels_;
  }

  /// Returns the name of the label bound at `pc`, or an empty string.
  std::string LabelAt(uint32_t pc) const {
    for (const auto& [name, position] : labels_) {
      if (position == pc) return name;
    }
    return {};
  }

 private:
  std::vector<uint64_t> words_;
  std::vector<std::pair<std::string, uint32_t>> labels_;
};

}  // namespace dba::isa

#endif  // DBA_ISA_PROGRAM_H_
