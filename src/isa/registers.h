#ifndef DBA_ISA_REGISTERS_H_
#define DBA_ISA_REGISTERS_H_

#include <cstdint>
#include <string_view>

namespace dba::isa {

/// The base core exposes 16 general-purpose 32-bit address registers
/// (AR file), mirroring the Xtensa AR register file visible to a single
/// call frame. TIE register files and states live in the extensions.
enum class Reg : uint8_t {
  a0 = 0,
  a1,
  a2,
  a3,
  a4,
  a5,
  a6,
  a7,
  a8,
  a9,
  a10,
  a11,
  a12,
  a13,
  a14,
  a15,
};

inline constexpr int kNumRegs = 16;

constexpr int RegIndex(Reg r) { return static_cast<int>(r); }

constexpr Reg RegFromIndex(int index) {
  return static_cast<Reg>(index & 0xF);
}

std::string_view RegName(Reg r);

/// Kernel-program calling convention (documented contract between the
/// drivers in dbkern/ and the assembly programs):
///   a0 = pointer to input A     a1 = pointer to input B
///   a2 = element count of A     a3 = element count of B
///   a4 = pointer to output C
///   a5 = (on exit) element count written to C
///   a6..a15 = scratch
namespace abi {
inline constexpr Reg kPtrA = Reg::a0;
inline constexpr Reg kPtrB = Reg::a1;
inline constexpr Reg kLenA = Reg::a2;
inline constexpr Reg kLenB = Reg::a3;
inline constexpr Reg kPtrC = Reg::a4;
inline constexpr Reg kLenC = Reg::a5;
}  // namespace abi

}  // namespace dba::isa

#endif  // DBA_ISA_REGISTERS_H_
