#include "eis/networks.h"

#include <utility>

namespace dba::eis {

namespace {

inline void CompareExchange(uint32_t& lo, uint32_t& hi) {
  if (lo > hi) std::swap(lo, hi);
}

}  // namespace

void SortNetwork4(std::array<uint32_t, 4>& v) {
  // Stage 1: (0,1) (2,3); stage 2: (0,2) (1,3); stage 3: (1,2).
  CompareExchange(v[0], v[1]);
  CompareExchange(v[2], v[3]);
  CompareExchange(v[0], v[2]);
  CompareExchange(v[1], v[3]);
  CompareExchange(v[1], v[2]);
}

void MergeNetwork4x4(std::array<uint32_t, 4>& lo, std::array<uint32_t, 4>& hi) {
  // Bitonic merge of (lo ascending, hi ascending): reverse hi to form a
  // bitonic sequence, then three butterfly stages.
  std::swap(hi[0], hi[3]);
  std::swap(hi[1], hi[2]);

  // Stage 1: compare across halves.
  CompareExchange(lo[0], hi[0]);
  CompareExchange(lo[1], hi[1]);
  CompareExchange(lo[2], hi[2]);
  CompareExchange(lo[3], hi[3]);
  // Stage 2: distance 2 within each half.
  CompareExchange(lo[0], lo[2]);
  CompareExchange(lo[1], lo[3]);
  CompareExchange(hi[0], hi[2]);
  CompareExchange(hi[1], hi[3]);
  // Stage 3: distance 1.
  CompareExchange(lo[0], lo[1]);
  CompareExchange(lo[2], lo[3]);
  CompareExchange(hi[0], hi[1]);
  CompareExchange(hi[2], hi[3]);
}

}  // namespace dba::eis
