#ifndef DBA_EIS_SOP_H_
#define DBA_EIS_SOP_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace dba::eis {

/// The four sorted-set operations implemented by the SOP instruction
/// (paper Table 1 / Section 4). The mode is a TIE state set by INIT.
enum class SopMode : uint8_t {
  kIntersect = 0,
  kUnion = 1,
  kDifference = 2,  // A minus B
  kMerge = 3,       // merge step of merge-sort; duplicates preserved
};

std::string_view SopModeName(SopMode mode);

/// A Word-state window: up to four 32-bit elements, sorted ascending,
/// occupying lanes [0, count). The window always holds a contiguous
/// prefix of the not-yet-consumed stream.
struct Window {
  std::array<uint32_t, 4> lanes{};
  int count = 0;

  bool empty() const { return count == 0; }
  bool full() const { return count == 4; }
  uint32_t max() const { return lanes[static_cast<size_t>(count - 1)]; }

  /// Drops the first `n` lanes (the consumed prefix).
  void Consume(int n);
  /// Appends one element (must keep the window sorted; checked).
  void Push(uint32_t value);
};

/// Outcome of one SOP execution: how many elements each window consumed
/// (always a prefix) and the emitted, globally sorted result elements.
///
/// The Result states are four elements wide (Figure 8: Result_0..3), so
/// one SOP emits at most four values; when union or merge would emit
/// more ("the instruction may write values from both input sets in one
/// operation", Section 5.3), consumption truncates and the leftover
/// elements stay in the windows for the next SOP. This output-width
/// limit is why union throughput trails the other operations (Table 2).
struct SopOutcome {
  int consume_a = 0;
  int consume_b = 0;
  std::array<uint32_t, 4> emit{};
  int emit_count = 0;
  int matches = 0;  // equal pairs seen by the comparator network
};

/// Functional model of the 4x4 all-to-all comparator network.
///
/// Consumption rule (identical for every mode): side A consumes every
/// element <= limit(B) and vice versa, where
///   limit(side)  = max of the side's window if it holds elements,
///                = +inf if the side's stream is fully drained,
///                = -inf otherwise (window empty but refill pending).
/// Consumed elements can be emitted safely: every element still in a
/// window or stream is strictly greater than the other side's consumed
/// prefix, so emission order is globally sorted.
///
/// Emission per mode over the consumed prefixes:
///   intersect:  values present in both (each exactly once)
///   union:      all values, duplicates across sides collapsed
///   difference: values of A not present in B
///   merge:      all values, duplicates preserved
///
/// `a_drained` / `b_drained` mean: no elements remain anywhere upstream
/// of the window (stream and Load states empty).
SopOutcome ComputeSop(SopMode mode, const Window& a, bool a_drained,
                      const Window& b, bool b_drained);

}  // namespace dba::eis

#endif  // DBA_EIS_SOP_H_
