#ifndef DBA_EIS_FIFO_H_
#define DBA_EIS_FIFO_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace dba::eis {

/// Fixed-capacity ring FIFO modelling the small hardware buffers of the
/// extension datapath (Load states, TmpStore/Store chain). Overflow and
/// underflow are programming errors in the datapath and abort.
template <typename T, size_t Capacity>
class SmallFifo {
 public:
  int size() const { return static_cast<int>(size_); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == Capacity; }
  int space() const { return static_cast<int>(Capacity - size_); }
  static constexpr int capacity() { return static_cast<int>(Capacity); }

  void Push(T value) {
    DBA_CHECK_MSG(!full(), "FIFO overflow");
    buffer_[(head_ + size_) % Capacity] = value;
    ++size_;
  }

  T Pop() {
    DBA_CHECK_MSG(!empty(), "FIFO underflow");
    T value = buffer_[head_];
    head_ = (head_ + 1) % Capacity;
    --size_;
    return value;
  }

  const T& Peek(int offset = 0) const {
    DBA_CHECK(offset >= 0 && static_cast<size_t>(offset) < size_);
    return buffer_[(head_ + static_cast<size_t>(offset)) % Capacity];
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<T, Capacity> buffer_{};
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace dba::eis

#endif  // DBA_EIS_FIFO_H_
