#ifndef DBA_EIS_NETWORKS_H_
#define DBA_EIS_NETWORKS_H_

#include <array>
#include <cstdint>

namespace dba::eis {

/// Hardware-style compare-exchange networks used by the presorting
/// instructions (Section 4: "special load and store instructions ...
/// which concurrently perform a sort operation"). Implemented as
/// explicit comparator stages, exactly as they would be wired in TIE.

/// In-place 4-element sorting network (Batcher even-odd, 5 comparators,
/// 3 stages -- single-cycle at the modelled frequencies).
void SortNetwork4(std::array<uint32_t, 4>& values);

/// Bitonic 4x4 merge network: merges two sorted 4-vectors into one
/// sorted 8-vector (lower half in `lo`, upper half in `hi`).
void MergeNetwork4x4(std::array<uint32_t, 4>& lo, std::array<uint32_t, 4>& hi);

}  // namespace dba::eis

#endif  // DBA_EIS_NETWORKS_H_
