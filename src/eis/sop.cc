#include "eis/sop.h"

#include <algorithm>

#include "common/check.h"

namespace dba::eis {

std::string_view SopModeName(SopMode mode) {
  switch (mode) {
    case SopMode::kIntersect:
      return "intersect";
    case SopMode::kUnion:
      return "union";
    case SopMode::kDifference:
      return "difference";
    case SopMode::kMerge:
      return "merge";
  }
  return "invalid";
}

void Window::Consume(int n) {
  DBA_CHECK(n >= 0 && n <= count);
  for (int i = n; i < count; ++i) {
    lanes[static_cast<size_t>(i - n)] = lanes[static_cast<size_t>(i)];
  }
  count -= n;
}

void Window::Push(uint32_t value) {
  DBA_CHECK_MSG(count < 4, "Window overflow");
  DBA_CHECK_MSG(count == 0 || lanes[static_cast<size_t>(count - 1)] <= value,
                "Window must stay sorted");
  lanes[static_cast<size_t>(count++)] = value;
}

namespace {

/// Consumption limit contributed by the opposite window: the comparator
/// may release everything up to the other side's maximum; +inf once the
/// other stream is fully drained; nothing while the other window merely
/// awaits a refill. Modelled in an int64 domain around uint32 values.
int64_t ConsumeLimit(const Window& other, bool other_drained) {
  if (!other.empty()) return static_cast<int64_t>(other.max());
  return other_drained ? INT64_MAX : INT64_MIN;
}

int CountLessEq(const Window& window, int64_t limit) {
  int n = 0;
  while (n < window.count &&
         static_cast<int64_t>(window.lanes[static_cast<size_t>(n)]) <= limit) {
    ++n;
  }
  return n;
}

}  // namespace

SopOutcome ComputeSop(SopMode mode, const Window& a, bool a_drained,
                      const Window& b, bool b_drained) {
  SopOutcome outcome;
  const int limit_a = CountLessEq(a, ConsumeLimit(b, b_drained));
  const int limit_b = CountLessEq(b, ConsumeLimit(a, a_drained));

  // All-to-all comparison over the consumed prefixes; in hardware this is
  // the n^2 comparator array (Section 2.2, intra-element-wise SIMD).
  // Functionally a two-pointer merge over the two sorted prefixes.
  //
  // The Result states are four elements wide (Figure 8: Result_0..3), so
  // one SOP emits at most four values; consumption truncates at the
  // element whose emission would overflow them. Modes that emit little
  // (intersection at low selectivity) still consume full prefixes.
  int i = 0;
  int j = 0;
  auto can_emit = [&outcome](int n) { return outcome.emit_count + n <= 4; };
  auto push = [&outcome](uint32_t value) {
    DBA_CHECK(outcome.emit_count < 4);
    outcome.emit[static_cast<size_t>(outcome.emit_count++)] = value;
  };
  while (i < limit_a || j < limit_b) {
    const bool take_a =
        j >= limit_b ||
        (i < limit_a && a.lanes[static_cast<size_t>(i)] <=
                            b.lanes[static_cast<size_t>(j)]);
    if (take_a && i < limit_a && j < limit_b &&
        a.lanes[static_cast<size_t>(i)] == b.lanes[static_cast<size_t>(j)]) {
      // Matched pair.
      const uint32_t value = a.lanes[static_cast<size_t>(i)];
      switch (mode) {
        case SopMode::kIntersect:
        case SopMode::kUnion:
          if (!can_emit(1)) goto result_states_full;
          push(value);
          break;
        case SopMode::kDifference:
          break;  // suppressed
        case SopMode::kMerge:
          if (!can_emit(2)) goto result_states_full;
          push(value);
          push(value);  // duplicates preserved
          break;
      }
      ++outcome.matches;
      ++i;
      ++j;
      continue;
    }
    if (take_a) {
      const uint32_t value = a.lanes[static_cast<size_t>(i)];
      switch (mode) {
        case SopMode::kIntersect:
          break;
        case SopMode::kUnion:
        case SopMode::kDifference:
        case SopMode::kMerge:
          if (!can_emit(1)) goto result_states_full;
          push(value);
          break;
      }
      ++i;
    } else {
      const uint32_t value = b.lanes[static_cast<size_t>(j)];
      switch (mode) {
        case SopMode::kIntersect:
        case SopMode::kDifference:
          break;
        case SopMode::kUnion:
        case SopMode::kMerge:
          if (!can_emit(1)) goto result_states_full;
          push(value);
          break;
      }
      ++j;
    }
  }
result_states_full:
  outcome.consume_a = i;
  outcome.consume_b = j;
  return outcome;
}

}  // namespace dba::eis
