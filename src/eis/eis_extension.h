#ifndef DBA_EIS_EIS_EXTENSION_H_
#define DBA_EIS_EIS_EXTENSION_H_

#include <cstdint>

#include "eis/fifo.h"
#include "eis/sop.h"
#include "sim/ext_op.h"
#include "sim/loop_accel.h"
#include "tie/tie_extension.h"

namespace dba::eis {

/// Extension-operation ids of the database instruction set (the EIS of
/// paper Section 4). Primitive instructions mirror Table 1; the fused
/// forms mirror the core loops of Figures 11 and 12.
namespace op {
inline constexpr uint16_t kInit = 0x200;          // states + pointers from ARs
inline constexpr uint16_t kLd0 = 0x201;           // LD for LSU0 / set A
inline constexpr uint16_t kLd1 = 0x202;           // LD for LSU1 / set B
inline constexpr uint16_t kLdP0 = 0x203;          // partial reload, set A
inline constexpr uint16_t kLdP1 = 0x204;          // partial reload, set B
inline constexpr uint16_t kSop = 0x205;           // sorted-set operation
inline constexpr uint16_t kStS = 0x206;           // result shuffle to Store
inline constexpr uint16_t kSt = 0x207;            // 128-bit result store
inline constexpr uint16_t kStoreSop = 0x208;      // fused ST + SOP (+flag)
inline constexpr uint16_t kLdLdpShuffle = 0x209;  // fused LD+LD_P+ST_S
inline constexpr uint16_t kFlush = 0x20A;         // drain results, count->a5
inline constexpr uint16_t kLdMerge = 0x20B;       // merge-sort load (+flag)
inline constexpr uint16_t kSortBeat = 0x20C;      // presort 4 elems (+flag)
inline constexpr uint16_t kCopyBeat = 0x20D;      // 128-bit copy (+flag)
}  // namespace op

/// INIT operand encoding: [1:0] SopMode, [2] partial loading enable.
constexpr uint16_t MakeInitOperand(SopMode mode, bool partial_loading) {
  return static_cast<uint16_t>(static_cast<uint16_t>(mode) |
                               (partial_loading ? 0x4 : 0));
}

/// Datapath activity counters (reset by INIT); used by tests and the
/// ablation benchmarks.
struct EisCounters {
  uint64_t sop_executions = 0;
  uint64_t elements_consumed = 0;
  uint64_t elements_emitted = 0;
  uint64_t matches = 0;
  uint64_t load_beats = 0;
  uint64_t store_beats = 0;
};

/// The database-specific instruction-set extension.
///
/// Datapath layout (paper Figures 8 and 9): per input set a Load state
/// FIFO (two beats deep) feeding a 4-element Word window; a 4x4
/// all-to-all comparator (SOP); a result FIFO with shuffle network
/// feeding 4-element Store states written back as 128-bit beats.
///
/// LSU assignment: set A loads on LSU0, set B loads on LSU1, result
/// stores on LSU1 (Figure 9). In merge-sort mode everything uses LSU0
/// (Section 4: "the LD instruction loads always from LSU0"). On a
/// single-LSU core the simulator folds all beats onto LSU0 and charges
/// the port-contention cycles automatically.
/// The database-specific instruction-set extension. Also implements the
/// simulator's LoopAccelerator interface: the steady-state kernel loops
/// (Figures 10-12) are recognized as TIE-loop superblocks and executed
/// iteration-at-a-time through a direct-dispatch batch engine instead of
/// the per-word issue machinery -- with the same semantics and the same
/// cycle arithmetic (pinned by the differential test suite).
class EisExtension : public tie::TieExtension, public sim::LoopAccelerator {
 public:
  EisExtension();

  void ResetState() override;

  // --- sim::LoopAccelerator ---
  bool MatchesTieLoop(const sim::TieLoop& loop) const override;
  Result<bool> RunTieLoop(const sim::TieLoop& loop, sim::Cpu& cpu, bool exact,
                          uint64_t max_cycles,
                          sim::ExecStats* stats) override;

  // --- Introspection for tests, the debug interface, and benches ---
  SopMode mode() const { return static_cast<SopMode>(mode_state_->Get()); }
  bool partial_loading() const { return partial_state_->Get() != 0; }
  bool active_flag() const { return active_state_->Get() != 0; }
  const Window& word_a() const { return a_.window; }
  const Window& word_b() const { return b_.window; }
  int load_fifo_a_size() const { return a_.load_fifo.size(); }
  int load_fifo_b_size() const { return b_.load_fifo.size(); }
  int result_fifo_size() const { return result_fifo_.size(); }
  int store_buffer_size() const { return store_count_; }
  uint32_t result_count() const { return c_count_; }
  const EisCounters& counters() const { return counters_; }

 private:
  /// One input stream: memory cursor, Load states, and Word window.
  struct StreamSide {
    uint64_t ptr = 0;        // next beat address (16-byte aligned)
    uint32_t remaining = 0;  // elements not yet loaded
    SmallFifo<uint32_t, 8> load_fifo;  // the Load_* states (2 beats)
    Window window;                     // the Word_* states

    /// True when nothing remains upstream of the window.
    bool upstream_empty() const {
      return remaining == 0 && load_fifo.empty();
    }
    /// True when the side holds no elements at all.
    bool drained() const { return upstream_empty() && window.empty(); }

    void Reset() {
      ptr = 0;
      remaining = 0;
      load_fifo.Clear();
      window = Window{};
    }
  };

  StreamSide& side(int index) { return index == 0 ? a_ : b_; }

  int LoadLsu(int side_index) const {
    return mode() == SopMode::kMerge ? 0 : side_index;
  }
  int StoreLsu() const { return mode() == SopMode::kMerge ? 0 : 1; }

  bool ContinueFlag() const;

  // Instruction semantics (shared by primitive and fused forms).
  // Templated on the execution context so the per-word path
  // (sim::ExtContext) and the batch engine's fast context share one
  // implementation -- the batch path cannot drift semantically. Defined
  // in eis_extension.cc; both contexts are instantiated there.
  template <typename Ctx>
  Status Init(Ctx& ctx);
  template <typename Ctx>
  Status Ld(Ctx& ctx, int side_index);
  void LdP(int side_index);
  template <typename Ctx>
  Status Sop(Ctx& ctx);
  void StS();
  template <typename Ctx>
  Status St(Ctx& ctx);
  template <typename Ctx>
  Status Flush(Ctx& ctx);
  template <typename Ctx>
  Status LdMerge(Ctx& ctx);
  template <typename Ctx>
  Status SortBeat(Ctx& ctx);
  template <typename Ctx>
  Status CopyBeat(Ctx& ctx);

  template <typename Ctx>
  Status StorePack(Ctx& ctx, const std::array<uint32_t, 4>& pack);

  /// One EIS operation by id, shared by the registered per-word lambdas
  /// and the batch engine (single dispatch table for both paths).
  template <typename Ctx>
  Status DispatchOp(uint16_t ext_id, Ctx& ctx);

  /// Hot-counter mirrors shared between RunTieLoop and the steady-state
  /// set-operation stepper.
  struct SteadyMirrors {
    uint64_t& cycles;
    uint64_t& bundles;
    uint64_t& instructions;
    uint64_t& taken_branches;
    uint64_t& mispredicted;
    uint64_t& branch_penalty;
    uint64_t& port_stall;
    uint64_t& beats0;
    uint64_t& beats1;
  };
  enum class SteadyOutcome {
    kDeclined,    // stepper never ran; datapath state untouched
    kHandedBack,  // stopped at a word boundary; state synced, pc set
    kCompleted,   // loop fell through the branch; state synced, pc set
  };

  /// Cursor-based fast path for the steady-state set-operation loop
  /// (Figure 11): executes whole iterations on raw memory views with
  /// integer FIFO/window occupancy modelling, writing result beats and
  /// accumulating exactly the per-word stats of the generic engine. Any
  /// case it cannot model bit-exactly (result FIFO overflow, watchdog
  /// margin, span exhaustion, unexpected entry state) hands back to the
  /// per-word machinery at a word boundary.
  ///
  /// With `exact` false (turbo mode) the steady region additionally runs
  /// through a raw two-pointer bulk loop: results stay element-exact,
  /// but cycles and beat counts for the bulk segment are extrapolated
  /// linearly from a short calibration prefix of exact iterations.
  SteadyOutcome RunSetOpSteady(const sim::TieLoop& loop, sim::Cpu& cpu,
                               bool exact, uint64_t max_cycles,
                               uint64_t iter_margin, SteadyMirrors& m);

  // TIE states (scalar configuration/flag states).
  tie::TieState* mode_state_;     // 2 bits
  tie::TieState* partial_state_;  // 1 bit
  tie::TieState* active_state_;   // 1 bit: loop-continuation flag

  // Datapath (the wide Load/Word/Result/Store states).
  StreamSide a_;
  StreamSide b_;
  SmallFifo<uint32_t, 32> result_fifo_;
  std::array<uint32_t, 4> store_buf_{};
  int store_count_ = 0;
  uint64_t c_ptr_ = 0;
  uint32_t c_count_ = 0;

  EisCounters counters_;
};

}  // namespace dba::eis

#endif  // DBA_EIS_EIS_EXTENSION_H_
