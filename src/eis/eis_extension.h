#ifndef DBA_EIS_EIS_EXTENSION_H_
#define DBA_EIS_EIS_EXTENSION_H_

#include <cstdint>

#include "eis/fifo.h"
#include "eis/sop.h"
#include "sim/ext_op.h"
#include "tie/tie_extension.h"

namespace dba::eis {

/// Extension-operation ids of the database instruction set (the EIS of
/// paper Section 4). Primitive instructions mirror Table 1; the fused
/// forms mirror the core loops of Figures 11 and 12.
namespace op {
inline constexpr uint16_t kInit = 0x200;          // states + pointers from ARs
inline constexpr uint16_t kLd0 = 0x201;           // LD for LSU0 / set A
inline constexpr uint16_t kLd1 = 0x202;           // LD for LSU1 / set B
inline constexpr uint16_t kLdP0 = 0x203;          // partial reload, set A
inline constexpr uint16_t kLdP1 = 0x204;          // partial reload, set B
inline constexpr uint16_t kSop = 0x205;           // sorted-set operation
inline constexpr uint16_t kStS = 0x206;           // result shuffle to Store
inline constexpr uint16_t kSt = 0x207;            // 128-bit result store
inline constexpr uint16_t kStoreSop = 0x208;      // fused ST + SOP (+flag)
inline constexpr uint16_t kLdLdpShuffle = 0x209;  // fused LD+LD_P+ST_S
inline constexpr uint16_t kFlush = 0x20A;         // drain results, count->a5
inline constexpr uint16_t kLdMerge = 0x20B;       // merge-sort load (+flag)
inline constexpr uint16_t kSortBeat = 0x20C;      // presort 4 elems (+flag)
inline constexpr uint16_t kCopyBeat = 0x20D;      // 128-bit copy (+flag)
}  // namespace op

/// INIT operand encoding: [1:0] SopMode, [2] partial loading enable.
constexpr uint16_t MakeInitOperand(SopMode mode, bool partial_loading) {
  return static_cast<uint16_t>(static_cast<uint16_t>(mode) |
                               (partial_loading ? 0x4 : 0));
}

/// Datapath activity counters (reset by INIT); used by tests and the
/// ablation benchmarks.
struct EisCounters {
  uint64_t sop_executions = 0;
  uint64_t elements_consumed = 0;
  uint64_t elements_emitted = 0;
  uint64_t matches = 0;
  uint64_t load_beats = 0;
  uint64_t store_beats = 0;
};

/// The database-specific instruction-set extension.
///
/// Datapath layout (paper Figures 8 and 9): per input set a Load state
/// FIFO (two beats deep) feeding a 4-element Word window; a 4x4
/// all-to-all comparator (SOP); a result FIFO with shuffle network
/// feeding 4-element Store states written back as 128-bit beats.
///
/// LSU assignment: set A loads on LSU0, set B loads on LSU1, result
/// stores on LSU1 (Figure 9). In merge-sort mode everything uses LSU0
/// (Section 4: "the LD instruction loads always from LSU0"). On a
/// single-LSU core the simulator folds all beats onto LSU0 and charges
/// the port-contention cycles automatically.
class EisExtension : public tie::TieExtension {
 public:
  EisExtension();

  void ResetState() override;

  // --- Introspection for tests, the debug interface, and benches ---
  SopMode mode() const { return static_cast<SopMode>(mode_state_->Get()); }
  bool partial_loading() const { return partial_state_->Get() != 0; }
  bool active_flag() const { return active_state_->Get() != 0; }
  const Window& word_a() const { return a_.window; }
  const Window& word_b() const { return b_.window; }
  int load_fifo_a_size() const { return a_.load_fifo.size(); }
  int load_fifo_b_size() const { return b_.load_fifo.size(); }
  int result_fifo_size() const { return result_fifo_.size(); }
  int store_buffer_size() const { return store_count_; }
  uint32_t result_count() const { return c_count_; }
  const EisCounters& counters() const { return counters_; }

 private:
  /// One input stream: memory cursor, Load states, and Word window.
  struct StreamSide {
    uint64_t ptr = 0;        // next beat address (16-byte aligned)
    uint32_t remaining = 0;  // elements not yet loaded
    SmallFifo<uint32_t, 8> load_fifo;  // the Load_* states (2 beats)
    Window window;                     // the Word_* states

    /// True when nothing remains upstream of the window.
    bool upstream_empty() const {
      return remaining == 0 && load_fifo.empty();
    }
    /// True when the side holds no elements at all.
    bool drained() const { return upstream_empty() && window.empty(); }

    void Reset() {
      ptr = 0;
      remaining = 0;
      load_fifo.Clear();
      window = Window{};
    }
  };

  StreamSide& side(int index) { return index == 0 ? a_ : b_; }

  int LoadLsu(int side_index) const {
    return mode() == SopMode::kMerge ? 0 : side_index;
  }
  int StoreLsu() const { return mode() == SopMode::kMerge ? 0 : 1; }

  bool ContinueFlag() const;

  // Instruction semantics (shared by primitive and fused forms).
  Status Init(sim::ExtContext& ctx);
  Status Ld(sim::ExtContext& ctx, int side_index);
  void LdP(int side_index);
  Status Sop(sim::ExtContext& ctx);
  void StS();
  Status St(sim::ExtContext& ctx);
  Status Flush(sim::ExtContext& ctx);
  Status LdMerge(sim::ExtContext& ctx);
  Status SortBeat(sim::ExtContext& ctx);
  Status CopyBeat(sim::ExtContext& ctx);

  Status StorePack(sim::ExtContext& ctx, const std::array<uint32_t, 4>& pack);

  // TIE states (scalar configuration/flag states).
  tie::TieState* mode_state_;     // 2 bits
  tie::TieState* partial_state_;  // 1 bit
  tie::TieState* active_state_;   // 1 bit: loop-continuation flag

  // Datapath (the wide Load/Word/Result/Store states).
  StreamSide a_;
  StreamSide b_;
  SmallFifo<uint32_t, 32> result_fifo_;
  std::array<uint32_t, 4> store_buf_{};
  int store_count_ = 0;
  uint64_t c_ptr_ = 0;
  uint32_t c_count_ = 0;

  EisCounters counters_;
};

}  // namespace dba::eis

#endif  // DBA_EIS_EIS_EXTENSION_H_
