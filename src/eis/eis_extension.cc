#include "eis/eis_extension.h"

#include <algorithm>

#include "common/bits.h"
#include "eis/networks.h"
#include "isa/registers.h"

namespace dba::eis {

using isa::Reg;
using sim::ExtContext;

namespace {

Reg FlagReg(const ExtContext& ctx) {
  return isa::RegFromIndex(ctx.operand() & 0xF);
}

}  // namespace

EisExtension::EisExtension() : TieExtension("eis") {
  mode_state_ = AddState("sop_mode", 2, 0);
  partial_state_ = AddState("partial_loading", 1, 0);
  active_state_ = AddState("active", 1, 0);

  DefineOp(op::kInit, "init",
           [this](ExtContext& ctx) { return Init(ctx); });
  DefineOp(op::kLd0, "ld_0", [this](ExtContext& ctx) { return Ld(ctx, 0); });
  DefineOp(op::kLd1, "ld_1", [this](ExtContext& ctx) { return Ld(ctx, 1); });
  DefineOp(op::kLdP0, "ld_p_0", [this](ExtContext& ctx) {
    LdP(0);
    return Status::Ok();
  });
  DefineOp(op::kLdP1, "ld_p_1", [this](ExtContext& ctx) {
    LdP(1);
    return Status::Ok();
  });
  DefineOp(op::kSop, "sop", [this](ExtContext& ctx) { return Sop(ctx); });
  DefineOp(op::kStS, "st_s", [this](ExtContext& ctx) {
    StS();
    return Status::Ok();
  });
  DefineOp(op::kSt, "st", [this](ExtContext& ctx) { return St(ctx); });

  DefineOp(op::kStoreSop, "store_sop", [this](ExtContext& ctx) {
    // Fused ST + SOP: the store path writes the Store states filled in
    // the previous iteration while the comparator network executes.
    DBA_RETURN_IF_ERROR(St(ctx));
    DBA_RETURN_IF_ERROR(Sop(ctx));
    ctx.set_reg(FlagReg(ctx), active_state_->Get() != 0 ? 1u : 0u);
    return Status::Ok();
  });

  DefineOp(op::kLdLdpShuffle, "ld_ldp_shuffle", [this](ExtContext& ctx) {
    // Fused LD_0 | LD_1 | LD_P_0 | LD_P_1 | ST_S (Section 4).
    DBA_RETURN_IF_ERROR(Ld(ctx, 0));
    DBA_RETURN_IF_ERROR(Ld(ctx, 1));
    LdP(0);
    LdP(1);
    StS();
    return Status::Ok();
  });

  DefineOp(op::kFlush, "flush",
           [this](ExtContext& ctx) { return Flush(ctx); });
  DefineOp(op::kLdMerge, "ld_merge",
           [this](ExtContext& ctx) { return LdMerge(ctx); });
  DefineOp(op::kSortBeat, "sort_beat",
           [this](ExtContext& ctx) { return SortBeat(ctx); });
  DefineOp(op::kCopyBeat, "copy_beat",
           [this](ExtContext& ctx) { return CopyBeat(ctx); });
}

void EisExtension::ResetState() {
  TieExtension::ResetState();
  a_.Reset();
  b_.Reset();
  result_fifo_.Clear();
  store_buf_.fill(0);
  store_count_ = 0;
  c_ptr_ = 0;
  c_count_ = 0;
  counters_ = EisCounters{};
}

bool EisExtension::ContinueFlag() const {
  switch (mode()) {
    case SopMode::kIntersect:
      return !a_.drained() && !b_.drained();
    case SopMode::kUnion:
    case SopMode::kMerge:
      return !a_.drained() || !b_.drained();
    case SopMode::kDifference:
      return !a_.drained();
  }
  return false;
}

Status EisExtension::Init(ExtContext& ctx) {
  // Reset the datapath but keep the activity counters: INIT runs once
  // per merge pair inside the sort kernel, and the counters aggregate a
  // whole run (ResetState clears them between Processor runs).
  const EisCounters saved_counters = counters_;
  ResetState();
  counters_ = saved_counters;
  const uint16_t operand = ctx.operand();
  mode_state_->Set(operand & 0x3);
  partial_state_->Set((operand >> 2) & 0x1);

  a_.ptr = ctx.reg(isa::abi::kPtrA);
  b_.ptr = ctx.reg(isa::abi::kPtrB);
  a_.remaining = ctx.reg(isa::abi::kLenA);
  b_.remaining = ctx.reg(isa::abi::kLenB);
  c_ptr_ = ctx.reg(isa::abi::kPtrC);

  // Alignment matters only for streams that will issue beats; merge
  // pairs at the tail of a pass have an empty run2 at an odd offset.
  if ((a_.remaining > 0 && !IsAligned(a_.ptr, 16)) ||
      (b_.remaining > 0 && !IsAligned(b_.ptr, 16)) ||
      !IsAligned(c_ptr_, 16)) {
    return Status::InvalidArgument(
        "EIS INIT: input/output pointers must be 16-byte aligned");
  }
  active_state_->Set(ContinueFlag() ? 1 : 0);
  return Status::Ok();
}

Status EisExtension::Ld(ExtContext& ctx, int side_index) {
  StreamSide& s = side(side_index);
  if (s.remaining == 0) return Status::Ok();
  // The load pipeline issues its 128-bit beat every iteration the stream
  // is live (Figure 10: LD occupies both LSUs every other cycle); when
  // the Load states are still full the beat is a redundant prefetch and
  // its data is dropped, but the port cycle is spent either way.
  DBA_ASSIGN_OR_RETURN(mem::Beat128 beat,
                       ctx.LoadBeat(LoadLsu(side_index), s.ptr));
  ++counters_.load_beats;
  if (s.load_fifo.space() < 4) return Status::Ok();
  const uint32_t take = std::min<uint32_t>(4, s.remaining);
  for (uint32_t i = 0; i < take; ++i) {
    s.load_fifo.Push(beat[i]);
  }
  s.ptr += mem::kBeatBytes;
  s.remaining -= take;
  return Status::Ok();
}

void EisExtension::LdP(int side_index) {
  StreamSide& s = side(side_index);
  const bool partial = partial_loading() || mode() == SopMode::kMerge;
  if (!partial && !s.window.empty()) {
    // Without partial loading the Word states are reloaded only once
    // fully consumed; the window stays ragged in between.
    return;
  }
  while (!s.window.full() && !s.load_fifo.empty()) {
    s.window.Push(s.load_fifo.Pop());
  }
}

Status EisExtension::Sop(ExtContext& ctx) {
  const SopOutcome outcome = ComputeSop(mode(), a_.window, a_.upstream_empty(),
                                        b_.window, b_.upstream_empty());
  a_.window.Consume(outcome.consume_a);
  b_.window.Consume(outcome.consume_b);
  if (result_fifo_.space() < outcome.emit_count) {
    return Status::Internal("EIS result FIFO overflow (store path stalled)");
  }
  for (int i = 0; i < outcome.emit_count; ++i) {
    result_fifo_.Push(outcome.emit[static_cast<size_t>(i)]);
  }
  ++counters_.sop_executions;
  counters_.elements_consumed +=
      static_cast<uint64_t>(outcome.consume_a + outcome.consume_b);
  counters_.elements_emitted += static_cast<uint64_t>(outcome.emit_count);
  counters_.matches += static_cast<uint64_t>(outcome.matches);
  active_state_->Set(ContinueFlag() ? 1 : 0);
  return Status::Ok();
}

void EisExtension::StS() {
  if (store_count_ != 0 || result_fifo_.size() < 4) return;
  for (int i = 0; i < 4; ++i) {
    store_buf_[static_cast<size_t>(i)] = result_fifo_.Pop();
  }
  store_count_ = 4;
}

Status EisExtension::StorePack(ExtContext& ctx,
                               const std::array<uint32_t, 4>& pack) {
  DBA_RETURN_IF_ERROR(ctx.StoreBeat(StoreLsu(), c_ptr_, pack));
  c_ptr_ += mem::kBeatBytes;
  c_count_ += 4;
  ++counters_.store_beats;
  return Status::Ok();
}

Status EisExtension::St(ExtContext& ctx) {
  // The store is delayed while fewer than four elements are available
  // (Section 4); a full Store state is written as one aligned beat.
  if (store_count_ == 4) {
    DBA_RETURN_IF_ERROR(StorePack(ctx, store_buf_));
    store_count_ = 0;
  } else if (store_count_ == 0 && result_fifo_.size() >= 4) {
    // Merge-sort path: the core loop issues no ST_S (Figure 12 -- "the
    // shuffle instruction is not applied"), so the Store states load
    // directly from the result FIFO within the store instruction.
    std::array<uint32_t, 4> pack;
    for (auto& value : pack) value = result_fifo_.Pop();
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
  }
  // Burst drain: if the result FIFO has backed up past two packs (heavy
  // union output), issue additional store beats; the port model charges
  // one extra cycle per beat.
  while (result_fifo_.size() >= 8) {
    std::array<uint32_t, 4> pack;
    for (auto& value : pack) value = result_fifo_.Pop();
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
  }
  return Status::Ok();
}

Status EisExtension::Flush(ExtContext& ctx) {
  // Drain Store states and the result FIFO. Full packs leave as beats;
  // the final partial pack is written with byte enables (modelled as
  // word stores).
  std::array<uint32_t, 4> pack;
  int pending = 0;
  auto flush_full = [&]() -> Status {
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
    pending = 0;
    return Status::Ok();
  };
  for (int i = 0; i < store_count_; ++i) {
    pack[static_cast<size_t>(pending++)] = store_buf_[static_cast<size_t>(i)];
  }
  store_count_ = 0;
  if (pending == 4) DBA_RETURN_IF_ERROR(flush_full());
  while (!result_fifo_.empty()) {
    pack[static_cast<size_t>(pending++)] = result_fifo_.Pop();
    if (pending == 4) DBA_RETURN_IF_ERROR(flush_full());
  }
  for (int i = 0; i < pending; ++i) {
    DBA_RETURN_IF_ERROR(ctx.StoreWord(
        StoreLsu(), c_ptr_ + static_cast<uint64_t>(4 * i),
        pack[static_cast<size_t>(i)]));
    ++c_count_;
  }
  if (pending > 0) {
    c_ptr_ += static_cast<uint64_t>(4 * pending);
    ++counters_.store_beats;
  }
  ctx.set_reg(isa::abi::kLenC, c_count_);
  return Status::Ok();
}

Status EisExtension::LdMerge(ExtContext& ctx) {
  // Refill the side with fewer buffered elements first; if its stream
  // is exhausted or its Load states are full, try the other side.
  const int buffered_a = a_.window.count + a_.load_fifo.size();
  const int buffered_b = b_.window.count + b_.load_fifo.size();
  const int first = buffered_b < buffered_a ? 1 : 0;
  const uint64_t beats_before = counters_.load_beats;
  DBA_RETURN_IF_ERROR(Ld(ctx, first));
  if (counters_.load_beats == beats_before) {
    DBA_RETURN_IF_ERROR(Ld(ctx, 1 - first));
  }
  LdP(0);
  LdP(1);
  active_state_->Set(ContinueFlag() ? 1 : 0);
  ctx.set_reg(FlagReg(ctx), active_state_->Get() != 0 ? 1u : 0u);
  return Status::Ok();
}

Status EisExtension::SortBeat(ExtContext& ctx) {
  if (a_.remaining > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, a_.ptr));
    const uint32_t take = std::min<uint32_t>(4, a_.remaining);
    // Pad the tail with the maximum value so the network sinks padding
    // lanes to the end of the run.
    for (uint32_t i = take; i < 4; ++i) beat[i] = 0xFFFFFFFFu;
    SortNetwork4(beat);
    DBA_RETURN_IF_ERROR(ctx.StoreBeat(0, c_ptr_, beat));
    a_.ptr += mem::kBeatBytes;
    a_.remaining -= take;
    c_ptr_ += mem::kBeatBytes;
    c_count_ += take;
    ++counters_.load_beats;
    ++counters_.store_beats;
  }
  ctx.set_reg(FlagReg(ctx), a_.remaining > 0 ? 1u : 0u);
  return Status::Ok();
}

Status EisExtension::CopyBeat(ExtContext& ctx) {
  if (a_.remaining > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, a_.ptr));
    const uint32_t take = std::min<uint32_t>(4, a_.remaining);
    DBA_RETURN_IF_ERROR(ctx.StoreBeat(0, c_ptr_, beat));
    a_.ptr += mem::kBeatBytes;
    a_.remaining -= take;
    c_ptr_ += mem::kBeatBytes;
    c_count_ += take;
    ++counters_.load_beats;
    ++counters_.store_beats;
  }
  ctx.set_reg(FlagReg(ctx), a_.remaining > 0 ? 1u : 0u);
  return Status::Ok();
}

}  // namespace dba::eis
