#include "eis/eis_extension.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/bits.h"
#include "eis/networks.h"
#include "isa/registers.h"
#include "sim/cpu.h"

namespace dba::eis {

using isa::Reg;
using sim::ExtContext;

namespace {

template <typename Ctx>
Reg FlagReg(const Ctx& ctx) {
  return isa::RegFromIndex(ctx.operand() & 0xF);
}

/// The batch engine's execution context: the same surface the semantic
/// templates use on sim::ExtContext, minus the per-beat overhead -- the
/// data-bus width is validated once per loop (RunTieLoop declines on
/// narrow buses) and the route of the last beat is cached, which turns
/// the address-to-memory lookup of a streaming kernel into one range
/// check. Beat accounting is identical to ExtContext.
class BatchCtx {
 public:
  explicit BatchCtx(sim::Cpu* cpu)
      : cpu_(cpu), num_lsus_(cpu->config().num_lsus) {}

  uint16_t operand() const { return operand_; }
  int num_lsus() const { return num_lsus_; }

  uint32_t reg(Reg r) const { return cpu_->reg(r); }
  void set_reg(Reg r, uint32_t value) { cpu_->set_reg(r, value); }

  Result<mem::Beat128> LoadBeat(int lsu, uint64_t addr) {
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory, Route(addr, 16));
    beats_[Fold(lsu)] += memory->config().access_latency;
    return memory->Load128(addr);
  }
  Status StoreBeat(int lsu, uint64_t addr, const mem::Beat128& beat) {
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory, Route(addr, 16));
    beats_[Fold(lsu)] += memory->config().access_latency;
    return memory->Store128(addr, beat);
  }
  Result<uint32_t> LoadWord(int lsu, uint64_t addr) {
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory, Route(addr, 4));
    beats_[Fold(lsu)] += memory->config().access_latency;
    return memory->LoadU32(addr);
  }
  Status StoreWord(int lsu, uint64_t addr, uint32_t value) {
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory, Route(addr, 4));
    beats_[Fold(lsu)] += memory->config().access_latency;
    return memory->StoreU32(addr, value);
  }

  uint16_t operand_ = 0;
  uint32_t beats_[2] = {0, 0};

 private:
  int Fold(int lsu) const {
    return (lsu < 0 || lsu >= num_lsus_) ? 0 : lsu;
  }
  Result<mem::Memory*> Route(uint64_t addr, uint64_t bytes) {
    if (last_ != nullptr && last_->Contains(addr, bytes)) return last_;
    DBA_ASSIGN_OR_RETURN(mem::Memory * memory,
                         cpu_->memory_system().Route(addr, bytes));
    last_ = memory;
    return memory;
  }

  sim::Cpu* cpu_;
  int num_lsus_;
  mem::Memory* last_ = nullptr;
};

/// True when the loop body is the fused set-operation steady state of
/// Figure 11: unroll x [STORE_SOP(flag), LD_LDP_SHUFFLE] with one flag
/// register, closed by a conditional branch on that flag. Returns the
/// flag register index via *flag_index.
bool MatchSetOpLoopShape(const sim::TieLoop& loop, int* flag_index) {
  const size_t body_len = loop.body.size();
  if (body_len < 2 || body_len % 2 != 0) return false;
  const int flag = loop.body[0].operand & 0xF;
  for (size_t k = 0; k < body_len; k += 2) {
    if (loop.body[k].ext_id != op::kStoreSop ||
        (loop.body[k].operand & 0xF) != flag ||
        loop.body[k + 1].ext_id != op::kLdLdpShuffle) {
      return false;
    }
  }
  const Reg flag_reg = isa::RegFromIndex(flag);
  if (loop.branch.rs1 != flag_reg || loop.branch.rs2 == flag_reg) {
    return false;
  }
  *flag_index = flag;
  return true;
}

/// Mode-specialized rewrite of ComputeSop for the steady-state stepper,
/// operating directly on the raw window slices (no Window copies, no
/// bounds checks, mode dispatched at compile time). Semantics are
/// mirrored line for line from ComputeSop -- consumption limits, the
/// two-pointer order, and the four-element emission truncation -- and
/// pinned to it by the differential test suite.
struct SteadySopOutcome {
  int consume_a = 0;
  int consume_b = 0;
  int emit_count = 0;
  int matches = 0;
  uint32_t emit[5];  // slot 4 is scratch for the branchless writes
};

template <SopMode kMode>
inline SteadySopOutcome SteadySop(const uint32_t* pa, int wa, bool ue_a,
                                  const uint32_t* pb, int wb, bool ue_b) {
  SteadySopOutcome out;
  int limit_a = 0;
  int limit_b = 0;
  if (wb > 0) {
    const uint32_t mx = pb[wb - 1];
    for (int i = 0; i < wa; ++i) limit_a += pa[i] <= mx ? 1 : 0;
  } else {
    limit_a = ue_b ? wa : 0;
  }
  if (wa > 0) {
    const uint32_t mx = pa[wa - 1];
    for (int j = 0; j < wb; ++j) limit_b += pb[j] <= mx ? 1 : 0;
  } else {
    limit_b = ue_a ? wb : 0;
  }
  // Mostly-branchless merge: element advances and the emission counter
  // move by flag arithmetic; the only data-dependent branch is the
  // rarely-taken four-element emission truncation (same semantics as
  // the datapath: the word stops *before* consuming the element whose
  // emission would not fit).
  int i = 0;
  int j = 0;
  bool truncated = false;
  while (i < limit_a && j < limit_b) {
    const uint32_t va = pa[i];
    const uint32_t vb = pb[j];
    const bool eq = va == vb;
    const bool ale = va <= vb;
    const bool ble = vb <= va;
    bool want_emit;
    uint32_t value;
    if constexpr (kMode == SopMode::kIntersect) {
      want_emit = eq;
      value = va;
    } else if constexpr (kMode == SopMode::kUnion) {
      want_emit = true;
      value = ale ? va : vb;
    } else {
      want_emit = ale && !eq;
      value = va;
    }
    if (want_emit && out.emit_count == 4) {
      truncated = true;
      break;
    }
    out.emit[out.emit_count] = value;
    out.emit_count += want_emit ? 1 : 0;
    out.matches += eq ? 1 : 0;
    i += ale ? 1 : 0;
    j += ble ? 1 : 0;
  }
  if (!truncated) {
    if (i < limit_a) {
      // B exhausted within its limit: the rest of A is unmatched.
      if constexpr (kMode == SopMode::kIntersect) {
        i = limit_a;  // consumed without emission
      } else {
        while (i < limit_a && out.emit_count < 4) out.emit[out.emit_count++] = pa[i++];
      }
    } else if (j < limit_b) {
      if constexpr (kMode == SopMode::kUnion) {
        while (j < limit_b && out.emit_count < 4) out.emit[out.emit_count++] = pb[j++];
      } else {
        j = limit_b;  // consumed without emission
      }
    }
  }
  out.consume_a = i;
  out.consume_b = j;
  return out;
}

#if defined(__x86_64__)

/// Shuffle-control table for compacting the matched lanes of a 4x32
/// vector in order: entry m selects the dwords whose bit is set in m.
struct CompactTable {
  alignas(16) uint8_t ctl[16][16];
};
constexpr CompactTable MakeCompactTable() {
  CompactTable t{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if ((m & (1 << lane)) == 0) continue;
      for (int byte = 0; byte < 4; ++byte) {
        t.ctl[m][4 * k + byte] = static_cast<uint8_t>(4 * lane + byte);
      }
      ++k;
    }
    for (; k < 4; ++k) {
      for (int byte = 0; byte < 4; ++byte) t.ctl[m][4 * k + byte] = 0x80;
    }
  }
  return t;
}
alignas(16) constexpr CompactTable kCompact = MakeCompactTable();

/// Block-wise SIMD intersection of two strictly increasing runs: each
/// round compares a 4-element block of A against all rotations of a
/// 4-element block of B, compact-stores the matched A lanes, and
/// retires the block with the smaller maximum. Emitted elements and
/// order are identical to the scalar two-pointer on strictly
/// increasing inputs; the in-loop monotonicity probe (block vs block
/// shifted by one) bails to the scalar path the moment either stream
/// is not strictly increasing, so duplicate-bearing inputs fall back
/// to the exact pairwise semantics. Writes go straight into the
/// emission stream at `*eo`; the caller folds them into ring/pack
/// state. Requires ia/ib >= 1 (the shifted monotonicity loads).
__attribute__((target("ssse3,popcnt"))) inline void SimdIntersectRun(
    const uint32_t* A, size_t la, const uint32_t* B, size_t lb, size_t* pia,
    size_t* pib, uint32_t* out, size_t* eo, size_t eo_limit,
    uint64_t element_budget, uint64_t* pmatches) {
  size_t ia = *pia;
  size_t ib = *pib;
  size_t o = *eo;
  uint64_t matches = *pmatches;
  const size_t ia0 = ia;
  const size_t ib0 = ib;
  // The hot loop runs a precomputed number of rounds with no bounds
  // checks: every round advances at least one side by a whole block
  // and emits at most one, so each budget converts to a safe round
  // count; the outer loop re-derives the counts until one budget is
  // spent (or a monotonicity violation bails to the scalar path).
  for (;;) {
    const uint64_t consumed = (ia - ia0) + (ib - ib0);
    if (consumed >= element_budget) break;
    size_t rounds = std::min((la - ia) / 4, (lb - ib) / 4);
    rounds = std::min(rounds, eo_limit > o ? (eo_limit - o) / 4 : 0);
    rounds = std::min<size_t>(
        rounds, static_cast<size_t>((element_budget - consumed) / 4) + 1);
    if (rounds == 0) break;
    bool monotone = true;
    for (size_t t = 0; t < rounds; ++t) {
      const __m128i va =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(A + ia));
      const __m128i vb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(B + ib));
      const __m128i prev_a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(A + ia - 1));
      const __m128i prev_b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(B + ib - 1));
      const __m128i dup = _mm_or_si128(_mm_cmpeq_epi32(va, prev_a),
                                       _mm_cmpeq_epi32(vb, prev_b));
      if (_mm_movemask_epi8(dup) != 0) {
        monotone = false;
        break;
      }
      __m128i m = _mm_cmpeq_epi32(va, vb);
      m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
      m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
      m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
      const int mask = _mm_movemask_ps(_mm_castsi128_ps(m));
      const __m128i comp = _mm_shuffle_epi8(
          va, _mm_load_si128(
                  reinterpret_cast<const __m128i*>(kCompact.ctl[mask])));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + o), comp);
      const int n = __builtin_popcount(static_cast<unsigned>(mask));
      o += static_cast<size_t>(n);
      matches += static_cast<uint64_t>(n);
      const uint32_t amax = A[ia + 3];
      const uint32_t bmax = B[ib + 3];
      ia += amax <= bmax ? 4 : 0;
      ib += bmax <= amax ? 4 : 0;
    }
    if (!monotone) break;
  }
  *pia = ia;
  *pib = ib;
  *eo = o;
  *pmatches = matches;
}

/// SIMD form of one exact intersect SOP word. Valid because intersect
/// never truncates its emission (at most four matches per window pair)
/// and the two-pointer always consumes exactly to the consumption
/// limits; the emitted values are the matched A lanes in order. Needs
/// four loadable elements behind each window start and a strictly
/// increasing A block (the monotone-stream case; anything else returns
/// false and takes the scalar path with exact pairwise semantics).
__attribute__((target("ssse3,popcnt"))) inline bool SimdSopIntersect(
    const uint32_t* pa, int wa, const uint32_t* pb, int wb,
    SteadySopOutcome* out) {
  if (!(pa[0] < pa[1] && pa[1] < pa[2] && pa[2] < pa[3])) return false;
  const uint32_t amax = pa[wa - 1];
  const uint32_t bmax = pb[wb - 1];
  int limit_a = 0;
  for (int i = 0; i < wa; ++i) limit_a += pa[i] <= bmax ? 1 : 0;
  int limit_b = 0;
  for (int j = 0; j < wb; ++j) limit_b += pb[j] <= amax ? 1 : 0;
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pa));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(pb));
  __m128i m = _mm_cmpeq_epi32(va, vb);
  m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));
  m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4E)));
  m = _mm_or_si128(m, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));
  const int mask =
      _mm_movemask_ps(_mm_castsi128_ps(m)) & ((1 << limit_a) - 1);
  const __m128i comp = _mm_shuffle_epi8(
      va,
      _mm_load_si128(reinterpret_cast<const __m128i*>(kCompact.ctl[mask])));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out->emit), comp);
  const int n = __builtin_popcount(static_cast<unsigned>(mask));
  out->emit_count = n;
  out->matches = n;
  out->consume_a = limit_a;
  out->consume_b = limit_b;
  return true;
}

inline bool SimdIntersectAvailable() {
  static const bool available =
      __builtin_cpu_supports("ssse3") && __builtin_cpu_supports("popcnt");
  return available;
}

#endif  // defined(__x86_64__)

bool EvalBranch(const isa::Instruction& branch, uint32_t rs1, uint32_t rs2) {
  switch (branch.opcode) {
    case isa::Opcode::kBeq:
      return rs1 == rs2;
    case isa::Opcode::kBne:
      return rs1 != rs2;
    case isa::Opcode::kBlt:
      return static_cast<int32_t>(rs1) < static_cast<int32_t>(rs2);
    case isa::Opcode::kBltu:
      return rs1 < rs2;
    case isa::Opcode::kBge:
      return static_cast<int32_t>(rs1) >= static_cast<int32_t>(rs2);
    case isa::Opcode::kBgeu:
      return rs1 >= rs2;
    default:
      return false;
  }
}

}  // namespace

EisExtension::EisExtension() : TieExtension("eis") {
  mode_state_ = AddState("sop_mode", 2, 0);
  partial_state_ = AddState("partial_loading", 1, 0);
  active_state_ = AddState("active", 1, 0);

  // All operations route through DispatchOp so the per-word path and the
  // batch engine can never diverge.
  static constexpr struct {
    uint16_t id;
    const char* name;
  } kOps[] = {
      {op::kInit, "init"},
      {op::kLd0, "ld_0"},
      {op::kLd1, "ld_1"},
      {op::kLdP0, "ld_p_0"},
      {op::kLdP1, "ld_p_1"},
      {op::kSop, "sop"},
      {op::kStS, "st_s"},
      {op::kSt, "st"},
      {op::kStoreSop, "store_sop"},
      {op::kLdLdpShuffle, "ld_ldp_shuffle"},
      {op::kFlush, "flush"},
      {op::kLdMerge, "ld_merge"},
      {op::kSortBeat, "sort_beat"},
      {op::kCopyBeat, "copy_beat"},
  };
  for (const auto& def : kOps) {
    const uint16_t id = def.id;
    DefineOp(id, def.name,
             [this, id](ExtContext& ctx) { return DispatchOp(id, ctx); });
  }
}

template <typename Ctx>
Status EisExtension::DispatchOp(uint16_t ext_id, Ctx& ctx) {
  switch (ext_id) {
    case op::kInit:
      return Init(ctx);
    case op::kLd0:
      return Ld(ctx, 0);
    case op::kLd1:
      return Ld(ctx, 1);
    case op::kLdP0:
      LdP(0);
      return Status::Ok();
    case op::kLdP1:
      LdP(1);
      return Status::Ok();
    case op::kSop:
      return Sop(ctx);
    case op::kStS:
      StS();
      return Status::Ok();
    case op::kSt:
      return St(ctx);
    case op::kStoreSop:
      // Fused ST + SOP: the store path writes the Store states filled in
      // the previous iteration while the comparator network executes.
      DBA_RETURN_IF_ERROR(St(ctx));
      DBA_RETURN_IF_ERROR(Sop(ctx));
      ctx.set_reg(FlagReg(ctx), active_state_->Get() != 0 ? 1u : 0u);
      return Status::Ok();
    case op::kLdLdpShuffle:
      // Fused LD_0 | LD_1 | LD_P_0 | LD_P_1 | ST_S (Section 4).
      DBA_RETURN_IF_ERROR(Ld(ctx, 0));
      DBA_RETURN_IF_ERROR(Ld(ctx, 1));
      LdP(0);
      LdP(1);
      StS();
      return Status::Ok();
    case op::kFlush:
      return Flush(ctx);
    case op::kLdMerge:
      return LdMerge(ctx);
    case op::kSortBeat:
      return SortBeat(ctx);
    case op::kCopyBeat:
      return CopyBeat(ctx);
    default:
      return Status::Internal("unknown EIS operation id " +
                              std::to_string(ext_id));
  }
}

void EisExtension::ResetState() {
  TieExtension::ResetState();
  a_.Reset();
  b_.Reset();
  result_fifo_.Clear();
  store_buf_.fill(0);
  store_count_ = 0;
  c_ptr_ = 0;
  c_count_ = 0;
  counters_ = EisCounters{};
}

bool EisExtension::ContinueFlag() const {
  switch (mode()) {
    case SopMode::kIntersect:
      return !a_.drained() && !b_.drained();
    case SopMode::kUnion:
    case SopMode::kMerge:
      return !a_.drained() || !b_.drained();
    case SopMode::kDifference:
      return !a_.drained();
  }
  return false;
}

template <typename Ctx>
Status EisExtension::Init(Ctx& ctx) {
  // Reset the datapath but keep the activity counters: INIT runs once
  // per merge pair inside the sort kernel, and the counters aggregate a
  // whole run (ResetState clears them between Processor runs).
  const EisCounters saved_counters = counters_;
  ResetState();
  counters_ = saved_counters;
  const uint16_t operand = ctx.operand();
  mode_state_->Set(operand & 0x3);
  partial_state_->Set((operand >> 2) & 0x1);

  a_.ptr = ctx.reg(isa::abi::kPtrA);
  b_.ptr = ctx.reg(isa::abi::kPtrB);
  a_.remaining = ctx.reg(isa::abi::kLenA);
  b_.remaining = ctx.reg(isa::abi::kLenB);
  c_ptr_ = ctx.reg(isa::abi::kPtrC);

  // Alignment matters only for streams that will issue beats; merge
  // pairs at the tail of a pass have an empty run2 at an odd offset.
  if ((a_.remaining > 0 && !IsAligned(a_.ptr, 16)) ||
      (b_.remaining > 0 && !IsAligned(b_.ptr, 16)) ||
      !IsAligned(c_ptr_, 16)) {
    return Status::InvalidArgument(
        "EIS INIT: input/output pointers must be 16-byte aligned");
  }
  active_state_->Set(ContinueFlag() ? 1 : 0);
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::Ld(Ctx& ctx, int side_index) {
  StreamSide& s = side(side_index);
  if (s.remaining == 0) return Status::Ok();
  // The load pipeline issues its 128-bit beat every iteration the stream
  // is live (Figure 10: LD occupies both LSUs every other cycle); when
  // the Load states are still full the beat is a redundant prefetch and
  // its data is dropped, but the port cycle is spent either way.
  DBA_ASSIGN_OR_RETURN(mem::Beat128 beat,
                       ctx.LoadBeat(LoadLsu(side_index), s.ptr));
  ++counters_.load_beats;
  if (s.load_fifo.space() < 4) return Status::Ok();
  const uint32_t take = std::min<uint32_t>(4, s.remaining);
  for (uint32_t i = 0; i < take; ++i) {
    s.load_fifo.Push(beat[i]);
  }
  s.ptr += mem::kBeatBytes;
  s.remaining -= take;
  return Status::Ok();
}

void EisExtension::LdP(int side_index) {
  StreamSide& s = side(side_index);
  const bool partial = partial_loading() || mode() == SopMode::kMerge;
  if (!partial && !s.window.empty()) {
    // Without partial loading the Word states are reloaded only once
    // fully consumed; the window stays ragged in between.
    return;
  }
  while (!s.window.full() && !s.load_fifo.empty()) {
    s.window.Push(s.load_fifo.Pop());
  }
}

template <typename Ctx>
Status EisExtension::Sop(Ctx& ctx) {
  const SopOutcome outcome = ComputeSop(mode(), a_.window, a_.upstream_empty(),
                                        b_.window, b_.upstream_empty());
  a_.window.Consume(outcome.consume_a);
  b_.window.Consume(outcome.consume_b);
  if (result_fifo_.space() < outcome.emit_count) {
    return Status::Internal("EIS result FIFO overflow (store path stalled)");
  }
  for (int i = 0; i < outcome.emit_count; ++i) {
    result_fifo_.Push(outcome.emit[static_cast<size_t>(i)]);
  }
  ++counters_.sop_executions;
  counters_.elements_consumed +=
      static_cast<uint64_t>(outcome.consume_a + outcome.consume_b);
  counters_.elements_emitted += static_cast<uint64_t>(outcome.emit_count);
  counters_.matches += static_cast<uint64_t>(outcome.matches);
  active_state_->Set(ContinueFlag() ? 1 : 0);
  return Status::Ok();
}

void EisExtension::StS() {
  if (store_count_ != 0 || result_fifo_.size() < 4) return;
  for (int i = 0; i < 4; ++i) {
    store_buf_[static_cast<size_t>(i)] = result_fifo_.Pop();
  }
  store_count_ = 4;
}

template <typename Ctx>
Status EisExtension::StorePack(Ctx& ctx,
                               const std::array<uint32_t, 4>& pack) {
  DBA_RETURN_IF_ERROR(ctx.StoreBeat(StoreLsu(), c_ptr_, pack));
  c_ptr_ += mem::kBeatBytes;
  c_count_ += 4;
  ++counters_.store_beats;
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::St(Ctx& ctx) {
  // The store is delayed while fewer than four elements are available
  // (Section 4); a full Store state is written as one aligned beat.
  if (store_count_ == 4) {
    DBA_RETURN_IF_ERROR(StorePack(ctx, store_buf_));
    store_count_ = 0;
  } else if (store_count_ == 0 && result_fifo_.size() >= 4) {
    // Merge-sort path: the core loop issues no ST_S (Figure 12 -- "the
    // shuffle instruction is not applied"), so the Store states load
    // directly from the result FIFO within the store instruction.
    std::array<uint32_t, 4> pack;
    for (auto& value : pack) value = result_fifo_.Pop();
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
  }
  // Burst drain: if the result FIFO has backed up past two packs (heavy
  // union output), issue additional store beats; the port model charges
  // one extra cycle per beat.
  while (result_fifo_.size() >= 8) {
    std::array<uint32_t, 4> pack;
    for (auto& value : pack) value = result_fifo_.Pop();
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
  }
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::Flush(Ctx& ctx) {
  // Drain Store states and the result FIFO. Full packs leave as beats;
  // the final partial pack is written with byte enables (modelled as
  // word stores).
  std::array<uint32_t, 4> pack;
  int pending = 0;
  auto flush_full = [&]() -> Status {
    DBA_RETURN_IF_ERROR(StorePack(ctx, pack));
    pending = 0;
    return Status::Ok();
  };
  for (int i = 0; i < store_count_; ++i) {
    pack[static_cast<size_t>(pending++)] = store_buf_[static_cast<size_t>(i)];
  }
  store_count_ = 0;
  if (pending == 4) DBA_RETURN_IF_ERROR(flush_full());
  while (!result_fifo_.empty()) {
    pack[static_cast<size_t>(pending++)] = result_fifo_.Pop();
    if (pending == 4) DBA_RETURN_IF_ERROR(flush_full());
  }
  for (int i = 0; i < pending; ++i) {
    DBA_RETURN_IF_ERROR(ctx.StoreWord(
        StoreLsu(), c_ptr_ + static_cast<uint64_t>(4 * i),
        pack[static_cast<size_t>(i)]));
    ++c_count_;
  }
  if (pending > 0) {
    c_ptr_ += static_cast<uint64_t>(4 * pending);
    ++counters_.store_beats;
  }
  ctx.set_reg(isa::abi::kLenC, c_count_);
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::LdMerge(Ctx& ctx) {
  // Refill the side with fewer buffered elements first; if its stream
  // is exhausted or its Load states are full, try the other side.
  const int buffered_a = a_.window.count + a_.load_fifo.size();
  const int buffered_b = b_.window.count + b_.load_fifo.size();
  const int first = buffered_b < buffered_a ? 1 : 0;
  const uint64_t beats_before = counters_.load_beats;
  DBA_RETURN_IF_ERROR(Ld(ctx, first));
  if (counters_.load_beats == beats_before) {
    DBA_RETURN_IF_ERROR(Ld(ctx, 1 - first));
  }
  LdP(0);
  LdP(1);
  active_state_->Set(ContinueFlag() ? 1 : 0);
  ctx.set_reg(FlagReg(ctx), active_state_->Get() != 0 ? 1u : 0u);
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::SortBeat(Ctx& ctx) {
  if (a_.remaining > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, a_.ptr));
    const uint32_t take = std::min<uint32_t>(4, a_.remaining);
    // Pad the tail with the maximum value so the network sinks padding
    // lanes to the end of the run.
    for (uint32_t i = take; i < 4; ++i) beat[i] = 0xFFFFFFFFu;
    SortNetwork4(beat);
    DBA_RETURN_IF_ERROR(ctx.StoreBeat(0, c_ptr_, beat));
    a_.ptr += mem::kBeatBytes;
    a_.remaining -= take;
    c_ptr_ += mem::kBeatBytes;
    c_count_ += take;
    ++counters_.load_beats;
    ++counters_.store_beats;
  }
  ctx.set_reg(FlagReg(ctx), a_.remaining > 0 ? 1u : 0u);
  return Status::Ok();
}

template <typename Ctx>
Status EisExtension::CopyBeat(Ctx& ctx) {
  if (a_.remaining > 0) {
    DBA_ASSIGN_OR_RETURN(mem::Beat128 beat, ctx.LoadBeat(0, a_.ptr));
    const uint32_t take = std::min<uint32_t>(4, a_.remaining);
    DBA_RETURN_IF_ERROR(ctx.StoreBeat(0, c_ptr_, beat));
    a_.ptr += mem::kBeatBytes;
    a_.remaining -= take;
    c_ptr_ += mem::kBeatBytes;
    c_count_ += take;
    ++counters_.load_beats;
    ++counters_.store_beats;
  }
  ctx.set_reg(FlagReg(ctx), a_.remaining > 0 ? 1u : 0u);
  return Status::Ok();
}

// --- Batch loop engine (sim::LoopAccelerator) ---

bool EisExtension::MatchesTieLoop(const sim::TieLoop& loop) const {
  if (loop.body.empty()) return false;
  for (const isa::Instruction& instr : loop.body) {
    if (instr.ext_id < op::kInit || instr.ext_id > op::kCopyBeat) {
      return false;
    }
  }
  return true;
}

EisExtension::SteadyOutcome EisExtension::RunSetOpSteady(
    const sim::TieLoop& loop, sim::Cpu& cpu, bool exact, uint64_t max_cycles,
    uint64_t iter_margin, SteadyMirrors& m) {
  int flag_index = 0;
  if (mode() == SopMode::kMerge || !MatchSetOpLoopShape(loop, &flag_index)) {
    return SteadyOutcome::kDeclined;
  }
  const Reg flag_reg = isa::RegFromIndex(flag_index);
  const SopMode sop_mode = mode();
  const bool partial = partial_loading();
  const int num_lsus = cpu.config().num_lsus;
  const int lsu_b = num_lsus >= 2 ? 1 : 0;  // LoadLsu(1) / StoreLsu() folded
  const uint32_t penalty = cpu.config().branch_mispredict_penalty;
  const size_t unroll = loop.body.size() / 2;
#if defined(__x86_64__)
  const bool use_simd = SimdIntersectAvailable();
#endif

  // Raw cursor over one input stream. The window is the element slice
  // [consumed, consumed+win), the Load states the slice behind it; both
  // are contiguous prefixes of the stream, so integer occupancy plus one
  // base pointer reproduce the SmallFifo/Window structures exactly.
  struct Cursor {
    const uint32_t* data = nullptr;  // whole backing region as words
    size_t words = 0;                // region size in words
    uint64_t base = 0;               // region base address
    size_t pos = 0;                  // word index of ptr (next beat)
    size_t consumed = 0;             // word index of the window start
    uint32_t rem = 0;
    int win = 0;
    int fifo = 0;
    uint32_t lat = 1;
    bool has_span = false;
  };

  auto resolve = [&](StreamSide& s, Cursor* c) -> bool {
    c->rem = s.remaining;
    c->win = s.window.count;
    c->fifo = s.load_fifo.size();
    if (c->rem == 0 && c->win == 0 && c->fifo == 0) return true;  // inert
    const uint64_t probe = c->rem > 0 ? s.ptr : s.ptr - mem::kBeatBytes;
    auto memory = cpu.memory_system().Route(probe, mem::kBeatBytes);
    if (!memory.ok()) return false;
    const std::span<const uint8_t> raw = (*memory)->raw();
    c->base = (*memory)->config().base;
    c->data = reinterpret_cast<const uint32_t*>(raw.data());
    c->words = raw.size() / 4;
    c->pos = static_cast<size_t>((s.ptr - c->base) / 4);
    const size_t buffered = static_cast<size_t>(c->win + c->fifo);
    if (c->pos > c->words || c->pos < buffered) return false;
    c->consumed = c->pos - buffered;
    // The cursor model only holds if the buffered elements really are
    // the stream slice just behind ptr (they are, unless a short tail
    // beat already ran); verify and decline otherwise.
    for (int i = 0; i < c->win; ++i) {
      if (c->data[c->consumed + static_cast<size_t>(i)] !=
          s.window.lanes[static_cast<size_t>(i)]) {
        return false;
      }
    }
    for (int i = 0; i < c->fifo; ++i) {
      if (c->data[c->consumed + static_cast<size_t>(c->win + i)] !=
          s.load_fifo.Peek(i)) {
        return false;
      }
    }
    c->lat = (*memory)->config().access_latency;
    c->has_span = true;
    return true;
  };

  Cursor ca, cb;
  if (!resolve(a_, &ca) || !resolve(b_, &cb)) return SteadyOutcome::kDeclined;

  // Result cursor: writes land directly in the backing region; the ring
  // keeps the last <= 36 emitted elements so the result FIFO and Store
  // states can be reconstructed on exit.
  auto result_memory = cpu.memory_system().Route(c_ptr_, mem::kBeatBytes);
  if (!result_memory.ok()) return SteadyOutcome::kDeclined;
  uint32_t* out_data =
      reinterpret_cast<uint32_t*>((*result_memory)->mutable_raw().data());
  const uint64_t out_base = (*result_memory)->config().base;
  const size_t out_words = (*result_memory)->mutable_raw().size() / 4;
  size_t out_pos = static_cast<size_t>((c_ptr_ - out_base) / 4);
  const uint32_t lat_c = (*result_memory)->config().access_latency;
  if (out_pos > out_words) return SteadyOutcome::kDeclined;

  uint32_t ring[64];
  uint64_t written = 0;
  int sbuf = store_count_;
  uint64_t emitted = static_cast<uint64_t>(sbuf);
  for (int i = 0; i < sbuf; ++i) ring[i] = store_buf_[static_cast<size_t>(i)];
  for (int i = 0; i < result_fifo_.size(); ++i) {
    ring[emitted++ & 63] = result_fifo_.Peek(i);
  }
  const uint64_t written0 = written;

  // Local copies of the hot counters: per-word increments stay in
  // registers; written back through the mirrors on every exit path.
  uint64_t cycles = m.cycles;
  uint64_t bundles = m.bundles;
  uint64_t instructions = m.instructions;
  uint64_t taken_branches = m.taken_branches;
  uint64_t mispredicted = m.mispredicted;
  uint64_t branch_penalty = m.branch_penalty;
  uint64_t port_stall = m.port_stall;
  uint64_t beats0 = m.beats0;
  uint64_t beats1 = m.beats1;
  const uint32_t rs2_value = cpu.reg(loop.branch.rs2);

  bool active = active_state_->Get() != 0;
  bool wrote_flag = false;
  uint64_t d_sops = 0, d_consumed = 0, d_emitted = 0, d_matches = 0;
  uint64_t d_load_beats = 0, d_store_beats = 0;
  bool any_word = false;

  // Syncs the cursor state back into the real datapath structures; valid
  // at any word boundary.
  auto sync = [&](uint32_t next_pc) {
    m.cycles = cycles;
    m.bundles = bundles;
    m.instructions = instructions;
    m.taken_branches = taken_branches;
    m.mispredicted = mispredicted;
    m.branch_penalty = branch_penalty;
    m.port_stall = port_stall;
    m.beats0 = beats0;
    m.beats1 = beats1;
    auto sync_side = [](StreamSide& s, const Cursor& c) {
      if (!c.has_span) return;
      s.ptr = c.base + 4 * static_cast<uint64_t>(c.pos);
      s.remaining = c.rem;
      s.window = Window{};
      for (int i = 0; i < c.win; ++i) {
        s.window.Push(c.data[c.consumed + static_cast<size_t>(i)]);
      }
      s.load_fifo.Clear();
      for (int i = 0; i < c.fifo; ++i) {
        s.load_fifo.Push(
            c.data[c.consumed + static_cast<size_t>(c.win + i)]);
      }
    };
    sync_side(a_, ca);
    sync_side(b_, cb);
    const int rfifo = static_cast<int>(emitted - written) - sbuf;
    result_fifo_.Clear();
    for (int i = 0; i < rfifo; ++i) {
      result_fifo_.Push(
          ring[(written + static_cast<uint64_t>(sbuf + i)) & 63]);
    }
    store_count_ = sbuf;
    for (int i = 0; i < sbuf; ++i) {
      store_buf_[static_cast<size_t>(i)] =
          ring[(written + static_cast<uint64_t>(i)) & 63];
    }
    c_ptr_ = out_base + 4 * static_cast<uint64_t>(out_pos);
    c_count_ += static_cast<uint32_t>(written - written0);
    counters_.sop_executions += d_sops;
    counters_.elements_consumed += d_consumed;
    counters_.elements_emitted += d_emitted;
    counters_.matches += d_matches;
    counters_.load_beats += d_load_beats;
    counters_.store_beats += d_store_beats;
    active_state_->Set(active ? 1 : 0);
    if (wrote_flag) cpu.set_reg(flag_reg, active ? 1u : 0u);
    cpu.set_pc(next_pc);
  };

  const uint32_t branch_pc =
      loop.head + static_cast<uint32_t>(loop.body.size());

  // Calibration snapshot for the turbo bulk extrapolation (the d_*
  // deltas all start at zero here, so they need no snapshot).
  const uint64_t snap_cycles = cycles;
  const uint64_t snap_bundles = bundles;
  const uint64_t snap_instructions = instructions;
  const uint64_t snap_taken = taken_branches;
  const uint64_t snap_port = port_stall;
  const uint64_t snap_beats0 = beats0;
  const uint64_t snap_beats1 = beats1;
  constexpr size_t kTail = 64;  // elements left to the exact tail
  uint64_t iters = 0;
  bool bulk_tried = false;

  // The whole steady loop is instantiated per SopMode: the SOP kernel,
  // the emission rules, and the continuation flag all constant-fold,
  // which matters at one dispatch per word.
  auto steady = [&]<SopMode kMode>() -> SteadyOutcome {
    // Exact iterations before the turbo bulk segment. Intersection's
    // per-iteration cost is flat (at most one emitted pack per window
    // pair), so one iteration calibrates it; the emission-heavy modes
    // flush up to two packs per iteration with data-dependent store
    // stalls, and need a longer prefix for a representative average.
    constexpr uint64_t kCalIters = kMode == SopMode::kIntersect ? 1 : 32;
    for (;;) {
      // Iteration-head guards: hand whole-iteration margins back to the
      // per-word machinery (exact deadline reporting, result-region
      // bounds errors, short input tails with take < 4).
      if (cycles + iter_margin >= max_cycles ||
          out_pos + 4 * unroll + 48 > out_words ||
          (ca.has_span && ca.rem > 0 && ca.pos + 4 > ca.words) ||
          (cb.has_span && cb.rem > 0 && cb.pos + 4 > cb.words)) {
        if (!any_word) return SteadyOutcome::kDeclined;
        sync(loop.head);
        return SteadyOutcome::kHandedBack;
      }
      // --- Turbo bulk segment ---
      // After the calibration prefix, run the steady region as a raw
      // two-pointer directly over the input spans. The emitted element
      // stream is exactly what the datapath would produce (the windowed
      // SOP is a blocked merge; blocking does not change its output);
      // cycles, beats, and word counts for the segment are extrapolated
      // from the per-element rates of the calibration prefix, which is
      // the documented turbo-mode deviation. The exact stepper resumes
      // for the final kTail elements of either side.
      if (!exact && !bulk_tried && iters >= kCalIters && d_consumed > 0 &&
          ca.has_span && cb.has_span && ca.rem > 0 && cb.rem > 0) {
        bulk_tried = true;
        const size_t total_a = ca.pos + static_cast<size_t>(ca.rem);
        const size_t total_b = cb.pos + static_cast<size_t>(cb.rem);
        const uint64_t cal_cycles = cycles - snap_cycles;
        const uint64_t cal_consumed = d_consumed;
        const double cyc_per_el =
            static_cast<double>(cal_cycles) / static_cast<double>(cal_consumed);
        const uint64_t cycle_room =
            max_cycles > cycles + 2 * iter_margin
                ? max_cycles - cycles - 2 * iter_margin
                : 0;
        const uint64_t budget_el =
            static_cast<uint64_t>(static_cast<double>(cycle_room) / cyc_per_el);
        const size_t olimit = out_words > 2 * kTail ? out_words - 2 * kTail : 0;
        if (total_a > ca.consumed + 2 * kTail &&
            total_b > cb.consumed + 2 * kTail && budget_el > 0 &&
            out_pos + 4 <= olimit) {
          const size_t la = total_a - kTail;
          const size_t lb = total_b - kTail;
          const uint32_t* A = ca.data;
          const uint32_t* B = cb.data;
          size_t ia = ca.consumed;
          size_t ib = cb.consumed;
          const size_t ia0 = ia;
          const size_t ib0 = ib;
          const uint64_t emitted0 = emitted;
          const uint64_t written_b0 = written;
          uint64_t bulk_matches = 0;
#if defined(__x86_64__)
          // SIMD phase (intersection only): matched elements stream
          // straight into the result span at the position the pending
          // ring elements will eventually occupy; afterwards the
          // pending prefix is materialized from the ring and the
          // pack/ring bookkeeping is re-established so the scalar loop
          // and the exact tail continue on consistent state.
          if constexpr (kMode == SopMode::kIntersect) {
            if (SimdIntersectAvailable() && ia >= 1 && ib >= 1) {
              const size_t pending = static_cast<size_t>(emitted - written);
              size_t eo = out_pos + pending;
              const size_t eo_before = eo;
              SimdIntersectRun(A, la, B, lb, &ia, &ib, out_data, &eo,
                               olimit > 4 ? olimit - 4 : 0, budget_el,
                               &bulk_matches);
              if (eo != eo_before) {
                for (size_t p = 0; p < pending; ++p) {
                  out_data[out_pos + p] = ring[(written + p) & 63];
                }
                emitted += eo - eo_before;
                const uint64_t full = (emitted - written) / 4;
                written += 4 * full;
                out_pos += 4 * full;
                for (uint64_t r = written; r < emitted; ++r) {
                  ring[r & 63] = out_data[out_pos + (r - written)];
                }
              }
            }
          }
#endif  // defined(__x86_64__)
          // Branchless merge: the ring slot is always written, the
          // cursor arithmetic is flag-based; the data-dependent path
          // reduces to the every-fourth-emission pack flush.
          while (ia < la && ib < lb && out_pos + 4 <= olimit &&
                 (ia - ia0) + (ib - ib0) < budget_el) {
            const uint32_t va = A[ia];
            const uint32_t vb = B[ib];
            const bool eq = va == vb;
            const bool ale = va <= vb;
            const bool ble = vb <= va;
            if constexpr (kMode == SopMode::kIntersect) {
              ring[emitted & 63] = va;
              emitted += eq ? 1 : 0;
            } else if constexpr (kMode == SopMode::kUnion) {
              ring[emitted & 63] = ale ? va : vb;
              ++emitted;
            } else {
              ring[emitted & 63] = va;
              emitted += ale && !eq ? 1 : 0;
            }
            bulk_matches += eq ? 1 : 0;
            ia += ale ? 1 : 0;
            ib += ble ? 1 : 0;
            if (emitted - written >= 4) {
              std::memcpy(out_data + out_pos, ring + (written & 63), 16);
              out_pos += 4;
              written += 4;
            }
          }
          const uint64_t bulk_consumed = (ia - ia0) + (ib - ib0);
          if (bulk_consumed > 0) {
            // Drain pending packs so the post-bulk store state is the
            // canonical sbuf=0 / rfifo<4 steady shape (room is
            // guaranteed by the olimit slack).
            while (emitted - written >= 4) {
              std::memcpy(out_data + out_pos, ring + (written & 63), 16);
              out_pos += 4;
              written += 4;
            }
            sbuf = 0;
            d_consumed += bulk_consumed;
            d_matches += bulk_matches;
            d_emitted += emitted - emitted0;
            d_store_beats += (written - written_b0) / 4;
            const double f = static_cast<double>(bulk_consumed) /
                             static_cast<double>(cal_consumed);
            const auto scaled = [f](uint64_t cal) -> uint64_t {
              return static_cast<uint64_t>(
                  std::llround(static_cast<double>(cal) * f));
            };
            cycles += scaled(cal_cycles);
            bundles += scaled(bundles - snap_bundles);
            instructions += scaled(instructions - snap_instructions);
            taken_branches += scaled(taken_branches - snap_taken);
            port_stall += scaled(port_stall - snap_port);
            beats0 += scaled(beats0 - snap_beats0);
            beats1 += scaled(beats1 - snap_beats1);
            d_load_beats += scaled(d_load_beats);
            d_sops += scaled(d_sops);
            // Refit the cursors to a canonical steady load state just
            // behind the new consumption point: window full, one to two
            // beats buffered, next beat aligned.
            const auto refit = [](Cursor& c, size_t inew) {
              const size_t total = c.pos + static_cast<size_t>(c.rem);
              const size_t loaded = ((inew + 3) & ~size_t{3}) + 8;
              c.consumed = inew;
              c.pos = loaded;
              c.rem = static_cast<uint32_t>(total - loaded);
              c.win = 4;
              c.fifo = static_cast<int>(loaded - inew) - 4;
            };
            refit(ca, ia);
            refit(cb, ib);
            continue;  // re-check the head guards against the new state
          }
        }
      }
      for (size_t k = 0; k < unroll; ++k) {
        // --- STORE_SOP (ST; SOP; flag <- active) ---
        // The SOP outcome and the ST pack plan are computed first so a
        // result-FIFO overflow can hand back *before* any effect of the
        // word (the per-word engine then reproduces the exact error).
        const uint32_t* pa = ca.data + ca.consumed;
        const uint32_t* pb = cb.data + cb.consumed;
        const bool ue_a = ca.rem == 0 && ca.fifo == 0;
        const bool ue_b = cb.rem == 0 && cb.fifo == 0;
        SteadySopOutcome outcome;
        bool simd_done = false;
#if defined(__x86_64__)
        if constexpr (kMode == SopMode::kIntersect) {
          // Full windows only: the 4-lane compare matches against every
          // loaded lane, and with a partial window the lanes beyond
          // `win` are not part of the stream (tail beats may carry
          // stale local-store words from an earlier kernel). The scalar
          // SteadySop path has exact partial-window semantics.
          if (use_simd && ca.win == 4 && cb.win == 4 &&
              ca.consumed + 4 <= ca.words && cb.consumed + 4 <= cb.words) {
            simd_done = SimdSopIntersect(pa, ca.win, pb, cb.win, &outcome);
          }
        }
#endif
        if (!simd_done) {
          outcome = SteadySop<kMode>(pa, ca.win, ue_a, pb, cb.win, ue_b);
        }
        int rfifo = static_cast<int>(emitted - written) - sbuf;
        {
          int s = sbuf;
          int r = rfifo;
          if (s == 4) {
            s = 0;
          } else if (s == 0 && r >= 4) {
            r -= 4;
          }
          while (r >= 8) r -= 4;
          if (r + outcome.emit_count > result_fifo_.capacity()) {
            // Real behavior is a result-FIFO-overflow error inside this
            // word; hand back so the per-word engine reproduces it. With
            // zero progress, decline instead (state is untouched) so the
            // caller falls through to the generic engine -- handing back
            // at the head would re-enter this stepper forever.
            if (!any_word) return SteadyOutcome::kDeclined;
            sync(loop.head + static_cast<uint32_t>(2 * k));
            return SteadyOutcome::kHandedBack;
          }
        }
        ++bundles;
        ++cycles;
        ++instructions;
        any_word = true;
        // ST effects (beat stores straight into the result span).
        uint32_t packs = 0;
        auto pack_out = [&]() {
          std::memcpy(out_data + out_pos, ring + (written & 63), 16);
          out_pos += 4;
          written += 4;
          ++packs;
          ++d_store_beats;
        };
        if (sbuf == 4) {
          pack_out();
          sbuf = 0;
        } else if (sbuf == 0 && rfifo >= 4) {
          pack_out();
        }
        while (static_cast<int>(emitted - written) - sbuf >= 8) pack_out();
        // SOP effects.
        for (int i = 0; i < outcome.emit_count; ++i) {
          ring[emitted++ & 63] = outcome.emit[static_cast<size_t>(i)];
        }
        ca.consumed += static_cast<size_t>(outcome.consume_a);
        ca.win -= outcome.consume_a;
        cb.consumed += static_cast<size_t>(outcome.consume_b);
        cb.win -= outcome.consume_b;
        ++d_sops;
        d_consumed +=
            static_cast<uint64_t>(outcome.consume_a + outcome.consume_b);
        d_emitted += static_cast<uint64_t>(outcome.emit_count);
        d_matches += static_cast<uint64_t>(outcome.matches);
        const bool drained_a = ca.rem == 0 && ca.fifo == 0 && ca.win == 0;
        const bool drained_b = cb.rem == 0 && cb.fifo == 0 && cb.win == 0;
        if constexpr (kMode == SopMode::kIntersect) {
          active = !drained_a && !drained_b;
        } else if constexpr (kMode == SopMode::kUnion) {
          active = !drained_a || !drained_b;
        } else {
          active = !drained_a;
        }
        wrote_flag = true;
        {
          const uint32_t store_cycles = lat_c * packs;
          const uint32_t b0 = lsu_b == 0 ? store_cycles : 0;
          const uint32_t b1 = lsu_b == 1 ? store_cycles : 0;
          const uint32_t port = std::max(b0, b1);
          if (port > 1) {
            port_stall += port - 1;
            cycles += port - 1;
          }
          beats0 += b0;
          beats1 += b1;
        }
        // --- LD_LDP_SHUFFLE (LD both sides; LD_P both; ST_S) ---
        // A live load whose beat would cross the region end errors on
        // the real path; hand back pre-word so the per-word engine
        // raises it.
        if ((ca.rem > 0 && ca.pos + 4 > ca.words) ||
            (cb.rem > 0 && cb.pos + 4 > cb.words)) {
          sync(loop.head + static_cast<uint32_t>(2 * k + 1));
          return SteadyOutcome::kHandedBack;
        }
        ++bundles;
        ++cycles;
        ++instructions;
        uint32_t b0 = 0;
        uint32_t b1 = 0;
        auto load_side = [&](Cursor& c, int lsu) {
          if (c.rem == 0) return;
          (lsu == 0 ? b0 : b1) += c.lat;
          ++d_load_beats;
          if (c.fifo <= 4) {
            const uint32_t take = std::min<uint32_t>(4, c.rem);
            c.fifo += static_cast<int>(take);
            c.pos += 4;
            c.rem -= take;
          }
        };
        load_side(ca, 0);
        load_side(cb, lsu_b);
        auto refill = [&](Cursor& c) {
          if (!partial && c.win != 0) return;
          const int mv = std::min(4 - c.win, c.fifo);
          c.win += mv;
          c.fifo -= mv;
        };
        refill(ca);
        refill(cb);
        if (sbuf == 0 && static_cast<int>(emitted - written) >= 4) {
          sbuf = 4;
        }
        const uint32_t port = std::max(b0, b1);
        if (port > 1) {
          port_stall += port - 1;
          cycles += port - 1;
        }
        beats0 += b0;
        beats1 += b1;
      }
      // --- closing branch ---
      ++bundles;
      ++cycles;
      ++instructions;
      const bool taken = EvalBranch(loop.branch, active ? 1u : 0u, rs2_value);
      if (taken) {
        ++taken_branches;
        ++iters;
        continue;
      }
      ++mispredicted;
      branch_penalty += penalty;
      cycles += penalty;
      sync(branch_pc + 1);
      return SteadyOutcome::kCompleted;
    }
  };
  switch (sop_mode) {
    case SopMode::kIntersect:
      return steady.template operator()<SopMode::kIntersect>();
    case SopMode::kUnion:
      return steady.template operator()<SopMode::kUnion>();
    default:
      return steady.template operator()<SopMode::kDifference>();
  }
}

Result<bool> EisExtension::RunTieLoop(const sim::TieLoop& loop, sim::Cpu& cpu,
                                      bool exact, uint64_t max_cycles,
                                      sim::ExecStats* stats) {
  // The per-word path reports FailedPrecondition for 128-bit beats on a
  // narrow bus; decline so it gets the chance to.
  if (cpu.config().data_bus_bits < 128) return false;
  const uint32_t penalty = cpu.config().branch_mispredict_penalty;
  const size_t body_len = loop.body.size();
  // Conservative worst-case cycles of one full iteration, for the
  // turbo-mode watchdog margin: issue plus serialized beats per word
  // (the burst drain can issue 8 beats of latency <= 4 on each port)
  // plus the branch and its penalty.
  const uint64_t iter_margin = static_cast<uint64_t>(body_len) * 65 + 1 +
                               penalty;

  BatchCtx ctx(&cpu);
  // Local mirrors of the hot counters; flushed on every exit path so
  // the accumulated ExecStats are exactly what the per-word path would
  // have produced.
  uint64_t cycles = stats->cycles;
  uint64_t bundles = stats->bundles;
  uint64_t instructions = stats->instructions;
  uint64_t taken_branches = stats->taken_branches;
  uint64_t mispredicted = stats->mispredicted_branches;
  uint64_t branch_penalty = stats->branch_penalty_cycles;
  uint64_t port_stall = stats->port_stall_cycles;
  uint64_t beats0 = stats->lsu_beats[0];
  uint64_t beats1 = stats->lsu_beats[1];
  auto flush = [&]() {
    stats->cycles = cycles;
    stats->bundles = bundles;
    stats->instructions = instructions;
    stats->taken_branches = taken_branches;
    stats->mispredicted_branches = mispredicted;
    stats->branch_penalty_cycles = branch_penalty;
    stats->port_stall_cycles = port_stall;
    stats->lsu_beats[0] = beats0;
    stats->lsu_beats[1] = beats1;
  };
  auto deadline = [&](uint32_t pc) {
    cpu.set_pc(pc);
    flush();
    return Status::DeadlineExceeded(
        "watchdog: exceeded " + std::to_string(max_cycles) + " cycles at pc " +
        std::to_string(pc));
  };

  // Steady-state set-operation loops take the cursor stepper; anything
  // it cannot model exactly falls through to the generic engine below.
  {
    SteadyMirrors mirrors{cycles,     bundles,        instructions,
                          taken_branches, mispredicted, branch_penalty,
                          port_stall, beats0,         beats1};
    const SteadyOutcome outcome =
        RunSetOpSteady(loop, cpu, exact, max_cycles, iter_margin, mirrors);
    if (outcome != SteadyOutcome::kDeclined) {
      flush();
      return true;
    }
  }

  bool ran = false;
  for (;;) {
    if (!exact && cycles + iter_margin >= max_cycles) break;
    for (size_t i = 0; i < body_len; ++i) {
      if (exact && cycles >= max_cycles) {
        return deadline(loop.head + static_cast<uint32_t>(i));
      }
      const isa::Instruction& instr = loop.body[i];
      ++bundles;
      ++cycles;  // issue cycle
      ++instructions;
      ctx.operand_ = instr.operand;
      ctx.beats_[0] = 0;
      ctx.beats_[1] = 0;
      Status status = DispatchOp(instr.ext_id, ctx);
      if (!status.ok()) {
        cpu.set_pc(loop.head + static_cast<uint32_t>(i));
        flush();
        return status;
      }
      const uint32_t port_cycles = std::max(ctx.beats_[0], ctx.beats_[1]);
      if (port_cycles > 1) {
        port_stall += port_cycles - 1;
        cycles += port_cycles - 1;
      }
      beats0 += ctx.beats_[0];
      beats1 += ctx.beats_[1];
    }
    const uint32_t branch_pc = loop.head + static_cast<uint32_t>(body_len);
    if (exact && cycles >= max_cycles) return deadline(branch_pc);
    ++bundles;
    ++cycles;
    ++instructions;
    // The branch is backward (imm < 0), so the static BTFN predictor
    // predicts taken: the loop-continue case costs the issue cycle only
    // and the final fall-through pays the mispredict penalty.
    const bool taken =
        EvalBranch(loop.branch, cpu.reg(loop.branch.rs1),
                   cpu.reg(loop.branch.rs2));
    ran = true;
    if (taken) {
      ++taken_branches;
      continue;
    }
    ++mispredicted;
    branch_penalty += penalty;
    cycles += penalty;
    cpu.set_pc(branch_pc + 1);
    flush();
    return true;
  }
  // Watchdog margin too tight for another batched iteration: hand back
  // to the per-word loop, which checks the deadline word by word.
  cpu.set_pc(loop.head);
  flush();
  return ran;
}

}  // namespace dba::eis
