#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dba::obs {

namespace {

const JsonValue& SharedNull() {
  static const JsonValue null;
  return null;
}

void AppendEscaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";  // JSON has no Inf/NaN; degrade explicitly
    return;
  }
  // Integral values (cycle counts, element counts) print without a
  // fractional part so they re-parse exactly.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    DBA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      DBA_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("null")) return JsonValue();
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      DBA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      DBA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      DBA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      array.Push(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape digit");
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs
          // are not produced by our writers).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [existing_key, existing_value] : members_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [existing_key, value] : members_) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : SharedNull();
}

JsonValue& JsonValue::Push(JsonValue value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

size_t JsonValue::size() const {
  return kind_ == Kind::kObject ? members_.size() : elements_.size();
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      break;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      AppendNumber(out, number_);
      break;
    case Kind::kString:
      AppendEscaped(out, string_);
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        AppendEscaped(out, members_[i].first);
        *out += indent > 0 ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  const std::string text = value.Dump(2) + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != text.size() || !close_ok) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::Ok();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return JsonValue::Parse(text);
}

}  // namespace dba::obs
