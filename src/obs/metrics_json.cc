#include "obs/metrics_json.h"

#include <cmath>
#include <string>

namespace dba::obs {

namespace {

JsonValue HistogramToJson(const HistogramStats& stats) {
  JsonValue buckets = JsonValue::Array();
  for (const HistogramBucket& bucket : stats.buckets) {
    buckets.Push(JsonValue::Array()
                     .Push(Histogram::BucketUpperBound(bucket.index))
                     .Push(bucket.count));
  }
  return JsonValue::Object()
      .Set("count", stats.count)
      .Set("sum", stats.sum)
      .Set("p50", stats.Quantile(0.50))
      .Set("p90", stats.Quantile(0.90))
      .Set("p99", stats.Quantile(0.99))
      .Set("p999", stats.Quantile(0.999))
      .Set("buckets", std::move(buckets));
}

}  // namespace

JsonValue MetricsSnapshotToJson(const MetricsSnapshot& snapshot) {
  JsonValue counters = JsonValue::Object();
  for (const auto& [identity, value] : snapshot.counters) {
    counters.Set(identity, value);
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [identity, value] : snapshot.gauges) {
    gauges.Set(identity, value);
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [identity, stats] : snapshot.histograms) {
    histograms.Set(identity, HistogramToJson(stats));
  }
  return JsonValue::Object()
      .Set("schema", kMetricsSchema)
      .Set("counters", std::move(counters))
      .Set("gauges", std::move(gauges))
      .Set("histograms", std::move(histograms));
}

JsonValue EventsToJson(const std::vector<Event>& events) {
  JsonValue out = JsonValue::Array();
  for (const Event& event : events) {
    JsonValue fields = JsonValue::Object();
    for (const auto& [key, value] : event.fields) {
      fields.Set(key, value);
    }
    out.Push(JsonValue::Object()
                 .Set("seq", event.seq)
                 .Set("level", EventLevelName(event.level))
                 .Set("cycle", event.cycle)
                 .Set("scope", event.scope)
                 .Set("message", event.message)
                 .Set("fields", std::move(fields)));
  }
  return out;
}

namespace {

Status ValidateNumberMap(const JsonValue& root, std::string_view key,
                         bool require_non_negative) {
  const JsonValue& map = root.at(key);
  if (!map.is_object()) {
    return Status::InvalidArgument("metrics document needs a \"" +
                                   std::string(key) + "\" object");
  }
  for (const auto& [identity, value] : map.members()) {
    const std::string where = std::string(key) + "." + identity;
    if (!value.is_number() || !std::isfinite(value.as_double())) {
      return Status::InvalidArgument(where + ": must be a finite number");
    }
    if (require_non_negative && value.as_double() < 0) {
      return Status::InvalidArgument(where + ": must be non-negative");
    }
  }
  return Status::Ok();
}

Status ValidateHistogramJson(const JsonValue& histogram,
                             const std::string& where) {
  if (!histogram.is_object()) {
    return Status::InvalidArgument(where + ": must be an object");
  }
  for (const char* field : {"count", "sum", "p50", "p90", "p99", "p999"}) {
    const JsonValue& value = histogram.at(field);
    if (!value.is_number() || !std::isfinite(value.as_double()) ||
        value.as_double() < 0) {
      return Status::InvalidArgument(where + "." + field +
                                     ": must be a non-negative number");
    }
  }
  const JsonValue& buckets = histogram.at("buckets");
  if (!buckets.is_array()) {
    return Status::InvalidArgument(where + ".buckets: must be an array");
  }
  double previous_le = -1.0;
  double total = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const JsonValue& bucket = buckets.at(i);
    const std::string bucket_where =
        where + ".buckets[" + std::to_string(i) + "]";
    if (!bucket.is_array() || bucket.size() != 2 ||
        !bucket.at(static_cast<size_t>(0)).is_number() ||
        !bucket.at(static_cast<size_t>(1)).is_number()) {
      return Status::InvalidArgument(bucket_where +
                                     ": must be a [le, count] pair");
    }
    const double le = bucket.at(static_cast<size_t>(0)).as_double();
    const double bucket_count = bucket.at(static_cast<size_t>(1)).as_double();
    if (le <= previous_le) {
      return Status::InvalidArgument(bucket_where +
                                     ": bucket bounds must be ascending");
    }
    if (bucket_count <= 0) {
      return Status::InvalidArgument(bucket_where +
                                     ": bucket counts must be positive");
    }
    previous_le = le;
    total += bucket_count;
  }
  if (total != histogram.at("count").as_double()) {
    return Status::InvalidArgument(where +
                                   ": bucket counts must sum to count");
  }
  return Status::Ok();
}

}  // namespace

Status ValidateMetricsJson(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("metrics document must be a JSON object");
  }
  const JsonValue& schema = root.at("schema");
  if (!schema.is_string() || schema.as_string() != kMetricsSchema) {
    return Status::InvalidArgument("metrics document schema must be \"" +
                                   std::string(kMetricsSchema) + "\"");
  }
  DBA_RETURN_IF_ERROR(ValidateNumberMap(root, "counters", true));
  DBA_RETURN_IF_ERROR(ValidateNumberMap(root, "gauges", false));
  const JsonValue& histograms = root.at("histograms");
  if (!histograms.is_object()) {
    return Status::InvalidArgument(
        "metrics document needs a \"histograms\" object");
  }
  for (const auto& [identity, histogram] : histograms.members()) {
    DBA_RETURN_IF_ERROR(
        ValidateHistogramJson(histogram, "histograms." + identity));
  }
  return Status::Ok();
}

Status WriteMetricsSnapshotFile(const std::string& path,
                                const MetricsRegistry& registry) {
  const JsonValue doc = MetricsSnapshotToJson(registry.Snapshot());
  DBA_RETURN_IF_ERROR(ValidateMetricsJson(doc));
  return WriteJsonFile(path, doc);
}

}  // namespace dba::obs
