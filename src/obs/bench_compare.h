#ifndef DBA_OBS_BENCH_COMPARE_H_
#define DBA_OBS_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"

namespace dba::obs {

/// Options for comparing two dba.bench.v1 documents (the CI perf gate:
/// `dba_cli compare-bench RUN BASELINE --tolerance=F`).
struct BenchCompareOptions {
  /// Allowed fractional drop of a higher-is-better metric before the
  /// row counts as a regression: run >= baseline * (1 - tolerance).
  double tolerance = 0.15;
  /// Higher-is-better metrics checked on every row where the baseline
  /// carries them. Rows missing a metric in the run that the baseline
  /// has are tolerated by default (recorded, not failed) so baseline
  /// refreshes with extra columns do not break older runs; `strict`
  /// turns them into regressions (a silently dropped column must not
  /// pass a gated CI check).
  std::vector<std::string> metrics = {"throughput_meps", "sim_speedup",
                                      "service_speedup", "availability"};
  /// When true, a run row missing a metric the baseline carries is a
  /// regression instead of a tolerated absence.
  bool strict = false;
};

/// One (row, metric) comparison result.
struct BenchMetricDelta {
  std::string row_key;  // "config=... op=... cores=..." identity
  std::string metric;
  double run_value = 0;
  double baseline_value = 0;
  double ratio = 0;  // run / baseline
  bool regressed = false;
};

/// Full comparison of a run document against a baseline document.
struct BenchComparison {
  std::vector<BenchMetricDelta> deltas;
  /// Baseline rows with no identity match in the run document.
  std::vector<std::string> missing_rows;
  /// "row_key metric" pairs the baseline tracks but the run omitted,
  /// tolerated because BenchCompareOptions::strict was false. Absent
  /// is not zero: these never count as regressions in tolerant mode.
  std::vector<std::string> tolerated;
  int regressions = 0;

  bool passed() const { return regressions == 0 && missing_rows.empty(); }
};

/// Compares `run` against `baseline` (both parsed dba.bench.v1
/// documents). Rows are matched by identity -- the bench name plus every
/// string-valued row field and the integer "cores" column -- so a
/// baseline refresh that adds rows never silently matches the wrong
/// configuration. Returns InvalidArgument when either document fails
/// schema validation or the bench names differ.
Result<BenchComparison> CompareBenchDocuments(
    const JsonValue& run, const JsonValue& baseline,
    const BenchCompareOptions& options = {});

}  // namespace dba::obs

#endif  // DBA_OBS_BENCH_COMPARE_H_
