#ifndef DBA_OBS_TRACE_WRITER_H_
#define DBA_OBS_TRACE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "sim/trace_sink.h"

namespace dba::obs {

/// Cycle-trace sink that renders Chrome trace-event JSON ("JSON object
/// format"), loadable in ui.perfetto.dev and chrome://tracing. Region
/// begin/end pairs become duration slices ("ph":"B"/"E") on one track;
/// counter samples become counter tracks ("ph":"C"). One simulated
/// cycle maps to one microsecond of trace time, so the viewer's time
/// ruler reads directly in cycles.
class ChromeTraceWriter : public sim::CycleTraceSink {
 public:
  /// `process_name` labels the trace's process row (e.g. the processor
  /// configuration).
  explicit ChromeTraceWriter(std::string process_name = "dba-sim");

  // sim::CycleTraceSink
  void BeginRegion(uint64_t cycle, std::string_view name) override;
  void EndRegion(uint64_t cycle) override;
  void Counter(uint64_t cycle, std::string_view name, double value) override;

  size_t event_count() const { return events_.size(); }

  /// The complete document: {"traceEvents": [...], ...}. Regions still
  /// open (e.g. after an aborted run) are closed at the last seen
  /// timestamp so the output is always well-formed.
  JsonValue ToJson() const;

  Status WriteTo(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'B', 'E', 'C'
    uint64_t cycle;
    std::string name;
    double value;  // counters only
  };

  std::string process_name_;
  std::vector<Event> events_;
  std::vector<std::string> open_regions_;
  uint64_t last_cycle_ = 0;
};

}  // namespace dba::obs

#endif  // DBA_OBS_TRACE_WRITER_H_
