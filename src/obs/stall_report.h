#ifndef DBA_OBS_STALL_REPORT_H_
#define DBA_OBS_STALL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.h"
#include "sim/stats.h"

namespace dba::obs {

/// One CPI decomposition: every cycle of a run is exactly one of these
/// six kinds (issue is the single issue cycle of each program word; the
/// rest are the stall categories the simulator models). The components
/// therefore sum to the cycle count of the region they describe.
struct StallComponents {
  uint64_t issue_cycles = 0;
  uint64_t branch_penalty_cycles = 0;
  uint64_t load_stall_cycles = 0;
  uint64_t store_stall_cycles = 0;
  uint64_t port_stall_cycles = 0;
  uint64_t ext_extra_cycles = 0;

  uint64_t total_cycles() const {
    return issue_cycles + branch_penalty_cycles + load_stall_cycles +
           store_stall_cycles + port_stall_cycles + ext_extra_cycles;
  }
};

/// Stall attribution for one enclosing program label.
struct LabelStallRow {
  std::string label;  // "(entry)" for code before the first label
  StallComponents components;
  uint64_t lsu_beats[2] = {0, 0};
};

/// The stall-attribution report: CPI decomposed into issue and stall
/// components, per enclosing program label, plus LSU beat utilization
/// per port -- the quantity that explains the 1-LSU vs 2-LSU and
/// partial-loading deltas of the paper's Table 2.
struct StallReport {
  std::string config_name;
  int num_lsus = 1;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double cycles_per_instruction = 0;

  StallComponents totals;
  uint64_t lsu_beats[2] = {0, 0};
  /// Beats issued on a port divided by total cycles: the fraction of
  /// cycles the port transfers a 128-bit beat.
  double lsu_utilization[2] = {0, 0};

  /// Per-label rows, descending by total cycles. Filled only when the
  /// run was profiled (RunOptions::profile); rows sum to `totals`.
  std::vector<LabelStallRow> labels;

  std::string ToString() const;
};

/// Builds the stall-attribution report of one run. `stats` must come
/// from the given `program`; per-label rows need a profiled run.
StallReport BuildStallReport(const isa::Program& program,
                             const sim::ExecStats& stats,
                             std::string config_name, int num_lsus);

}  // namespace dba::obs

#endif  // DBA_OBS_STALL_REPORT_H_
