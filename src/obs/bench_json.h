#ifndef DBA_OBS_BENCH_JSON_H_
#define DBA_OBS_BENCH_JSON_H_

#include <string>

#include "common/status.h"
#include "core/processor.h"
#include "obs/json.h"
#include "system/board.h"

namespace dba::obs {

/// The machine-readable bench output schema ("dba.bench.v1"): one
/// document per bench binary, one result row per measured
/// configuration/operation point. This is the format of the BENCH_*.json
/// perf-trajectory files; docs/OBSERVABILITY.md is the reference.
///
///   {
///     "schema": "dba.bench.v1",
///     "bench": "table2_throughput",
///     "results": [
///       {"config": "DBA_2LSU_EIS", "op": "intersect",
///        "cycles": 9049, "throughput_meps": 1200.1, ...},
///       ...
///     ]
///   }
inline constexpr std::string_view kBenchSchema = "dba.bench.v1";

/// Accumulates result rows for one bench binary and renders the
/// versioned document.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  const std::string& bench_name() const { return bench_name_; }
  size_t row_count() const { return results_.size(); }

  /// Appends a row with "config" preset and returns it for fluent
  /// completion: AddRow("DBA_2LSU_EIS").Set("op", "intersect")...
  JsonValue& AddRow(std::string config);

  /// Embeds a dba.metrics.v1 snapshot (see obs/metrics_json.h) as the
  /// optional top-level "metrics" member. Validators tolerate the
  /// member being absent; when present it must itself validate.
  void AttachMetrics(JsonValue metrics_snapshot);

  JsonValue ToJson() const;
  Status WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<JsonValue> results_;
  JsonValue metrics_;  // kNull when no snapshot is attached.
};

/// The standard per-run fields (cycles, CPI, throughput, energy, cycle
/// breakdown, LSU beats) every throughput-style row shares. Merge into
/// a row with MergeRunMetrics(row, metrics).
void MergeRunMetrics(JsonValue& row, const RunMetrics& metrics);

/// The standard per-board-run fields (simulated makespan/throughput/
/// energy plus host-side wall clock and thread count) a board-scaling
/// row shares. Merge into a row with MergeParallelRun(row, run).
void MergeParallelRun(JsonValue& row, const system::ParallelRun& run);

/// Validates a parsed document against the dba.bench.v1 schema: schema
/// tag, non-empty bench name, results rows that are objects with a
/// string "config" and only finite scalar / nested-object values.
Status ValidateBenchJson(const JsonValue& root);

}  // namespace dba::obs

#endif  // DBA_OBS_BENCH_JSON_H_
