#include "obs/stall_report.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace dba::obs {

namespace {

/// Enclosing label per pc: the label bound at the greatest position at
/// or before it (mirrors the region naming of the cycle trace).
std::vector<std::string> EnclosingLabels(const isa::Program& program,
                                         size_t size) {
  std::vector<std::string> labels(size, "(entry)");
  auto sorted = program.labels();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& x, const auto& y) {
                     return x.second < y.second;
                   });
  for (const auto& [name, position] : sorted) {
    for (size_t pc = position; pc < size; ++pc) {
      labels[pc] = name;
    }
  }
  return labels;
}

}  // namespace

StallReport BuildStallReport(const isa::Program& program,
                             const sim::ExecStats& stats,
                             std::string config_name, int num_lsus) {
  StallReport report;
  report.config_name = std::move(config_name);
  report.num_lsus = num_lsus;
  report.cycles = stats.cycles;
  report.instructions = stats.instructions;
  if (stats.instructions > 0) {
    report.cycles_per_instruction = static_cast<double>(stats.cycles) /
                                    static_cast<double>(stats.instructions);
  }

  // Issue cycles are whatever the explicit stall categories do not
  // cover: the simulator adds exactly one issue cycle per bundle.
  report.totals.issue_cycles = stats.bundles;
  report.totals.branch_penalty_cycles = stats.branch_penalty_cycles;
  report.totals.load_stall_cycles = stats.load_stall_cycles;
  report.totals.store_stall_cycles = stats.store_stall_cycles;
  report.totals.port_stall_cycles = stats.port_stall_cycles;
  report.totals.ext_extra_cycles = stats.ext_extra_cycles;

  report.lsu_beats[0] = stats.lsu_beats[0];
  report.lsu_beats[1] = stats.lsu_beats[1];
  for (int port = 0; port < 2; ++port) {
    report.lsu_utilization[port] =
        stats.cycles > 0 ? static_cast<double>(stats.lsu_beats[port]) /
                               static_cast<double>(stats.cycles)
                         : 0.0;
  }

  if (!stats.pc_cycles.empty()) {
    const std::vector<std::string> labels =
        EnclosingLabels(program, stats.pc_cycles.size());
    std::map<std::string, LabelStallRow> rows;
    for (size_t pc = 0; pc < stats.pc_cycles.size(); ++pc) {
      const sim::PcCycleBreakdown& breakdown = stats.pc_cycles[pc];
      if (breakdown.total_cycles() == 0 && breakdown.lsu_beats[0] == 0 &&
          breakdown.lsu_beats[1] == 0) {
        continue;
      }
      LabelStallRow& row = rows[labels[pc]];
      row.label = labels[pc];
      row.components.issue_cycles += breakdown.issue_cycles;
      row.components.branch_penalty_cycles += breakdown.branch_penalty_cycles;
      row.components.load_stall_cycles += breakdown.load_stall_cycles;
      row.components.store_stall_cycles += breakdown.store_stall_cycles;
      row.components.port_stall_cycles += breakdown.port_stall_cycles;
      row.components.ext_extra_cycles += breakdown.ext_extra_cycles;
      row.lsu_beats[0] += breakdown.lsu_beats[0];
      row.lsu_beats[1] += breakdown.lsu_beats[1];
    }
    for (auto& [label, row] : rows) {
      report.labels.push_back(std::move(row));
    }
    std::stable_sort(report.labels.begin(), report.labels.end(),
                     [](const LabelStallRow& x, const LabelStallRow& y) {
                       return x.components.total_cycles() >
                              y.components.total_cycles();
                     });
  }
  return report;
}

std::string StallReport::ToString() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof line,
                "%s: %llu cycles, %llu instructions, CPI %.3f\n",
                config_name.c_str(),
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(instructions),
                cycles_per_instruction);
  out += line;

  auto percent = [this](uint64_t value) {
    return cycles > 0
               ? 100.0 * static_cast<double>(value) / static_cast<double>(cycles)
               : 0.0;
  };
  std::snprintf(line, sizeof line,
                "cycle breakdown: issue %llu (%.1f%%), branch %llu (%.1f%%), "
                "load %llu (%.1f%%), store %llu (%.1f%%), port %llu (%.1f%%), "
                "ext %llu (%.1f%%)\n",
                static_cast<unsigned long long>(totals.issue_cycles),
                percent(totals.issue_cycles),
                static_cast<unsigned long long>(totals.branch_penalty_cycles),
                percent(totals.branch_penalty_cycles),
                static_cast<unsigned long long>(totals.load_stall_cycles),
                percent(totals.load_stall_cycles),
                static_cast<unsigned long long>(totals.store_stall_cycles),
                percent(totals.store_stall_cycles),
                static_cast<unsigned long long>(totals.port_stall_cycles),
                percent(totals.port_stall_cycles),
                static_cast<unsigned long long>(totals.ext_extra_cycles),
                percent(totals.ext_extra_cycles));
  out += line;

  for (int port = 0; port < num_lsus; ++port) {
    std::snprintf(line, sizeof line,
                  "LSU%d: %llu beats, %.1f%% beat utilization\n", port,
                  static_cast<unsigned long long>(lsu_beats[port]),
                  100.0 * lsu_utilization[port]);
    out += line;
  }

  if (!labels.empty()) {
    out += "per-label attribution (cycles: issue/branch/load/store/port/ext, "
           "beats LSU0+LSU1):\n";
    for (const LabelStallRow& row : labels) {
      std::snprintf(
          line, sizeof line,
          "  %-20s %10llu  %llu/%llu/%llu/%llu/%llu/%llu  %llu+%llu\n",
          row.label.c_str(),
          static_cast<unsigned long long>(row.components.total_cycles()),
          static_cast<unsigned long long>(row.components.issue_cycles),
          static_cast<unsigned long long>(row.components.branch_penalty_cycles),
          static_cast<unsigned long long>(row.components.load_stall_cycles),
          static_cast<unsigned long long>(row.components.store_stall_cycles),
          static_cast<unsigned long long>(row.components.port_stall_cycles),
          static_cast<unsigned long long>(row.components.ext_extra_cycles),
          static_cast<unsigned long long>(row.lsu_beats[0]),
          static_cast<unsigned long long>(row.lsu_beats[1]));
      out += line;
    }
  }
  return out;
}

}  // namespace dba::obs
