#ifndef DBA_OBS_SERIALIZE_H_
#define DBA_OBS_SERIALIZE_H_

#include "core/processor.h"
#include "hwmodel/synthesis.h"
#include "obs/json.h"
#include "obs/stall_report.h"
#include "sim/stats.h"
#include "toolchain/profiler.h"

namespace dba::obs {

/// Stable, versioned JSON exports of the simulator's result types.
/// Every serializer tags its object with a "schema" member
/// ("dba.<type>.v<N>"); adding members is a compatible change, removing
/// or renaming one bumps the version. docs/OBSERVABILITY.md documents
/// the schemas.

inline constexpr std::string_view kExecStatsSchema = "dba.execstats.v1";
inline constexpr std::string_view kRunMetricsSchema = "dba.runmetrics.v1";
inline constexpr std::string_view kSynthesisSchema = "dba.synthesis.v1";
inline constexpr std::string_view kProfileSchema = "dba.profile.v1";
inline constexpr std::string_view kStallsSchema = "dba.stalls.v1";

JsonValue ExecStatsToJson(const sim::ExecStats& stats);
JsonValue RunMetricsToJson(const RunMetrics& metrics);
JsonValue SynthesisReportToJson(const hwmodel::SynthesisReport& report);
JsonValue ProfileReportToJson(const toolchain::ProfileReport& report);
JsonValue StallComponentsToJson(const StallComponents& components);
JsonValue StallReportToJson(const StallReport& report);

}  // namespace dba::obs

#endif  // DBA_OBS_SERIALIZE_H_
