#ifndef DBA_OBS_METRICS_JSON_H_
#define DBA_OBS_METRICS_JSON_H_

// Serialization of the runtime metrics registry (obs/metrics) to the
// versioned `dba.metrics.v1` JSON schema, plus a validator used by
// `dba_cli validate-bench` and the bench --json pipeline.
//
// Snapshot layout:
//   {
//     "schema": "dba.metrics.v1",
//     "counters":   { "<identity>": <uint>, ... },
//     "gauges":     { "<identity>": <number>, ... },
//     "histograms": { "<identity>": { "count": N, "sum": S,
//                                     "p50": .., "p90": .., "p99": ..,
//                                     "p999": ..,
//                                     "buckets": [[le, count], ...] }, ... }
//   }
// where <identity> is `name` or `name{key="value"}` and bucket `le` is the
// exclusive upper bound of a non-empty log bucket (ascending).
//
// Because the registry only records simulated quantities, a snapshot taken
// after a deterministic board run is byte-identical at any host_threads.

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "obs/metrics/event_log.h"
#include "obs/metrics/metrics.h"

namespace dba::obs {

inline constexpr std::string_view kMetricsSchema = "dba.metrics.v1";

JsonValue MetricsSnapshotToJson(const MetricsSnapshot& snapshot);

// Serializes the most recent `max_events` event-log records (oldest first).
JsonValue EventsToJson(const std::vector<Event>& events);

Status ValidateMetricsJson(const JsonValue& root);

// Snapshot + write in one step; used by `--metrics-out` flags and the
// bench atexit flush.
Status WriteMetricsSnapshotFile(
    const std::string& path,
    const MetricsRegistry& registry = MetricsRegistry::Global());

}  // namespace dba::obs

#endif  // DBA_OBS_METRICS_JSON_H_
