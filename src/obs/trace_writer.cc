#include "obs/trace_writer.h"

#include <utility>

namespace dba::obs {

namespace {
constexpr int kPid = 1;
constexpr int kSliceTid = 1;
}  // namespace

ChromeTraceWriter::ChromeTraceWriter(std::string process_name)
    : process_name_(std::move(process_name)) {}

void ChromeTraceWriter::BeginRegion(uint64_t cycle, std::string_view name) {
  events_.push_back(Event{'B', cycle, std::string(name), 0});
  open_regions_.emplace_back(name);
  last_cycle_ = std::max(last_cycle_, cycle);
}

void ChromeTraceWriter::EndRegion(uint64_t cycle) {
  if (open_regions_.empty()) return;  // unbalanced End; drop it
  events_.push_back(Event{'E', cycle, open_regions_.back(), 0});
  open_regions_.pop_back();
  last_cycle_ = std::max(last_cycle_, cycle);
}

void ChromeTraceWriter::Counter(uint64_t cycle, std::string_view name,
                                double value) {
  events_.push_back(Event{'C', cycle, std::string(name), value});
  last_cycle_ = std::max(last_cycle_, cycle);
}

JsonValue ChromeTraceWriter::ToJson() const {
  JsonValue trace_events = JsonValue::Array();

  JsonValue process_meta = JsonValue::Object();
  process_meta.Set("name", "process_name")
      .Set("ph", "M")
      .Set("pid", kPid)
      .Set("args", JsonValue::Object().Set("name", process_name_));
  trace_events.Push(std::move(process_meta));
  JsonValue thread_meta = JsonValue::Object();
  thread_meta.Set("name", "thread_name")
      .Set("ph", "M")
      .Set("pid", kPid)
      .Set("tid", kSliceTid)
      .Set("args", JsonValue::Object().Set("name", "kernel phases"));
  trace_events.Push(std::move(thread_meta));

  auto emit = [&trace_events](const Event& event) {
    JsonValue json = JsonValue::Object();
    json.Set("name", event.name)
        .Set("ph", std::string(1, event.phase))
        .Set("ts", event.cycle)
        .Set("pid", kPid);
    if (event.phase == 'C') {
      json.Set("args", JsonValue::Object().Set("value", event.value));
    } else {
      json.Set("tid", kSliceTid);
    }
    trace_events.Push(std::move(json));
  };
  for (const Event& event : events_) emit(event);
  // Close any regions an aborted run left open so every 'B' has its 'E'.
  for (auto it = open_regions_.rbegin(); it != open_regions_.rend(); ++it) {
    emit(Event{'E', last_cycle_, *it, 0});
  }

  JsonValue root = JsonValue::Object();
  root.Set("traceEvents", std::move(trace_events));
  root.Set("displayTimeUnit", "ns");
  root.Set("otherData",
           JsonValue::Object()
               .Set("source", "dba simulator cycle trace")
               .Set("time_unit", "1 trace us = 1 core cycle"));
  return root;
}

Status ChromeTraceWriter::WriteTo(const std::string& path) const {
  return WriteJsonFile(path, ToJson());
}

}  // namespace dba::obs
