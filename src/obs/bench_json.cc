#include "obs/bench_json.h"

#include <cmath>
#include <utility>

#include "obs/metrics_json.h"
#include "obs/stall_report.h"
#include "obs/serialize.h"

namespace dba::obs {

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

JsonValue& BenchJsonWriter::AddRow(std::string config) {
  results_.push_back(JsonValue::Object().Set("config", std::move(config)));
  return results_.back();
}

void BenchJsonWriter::AttachMetrics(JsonValue metrics_snapshot) {
  metrics_ = std::move(metrics_snapshot);
}

JsonValue BenchJsonWriter::ToJson() const {
  JsonValue results = JsonValue::Array();
  for (const JsonValue& row : results_) results.Push(row);
  JsonValue root = JsonValue::Object();
  root.Set("schema", kBenchSchema)
      .Set("bench", bench_name_)
      .Set("results", std::move(results));
  if (!metrics_.is_null()) root.Set("metrics", metrics_);
  return root;
}

Status BenchJsonWriter::WriteTo(const std::string& path) const {
  DBA_RETURN_IF_ERROR(ValidateBenchJson(ToJson()));
  return WriteJsonFile(path, ToJson());
}

void MergeRunMetrics(JsonValue& row, const RunMetrics& metrics) {
  const sim::ExecStats& stats = metrics.stats;
  row.Set("cycles", metrics.cycles)
      .Set("instructions", stats.instructions)
      .Set("cycles_per_instruction",
           stats.instructions > 0
               ? static_cast<double>(stats.cycles) /
                     static_cast<double>(stats.instructions)
               : 0.0)
      .Set("seconds", metrics.seconds)
      .Set("throughput_meps", metrics.throughput_meps)
      .Set("energy_nj_per_element", metrics.energy_nj_per_element);
  StallComponents components;
  components.issue_cycles = stats.bundles;
  components.branch_penalty_cycles = stats.branch_penalty_cycles;
  components.load_stall_cycles = stats.load_stall_cycles;
  components.store_stall_cycles = stats.store_stall_cycles;
  components.port_stall_cycles = stats.port_stall_cycles;
  components.ext_extra_cycles = stats.ext_extra_cycles;
  row.Set("cycle_breakdown", StallComponentsToJson(components));
  row.Set("lsu_beats", JsonValue::Array()
                           .Push(stats.lsu_beats[0])
                           .Push(stats.lsu_beats[1]));
}

void MergeParallelRun(JsonValue& row, const system::ParallelRun& run) {
  row.Set("makespan_cycles", run.makespan_cycles)
      .Set("total_core_cycles", run.total_core_cycles)
      .Set("throughput_meps", run.throughput_meps)
      .Set("board_power_mw", run.board_power_mw)
      .Set("energy_uj", run.energy_uj)
      .Set("bound", std::string(run.noc_bound ? "noc" : "compute"))
      .Set("host_wall_seconds", run.host_wall_seconds)
      .Set("host_threads", run.host_threads_used)
      .Set("sim_mode", std::string(sim::ExecModeName(run.sim_mode)));
  // Fault-tolerance telemetry (all zero / empty for a fault-free run).
  const system::RecoveryTelemetry& recovery = run.recovery;
  JsonValue quarantined = JsonValue::Array();
  for (const int core : recovery.quarantined_cores) quarantined.Push(core);
  row.Set("faults_injected", recovery.faults_injected)
      .Set("failed_attempts", recovery.failed_attempts)
      .Set("retries", recovery.retries)
      .Set("requeues", recovery.requeues)
      .Set("verification_failures", recovery.verification_failures)
      .Set("recovery_rounds", recovery.rounds)
      .Set("recovery_cycles", recovery.recovery_cycles)
      .Set("quarantined_cores", std::move(quarantined))
      .Set("degraded", recovery.degraded);
}

namespace {

Status ValidateScalarTree(const JsonValue& value, const std::string& where,
                          int depth) {
  if (depth > 8) {
    return Status::InvalidArgument(where + ": nesting too deep for a row");
  }
  switch (value.kind()) {
    case JsonValue::Kind::kNumber:
      if (!std::isfinite(value.as_double())) {
        return Status::InvalidArgument(where + ": non-finite number");
      }
      return Status::Ok();
    case JsonValue::Kind::kBool:
    case JsonValue::Kind::kString:
      return Status::Ok();
    case JsonValue::Kind::kNull:
      return Status::InvalidArgument(where + ": null value in a result row");
    case JsonValue::Kind::kArray: {
      for (size_t i = 0; i < value.size(); ++i) {
        DBA_RETURN_IF_ERROR(ValidateScalarTree(
            value.at(i), where + "[" + std::to_string(i) + "]", depth + 1));
      }
      return Status::Ok();
    }
    case JsonValue::Kind::kObject: {
      for (const auto& [key, member] : value.members()) {
        DBA_RETURN_IF_ERROR(
            ValidateScalarTree(member, where + "." + key, depth + 1));
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status ValidateBenchJson(const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument("bench document must be a JSON object");
  }
  const JsonValue& schema = root.at("schema");
  if (!schema.is_string() || schema.as_string() != kBenchSchema) {
    return Status::InvalidArgument(
        "bench document schema must be \"" + std::string(kBenchSchema) +
        "\"");
  }
  const JsonValue& bench = root.at("bench");
  if (!bench.is_string() || bench.as_string().empty()) {
    return Status::InvalidArgument(
        "bench document needs a non-empty \"bench\" name");
  }
  const JsonValue& results = root.at("results");
  if (!results.is_array()) {
    return Status::InvalidArgument(
        "bench document needs a \"results\" array");
  }
  for (size_t i = 0; i < results.size(); ++i) {
    const JsonValue& row = results.at(i);
    const std::string where = "results[" + std::to_string(i) + "]";
    if (!row.is_object() || row.members().empty()) {
      return Status::InvalidArgument(where +
                                     " must be a non-empty object");
    }
    const JsonValue& config = row.at("config");
    if (!config.is_string() || config.as_string().empty()) {
      return Status::InvalidArgument(
          where + " needs a non-empty string \"config\"");
    }
    DBA_RETURN_IF_ERROR(ValidateScalarTree(row, where, 0));
  }
  // Optional embedded runtime-metrics snapshot (dba.metrics.v1). Other
  // unknown top-level members are tolerated; this one is validated
  // because downstream tooling consumes it.
  if (const JsonValue* metrics = root.Find("metrics"); metrics != nullptr) {
    if (const Status status = ValidateMetricsJson(*metrics); !status.ok()) {
      return Status(status.code(), "metrics member: " + status.message());
    }
  }
  return Status::Ok();
}

}  // namespace dba::obs
