#ifndef DBA_OBS_JSON_H_
#define DBA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dba::obs {

/// Minimal JSON document model for the observability layer: the writers
/// (profile / stall / trace / bench exports) build values, the parser
/// reads them back for validation and round-trip tests. Objects keep
/// insertion order so emitted files are stable across runs.
///
/// Numbers are stored as double; integral values up to 2^53 round-trip
/// exactly and are printed without a fractional part. All cycle counts
/// the simulator produces fit (the watchdog caps runs at 2^36 cycles).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  JsonValue(int value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(unsigned value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(int64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(uint64_t value)  // NOLINT
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)  // NOLINT
      : kind_(Kind::kString), string_(value) {}
  JsonValue(const char* value)  // NOLINT
      : kind_(Kind::kString), string_(value) {}

  static JsonValue Object() {
    JsonValue value;
    value.kind_ = Kind::kObject;
    return value;
  }
  static JsonValue Array() {
    JsonValue value;
    value.kind_ = Kind::kArray;
    return value;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  uint64_t as_u64() const { return static_cast<uint64_t>(number_); }
  const std::string& as_string() const { return string_; }

  /// Object accessors. Set replaces an existing key; returns *this so
  /// rows can be built fluently.
  JsonValue& Set(std::string key, JsonValue value);
  /// Returns the member or nullptr.
  const JsonValue* Find(std::string_view key) const;
  /// Returns the member or a shared null value.
  const JsonValue& at(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Array accessors.
  JsonValue& Push(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t index) const { return elements_[index]; }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Serializes the value. indent > 0 pretty-prints with that many
  /// spaces per level; 0 emits a compact single line.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing whitespace allowed).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> elements_;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

/// Writes `value` to `path` (pretty-printed, trailing newline).
Status WriteJsonFile(const std::string& path, const JsonValue& value);

/// Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace dba::obs

#endif  // DBA_OBS_JSON_H_
