#include "obs/serialize.h"

namespace dba::obs {

JsonValue ExecStatsToJson(const sim::ExecStats& stats) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", kExecStatsSchema)
      .Set("cycles", stats.cycles)
      .Set("bundles", stats.bundles)
      .Set("instructions", stats.instructions)
      .Set("taken_branches", stats.taken_branches)
      .Set("mispredicted_branches", stats.mispredicted_branches)
      .Set("branch_penalty_cycles", stats.branch_penalty_cycles)
      .Set("load_stall_cycles", stats.load_stall_cycles)
      .Set("store_stall_cycles", stats.store_stall_cycles)
      .Set("port_stall_cycles", stats.port_stall_cycles)
      .Set("ext_extra_cycles", stats.ext_extra_cycles)
      .Set("lsu_beats", JsonValue::Array()
                            .Push(stats.lsu_beats[0])
                            .Push(stats.lsu_beats[1]));
  if (!stats.pc_counts.empty()) {
    JsonValue counts = JsonValue::Array();
    for (uint64_t count : stats.pc_counts) counts.Push(count);
    json.Set("pc_counts", std::move(counts));
  }
  if (!stats.mnemonic_counts.empty()) {
    JsonValue mix = JsonValue::Object();
    for (const auto& [name, count] : stats.mnemonic_counts) {
      mix.Set(name, count);
    }
    json.Set("mnemonic_counts", std::move(mix));
  }
  // ExecStats::trace is a rendered debug listing, not a metric; it is
  // deliberately left out of the stable schema.
  return json;
}

JsonValue RunMetricsToJson(const RunMetrics& metrics) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", kRunMetricsSchema)
      .Set("cycles", metrics.cycles)
      .Set("seconds", metrics.seconds)
      .Set("throughput_meps", metrics.throughput_meps)
      .Set("energy_nj_per_element", metrics.energy_nj_per_element)
      .Set("stats", ExecStatsToJson(metrics.stats));
  return json;
}

JsonValue SynthesisReportToJson(const hwmodel::SynthesisReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", kSynthesisSchema)
      .Set("config", report.config_name)
      .Set("tech_node", std::string(hwmodel::TechNodeName(report.node)))
      .Set("logic_area_mm2", report.logic_area_mm2)
      .Set("mem_area_mm2", report.mem_area_mm2)
      .Set("total_area_mm2", report.total_area_mm2())
      .Set("fmax_mhz", report.fmax_mhz)
      .Set("power_mw", report.power_mw);
  return json;
}

JsonValue ProfileReportToJson(const toolchain::ProfileReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", kProfileSchema)
      .Set("cycles", report.cycles)
      .Set("instructions", report.instructions)
      .Set("cycles_per_instruction", report.cycles_per_instruction);
  JsonValue hotspots = JsonValue::Array();
  for (const toolchain::HotspotEntry& entry : report.hotspots) {
    JsonValue hotspot = JsonValue::Object();
    hotspot.Set("pc", static_cast<uint64_t>(entry.pc))
        .Set("count", entry.count)
        .Set("percent", entry.percent)
        .Set("label", entry.label)
        .Set("disassembly", entry.disassembly);
    hotspots.Push(std::move(hotspot));
  }
  json.Set("hotspots", std::move(hotspots));
  JsonValue mix = JsonValue::Array();
  for (const auto& [name, count] : report.instruction_mix) {
    mix.Push(JsonValue::Object().Set("mnemonic", name).Set("count", count));
  }
  json.Set("instruction_mix", std::move(mix));
  return json;
}

JsonValue StallComponentsToJson(const StallComponents& components) {
  JsonValue json = JsonValue::Object();
  json.Set("issue_cycles", components.issue_cycles)
      .Set("branch_penalty_cycles", components.branch_penalty_cycles)
      .Set("load_stall_cycles", components.load_stall_cycles)
      .Set("store_stall_cycles", components.store_stall_cycles)
      .Set("port_stall_cycles", components.port_stall_cycles)
      .Set("ext_extra_cycles", components.ext_extra_cycles)
      .Set("total_cycles", components.total_cycles());
  return json;
}

JsonValue StallReportToJson(const StallReport& report) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", kStallsSchema)
      .Set("config", report.config_name)
      .Set("num_lsus", static_cast<int64_t>(report.num_lsus))
      .Set("cycles", report.cycles)
      .Set("instructions", report.instructions)
      .Set("cycles_per_instruction", report.cycles_per_instruction)
      .Set("components", StallComponentsToJson(report.totals))
      .Set("lsu_beats", JsonValue::Array()
                            .Push(report.lsu_beats[0])
                            .Push(report.lsu_beats[1]))
      .Set("lsu_utilization", JsonValue::Array()
                                  .Push(report.lsu_utilization[0])
                                  .Push(report.lsu_utilization[1]));
  JsonValue labels = JsonValue::Array();
  for (const LabelStallRow& row : report.labels) {
    JsonValue label = JsonValue::Object();
    label.Set("label", row.label)
        .Set("components", StallComponentsToJson(row.components))
        .Set("lsu_beats", JsonValue::Array()
                              .Push(row.lsu_beats[0])
                              .Push(row.lsu_beats[1]));
    labels.Push(std::move(label));
  }
  json.Set("labels", std::move(labels));
  return json;
}

}  // namespace dba::obs
