#include "obs/bench_compare.h"

#include <map>

#include "obs/bench_json.h"

namespace dba::obs {
namespace {

/// Stable identity of one result row: every string member plus the
/// integer "cores" column, in key order. Metric columns are all
/// numeric, so they never leak into the identity.
std::string RowKey(const JsonValue& row) {
  std::map<std::string, std::string> parts;
  for (const auto& [key, value] : row.members()) {
    if (value.is_string()) {
      parts[key] = value.as_string();
    } else if (key == "cores" && value.is_number()) {
      parts[key] = std::to_string(value.as_u64());
    }
  }
  std::string key;
  for (const auto& [name, value] : parts) {
    if (!key.empty()) key += " ";
    key += name + "=" + value;
  }
  return key;
}

}  // namespace

Result<BenchComparison> CompareBenchDocuments(
    const JsonValue& run, const JsonValue& baseline,
    const BenchCompareOptions& options) {
  if (const Status status = ValidateBenchJson(run); !status.ok()) {
    return Status(status.code(), "run document: " + status.message());
  }
  if (const Status status = ValidateBenchJson(baseline); !status.ok()) {
    return Status(status.code(), "baseline document: " + status.message());
  }
  if (run.at("bench").as_string() != baseline.at("bench").as_string()) {
    return Status::InvalidArgument(
        "bench name mismatch: run is '" + run.at("bench").as_string() +
        "', baseline is '" + baseline.at("bench").as_string() + "'");
  }
  if (!(options.tolerance >= 0.0 && options.tolerance < 1.0)) {
    return Status::InvalidArgument("tolerance must be in [0, 1)");
  }

  std::map<std::string, const JsonValue*> run_rows;
  for (const JsonValue& row : run.at("results").elements()) {
    run_rows[RowKey(row)] = &row;
  }

  BenchComparison comparison;
  for (const JsonValue& base_row : baseline.at("results").elements()) {
    const std::string key = RowKey(base_row);
    const auto it = run_rows.find(key);
    if (it == run_rows.end()) {
      comparison.missing_rows.push_back(key);
      continue;
    }
    for (const std::string& metric : options.metrics) {
      const JsonValue* base_value = base_row.Find(metric);
      if (base_value == nullptr || !base_value->is_number()) continue;
      BenchMetricDelta delta;
      delta.row_key = key;
      delta.metric = metric;
      delta.baseline_value = base_value->as_double();
      const JsonValue* run_value = it->second->Find(metric);
      if (run_value == nullptr || !run_value->is_number()) {
        // The run dropped a metric the baseline tracks. Absent is not
        // zero: tolerate it unless the caller asked for strict mode.
        if (!options.strict) {
          comparison.tolerated.push_back(key + " " + metric);
          continue;
        }
        delta.run_value = 0;
        delta.ratio = 0;
        delta.regressed = true;
      } else {
        delta.run_value = run_value->as_double();
        delta.ratio = delta.baseline_value != 0
                          ? delta.run_value / delta.baseline_value
                          : 1.0;
        delta.regressed =
            delta.baseline_value > 0 &&
            delta.run_value < delta.baseline_value * (1.0 - options.tolerance);
      }
      if (delta.regressed) ++comparison.regressions;
      comparison.deltas.push_back(std::move(delta));
    }
  }
  return comparison;
}

}  // namespace dba::obs
