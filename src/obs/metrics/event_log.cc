#include "obs/metrics/event_log.h"

#include <algorithm>

namespace dba::obs {

std::string_view EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

EventLog& EventLog::Global() {
  static EventLog* const log = new EventLog();
  return *log;
}

void EventLog::Log(EventLevel level, std::string_view scope,
                   std::string_view message,
                   std::vector<std::pair<std::string, std::string>> fields,
                   std::uint64_t cycle) {
  std::lock_guard<std::mutex> lock(mu_);
  Event& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_;
  slot.level = level;
  slot.cycle = cycle;
  slot.scope = std::string(scope);
  slot.message = std::string(message);
  slot.fields = std::move(fields);
  ++next_seq_;
  ++level_counts_[static_cast<std::size_t>(level)];
}

std::vector<Event> EventLog::Tail(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t stored = std::min<std::uint64_t>(next_seq_, capacity_);
  const std::uint64_t take = std::min<std::uint64_t>(stored, max_events);
  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(take));
  for (std::uint64_t seq = next_seq_ - take; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

std::uint64_t EventLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::uint64_t EventLog::total(EventLevel level) const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_counts_[static_cast<std::size_t>(level)];
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = 0;
  std::fill(level_counts_.begin(), level_counts_.end(), 0);
  for (Event& event : ring_) {
    event = Event{};
  }
}

}  // namespace dba::obs
