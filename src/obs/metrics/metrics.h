#ifndef DBA_OBS_METRICS_METRICS_H_
#define DBA_OBS_METRICS_METRICS_H_

// Runtime telemetry: a process-wide registry of named Counter / Gauge /
// Histogram instruments, designed for the host-parallel board simulation.
//
// Determinism contract: instruments shard their state across a fixed number
// of slots updated with relaxed atomics; reads merge the shards with plain
// integer sums.  Because every merge is a commutative integer sum, the merged
// value depends only on the multiset of updates, never on which host thread
// performed them -- so a registry snapshot taken after a deterministic board
// run is byte-identical at any `host_threads`.  To keep that property, hot
// paths must only ever record *simulated* quantities (cycles, counts, bytes),
// never wall-clock time.
//
// This layer sits below src/obs (which links sim/core/system): it depends
// only on the C++ standard library, so every instrumented layer can link it.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dba::sim {
class CycleTraceSink;
}  // namespace dba::sim

namespace dba::obs {

// Number of independently-updated slots per instrument.  Threads hash to a
// slot once (thread-local), so concurrent updates rarely contend on a line.
inline constexpr std::size_t kMetricShards = 8;

// Log-bucketed histogram resolution: values < 16 get exact unit buckets,
// larger values get 4 sub-buckets per power of two (<= 19% relative width).
inline constexpr std::size_t kHistogramBuckets = 256;

// Stable per-thread shard index in [0, kMetricShards).
std::size_t MetricShardIndex();

// Monotonic event count.  Increment is wait-free; Value merges all shards.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    shards_[MetricShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

// Last-write-wins scalar.  Intended for values set from a single thread
// (e.g. the board's deterministic reduce loop); Set/Add are still safe to
// call concurrently, but concurrent Set order is unspecified.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// One merged, non-empty histogram bucket: `index` is the bucket index (see
// Histogram::BucketLowerBound/BucketUpperBound), `count` the observations.
struct HistogramBucket {
  std::uint32_t index = 0;
  std::uint64_t count = 0;

  bool operator==(const HistogramBucket&) const = default;
};

// Merged read-side view of a Histogram.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<HistogramBucket> buckets;  // ascending index, counts > 0

  // Quantile estimate by linear interpolation inside the containing bucket;
  // exact to the bucket (<= 1 bucket of error).  q is clamped to [0, 1].
  double Quantile(double q) const;

  bool operator==(const HistogramStats&) const = default;
};

// Log-bucketed histogram over non-negative integer values (cycles, bytes,
// element counts).  Exact count and sum; quantiles accurate to one bucket.
class Histogram {
 public:
  void Observe(std::uint64_t value) {
    Shard& shard = shards_[MetricShardIndex()];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }
  HistogramStats Stats() const;
  void Reset();

  static std::size_t BucketIndex(std::uint64_t value);
  static std::uint64_t BucketLowerBound(std::size_t index);   // inclusive
  static std::uint64_t BucketUpperBound(std::size_t index);   // exclusive

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

// Deterministic point-in-time view of a registry: instrument identity
// (`name` or `name{key="value"}`) -> merged value, sorted by identity.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

// Process-wide instrument registry.  Get* registers on first use and returns
// a stable pointer (callers cache it; repeated Get* with the same identity
// returns the same instrument).  An identity registered as one kind cannot be
// re-requested as another: the mismatched Get* returns nullptr.
//
// Naming convention: `dba_<layer>_<name>`, counters suffixed `_total`.
// At most one label pair per instrument (rendered `name{key="value"}`).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name, std::string_view help = "");
  Counter* GetCounter(std::string_view name, std::string_view label_key,
                      std::string_view label_value, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view label_key,
                  std::string_view label_value, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view help = "");
  Histogram* GetHistogram(std::string_view name, std::string_view label_key,
                          std::string_view label_value,
                          std::string_view help = "");

  MetricsSnapshot Snapshot() const;

  // Prometheus text exposition format 0.0.4.  Histograms render cumulative
  // `_bucket{le="..."}` series (non-empty buckets plus `+Inf`), `_sum`, and
  // `_count`.  Instruments are grouped by base name, sorted.
  std::string ExposePrometheus() const;

  // Zeroes every registered instrument (registration survives; cached
  // pointers stay valid).  For tests and the start of `dba_cli top`.
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;         // base metric name
    std::string label_key;    // empty if unlabelled
    std::string label_value;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* GetOrCreate(Kind kind, std::string_view name,
                          std::string_view label_key,
                          std::string_view label_value, std::string_view help);

  mutable std::mutex mu_;
  // Keyed by identity string; std::map gives deterministic iteration order.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_;
};

// Builds the canonical identity string: `name` or `name{key="value"}`.
std::string InstrumentIdentity(std::string_view name,
                               std::string_view label_key,
                               std::string_view label_value);

// RAII span that feeds a latency Histogram and (optionally) the existing
// sim::CycleTraceSink.  Cycle values are *simulated* cycles supplied by the
// caller, so spans preserve the registry's determinism contract:
//
//   obs::ScopedSpan span(hist, settings.trace_sink, "intersect", begin);
//   ...run...
//   span.SetEndCycle(begin + stats.cycles);
//
// If SetEndCycle is never called (e.g. the run failed), the span records
// nothing and leaves the sink region open -- matching the pre-existing
// convention that trace writers close dangling regions themselves.
class ScopedSpan {
 public:
  ScopedSpan(Histogram* latency, sim::CycleTraceSink* sink,
             std::string_view name, std::uint64_t begin_cycle = 0);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void SetEndCycle(std::uint64_t end_cycle);

 private:
  Histogram* latency_;
  sim::CycleTraceSink* sink_;
  std::string name_;
  std::uint64_t begin_cycle_;
  std::uint64_t end_cycle_ = 0;
  bool ended_ = false;
};

}  // namespace dba::obs

#endif  // DBA_OBS_METRICS_METRICS_H_
