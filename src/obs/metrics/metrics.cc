#include "obs/metrics/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

#include "sim/trace_sink.h"

namespace dba::obs {
namespace {

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string FormatU64(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace

std::size_t MetricShardIndex() {
  static std::atomic<std::size_t> next_shard{0};
  thread_local const std::size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value < 16) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);  // >= 4 here
  const std::uint64_t sub = (value >> (msb - 2)) & 3;
  return 16 + static_cast<std::size_t>(msb - 4) * 4 +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::BucketLowerBound(std::size_t index) {
  if (index < 16) return index;
  const std::size_t octave = 4 + (index - 16) / 4;
  const std::uint64_t sub = (index - 16) % 4;
  return (4 + sub) << (octave - 2);
}

std::uint64_t Histogram::BucketUpperBound(std::size_t index) {
  if (index + 1 >= kHistogramBuckets) return UINT64_MAX;
  return BucketLowerBound(index + 1);
}

HistogramStats Histogram::Stats() const {
  std::array<std::uint64_t, kHistogramBuckets> merged{};
  HistogramStats stats;
  for (const Shard& shard : shards_) {
    stats.sum += shard.sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      merged[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (merged[i] == 0) continue;
    stats.count += merged[i];
    stats.buckets.push_back({static_cast<std::uint32_t>(i), merged[i]});
  }
  return stats;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    shard.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

double HistogramStats::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count - 1);
  std::uint64_t cumulative = 0;
  for (const HistogramBucket& bucket : buckets) {
    const double end = static_cast<double>(cumulative + bucket.count);
    if (end > target) {
      const double lower =
          static_cast<double>(Histogram::BucketLowerBound(bucket.index));
      const double upper =
          static_cast<double>(Histogram::BucketUpperBound(bucket.index));
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(bucket.count);
      return lower + (upper - lower) * frac;
    }
    cumulative += bucket.count;
  }
  // All mass consumed (q == 1 with fp round-off): top of the last bucket.
  return buckets.empty()
             ? 0.0
             : static_cast<double>(
                   Histogram::BucketUpperBound(buckets.back().index));
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

std::string InstrumentIdentity(std::string_view name,
                               std::string_view label_key,
                               std::string_view label_value) {
  std::string identity(name);
  if (!label_key.empty()) {
    identity += '{';
    identity += label_key;
    identity += "=\"";
    identity += label_value;
    identity += "\"}";
  }
  return identity;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    Kind kind, std::string_view name, std::string_view label_key,
    std::string_view label_value, std::string_view help) {
  std::string identity = InstrumentIdentity(name, label_key, label_value);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(identity);
  if (it != instruments_.end()) {
    return it->second->kind == kind ? it->second.get() : nullptr;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->kind = kind;
  instrument->name = std::string(name);
  instrument->label_key = std::string(label_key);
  instrument->label_value = std::string(label_value);
  instrument->help = std::string(help);
  switch (kind) {
    case Kind::kCounter:
      instrument->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      instrument->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      instrument->histogram = std::make_unique<Histogram>();
      break;
  }
  Instrument* raw = instrument.get();
  instruments_.emplace(std::move(identity), std::move(instrument));
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return GetCounter(name, "", "", help);
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view label_key,
                                     std::string_view label_value,
                                     std::string_view help) {
  Instrument* instrument =
      GetOrCreate(Kind::kCounter, name, label_key, label_value, help);
  return instrument == nullptr ? nullptr : instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help) {
  return GetGauge(name, "", "", help);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view label_key,
                                 std::string_view label_value,
                                 std::string_view help) {
  Instrument* instrument =
      GetOrCreate(Kind::kGauge, name, label_key, label_value, help);
  return instrument == nullptr ? nullptr : instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help) {
  return GetHistogram(name, "", "", help);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view label_key,
                                         std::string_view label_value,
                                         std::string_view help) {
  Instrument* instrument =
      GetOrCreate(Kind::kHistogram, name, label_key, label_value, help);
  return instrument == nullptr ? nullptr : instrument->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [identity, instrument] : instruments_) {
    switch (instrument->kind) {
      case Kind::kCounter:
        snapshot.counters[identity] = instrument->counter->Value();
        break;
      case Kind::kGauge:
        snapshot.gauges[identity] = instrument->gauge->Value();
        break;
      case Kind::kHistogram:
        snapshot.histograms[identity] = instrument->histogram->Stats();
        break;
    }
  }
  return snapshot;
}

std::string MetricsRegistry::ExposePrometheus() const {
  // Group instruments by base metric name so all series of a metric are
  // contiguous (required by the text exposition format).
  std::map<std::string, std::vector<const Instrument*>> by_name;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [identity, instrument] : instruments_) {
    (void)identity;
    by_name[instrument->name].push_back(instrument.get());
  }
  std::string out;
  const auto emit_name = [&out](const std::string& name,
                                const std::string& labels) {
    out += name;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
  };
  for (const auto& [name, series] : by_name) {
    const Instrument* first = series.front();
    if (!first->help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      out += first->help;
      out += '\n';
    }
    out += "# TYPE ";
    out += name;
    out += first->kind == Kind::kCounter  ? " counter\n"
           : first->kind == Kind::kGauge  ? " gauge\n"
                                          : " histogram\n";
    for (const Instrument* instrument : series) {
      std::string labels;
      if (!instrument->label_key.empty()) {
        labels += instrument->label_key;
        labels += "=\"";
        labels += instrument->label_value;
        labels += '"';
      }
      switch (instrument->kind) {
        case Kind::kCounter:
          emit_name(name, labels);
          out += FormatU64(instrument->counter->Value());
          out += '\n';
          break;
        case Kind::kGauge:
          emit_name(name, labels);
          out += FormatDouble(instrument->gauge->Value());
          out += '\n';
          break;
        case Kind::kHistogram: {
          const HistogramStats stats = instrument->histogram->Stats();
          const std::string label_prefix =
              labels.empty() ? std::string() : labels + ",";
          std::uint64_t cumulative = 0;
          const auto emit_bucket = [&](const std::string& le,
                                       std::uint64_t value) {
            out += name;
            out += "_bucket{";
            out += label_prefix;
            out += "le=\"";
            out += le;
            out += "\"} ";
            out += FormatU64(value);
            out += '\n';
          };
          for (const HistogramBucket& bucket : stats.buckets) {
            cumulative += bucket.count;
            emit_bucket(FormatU64(Histogram::BucketUpperBound(bucket.index)),
                        cumulative);
          }
          emit_bucket("+Inf", stats.count);
          emit_name(name + "_sum", labels);
          out += FormatU64(stats.sum);
          out += '\n';
          emit_name(name + "_count", labels);
          out += FormatU64(stats.count);
          out += '\n';
          break;
        }
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [identity, instrument] : instruments_) {
    (void)identity;
    switch (instrument->kind) {
      case Kind::kCounter:
        instrument->counter->Reset();
        break;
      case Kind::kGauge:
        instrument->gauge->Reset();
        break;
      case Kind::kHistogram:
        instrument->histogram->Reset();
        break;
    }
  }
}

ScopedSpan::ScopedSpan(Histogram* latency, sim::CycleTraceSink* sink,
                       std::string_view name, std::uint64_t begin_cycle)
    : latency_(latency),
      sink_(sink),
      name_(name),
      begin_cycle_(begin_cycle) {
  if (sink_ != nullptr) {
    sink_->BeginRegion(begin_cycle_, name_);
  }
}

void ScopedSpan::SetEndCycle(std::uint64_t end_cycle) {
  end_cycle_ = end_cycle;
  ended_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!ended_) {
    // Failed / abandoned span: record nothing, leave the sink region open
    // (trace writers close dangling regions at flush, as before).
    return;
  }
  if (sink_ != nullptr) {
    sink_->EndRegion(end_cycle_);
  }
  if (latency_ != nullptr) {
    latency_->Observe(end_cycle_ >= begin_cycle_ ? end_cycle_ - begin_cycle_
                                                 : 0);
  }
}

}  // namespace dba::obs
