#ifndef DBA_OBS_METRICS_EVENT_LOG_H_
#define DBA_OBS_METRICS_EVENT_LOG_H_

// Structured event log: a bounded ring of leveled, timestamped, key-value
// records.  Timestamps are logical (a process-wide sequence number) plus an
// optional *simulated* cycle stamp supplied by the caller, so serialized
// events stay deterministic across host thread counts.  Serialization to
// JsonValue lives in src/obs/metrics_json.h (this layer has no obs deps).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dba::obs {

enum class EventLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

std::string_view EventLevelName(EventLevel level);

struct Event {
  std::uint64_t seq = 0;  // process-wide logical timestamp (per log)
  EventLevel level = EventLevel::kInfo;
  std::uint64_t cycle = 0;  // simulated cycle stamp; 0 when not applicable
  std::string scope;        // emitting layer, e.g. "board", "query"
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  static EventLog& Global();

  void Log(EventLevel level, std::string_view scope, std::string_view message,
           std::vector<std::pair<std::string, std::string>> fields = {},
           std::uint64_t cycle = 0);

  // The most recent `max_events` records, oldest first.
  std::vector<Event> Tail(std::size_t max_events) const;

  std::uint64_t total() const;                 // all events ever logged
  std::uint64_t total(EventLevel level) const;
  std::size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t next_seq_ = 0;
  std::vector<std::uint64_t> level_counts_ =
      std::vector<std::uint64_t>(4, 0);
  std::vector<Event> ring_;  // ring_[seq % capacity_]
};

}  // namespace dba::obs

#endif  // DBA_OBS_METRICS_EVENT_LOG_H_
