// Extending the processor with your own instruction: the paper's
// Figure 5 worked example (`add3_shift`) built with the TIE-like
// framework, attached to a core, and issued from an assembled program.
//
// This is the extension path a downstream user follows to accelerate a
// different database primitive (the paper: "the techniques ... can be
// easily reused to obtain instruction sets for other (and even more
// complex) database primitives").

#include <cstdio>

#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/example_extension.h"

int main() {
  using dba::isa::Reg;

  // A small core with a 64-bit instruction bus (FLIX-capable).
  dba::sim::CoreConfig config;
  config.name = "custom";
  config.instruction_bus_bits = 64;
  dba::sim::Cpu cpu(config);

  auto memory = dba::mem::Memory::Create(
      {.name = "ldm", .base = 0x10000, .size = 4096, .access_latency = 1});
  if (!memory.ok() || !cpu.AttachMemory(&*memory).ok()) return 1;

  // The Figure 5 extension: state8, reg32[8], and add3_shift.
  dba::tie::ExampleExtension extension;
  if (!extension.Attach(&cpu).ok()) return 1;

  // Figure 5d, as a program:
  //   reg32 v0, v1, v2;  WUR_state8(4);
  //   int value = add3_shift(v0, v1, v2);
  extension.FindRegFile("reg32")->Write(0, 100);
  extension.FindRegFile("reg32")->Write(1, 200);
  extension.FindRegFile("reg32")->Write(2, 4);

  dba::isa::Assembler masm;
  masm.Tie(dba::tie::ExampleExtension::kWurState8, 4);
  // Operand packing: in0=r0, in1=r1, in2=r2, destination AR a2.
  const uint16_t operand = 0 | (1 << 3) | (2 << 6) | (2 << 9);
  masm.Tie(dba::tie::ExampleExtension::kAdd3Shift, operand);
  masm.Halt();
  auto program = masm.Finish();
  if (!program.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  std::printf("program listing:\n%s\n",
              dba::isa::DisassembleProgram(*program,
                                           cpu.MakeExtNameResolver())
                  .c_str());

  if (!cpu.LoadProgram(*program).ok()) return 1;
  auto stats = cpu.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("add3_shift(100, 200, 4) >> 4 = %u (expected %u)\n",
              cpu.reg(Reg::a2), (100u + 200u + 4u) >> 4);
  std::printf("executed in %llu cycles -- the merged instruction replaces "
              "a 4-instruction scalar sequence\n",
              static_cast<unsigned long long>(stats->cycles));
  return 0;
}
