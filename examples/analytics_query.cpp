// End-to-end analytics query on the accelerator.
//
//   SELECT amount FROM orders
//   WHERE (region = 1 OR region = 3)
//     AND status = 0
//     AND NOT priority = 2
//   ORDER BY amount
//
// The query engine probes one secondary index per predicate leaf,
// combines the RID lists with the EIS set operations (OR -> union,
// AND -> intersection, AND NOT -> difference), gathers the qualifying
// amounts, and sorts them with the merge-sort kernel. The printed plan
// shows every accelerator round trip.

#include <cstdio>

#include "common/random.h"
#include "core/processor.h"
#include "query/engine.h"

int main() {
  // --- Build a 50,000-row orders table. ---
  constexpr uint32_t kRows = 50000;
  dba::Random rng(2014);
  std::vector<uint32_t> region(kRows);
  std::vector<uint32_t> status(kRows);
  std::vector<uint32_t> priority(kRows);
  std::vector<uint32_t> amount(kRows);
  for (uint32_t i = 0; i < kRows; ++i) {
    region[i] = static_cast<uint32_t>(rng.Uniform(6));
    status[i] = static_cast<uint32_t>(rng.Uniform(4));
    priority[i] = static_cast<uint32_t>(rng.Uniform(3));
    amount[i] = static_cast<uint32_t>(rng.Uniform(1000000));
  }
  dba::query::Table orders("orders");
  if (!orders.AddColumn("region", std::move(region)).ok() ||
      !orders.AddColumn("status", std::move(status)).ok() ||
      !orders.AddColumn("priority", std::move(priority)).ok() ||
      !orders.AddColumn("amount", std::move(amount)).ok()) {
    return 1;
  }

  auto processor = dba::Processor::Create(dba::ProcessorKind::kDba2LsuEis);
  if (!processor.ok()) return 1;
  dba::query::QueryEngine engine(&orders, processor->get());
  for (const char* column : {"region", "status", "priority"}) {
    if (!engine.BuildIndex(column).ok()) return 1;
  }

  // --- The WHERE clause. ---
  std::vector<dba::query::PredicatePtr> conjuncts;
  conjuncts.push_back(dba::query::In("region", {1, 3}));
  conjuncts.push_back(dba::query::Equals("status", 0));
  conjuncts.push_back(dba::query::Not(dba::query::Equals("priority", 2)));
  auto predicate = dba::query::And(std::move(conjuncts));
  std::printf("WHERE %s\nORDER BY amount\n\n", predicate->ToString().c_str());

  dba::query::QueryStats stats;
  auto values = engine.SelectValuesOrdered(*predicate, "amount", &stats);
  if (!values.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 values.status().ToString().c_str());
    return 1;
  }

  std::printf("execution plan:\n");
  for (const std::string& step : stats.plan) {
    std::printf("  %s\n", step.c_str());
  }
  std::printf(
      "\nresult: %zu rows; first amounts: %u, %u, %u ...\n",
      values->size(), (*values)[0], (*values)[1], (*values)[2]);
  std::printf(
      "accelerator work: %u probes, %u set ops, %u sorts; %llu cycles = "
      "%.1f us at %.0f MHz (%.2f uJ at %.1f mW)\n",
      stats.index_probes, stats.set_operations, stats.sorts,
      static_cast<unsigned long long>(stats.accelerator_cycles),
      stats.accelerator_seconds * 1e6, (*processor)->synthesis().fmax_mhz,
      stats.accelerator_seconds * (*processor)->synthesis().power_mw * 1e3,
      (*processor)->synthesis().power_mw);

  // Bonus: the match-finding phase of a sort-merge join against a second
  // table (orders JOIN customers ON customer_id = id).
  dba::query::Table customers("customers");
  std::vector<uint32_t> customer_ids;
  for (uint32_t id = 0; id < 30000; id += 2) customer_ids.push_back(id);
  std::vector<uint32_t> order_customers;
  for (uint32_t i = 0; i < 20000; ++i) {
    order_customers.push_back(3 * i);  // some overlap with even ids
  }
  dba::query::Table orders_keys("orders_keys");
  if (!customers.AddColumn("id", std::move(customer_ids)).ok() ||
      !orders_keys.AddColumn("customer_id", std::move(order_customers))
           .ok()) {
    return 1;
  }
  dba::query::QueryEngine join_engine(&orders_keys, processor->get());
  dba::query::QueryStats join_stats;
  auto keys =
      join_engine.JoinKeys("customer_id", customers, "id", &join_stats);
  if (!keys.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 keys.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nsort-merge join keys: %zu matches from 20000 x 15000 keys in "
      "%llu accelerator cycles (%u sorts + %u intersection)\n",
      keys->size(),
      static_cast<unsigned long long>(join_stats.accelerator_cycles),
      join_stats.sorts, join_stats.set_operations);
  return 0;
}
