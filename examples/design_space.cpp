// Design-space exploration: the energy-efficiency argument of the paper
// in one table. For every configuration and both technology nodes, the
// example reports intersection throughput, power, energy per element,
// and how many cores would fit in the die area of the x86 comparison
// processors ("DBA_2LSU_EIS could provide an order of magnitude more
// cores than the Intel Q9550", Section 5.4).

#include <cstdio>

#include "core/processor.h"
#include "core/workload.h"
#include "hwmodel/reference.h"

int main() {
  auto pair = dba::GenerateSetPair(5000, 5000, 0.5, 42);

  std::printf("%-14s %-6s %10s %10s %12s %14s\n", "config", "tech",
              "tput M/s", "P [mW]", "nJ/element", "cores in Q9550");
  for (dba::ProcessorKind kind :
       {dba::ProcessorKind::k108Mini, dba::ProcessorKind::kDba1Lsu,
        dba::ProcessorKind::kDba1LsuEis, dba::ProcessorKind::kDba2LsuEis}) {
    for (dba::hwmodel::TechNode tech :
         {dba::hwmodel::TechNode::k65nmTsmcLp,
          dba::hwmodel::TechNode::k28nmGfSlp}) {
      dba::ProcessorOptions options;
      options.tech = tech;
      auto processor = dba::Processor::Create(kind, options);
      if (!processor.ok()) return 1;
      auto run = (*processor)->RunSetOperation(dba::SetOp::kIntersect,
                                               pair->a, pair->b);
      if (!run.ok()) return 1;
      const auto& synthesis = (*processor)->synthesis();
      const double cores_in_q9550 =
          dba::hwmodel::IntelQ9550().die_area_mm2 /
          synthesis.total_area_mm2();
      std::printf("%-14s %-6s %10.1f %10.1f %12.3f %14.0f\n",
                  synthesis.config_name.c_str(),
                  std::string(dba::hwmodel::TechNodeName(tech)).c_str(),
                  run->metrics.throughput_meps, synthesis.power_mw,
                  run->metrics.energy_nj_per_element, cores_in_q9550);
    }
  }

  std::printf(
      "\nreading the table: the EIS buys ~25x throughput for ~2.4x power "
      "-- an order of magnitude in energy per element; the 28 nm node "
      "fits >500 accelerator cores in one desktop-CPU die.\n");

  // The dark-silicon angle (Section 1): power density stays an order of
  // magnitude below a general-purpose die, so every transistor can
  // switch at once.
  const auto eis65 = dba::hwmodel::Synthesize(
      dba::hwmodel::ConfigKind::kDba2LsuEis,
      dba::hwmodel::TechNode::k65nmTsmcLp);
  const double dba_density = dba::hwmodel::PowerDensityWPerCm2(
      eis65.power_mw, eis65.total_area_mm2());
  const double i7_density = dba::hwmodel::PowerDensityWPerCm2(
      dba::hwmodel::IntelI7920().max_tdp_w * 1000.0,
      dba::hwmodel::IntelI7920().die_area_mm2);
  std::printf(
      "power density: DBA_2LSU_EIS %.1f W/cm2 vs i7-920 %.1f W/cm2 "
      "(%.0fx cooler -- no dark silicon)\n",
      dba_density, i7_density, i7_density / dba_density);
  return 0;
}
