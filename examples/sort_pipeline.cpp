// Scenario: ORDER BY on an intermediate result, plus the paper's
// development loop (Figure 4) in action.
//
// The example sorts a 6500-row key column (the largest input that fits
// the local store, Section 5.2) on the scalar core, profiles it to find
// the hotspot -- the merge loop with its hardly predictable branch --
// and then reruns the sort with the instruction-set extension, exactly
// the iteration the paper's tool flow performs.

#include <cstdio>

#include "core/processor.h"
#include "core/workload.h"
#include "toolchain/profiler.h"

int main() {
  const std::vector<uint32_t> column = dba::GenerateSortInput(6500, 99);

  // --- Step 1: run and profile the scalar merge-sort (the "before"). ---
  auto scalar = dba::Processor::Create(dba::ProcessorKind::kDba1Lsu);
  if (!scalar.ok()) return 1;
  auto scalar_run = (*scalar)->RunSort(column, {.profile = true});
  if (!scalar_run.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 scalar_run.status().ToString().c_str());
    return 1;
  }
  std::printf("scalar merge-sort: %llu cycles, %.1f M elements/s\n",
              static_cast<unsigned long long>(scalar_run->metrics.cycles),
              scalar_run->metrics.throughput_meps);
  std::printf(
      "  mispredicted branches: %llu (the merge loop's data-dependent "
      "branch, Section 2.3)\n\n",
      static_cast<unsigned long long>(
          scalar_run->metrics.stats.mispredicted_branches));

  // Cycle-accurate hotspot report (Figure 4, first box).
  auto program = (*scalar)->sort_program(/*scalar=*/true);
  if (!program.ok()) return 1;
  const auto report = dba::toolchain::BuildProfile(
      **program, scalar_run->metrics.stats,
      (*scalar)->cpu().MakeExtNameResolver(), /*top_n=*/6);
  std::printf("profiler hotspots:\n%s\n", report.ToString().c_str());

  // --- Step 2: the "after": the same sort with the EIS. ---
  auto eis = dba::Processor::Create(dba::ProcessorKind::kDba2LsuEis);
  if (!eis.ok()) return 1;
  auto eis_run = (*eis)->RunSort(column);
  if (!eis_run.ok()) return 1;
  std::printf(
      "EIS merge-sort:    %llu cycles, %.1f M elements/s (%.1fx speedup)\n",
      static_cast<unsigned long long>(eis_run->metrics.cycles),
      eis_run->metrics.throughput_meps,
      eis_run->metrics.throughput_meps /
          scalar_run->metrics.throughput_meps);
  std::printf("sorted output is identical: %s\n",
              eis_run->sorted == scalar_run->sorted ? "yes" : "NO (bug!)");
  return 0;
}
