// Scenario: index ANDing for a conjunctive WHERE clause.
//
// A query like
//
//   SELECT ... FROM orders
//   WHERE customer_region = 'EU' AND status = 'OPEN' AND priority = 'HIGH'
//
// probes one secondary index per predicate; each probe returns a sorted
// RID list, and the lists are intersected ("index ANDing", Raman et al.
// [31]). This example runs the three-way intersection on every processor
// configuration and, for RID lists larger than the local store, streams
// them through the data prefetcher.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/processor.h"
#include "core/workload.h"
#include "prefetch/streaming.h"

namespace {

// Synthesizes a RID list for a predicate with the given match fraction
// over a table of `table_rows` rows.
std::vector<uint32_t> IndexProbe(uint32_t table_rows, double match_fraction,
                                 uint64_t seed) {
  dba::Random rng(seed);
  std::vector<uint32_t> rids;
  rids.reserve(static_cast<size_t>(table_rows * match_fraction * 1.1));
  for (uint32_t rid = 0; rid < table_rows; ++rid) {
    if (rng.Bernoulli(match_fraction)) rids.push_back(rid);
  }
  return rids;
}

}  // namespace

int main() {
  constexpr uint32_t kTableRows = 16000;
  const std::vector<uint32_t> region_rids = IndexProbe(kTableRows, 0.4, 1);
  const std::vector<uint32_t> status_rids = IndexProbe(kTableRows, 0.3, 2);
  const std::vector<uint32_t> priority_rids = IndexProbe(kTableRows, 0.2, 3);
  std::printf("index probes: region=%zu, status=%zu, priority=%zu RIDs\n\n",
              region_rids.size(), status_rids.size(), priority_rids.size());

  std::printf("%-22s %14s %14s %12s\n", "configuration", "cycles",
              "throughput", "result");
  for (dba::ProcessorKind kind :
       {dba::ProcessorKind::k108Mini, dba::ProcessorKind::kDba1Lsu,
        dba::ProcessorKind::kDba1LsuEis, dba::ProcessorKind::kDba2LsuEis}) {
    auto processor = dba::Processor::Create(kind);
    if (!processor.ok()) continue;

    // The RID lists exceed a 32 KiB bank: stream via the prefetcher.
    dba::prefetch::StreamingSetOperation streaming(processor->get(),
                                                   dba::prefetch::DmaConfig{});
    auto first = streaming.Run(dba::SetOp::kIntersect, region_rids,
                               status_rids);
    if (!first.ok()) {
      std::fprintf(stderr, "error: %s\n", first.status().ToString().c_str());
      return 1;
    }
    auto second =
        streaming.Run(dba::SetOp::kIntersect, first->result, priority_rids);
    if (!second.ok()) {
      std::fprintf(stderr, "error: %s\n", second.status().ToString().c_str());
      return 1;
    }

    const uint64_t cycles = first->total_cycles + second->total_cycles;
    const double seconds =
        static_cast<double>(cycles) / (*processor)->frequency_hz();
    const double total_elements = static_cast<double>(
        region_rids.size() + status_rids.size() + first->result.size() +
        priority_rids.size());
    std::printf("%-22s %14llu %11.1f M/s %9zu RIDs\n",
                std::string(dba::hwmodel::ConfigKindName(kind)).c_str(),
                static_cast<unsigned long long>(cycles),
                total_elements / seconds / 1e6, second->result.size());
  }

  std::printf(
      "\nthe EIS configurations AND RID lists an order of magnitude faster "
      "at ~1/200th the power of a server core.\n");
  return 0;
}
