// A board of DBA cores: the paper's Section 1 pitch ("the extremely
// low-energy design enables us to put hundreds of chips on a single
// board without any thermal restrictions") as a runnable system
// simulation -- partitioned parallel intersection and sample-sort over
// cycle-accurate cores behind a shared interconnect.

#include <algorithm>
#include <cstdio>

#include "core/workload.h"
#include "system/board.h"

int main() {
  dba::system::BoardConfig config;
  config.num_cores = 32;
  auto board = dba::system::Board::Create(config);
  if (!board.ok()) {
    std::fprintf(stderr, "error: %s\n", board.status().ToString().c_str());
    return 1;
  }
  std::printf("board: %d x DBA_2LSU_EIS = %.1f mm2 silicon, %.2f W\n\n",
              (*board)->num_cores(), (*board)->board_area_mm2(),
              (*board)->board_power_mw() / 1000.0);

  // Parallel RID-list intersection: 2 x 400k elements.
  auto pair = dba::GenerateSetPair(400000, 400000, 0.5, 11);
  auto isect =
      (*board)->RunSetOperation(dba::SetOp::kIntersect, pair->a, pair->b);
  if (!isect.ok()) return 1;
  std::printf("parallel intersection of 2 x 400k RIDs:\n");
  std::printf("  result      %zu RIDs\n", isect->result.size());
  std::printf("  makespan    %llu cycles (%.1f us)\n",
              static_cast<unsigned long long>(isect->makespan_cycles),
              static_cast<double>(isect->makespan_cycles) /
                  (*board)->core_frequency_hz() * 1e6);
  std::printf("  throughput  %.0f M elements/s (%s-bound)\n",
              isect->throughput_meps, isect->noc_bound ? "NoC" : "compute");
  std::printf("  energy      %.1f uJ across all cores\n\n", isect->energy_uj);

  // Parallel sample-sort of 300k values.
  auto values = dba::GenerateSortInput(300000, 23);
  auto sorted = (*board)->RunSort(values);
  if (!sorted.ok()) return 1;
  std::printf("parallel sample-sort of 300k values:\n");
  std::printf("  sorted      %s\n",
              std::is_sorted(sorted->result.begin(), sorted->result.end())
                  ? "yes"
                  : "NO (bug!)");
  std::printf("  makespan    %llu cycles, throughput %.0f M elements/s\n",
              static_cast<unsigned long long>(sorted->makespan_cycles),
              sorted->throughput_meps);
  std::printf(
      "\nper-core load (first 8 cores, cycles): ");
  for (int i = 0; i < 8 && i < (*board)->num_cores(); ++i) {
    std::printf("%llu ", static_cast<unsigned long long>(
                             sorted->per_core_cycles[static_cast<size_t>(i)]));
  }
  std::printf("\n");
  return 0;
}
