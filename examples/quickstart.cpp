// Quickstart: build a database-accelerator processor, intersect two RID
// lists with the instruction-set extension, and inspect the metrics.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/processor.h"
#include "core/workload.h"

int main() {
  // 1. Create the full-featured configuration: two load-store units and
  //    the database instruction-set extension, with partial loading.
  auto processor = dba::Processor::Create(dba::ProcessorKind::kDba2LsuEis);
  if (!processor.ok()) {
    std::fprintf(stderr, "error: %s\n", processor.status().ToString().c_str());
    return 1;
  }

  // 2. Two sorted RID lists, as a secondary index would return them.
  auto pair = dba::GenerateSetPair(/*size_a=*/5000, /*size_b=*/5000,
                                   /*selectivity=*/0.5, /*seed=*/42);

  // 3. Intersect on the accelerator.
  auto run = (*processor)->RunSetOperation(dba::SetOp::kIntersect, pair->a,
                                           pair->b);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().ToString().c_str());
    return 1;
  }

  // 4. Results and cycle-accurate metrics.
  const auto& synthesis = (*processor)->synthesis();
  std::printf("intersected 2 x %zu RIDs -> %zu matches\n", pair->a.size(),
              run->result.size());
  std::printf("cycles:      %llu @ %.0f MHz\n",
              static_cast<unsigned long long>(run->metrics.cycles),
              synthesis.fmax_mhz);
  std::printf("throughput:  %.1f million elements/s\n",
              run->metrics.throughput_meps);
  std::printf("energy:      %.3f nJ per element (%.1f mW core)\n",
              run->metrics.energy_nj_per_element, synthesis.power_mw);
  std::printf("chip area:   %.2f mm2 logic + %.2f mm2 memory (65 nm)\n",
              synthesis.logic_area_mm2, synthesis.mem_area_mm2);

  // 5. Sorting uses the same processor through the merge-sort kernel.
  auto values = dba::GenerateSortInput(6500, 7);
  auto sort_run = (*processor)->RunSort(values);
  if (!sort_run.ok()) {
    std::fprintf(stderr, "error: %s\n", sort_run.status().ToString().c_str());
    return 1;
  }
  std::printf("sorted %zu values at %.1f million elements/s\n",
              sort_run->sorted.size(), sort_run->metrics.throughput_meps);
  return 0;
}
