# Empty dependencies file for streaming_property_test.
# This may be replaced when dependencies are built.
