file(REMOVE_RECURSE
  "CMakeFiles/setop_property_test.dir/setop_property_test.cc.o"
  "CMakeFiles/setop_property_test.dir/setop_property_test.cc.o.d"
  "setop_property_test"
  "setop_property_test.pdb"
  "setop_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setop_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
