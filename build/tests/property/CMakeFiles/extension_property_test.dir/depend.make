# Empty dependencies file for extension_property_test.
# This may be replaced when dependencies are built.
