file(REMOVE_RECURSE
  "CMakeFiles/sort_property_test.dir/sort_property_test.cc.o"
  "CMakeFiles/sort_property_test.dir/sort_property_test.cc.o.d"
  "sort_property_test"
  "sort_property_test.pdb"
  "sort_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
