# Empty compiler generated dependencies file for sort_property_test.
# This may be replaced when dependencies are built.
