file(REMOVE_RECURSE
  "CMakeFiles/tie_interface_test.dir/tie_interface_test.cc.o"
  "CMakeFiles/tie_interface_test.dir/tie_interface_test.cc.o.d"
  "tie_interface_test"
  "tie_interface_test.pdb"
  "tie_interface_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tie_interface_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
