# Empty compiler generated dependencies file for tie_interface_test.
# This may be replaced when dependencies are built.
