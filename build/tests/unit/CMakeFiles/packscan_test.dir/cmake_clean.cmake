file(REMOVE_RECURSE
  "CMakeFiles/packscan_test.dir/packscan_test.cc.o"
  "CMakeFiles/packscan_test.dir/packscan_test.cc.o.d"
  "packscan_test"
  "packscan_test.pdb"
  "packscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
