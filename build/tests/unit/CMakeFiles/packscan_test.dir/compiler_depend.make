# Empty compiler generated dependencies file for packscan_test.
# This may be replaced when dependencies are built.
