# Empty dependencies file for tie_test.
# This may be replaced when dependencies are built.
