file(REMOVE_RECURSE
  "CMakeFiles/tie_test.dir/tie_test.cc.o"
  "CMakeFiles/tie_test.dir/tie_test.cc.o.d"
  "tie_test"
  "tie_test.pdb"
  "tie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
