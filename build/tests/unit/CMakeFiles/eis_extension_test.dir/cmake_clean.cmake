file(REMOVE_RECURSE
  "CMakeFiles/eis_extension_test.dir/eis_extension_test.cc.o"
  "CMakeFiles/eis_extension_test.dir/eis_extension_test.cc.o.d"
  "eis_extension_test"
  "eis_extension_test.pdb"
  "eis_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eis_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
