# Empty compiler generated dependencies file for eis_extension_test.
# This may be replaced when dependencies are built.
