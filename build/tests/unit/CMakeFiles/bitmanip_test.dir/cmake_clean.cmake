file(REMOVE_RECURSE
  "CMakeFiles/bitmanip_test.dir/bitmanip_test.cc.o"
  "CMakeFiles/bitmanip_test.dir/bitmanip_test.cc.o.d"
  "bitmanip_test"
  "bitmanip_test.pdb"
  "bitmanip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmanip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
