# Empty compiler generated dependencies file for bitmanip_test.
# This may be replaced when dependencies are built.
