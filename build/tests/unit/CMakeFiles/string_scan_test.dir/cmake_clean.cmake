file(REMOVE_RECURSE
  "CMakeFiles/string_scan_test.dir/string_scan_test.cc.o"
  "CMakeFiles/string_scan_test.dir/string_scan_test.cc.o.d"
  "string_scan_test"
  "string_scan_test.pdb"
  "string_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
