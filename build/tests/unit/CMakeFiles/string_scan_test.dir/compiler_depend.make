# Empty compiler generated dependencies file for string_scan_test.
# This may be replaced when dependencies are built.
