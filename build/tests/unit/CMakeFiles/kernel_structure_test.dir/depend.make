# Empty dependencies file for kernel_structure_test.
# This may be replaced when dependencies are built.
