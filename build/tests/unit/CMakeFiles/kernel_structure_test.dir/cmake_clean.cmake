file(REMOVE_RECURSE
  "CMakeFiles/kernel_structure_test.dir/kernel_structure_test.cc.o"
  "CMakeFiles/kernel_structure_test.dir/kernel_structure_test.cc.o.d"
  "kernel_structure_test"
  "kernel_structure_test.pdb"
  "kernel_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
