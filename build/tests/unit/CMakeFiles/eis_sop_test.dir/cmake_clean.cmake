file(REMOVE_RECURSE
  "CMakeFiles/eis_sop_test.dir/eis_sop_test.cc.o"
  "CMakeFiles/eis_sop_test.dir/eis_sop_test.cc.o.d"
  "eis_sop_test"
  "eis_sop_test.pdb"
  "eis_sop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eis_sop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
