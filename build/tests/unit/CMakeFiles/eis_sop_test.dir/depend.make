# Empty dependencies file for eis_sop_test.
# This may be replaced when dependencies are built.
