# Empty compiler generated dependencies file for dbkern_test.
# This may be replaced when dependencies are built.
