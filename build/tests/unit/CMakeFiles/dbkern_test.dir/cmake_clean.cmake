file(REMOVE_RECURSE
  "CMakeFiles/dbkern_test.dir/dbkern_test.cc.o"
  "CMakeFiles/dbkern_test.dir/dbkern_test.cc.o.d"
  "dbkern_test"
  "dbkern_test.pdb"
  "dbkern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbkern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
