# CMake generated Testfile for 
# Source directory: /root/repo/tests/unit
# Build directory: /root/repo/build/tests/unit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/unit/common_test[1]_include.cmake")
include("/root/repo/build/tests/unit/isa_test[1]_include.cmake")
include("/root/repo/build/tests/unit/mem_test[1]_include.cmake")
include("/root/repo/build/tests/unit/sim_test[1]_include.cmake")
include("/root/repo/build/tests/unit/tie_test[1]_include.cmake")
include("/root/repo/build/tests/unit/eis_sop_test[1]_include.cmake")
include("/root/repo/build/tests/unit/eis_extension_test[1]_include.cmake")
include("/root/repo/build/tests/unit/dbkern_test[1]_include.cmake")
include("/root/repo/build/tests/unit/hwmodel_test[1]_include.cmake")
include("/root/repo/build/tests/unit/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/unit/toolchain_test[1]_include.cmake")
include("/root/repo/build/tests/unit/prefetch_test[1]_include.cmake")
include("/root/repo/build/tests/unit/query_test[1]_include.cmake")
include("/root/repo/build/tests/unit/system_test[1]_include.cmake")
include("/root/repo/build/tests/unit/bitmanip_test[1]_include.cmake")
include("/root/repo/build/tests/unit/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/unit/processor_test[1]_include.cmake")
include("/root/repo/build/tests/unit/tie_interface_test[1]_include.cmake")
include("/root/repo/build/tests/unit/packscan_test[1]_include.cmake")
include("/root/repo/build/tests/unit/kernel_structure_test[1]_include.cmake")
include("/root/repo/build/tests/unit/partition_test[1]_include.cmake")
include("/root/repo/build/tests/unit/string_scan_test[1]_include.cmake")
