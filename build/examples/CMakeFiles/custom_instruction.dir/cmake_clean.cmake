file(REMOVE_RECURSE
  "CMakeFiles/custom_instruction.dir/custom_instruction.cpp.o"
  "CMakeFiles/custom_instruction.dir/custom_instruction.cpp.o.d"
  "custom_instruction"
  "custom_instruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_instruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
