# Empty dependencies file for sort_pipeline.
# This may be replaced when dependencies are built.
