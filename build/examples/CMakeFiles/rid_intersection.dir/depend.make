# Empty dependencies file for rid_intersection.
# This may be replaced when dependencies are built.
