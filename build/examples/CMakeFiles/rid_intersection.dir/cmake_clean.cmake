file(REMOVE_RECURSE
  "CMakeFiles/rid_intersection.dir/rid_intersection.cpp.o"
  "CMakeFiles/rid_intersection.dir/rid_intersection.cpp.o.d"
  "rid_intersection"
  "rid_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rid_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
