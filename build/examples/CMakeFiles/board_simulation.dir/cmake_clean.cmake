file(REMOVE_RECURSE
  "CMakeFiles/board_simulation.dir/board_simulation.cpp.o"
  "CMakeFiles/board_simulation.dir/board_simulation.cpp.o.d"
  "board_simulation"
  "board_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
