# Empty dependencies file for board_simulation.
# This may be replaced when dependencies are built.
