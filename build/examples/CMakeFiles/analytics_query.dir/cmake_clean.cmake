file(REMOVE_RECURSE
  "CMakeFiles/analytics_query.dir/analytics_query.cpp.o"
  "CMakeFiles/analytics_query.dir/analytics_query.cpp.o.d"
  "analytics_query"
  "analytics_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
