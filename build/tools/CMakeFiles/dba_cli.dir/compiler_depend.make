# Empty compiler generated dependencies file for dba_cli.
# This may be replaced when dependencies are built.
