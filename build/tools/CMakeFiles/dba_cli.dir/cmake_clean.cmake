file(REMOVE_RECURSE
  "CMakeFiles/dba_cli.dir/dba_cli.cc.o"
  "CMakeFiles/dba_cli.dir/dba_cli.cc.o.d"
  "dba_cli"
  "dba_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
