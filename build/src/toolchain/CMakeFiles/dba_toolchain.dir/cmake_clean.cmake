file(REMOVE_RECURSE
  "CMakeFiles/dba_toolchain.dir/equivalence.cc.o"
  "CMakeFiles/dba_toolchain.dir/equivalence.cc.o.d"
  "CMakeFiles/dba_toolchain.dir/profiler.cc.o"
  "CMakeFiles/dba_toolchain.dir/profiler.cc.o.d"
  "libdba_toolchain.a"
  "libdba_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
