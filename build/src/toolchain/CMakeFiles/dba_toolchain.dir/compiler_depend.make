# Empty compiler generated dependencies file for dba_toolchain.
# This may be replaced when dependencies are built.
