file(REMOVE_RECURSE
  "libdba_toolchain.a"
)
