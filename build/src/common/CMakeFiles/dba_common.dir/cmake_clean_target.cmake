file(REMOVE_RECURSE
  "libdba_common.a"
)
