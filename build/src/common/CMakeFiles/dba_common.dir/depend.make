# Empty dependencies file for dba_common.
# This may be replaced when dependencies are built.
