file(REMOVE_RECURSE
  "CMakeFiles/dba_common.dir/status.cc.o"
  "CMakeFiles/dba_common.dir/status.cc.o.d"
  "libdba_common.a"
  "libdba_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
