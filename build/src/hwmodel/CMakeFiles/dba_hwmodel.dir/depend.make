# Empty dependencies file for dba_hwmodel.
# This may be replaced when dependencies are built.
