file(REMOVE_RECURSE
  "libdba_hwmodel.a"
)
