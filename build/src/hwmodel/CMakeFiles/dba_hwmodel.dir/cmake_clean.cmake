file(REMOVE_RECURSE
  "CMakeFiles/dba_hwmodel.dir/components.cc.o"
  "CMakeFiles/dba_hwmodel.dir/components.cc.o.d"
  "CMakeFiles/dba_hwmodel.dir/synthesis.cc.o"
  "CMakeFiles/dba_hwmodel.dir/synthesis.cc.o.d"
  "libdba_hwmodel.a"
  "libdba_hwmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_hwmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
