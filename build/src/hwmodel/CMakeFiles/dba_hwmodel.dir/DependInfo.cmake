
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwmodel/components.cc" "src/hwmodel/CMakeFiles/dba_hwmodel.dir/components.cc.o" "gcc" "src/hwmodel/CMakeFiles/dba_hwmodel.dir/components.cc.o.d"
  "/root/repo/src/hwmodel/synthesis.cc" "src/hwmodel/CMakeFiles/dba_hwmodel.dir/synthesis.cc.o" "gcc" "src/hwmodel/CMakeFiles/dba_hwmodel.dir/synthesis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
