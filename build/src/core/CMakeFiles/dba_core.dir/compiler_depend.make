# Empty compiler generated dependencies file for dba_core.
# This may be replaced when dependencies are built.
