file(REMOVE_RECURSE
  "CMakeFiles/dba_core.dir/processor.cc.o"
  "CMakeFiles/dba_core.dir/processor.cc.o.d"
  "CMakeFiles/dba_core.dir/workload.cc.o"
  "CMakeFiles/dba_core.dir/workload.cc.o.d"
  "libdba_core.a"
  "libdba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
