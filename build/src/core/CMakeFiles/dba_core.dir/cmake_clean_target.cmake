file(REMOVE_RECURSE
  "libdba_core.a"
)
