file(REMOVE_RECURSE
  "CMakeFiles/dba_baseline.dir/scalar_baseline.cc.o"
  "CMakeFiles/dba_baseline.dir/scalar_baseline.cc.o.d"
  "CMakeFiles/dba_baseline.dir/simd_baseline.cc.o"
  "CMakeFiles/dba_baseline.dir/simd_baseline.cc.o.d"
  "libdba_baseline.a"
  "libdba_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
