
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/scalar_baseline.cc" "src/baseline/CMakeFiles/dba_baseline.dir/scalar_baseline.cc.o" "gcc" "src/baseline/CMakeFiles/dba_baseline.dir/scalar_baseline.cc.o.d"
  "/root/repo/src/baseline/simd_baseline.cc" "src/baseline/CMakeFiles/dba_baseline.dir/simd_baseline.cc.o" "gcc" "src/baseline/CMakeFiles/dba_baseline.dir/simd_baseline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
