file(REMOVE_RECURSE
  "libdba_baseline.a"
)
