# Empty compiler generated dependencies file for dba_baseline.
# This may be replaced when dependencies are built.
