file(REMOVE_RECURSE
  "libdba_eis.a"
)
