file(REMOVE_RECURSE
  "CMakeFiles/dba_eis.dir/eis_extension.cc.o"
  "CMakeFiles/dba_eis.dir/eis_extension.cc.o.d"
  "CMakeFiles/dba_eis.dir/networks.cc.o"
  "CMakeFiles/dba_eis.dir/networks.cc.o.d"
  "CMakeFiles/dba_eis.dir/sop.cc.o"
  "CMakeFiles/dba_eis.dir/sop.cc.o.d"
  "libdba_eis.a"
  "libdba_eis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_eis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
