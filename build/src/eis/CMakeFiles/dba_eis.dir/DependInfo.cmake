
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eis/eis_extension.cc" "src/eis/CMakeFiles/dba_eis.dir/eis_extension.cc.o" "gcc" "src/eis/CMakeFiles/dba_eis.dir/eis_extension.cc.o.d"
  "/root/repo/src/eis/networks.cc" "src/eis/CMakeFiles/dba_eis.dir/networks.cc.o" "gcc" "src/eis/CMakeFiles/dba_eis.dir/networks.cc.o.d"
  "/root/repo/src/eis/sop.cc" "src/eis/CMakeFiles/dba_eis.dir/sop.cc.o" "gcc" "src/eis/CMakeFiles/dba_eis.dir/sop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/dba_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dba_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dba_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
