# Empty compiler generated dependencies file for dba_eis.
# This may be replaced when dependencies are built.
