file(REMOVE_RECURSE
  "libdba_system.a"
)
