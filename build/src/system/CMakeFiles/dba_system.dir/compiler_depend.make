# Empty compiler generated dependencies file for dba_system.
# This may be replaced when dependencies are built.
