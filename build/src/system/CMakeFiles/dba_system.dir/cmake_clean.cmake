file(REMOVE_RECURSE
  "CMakeFiles/dba_system.dir/board.cc.o"
  "CMakeFiles/dba_system.dir/board.cc.o.d"
  "libdba_system.a"
  "libdba_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
