file(REMOVE_RECURSE
  "libdba_dbkern.a"
)
