# Empty dependencies file for dba_dbkern.
# This may be replaced when dependencies are built.
