file(REMOVE_RECURSE
  "CMakeFiles/dba_dbkern.dir/bitmanip_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/bitmanip_kernels.cc.o.d"
  "CMakeFiles/dba_dbkern.dir/compression_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/compression_kernels.cc.o.d"
  "CMakeFiles/dba_dbkern.dir/eis_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/eis_kernels.cc.o.d"
  "CMakeFiles/dba_dbkern.dir/partition_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/partition_kernels.cc.o.d"
  "CMakeFiles/dba_dbkern.dir/scalar_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/scalar_kernels.cc.o.d"
  "CMakeFiles/dba_dbkern.dir/string_kernels.cc.o"
  "CMakeFiles/dba_dbkern.dir/string_kernels.cc.o.d"
  "libdba_dbkern.a"
  "libdba_dbkern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_dbkern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
