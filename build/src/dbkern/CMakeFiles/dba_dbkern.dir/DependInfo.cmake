
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbkern/bitmanip_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/bitmanip_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/bitmanip_kernels.cc.o.d"
  "/root/repo/src/dbkern/compression_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/compression_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/compression_kernels.cc.o.d"
  "/root/repo/src/dbkern/eis_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/eis_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/eis_kernels.cc.o.d"
  "/root/repo/src/dbkern/partition_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/partition_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/partition_kernels.cc.o.d"
  "/root/repo/src/dbkern/scalar_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/scalar_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/scalar_kernels.cc.o.d"
  "/root/repo/src/dbkern/string_kernels.cc" "src/dbkern/CMakeFiles/dba_dbkern.dir/string_kernels.cc.o" "gcc" "src/dbkern/CMakeFiles/dba_dbkern.dir/string_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dba_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/eis/CMakeFiles/dba_eis.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/dba_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dba_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
