# Empty compiler generated dependencies file for dba_sim.
# This may be replaced when dependencies are built.
