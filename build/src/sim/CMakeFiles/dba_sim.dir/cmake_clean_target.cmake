file(REMOVE_RECURSE
  "libdba_sim.a"
)
