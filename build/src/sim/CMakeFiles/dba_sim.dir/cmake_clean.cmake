file(REMOVE_RECURSE
  "CMakeFiles/dba_sim.dir/cpu.cc.o"
  "CMakeFiles/dba_sim.dir/cpu.cc.o.d"
  "libdba_sim.a"
  "libdba_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
