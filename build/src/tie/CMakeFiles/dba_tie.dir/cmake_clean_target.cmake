file(REMOVE_RECURSE
  "libdba_tie.a"
)
