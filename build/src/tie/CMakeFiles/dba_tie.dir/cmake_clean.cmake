file(REMOVE_RECURSE
  "CMakeFiles/dba_tie.dir/bitmanip_extension.cc.o"
  "CMakeFiles/dba_tie.dir/bitmanip_extension.cc.o.d"
  "CMakeFiles/dba_tie.dir/example_extension.cc.o"
  "CMakeFiles/dba_tie.dir/example_extension.cc.o.d"
  "CMakeFiles/dba_tie.dir/packscan_extension.cc.o"
  "CMakeFiles/dba_tie.dir/packscan_extension.cc.o.d"
  "CMakeFiles/dba_tie.dir/partition_extension.cc.o"
  "CMakeFiles/dba_tie.dir/partition_extension.cc.o.d"
  "CMakeFiles/dba_tie.dir/string_extension.cc.o"
  "CMakeFiles/dba_tie.dir/string_extension.cc.o.d"
  "libdba_tie.a"
  "libdba_tie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_tie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
