
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tie/bitmanip_extension.cc" "src/tie/CMakeFiles/dba_tie.dir/bitmanip_extension.cc.o" "gcc" "src/tie/CMakeFiles/dba_tie.dir/bitmanip_extension.cc.o.d"
  "/root/repo/src/tie/example_extension.cc" "src/tie/CMakeFiles/dba_tie.dir/example_extension.cc.o" "gcc" "src/tie/CMakeFiles/dba_tie.dir/example_extension.cc.o.d"
  "/root/repo/src/tie/packscan_extension.cc" "src/tie/CMakeFiles/dba_tie.dir/packscan_extension.cc.o" "gcc" "src/tie/CMakeFiles/dba_tie.dir/packscan_extension.cc.o.d"
  "/root/repo/src/tie/partition_extension.cc" "src/tie/CMakeFiles/dba_tie.dir/partition_extension.cc.o" "gcc" "src/tie/CMakeFiles/dba_tie.dir/partition_extension.cc.o.d"
  "/root/repo/src/tie/string_extension.cc" "src/tie/CMakeFiles/dba_tie.dir/string_extension.cc.o" "gcc" "src/tie/CMakeFiles/dba_tie.dir/string_extension.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/eis/CMakeFiles/dba_eis.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dba_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dba_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
