# Empty compiler generated dependencies file for dba_tie.
# This may be replaced when dependencies are built.
