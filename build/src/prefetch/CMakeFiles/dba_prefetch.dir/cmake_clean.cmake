file(REMOVE_RECURSE
  "CMakeFiles/dba_prefetch.dir/dma.cc.o"
  "CMakeFiles/dba_prefetch.dir/dma.cc.o.d"
  "CMakeFiles/dba_prefetch.dir/streaming.cc.o"
  "CMakeFiles/dba_prefetch.dir/streaming.cc.o.d"
  "libdba_prefetch.a"
  "libdba_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
