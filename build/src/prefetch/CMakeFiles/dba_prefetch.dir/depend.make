# Empty dependencies file for dba_prefetch.
# This may be replaced when dependencies are built.
