file(REMOVE_RECURSE
  "libdba_prefetch.a"
)
