file(REMOVE_RECURSE
  "CMakeFiles/dba_mem.dir/memory.cc.o"
  "CMakeFiles/dba_mem.dir/memory.cc.o.d"
  "libdba_mem.a"
  "libdba_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
