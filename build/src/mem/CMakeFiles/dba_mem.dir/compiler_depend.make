# Empty compiler generated dependencies file for dba_mem.
# This may be replaced when dependencies are built.
