file(REMOVE_RECURSE
  "libdba_mem.a"
)
