file(REMOVE_RECURSE
  "libdba_isa.a"
)
