# Empty dependencies file for dba_isa.
# This may be replaced when dependencies are built.
