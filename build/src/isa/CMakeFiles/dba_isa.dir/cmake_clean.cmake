file(REMOVE_RECURSE
  "CMakeFiles/dba_isa.dir/assembler.cc.o"
  "CMakeFiles/dba_isa.dir/assembler.cc.o.d"
  "CMakeFiles/dba_isa.dir/disassembler.cc.o"
  "CMakeFiles/dba_isa.dir/disassembler.cc.o.d"
  "CMakeFiles/dba_isa.dir/encoding.cc.o"
  "CMakeFiles/dba_isa.dir/encoding.cc.o.d"
  "CMakeFiles/dba_isa.dir/opcode.cc.o"
  "CMakeFiles/dba_isa.dir/opcode.cc.o.d"
  "libdba_isa.a"
  "libdba_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
