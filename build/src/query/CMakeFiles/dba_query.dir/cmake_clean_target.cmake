file(REMOVE_RECURSE
  "libdba_query.a"
)
