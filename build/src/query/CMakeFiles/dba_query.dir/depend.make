# Empty dependencies file for dba_query.
# This may be replaced when dependencies are built.
