file(REMOVE_RECURSE
  "CMakeFiles/dba_query.dir/engine.cc.o"
  "CMakeFiles/dba_query.dir/engine.cc.o.d"
  "CMakeFiles/dba_query.dir/index.cc.o"
  "CMakeFiles/dba_query.dir/index.cc.o.d"
  "CMakeFiles/dba_query.dir/predicate.cc.o"
  "CMakeFiles/dba_query.dir/predicate.cc.o.d"
  "CMakeFiles/dba_query.dir/table.cc.o"
  "CMakeFiles/dba_query.dir/table.cc.o.d"
  "libdba_query.a"
  "libdba_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dba_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
