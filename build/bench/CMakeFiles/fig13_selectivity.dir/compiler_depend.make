# Empty compiler generated dependencies file for fig13_selectivity.
# This may be replaced when dependencies are built.
