file(REMOVE_RECURSE
  "CMakeFiles/fig13_selectivity.dir/fig13_selectivity.cc.o"
  "CMakeFiles/fig13_selectivity.dir/fig13_selectivity.cc.o.d"
  "fig13_selectivity"
  "fig13_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
