# Empty compiler generated dependencies file for instruction_merging.
# This may be replaced when dependencies are built.
