file(REMOVE_RECURSE
  "CMakeFiles/instruction_merging.dir/instruction_merging.cc.o"
  "CMakeFiles/instruction_merging.dir/instruction_merging.cc.o.d"
  "instruction_merging"
  "instruction_merging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instruction_merging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
