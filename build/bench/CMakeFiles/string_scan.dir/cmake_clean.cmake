file(REMOVE_RECURSE
  "CMakeFiles/string_scan.dir/string_scan.cc.o"
  "CMakeFiles/string_scan.dir/string_scan.cc.o.d"
  "string_scan"
  "string_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
