# Empty dependencies file for string_scan.
# This may be replaced when dependencies are built.
