file(REMOVE_RECURSE
  "CMakeFiles/fig10_pipeline.dir/fig10_pipeline.cc.o"
  "CMakeFiles/fig10_pipeline.dir/fig10_pipeline.cc.o.d"
  "fig10_pipeline"
  "fig10_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
