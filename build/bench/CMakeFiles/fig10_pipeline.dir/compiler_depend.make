# Empty compiler generated dependencies file for fig10_pipeline.
# This may be replaced when dependencies are built.
