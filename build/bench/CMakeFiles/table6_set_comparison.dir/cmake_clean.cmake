file(REMOVE_RECURSE
  "CMakeFiles/table6_set_comparison.dir/table6_set_comparison.cc.o"
  "CMakeFiles/table6_set_comparison.dir/table6_set_comparison.cc.o.d"
  "table6_set_comparison"
  "table6_set_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_set_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
