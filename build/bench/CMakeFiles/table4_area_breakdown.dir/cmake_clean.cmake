file(REMOVE_RECURSE
  "CMakeFiles/table4_area_breakdown.dir/table4_area_breakdown.cc.o"
  "CMakeFiles/table4_area_breakdown.dir/table4_area_breakdown.cc.o.d"
  "table4_area_breakdown"
  "table4_area_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_area_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
