# Empty dependencies file for table5_sort_comparison.
# This may be replaced when dependencies are built.
