# Empty compiler generated dependencies file for prefetch_scaling.
# This may be replaced when dependencies are built.
