file(REMOVE_RECURSE
  "CMakeFiles/prefetch_scaling.dir/prefetch_scaling.cc.o"
  "CMakeFiles/prefetch_scaling.dir/prefetch_scaling.cc.o.d"
  "prefetch_scaling"
  "prefetch_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
