file(REMOVE_RECURSE
  "CMakeFiles/partition_throughput.dir/partition_throughput.cc.o"
  "CMakeFiles/partition_throughput.dir/partition_throughput.cc.o.d"
  "partition_throughput"
  "partition_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
