# Empty compiler generated dependencies file for partition_throughput.
# This may be replaced when dependencies are built.
