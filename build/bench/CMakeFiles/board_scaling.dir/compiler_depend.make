# Empty compiler generated dependencies file for board_scaling.
# This may be replaced when dependencies are built.
