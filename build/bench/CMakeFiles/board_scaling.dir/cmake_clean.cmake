file(REMOVE_RECURSE
  "CMakeFiles/board_scaling.dir/board_scaling.cc.o"
  "CMakeFiles/board_scaling.dir/board_scaling.cc.o.d"
  "board_scaling"
  "board_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/board_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
