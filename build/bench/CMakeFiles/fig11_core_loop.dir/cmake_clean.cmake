file(REMOVE_RECURSE
  "CMakeFiles/fig11_core_loop.dir/fig11_core_loop.cc.o"
  "CMakeFiles/fig11_core_loop.dir/fig11_core_loop.cc.o.d"
  "fig11_core_loop"
  "fig11_core_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_core_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
