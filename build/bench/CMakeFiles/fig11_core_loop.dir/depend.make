# Empty dependencies file for fig11_core_loop.
# This may be replaced when dependencies are built.
