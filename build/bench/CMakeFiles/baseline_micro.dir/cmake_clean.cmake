file(REMOVE_RECURSE
  "CMakeFiles/baseline_micro.dir/baseline_micro.cc.o"
  "CMakeFiles/baseline_micro.dir/baseline_micro.cc.o.d"
  "baseline_micro"
  "baseline_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
