
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/baseline_micro.cc" "bench/CMakeFiles/baseline_micro.dir/baseline_micro.cc.o" "gcc" "bench/CMakeFiles/baseline_micro.dir/baseline_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dba_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dbkern/CMakeFiles/dba_dbkern.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/dba_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/eis/CMakeFiles/dba_eis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dba_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dba_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dba_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/hwmodel/CMakeFiles/dba_hwmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dba_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
