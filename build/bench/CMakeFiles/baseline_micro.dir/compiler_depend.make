# Empty compiler generated dependencies file for baseline_micro.
# This may be replaced when dependencies are built.
