// Compressed column scan (the "compression" candidate primitive of
// Section 1, cf. SIMD-scan [36]): bit-unpacking throughput of the
// merged unpack_beat instruction vs the base-ISA routine, across code
// widths, plus an end-to-end compressed RID-list intersection.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dbkern/compression_kernels.h"
#include "isa/assembler.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/packscan_extension.h"

namespace dba::bench {
namespace {

constexpr uint64_t kSrcBase = 0x1000;
constexpr uint64_t kDstBase = 0x80000;
constexpr uint32_t kValues = 4096;

struct UnpackResult {
  uint64_t cycles = 0;
};

UnpackResult RunUnpack(const std::vector<uint32_t>& values, int bits,
                       bool use_extension) {
  sim::CoreConfig config;
  config.num_lsus = 2;
  config.data_bus_bits = 128;
  config.instruction_bus_bits = 64;
  sim::Cpu cpu(config);
  auto memory = mem::Memory::Create(
      {.name = "m", .base = kSrcBase, .size = 1 << 20,
       .access_latency = 1});
  tie::PackScanExtension extension;
  std::vector<uint32_t> packed =
      tie::PackScanExtension::Pack(values, bits);
  packed.resize((packed.size() + 7) & ~size_t{3}, 0);
  auto program = dbkern::BuildUnpackKernel(use_extension, bits);
  if (!memory.ok() || !cpu.AttachMemory(&*memory).ok() ||
      !extension.Attach(&cpu).ok() || !program.ok() ||
      !memory->WriteBlock(kSrcBase, packed).ok() ||
      !cpu.LoadProgram(*program).ok()) {
    std::fprintf(stderr,
                 "bench: setting up the %d-bit %s unpack kernel failed\n",
                 bits, use_extension ? "merged" : "software");
    std::exit(1);
  }
  cpu.set_reg(isa::Reg::a0, kSrcBase);
  cpu.set_reg(isa::Reg::a2, static_cast<uint32_t>(values.size()));
  cpu.set_reg(isa::Reg::a4, kDstBase);
  auto stats = cpu.Run();
  if (!stats.ok() || cpu.reg(isa::Reg::a5) != values.size()) {
    std::fprintf(stderr,
                 "bench: the %d-bit %s unpack kernel %s (%u of %zu values "
                 "unpacked)\n",
                 bits, use_extension ? "merged" : "software",
                 stats.ok() ? "miscounted" : "failed",
                 cpu.reg(isa::Reg::a5), values.size());
    std::exit(1);
  }
  return {stats->cycles};
}

void Run() {
  PrintHeader("Compressed column scan: unpack throughput (410 MHz core)");
  Random rng(kSeed);

  std::printf("%-6s %16s %16s %18s %10s\n", "bits", "sw cycles/val",
              "hw cycles/val", "hw M values/s", "speedup");
  for (int bits : {7, 9, 13, 17, 21, 25, 32}) {
    std::vector<uint32_t> values(kValues);
    const uint32_t mask =
        bits >= 32 ? 0xFFFFFFFFu : ((1u << bits) - 1);
    for (auto& v : values) v = rng.Next32() & mask;
    const UnpackResult sw = RunUnpack(values, bits, false);
    const UnpackResult hw = RunUnpack(values, bits, true);
    const double sw_per = static_cast<double>(sw.cycles) / kValues;
    const double hw_per = static_cast<double>(hw.cycles) / kValues;
    AddBenchRow("packscan core")
        .Set("op", "unpack")
        .Set("bits", bits)
        .Set("sw_cycles_per_value", sw_per)
        .Set("merged_cycles_per_value", hw_per)
        .Set("merged_mvalues_per_second", 410.0 / hw_per)
        .Set("speedup", sw_per / hw_per);
    std::printf("%-6d %16.2f %16.2f %18.0f %9.1fx\n", bits, sw_per, hw_per,
                410.0 / hw_per, sw_per / hw_per);
  }

  PrintHeader("End-to-end: compressed RID lists -> unpack -> intersect");
  auto pair = GenerateSetPair(4000, 4000, 0.5, kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr,
                 "bench: generating a 2x4000-element set pair failed: %s\n",
                 pair.status().ToString().c_str());
    std::exit(1);
  }
  // RIDs fit in 17 bits here (values < 4000*17).
  const int bits = 17;
  const UnpackResult unpack_a = RunUnpack(pair->a, bits, true);
  const UnpackResult unpack_b = RunUnpack(pair->b, bits, true);
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  auto isect = processor->RunSetOperation(SetOp::kIntersect, pair->a,
                                          pair->b);
  if (!isect.ok()) {
    std::fprintf(stderr,
                 "bench: intersect of the unpacked RID lists on "
                 "DBA_2LSU_EIS failed: %s\n",
                 isect.status().ToString().c_str());
    std::exit(1);
  }
  const uint64_t total_cycles =
      unpack_a.cycles + unpack_b.cycles + isect->metrics.cycles;
  const double seconds =
      static_cast<double>(total_cycles) / processor->frequency_hz();
  const double compressed_bytes =
      2.0 * 4000.0 * bits / 8.0;
  const double uncompressed_bytes = 2.0 * 4000.0 * 4.0;
  std::printf(
      "2 x 4000 RIDs at %d bits: unpack %llu + %llu cycles, intersect "
      "%llu cycles\n",
      bits, static_cast<unsigned long long>(unpack_a.cycles),
      static_cast<unsigned long long>(unpack_b.cycles),
      static_cast<unsigned long long>(isect->metrics.cycles));
  AddBenchRow("DBA_2LSU_EIS")
      .Set("op", "unpack+intersect")
      .Set("bits", bits)
      .Set("cycles", total_cycles)
      .Set("throughput_meps", 8000.0 / seconds / 1e6)
      .Set("traffic_reduction", uncompressed_bytes / compressed_bytes);
  std::printf(
      "end-to-end: %.1f M elements/s; memory traffic reduced %.1fx "
      "(%.0f vs %.0f bytes)\n",
      8000.0 / seconds / 1e6, uncompressed_bytes / compressed_bytes,
      compressed_bytes, uncompressed_bytes);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "compression_scan",
                               dba::bench::Run);
}
