// Reproduces paper Figure 13: intersection throughput of the six
// processor configurations as the selectivity sweeps from 0% to 100%
// (5000-element sets).

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_util.h"

namespace dba::bench {
namespace {

struct Series {
  ProcessorKind kind;
  std::optional<bool> partial;
  const char* name;
};

const Series kSeries[] = {
    {ProcessorKind::k108Mini, std::nullopt, "108Mini"},
    {ProcessorKind::kDba1Lsu, std::nullopt, "DBA_1LSU"},
    {ProcessorKind::kDba1LsuEis, false, "DBA_1LSU_EIS"},
    {ProcessorKind::kDba2LsuEis, false, "DBA_2LSU_EIS"},
    {ProcessorKind::kDba1LsuEis, true, "DBA_1LSU_EIS+p"},
    {ProcessorKind::kDba2LsuEis, true, "DBA_2LSU_EIS+p"},
};

void SweepOperation(SetOp op, const char* title,
                    std::vector<std::unique_ptr<Processor>>& processors) {
  PrintHeader(title);
  std::printf("%-5s", "sel%");
  for (const Series& series : kSeries) std::printf(" %14s", series.name);
  std::printf("\n");
  for (int percent = 0; percent <= 100; percent += 10) {
    std::printf("%4d ", percent);
    for (size_t i = 0; i < processors.size(); ++i) {
      const double throughput =
          SetOpThroughput(*processors[i], op, percent / 100.0);
      AddBenchRow(kSeries[i].name)
          .Set("op", SetOpName(op))
          .Set("selectivity_percent", percent)
          .Set("throughput_meps", throughput);
      std::printf(" %14.1f", throughput);
    }
    std::printf("\n");
  }
}

void Run() {
  std::vector<std::unique_ptr<Processor>> processors;
  for (const Series& series : kSeries) {
    ProcessorOptions options;
    if (series.partial.has_value()) options.partial_loading = *series.partial;
    processors.push_back(MustCreate(series.kind, options));
  }

  SweepOperation(
      SetOp::kIntersect,
      "Figure 13: intersection throughput [M elements/s] vs selectivity",
      processors);
  std::printf(
      "\nexpected shape: all series rise with selectivity; EIS series rise "
      "faster; partial loading converges to non-partial at 100%%.\n");

  // Section 5.2: "We obtain similar results also for the other two set
  // operation algorithms."
  SweepOperation(SetOp::kUnion,
                 "Union throughput vs selectivity (same shapes)",
                 processors);
  SweepOperation(SetOp::kDifference,
                 "Difference throughput vs selectivity (same shapes)",
                 processors);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "fig13_selectivity",
                               dba::bench::Run);
}
