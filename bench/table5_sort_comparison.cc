// Reproduces paper Table 5: merge-sort comparison -- hwsort (our EIS
// merge-sort on the simulated DBA_2LSU_EIS) vs swsort (Chhugani et al.
// SIMD merge-sort; published Intel Q9550 figure plus a re-measurement of
// our reimplementation on this host).

#include <chrono>
#include <cstdio>

#include "baseline/simd_baseline.h"
#include "bench/bench_util.h"
#include "hwmodel/reference.h"

namespace dba::bench {
namespace {

double MeasureHostSortMeps(uint32_t n) {
  const std::vector<uint32_t> values = GenerateSortInput(n, kSeed);
  // Warm-up + best-of-3.
  double best_seconds = 1e30;
  for (int repetition = 0; repetition < 3; ++repetition) {
    const auto start = std::chrono::steady_clock::now();
    auto sorted = baseline::SimdMergeSort(values);
    const auto stop = std::chrono::steady_clock::now();
    if (sorted.size() != values.size()) {  // keep the result live
      std::fprintf(stderr,
                   "bench: host SimdMergeSort of %u values returned %zu "
                   "values\n",
                   n, sorted.size());
      std::exit(1);
    }
    best_seconds = std::min(
        best_seconds, std::chrono::duration<double>(stop - start).count());
  }
  return static_cast<double>(n) / best_seconds / 1e6;
}

void Run() {
  PrintHeader("Table 5: merge-sort comparison (hwsort vs swsort)");
  const hwmodel::X86Reference q9550 = hwmodel::IntelQ9550();

  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  const RunMetrics hwsort_metrics = SortMetrics(*processor, kSortElements);
  const double hwsort_meps = hwsort_metrics.throughput_meps;
  const auto& synthesis = processor->synthesis();
  const double swsort_host_meps =
      MeasureHostSortMeps(static_cast<uint32_t>(q9550.paper_workload_elements));

  RecordRun("DBA_2LSU_EIS", "sort", hwsort_metrics)
      .Set("role", "hwsort")
      .Set("power_mw", synthesis.power_mw)
      .Set("area_mm2", synthesis.total_area_mm2());
  AddBenchRow(q9550.name)
      .Set("op", "sort")
      .Set("role", "swsort")
      .Set("paper_throughput_meps", q9550.paper_throughput_meps)
      .Set("host_throughput_meps", swsort_host_meps)
      .Set("power_mw", q9550.max_tdp_w * 1000.0)
      .Set("area_mm2", q9550.die_area_mm2);

  std::printf("%-28s %16s %16s\n", "", q9550.name.c_str(), "DBA_2LSU_EIS");
  std::printf("%-28s %10.0f M/s %10.1f M/s   (paper: 60 | 28.3)\n",
              "Throughput (elements/s)", q9550.paper_throughput_meps,
              hwsort_meps);
  std::printf("%-28s %12.2f GHz %10.2f GHz\n", "Clock frequency",
              q9550.clock_ghz, synthesis.fmax_mhz / 1000.0);
  std::printf("%-28s %14.0f W %12.3f W\n", "Max. TDP", q9550.max_tdp_w,
              synthesis.power_mw / 1000.0);
  std::printf("%-28s %12d/%-3d %10d/%-3d\n", "Cores/Threads", q9550.cores,
              q9550.threads, 1, 1);
  std::printf("%-28s %13d nm %12d nm\n", "Feature size", q9550.feature_nm,
              65);
  std::printf("%-28s %12.0f mm2 %11.1f mm2\n", "Area (logic & memory)",
              q9550.die_area_mm2, synthesis.total_area_mm2());

  std::printf("\nderived comparisons:\n");
  std::printf("  swsort/hwsort throughput: %.2fx (paper: ~2x)\n",
              q9550.paper_throughput_meps / hwsort_meps);
  std::printf("  power ratio Q9550/DBA: %.0fx (paper: ~700x)\n",
              hwmodel::PowerRatio(q9550, synthesis.power_mw));
  std::printf(
      "  energy/element: swsort %.2f nJ vs hwsort %.3f nJ -> %.0fx less\n",
      hwmodel::EnergyPerElementNj(q9550.max_tdp_w * 1000.0,
                                  q9550.paper_throughput_meps),
      hwmodel::EnergyPerElementNj(synthesis.power_mw, hwsort_meps),
      hwmodel::EnergyPerElementNj(q9550.max_tdp_w * 1000.0,
                                  q9550.paper_throughput_meps) /
          hwmodel::EnergyPerElementNj(synthesis.power_mw, hwsort_meps));
  std::printf(
      "  swsort reimplementation on this host (%u values, %s): %.0f M/s\n",
      static_cast<uint32_t>(q9550.paper_workload_elements),
      baseline::SimdBaselineUsesVectorUnit() ? "SSE4.1" : "portable",
      swsort_host_meps);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "table5_sort_comparison",
                               dba::bench::Run);
}
