// Quantifies the instruction-merging technique of paper Section 2.2 on
// the three worked examples (CRC, bit reverse, popcount): cycles per
// word for the software routine on the base ISA vs. the merged TIE
// instruction, on the same simulated core.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dbkern/bitmanip_kernels.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/bitmanip_extension.h"

namespace dba::bench {
namespace {

constexpr uint64_t kDataBase = 0x1000;
constexpr uint64_t kOutBase = 0x40000;
constexpr uint32_t kWords = 2048;

uint64_t RunKernel(const char* name, const isa::Program& program,
                   const std::vector<uint32_t>& words) {
  sim::CoreConfig config;
  config.instruction_bus_bits = 64;
  sim::Cpu cpu(config);
  auto memory = mem::Memory::Create(
      {.name = "m", .base = kDataBase, .size = 1 << 20,
       .access_latency = 1});
  tie::BitmanipExtension extension;
  if (!memory.ok() || !cpu.AttachMemory(&*memory).ok() ||
      !extension.Attach(&cpu).ok() ||
      !memory->WriteBlock(kDataBase, words).ok() ||
      !cpu.LoadProgram(program).ok()) {
    std::fprintf(stderr, "bench: setting up the %s kernel failed\n", name);
    std::exit(1);
  }
  cpu.set_reg(isa::Reg::a0, kDataBase);
  cpu.set_reg(isa::Reg::a2, static_cast<uint32_t>(words.size()));
  cpu.set_reg(isa::Reg::a4, kOutBase);
  auto stats = cpu.Run();
  if (!stats.ok()) {
    std::fprintf(stderr, "bench: running the %s kernel failed: %s\n", name,
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  return stats->cycles;
}

void Run() {
  PrintHeader("Instruction merging (Section 2.2): software vs merged op");
  Random rng(kSeed);
  std::vector<uint32_t> words(kWords);
  for (auto& w : words) w = rng.Next32();

  struct Row {
    const char* name;
    Result<isa::Program> (*builder)(bool);
  };
  const Row rows[] = {
      {"crc32", dbkern::BuildCrc32Kernel},
      {"bit_reverse", dbkern::BuildBitReverseKernel},
      {"popcount", dbkern::BuildPopcountKernel},
  };

  std::printf("%-14s %20s %20s %10s\n", "primitive", "sw cycles/word",
              "merged cycles/word", "speedup");
  for (const Row& row : rows) {
    auto sw = row.builder(false);
    auto hw = row.builder(true);
    if (!sw.ok() || !hw.ok()) {
      std::fprintf(stderr, "bench: building the %s kernels failed: %s\n",
                   row.name,
                   (sw.ok() ? hw.status() : sw.status()).ToString().c_str());
      std::exit(1);
    }
    const double sw_cycles =
        static_cast<double>(RunKernel(row.name, *sw, words)) / kWords;
    const double hw_cycles =
        static_cast<double>(RunKernel(row.name, *hw, words)) / kWords;
    AddBenchRow("bitmanip core")
        .Set("op", std::string(row.name))
        .Set("sw_cycles_per_word", sw_cycles)
        .Set("merged_cycles_per_word", hw_cycles)
        .Set("speedup", sw_cycles / hw_cycles);
    std::printf("%-14s %20.1f %20.1f %9.1fx\n", row.name, sw_cycles,
                hw_cycles, sw_cycles / hw_cycles);
  }
  std::printf(
      "\npaper Section 2.2: \"the time for performing the CRC operation "
      "thus depends only on the latency of the single new instruction "
      "instead of the latency of the sequence of the core "
      "instructions.\"\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "instruction_merging",
                               dba::bench::Run);
}
