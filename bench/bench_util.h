#ifndef DBA_BENCH_BENCH_UTIL_H_
#define DBA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "core/processor.h"
#include "core/workload.h"

namespace dba::bench {

/// Standard workload parameters of the evaluation (Section 5.2): sets of
/// 5000 32-bit elements, 6500-value sort inputs, 50% selectivity.
inline constexpr uint32_t kSetElements = 5000;
inline constexpr uint32_t kSortElements = 6500;
inline constexpr double kDefaultSelectivity = 0.5;
inline constexpr uint64_t kSeed = 20140622;  // SIGMOD'14 opening day

inline std::unique_ptr<Processor> MustCreate(ProcessorKind kind,
                                             ProcessorOptions options = {}) {
  auto processor = Processor::Create(kind, options);
  if (!processor.ok()) {
    std::fprintf(stderr, "failed to create processor: %s\n",
                 processor.status().ToString().c_str());
    std::abort();
  }
  return *std::move(processor);
}

inline double SetOpThroughput(Processor& processor, SetOp op,
                              double selectivity = kDefaultSelectivity,
                              uint32_t elements = kSetElements) {
  auto pair = GenerateSetPair(elements, elements, selectivity, kSeed);
  auto run = processor.RunSetOperation(op, pair->a, pair->b);
  if (!run.ok()) {
    std::fprintf(stderr, "set operation failed: %s\n",
                 run.status().ToString().c_str());
    std::abort();
  }
  return run->metrics.throughput_meps;
}

inline double SortThroughput(Processor& processor,
                             uint32_t elements = kSortElements) {
  auto values = GenerateSortInput(elements, kSeed);
  auto run = processor.RunSort(values);
  if (!run.ok()) {
    std::fprintf(stderr, "sort failed: %s\n",
                 run.status().ToString().c_str());
    std::abort();
  }
  return run->metrics.throughput_meps;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace dba::bench

#endif  // DBA_BENCH_BENCH_UTIL_H_
