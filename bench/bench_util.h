#ifndef DBA_BENCH_BENCH_UTIL_H_
#define DBA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/processor.h"
#include "core/workload.h"
#include "obs/bench_json.h"
#include "obs/metrics_json.h"
#include "obs/metrics/metrics.h"

namespace dba::bench {

/// Standard workload parameters of the evaluation (Section 5.2): sets of
/// 5000 32-bit elements, 6500-value sort inputs, 50% selectivity.
inline constexpr uint32_t kSetElements = 5000;
inline constexpr uint32_t kSortElements = 6500;
inline constexpr double kDefaultSelectivity = 0.5;
inline constexpr uint64_t kSeed = 20140622;  // SIGMOD'14 opening day

inline std::string ConfigName(ProcessorKind kind) {
  return std::string(hwmodel::ConfigKindName(kind));
}

inline std::string SetOpName(SetOp op) {
  return std::string(eis::SopModeName(op));
}

namespace internal {

/// Shared state of one bench binary: the dba.bench.v1 row accumulator
/// plus the --json destination, both owned by BenchMain.
struct ReporterState {
  std::unique_ptr<obs::BenchJsonWriter> writer;
  std::string json_path;
  std::string metrics_path;
};

inline ReporterState& Reporter() {
  static ReporterState state;
  return state;
}

inline obs::BenchJsonWriter& Writer() {
  ReporterState& state = Reporter();
  if (state.writer == nullptr) {
    // Helpers used outside BenchMain (tests) still accumulate rows.
    state.writer = std::make_unique<obs::BenchJsonWriter>("adhoc");
  }
  return *state.writer;
}

/// atexit hook: flushes the runtime-metrics registry to --metrics-out.
/// Registered (once) as soon as the flag is parsed so the early
/// std::exit(1) error paths in the helpers below still emit whatever
/// telemetry the run accumulated before failing.
inline void FlushMetricsAtExit() {
  const std::string& path = Reporter().metrics_path;
  if (path.empty()) return;
  const Status status = obs::WriteMetricsSnapshotFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "bench: writing metrics snapshot %s failed: %s\n",
                 path.c_str(), status.ToString().c_str());
  }
}

}  // namespace internal

/// True when the bench was invoked with --json (results will be written
/// as a dba.bench.v1 document on exit).
inline bool JsonEnabled() {
  return !internal::Reporter().json_path.empty();
}

/// Appends one result row with "config" preset; finish it fluently:
///   AddBenchRow("DBA_2LSU_EIS").Set("op", "intersect").Set(...)
/// Rows are written by BenchMain when --json is given, otherwise they
/// are discarded on exit (recording is cheap, so benches always record).
inline obs::JsonValue& AddBenchRow(std::string config) {
  return internal::Writer().AddRow(std::move(config));
}

/// Appends the standard throughput row for one kernel run: cycles, CPI,
/// cycle breakdown, throughput, energy, and LSU beats.
inline obs::JsonValue& RecordRun(std::string config, std::string op,
                                 const RunMetrics& metrics) {
  obs::JsonValue& row = AddBenchRow(std::move(config));
  row.Set("op", std::move(op));
  obs::MergeRunMetrics(row, metrics);
  return row;
}

inline std::unique_ptr<Processor> MustCreate(ProcessorKind kind,
                                             ProcessorOptions options = {}) {
  auto processor = Processor::Create(kind, options);
  if (!processor.ok()) {
    std::fprintf(stderr,
                 "bench: creating processor %s (partial_loading=%s, "
                 "unroll=%d) failed: %s\n",
                 ConfigName(kind).c_str(),
                 options.partial_loading ? "on" : "off", options.unroll,
                 processor.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(processor);
}

/// Runs one set operation and returns its metrics; on failure it names
/// the configuration and operation before exiting non-zero so CI logs
/// are attributable.
inline RunMetrics SetOpMetrics(Processor& processor, SetOp op,
                               double selectivity = kDefaultSelectivity,
                               uint32_t elements = kSetElements) {
  auto pair = GenerateSetPair(elements, elements, selectivity, kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr,
                 "bench: generating a 2x%u-element set pair "
                 "(selectivity %.2f) failed: %s\n",
                 elements, selectivity, pair.status().ToString().c_str());
    std::exit(1);
  }
  auto run = processor.RunSetOperation(op, pair->a, pair->b);
  if (!run.ok()) {
    std::fprintf(stderr,
                 "bench: %s on %s over 2x%u elements (selectivity %.2f) "
                 "failed: %s\n",
                 SetOpName(op).c_str(),
                 processor.synthesis().config_name.c_str(), elements,
                 selectivity, run.status().ToString().c_str());
    std::exit(1);
  }
  return run->metrics;
}

inline double SetOpThroughput(Processor& processor, SetOp op,
                              double selectivity = kDefaultSelectivity,
                              uint32_t elements = kSetElements) {
  return SetOpMetrics(processor, op, selectivity, elements).throughput_meps;
}

/// Runs the merge-sort kernel and returns its metrics; failures name
/// the configuration and input size before exiting non-zero.
inline RunMetrics SortMetrics(Processor& processor,
                              uint32_t elements = kSortElements) {
  auto values = GenerateSortInput(elements, kSeed);
  auto run = processor.RunSort(values);
  if (!run.ok()) {
    std::fprintf(stderr, "bench: sort of %u values on %s failed: %s\n",
                 elements, processor.synthesis().config_name.c_str(),
                 run.status().ToString().c_str());
    std::exit(1);
  }
  return run->metrics;
}

inline double SortThroughput(Processor& processor,
                             uint32_t elements = kSortElements) {
  return SortMetrics(processor, elements).throughput_meps;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// Entry point shared by all bench binaries: parses the common flags
/// (--json <path> writes the accumulated rows as a dba.bench.v1
/// document, see docs/OBSERVABILITY.md), runs the bench body, and
/// writes/validates the JSON output. Benches with their own knobs pass
/// an `extra_flag` callback: it sees every argument the common parser
/// does not recognize and returns true when it consumed it (see
/// board_scaling's --host-threads).
inline int BenchMain(int argc, char** argv, const char* bench_name,
                     void (*run)(),
                     const std::function<bool(std::string_view)>&
                         extra_flag = {},
                     const char* extra_usage = nullptr) {
  std::string json_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--json <path>] [--metrics-out <path>]%s\n"
                  "  --json <path>         also write results as a "
                  "dba.bench.v1 JSON document\n"
                  "  --metrics-out <path>  write a dba.metrics.v1 runtime "
                  "telemetry snapshot on exit\n                        "
                  "(flushed via atexit, so failed runs still emit partial "
                  "telemetry)\n%s",
                  bench_name, extra_usage != nullptr ? " [flags]" : "",
                  extra_usage != nullptr ? extra_usage : "");
      return 0;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_path = std::string(arg.substr(14));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (extra_flag && extra_flag(arg)) {
      // Consumed by the bench's own parser.
    } else {
      std::fprintf(stderr,
                   "%s: unknown option '%s' (supported: --json <path>, "
                   "--metrics-out <path>)\n",
                   bench_name, argv[i]);
      return 2;
    }
  }
  internal::ReporterState& reporter = internal::Reporter();
  reporter.writer = std::make_unique<obs::BenchJsonWriter>(bench_name);
  reporter.json_path = json_path;
  reporter.metrics_path = metrics_path;
  if (!metrics_path.empty()) std::atexit(internal::FlushMetricsAtExit);

  run();

  if (!json_path.empty()) {
    reporter.writer->AttachMetrics(obs::MetricsSnapshotToJson(
        obs::MetricsRegistry::Global().Snapshot()));
    const Status status = reporter.writer->WriteTo(json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: writing %s failed: %s\n", bench_name,
                   json_path.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu result rows to %s\n",
                reporter.writer->row_count(), json_path.c_str());
  }
  return 0;
}

}  // namespace dba::bench

#endif  // DBA_BENCH_BENCH_UTIL_H_
