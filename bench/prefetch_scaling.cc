// Validates the Section 5.2 system-level claim: "System level simulation
// validates a constant throughput of the processor for larger data sets
// due to the concurrently performed data prefetch." Streams sets far
// beyond the local-store capacity through the DMA double buffer.

#include <cstdio>

#include "bench/bench_util.h"
#include "prefetch/streaming.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Prefetcher scaling: intersection throughput vs set size");
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);

  // In-memory reference at the paper's workload size.
  const RunMetrics reference = SetOpMetrics(*processor, SetOp::kIntersect);
  RecordRun("DBA_2LSU_EIS", "intersect", reference)
      .Set("elements_per_set", kSetElements)
      .Set("mode", "in-memory");
  std::printf("in-memory reference (2x%u): %.1f M elements/s\n",
              kSetElements, reference.throughput_meps);

  std::printf("%-12s %10s %16s %14s %14s %10s\n", "elements/set", "chunks",
              "throughput M/s", "compute cyc", "dma cyc", "bound");
  for (uint32_t n : {1000u, 4000u, 16000u, 64000u, 256000u, 1000000u}) {
    auto big_pair =
        GenerateSetPair(n, n, kDefaultSelectivity, kSeed + n);
    if (!big_pair.ok()) {
      std::fprintf(stderr,
                   "bench: generating a 2x%u-element set pair failed: %s\n",
                   n, big_pair.status().ToString().c_str());
      std::exit(1);
    }
    prefetch::StreamingSetOperation streaming(processor.get(),
                                              prefetch::DmaConfig{});
    auto run = streaming.Run(SetOp::kIntersect, big_pair->a, big_pair->b);
    if (!run.ok()) {
      std::fprintf(stderr,
                   "bench: streaming intersect of 2x%u elements on "
                   "DBA_2LSU_EIS failed: %s\n",
                   n, run.status().ToString().c_str());
      std::exit(1);
    }
    AddBenchRow("DBA_2LSU_EIS")
        .Set("op", "intersect")
        .Set("mode", "streaming")
        .Set("elements_per_set", n)
        .Set("chunks", run->chunks)
        .Set("throughput_meps", run->throughput_meps)
        .Set("compute_cycles", run->compute_cycles)
        .Set("dma_cycles", run->dma_cycles)
        .Set("bound", std::string(run->dma_bound ? "dma" : "compute"));
    std::printf("%-12u %10u %16.1f %14llu %14llu %10s\n", n, run->chunks,
                run->throughput_meps,
                static_cast<unsigned long long>(run->compute_cycles),
                static_cast<unsigned long long>(run->dma_cycles),
                run->dma_bound ? "dma" : "compute");
  }
  std::printf(
      "\nexpected shape: throughput roughly flat once n exceeds the local "
      "store; the pipeline stays compute-bound.\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "prefetch_scaling",
                               dba::bench::Run);
}
