// Validates the Section 5.2 system-level claim: "System level simulation
// validates a constant throughput of the processor for larger data sets
// due to the concurrently performed data prefetch." Streams sets far
// beyond the local-store capacity through the DMA double buffer.

#include <cstdio>

#include "bench/bench_util.h"
#include "prefetch/streaming.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Prefetcher scaling: intersection throughput vs set size");
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);

  // In-memory reference at the paper's workload size.
  auto pair = GenerateSetPair(kSetElements, kSetElements,
                              kDefaultSelectivity, kSeed);
  auto reference =
      processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
  if (!reference.ok()) std::abort();
  std::printf("in-memory reference (2x%u): %.1f M elements/s\n",
              kSetElements, reference->metrics.throughput_meps);

  std::printf("%-12s %10s %16s %14s %14s %10s\n", "elements/set", "chunks",
              "throughput M/s", "compute cyc", "dma cyc", "bound");
  for (uint32_t n : {1000u, 4000u, 16000u, 64000u, 256000u, 1000000u}) {
    auto big_pair =
        GenerateSetPair(n, n, kDefaultSelectivity, kSeed + n);
    prefetch::StreamingSetOperation streaming(processor.get(),
                                              prefetch::DmaConfig{});
    auto run = streaming.Run(SetOp::kIntersect, big_pair->a, big_pair->b);
    if (!run.ok()) std::abort();
    std::printf("%-12u %10u %16.1f %14llu %14llu %10s\n", n, run->chunks,
                run->throughput_meps,
                static_cast<unsigned long long>(run->compute_cycles),
                static_cast<unsigned long long>(run->dma_cycles),
                run->dma_bound ? "dma" : "compute");
  }
  std::printf(
      "\nexpected shape: throughput roughly flat once n exceeds the local "
      "store; the pipeline stays compute-bound.\n");
}

}  // namespace
}  // namespace dba::bench

int main() {
  dba::bench::Run();
  return 0;
}
