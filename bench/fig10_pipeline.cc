// Reproduces the pipeline analysis of paper Figures 7/10 and Table 1:
// the instruction ordering of the EIS core loop, per-instruction issue
// counts, the memory-interface utilization, and the theoretical peak
// throughput ("8 elements every two cycles -> 2000 M elements/s at
// 500 MHz").

#include <cstdio>

#include "bench/bench_util.h"
#include "hwmodel/synthesis.h"
#include "toolchain/profiler.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Figure 7/10: EIS instruction schedule and peak throughput");

  auto processor = MustCreate(ProcessorKind::kDba2LsuEis,
                              {.partial_loading = true, .unroll = 1});
  const RunMetrics metrics = SetOpMetrics(*processor, SetOp::kIntersect);
  const auto& stats = metrics.stats;
  const auto& counters = processor->eis()->counters();

  const double cycles_per_iteration =
      static_cast<double>(stats.cycles) /
      static_cast<double>(counters.sop_executions);
  const double occupancy =
      static_cast<double>(stats.lsu_beats[0] + stats.lsu_beats[1]) /
      (2.0 * static_cast<double>(stats.cycles));
  RecordRun("DBA_2LSU_EIS", "intersect", metrics)
      .Set("unroll", 1)
      .Set("sop_executions", counters.sop_executions)
      .Set("cycles_per_iteration", cycles_per_iteration)
      .Set("memory_interface_occupancy", occupancy)
      .Set("paper_cycles_per_iteration", 3);

  std::printf("core loop (unroll 1), 2x%u elements, 50%% selectivity:\n",
              kSetElements);
  std::printf("  cycles                      %10llu\n",
              static_cast<unsigned long long>(stats.cycles));
  std::printf("  SOP executions (iterations) %10llu\n",
              static_cast<unsigned long long>(counters.sop_executions));
  std::printf("  cycles / iteration          %10.2f  (paper: 3)\n",
              static_cast<double>(stats.cycles) /
                  static_cast<double>(counters.sop_executions));
  std::printf("  LSU0 beats                  %10llu\n",
              static_cast<unsigned long long>(stats.lsu_beats[0]));
  std::printf("  LSU1 beats (incl. stores)   %10llu\n",
              static_cast<unsigned long long>(stats.lsu_beats[1]));
  std::printf("  memory-interface occupancy  %9.1f%%  (beats / 2 LSU-cycles)\n",
              100.0 * static_cast<double>(stats.lsu_beats[0] +
                                          stats.lsu_beats[1]) /
                  (2.0 * static_cast<double>(stats.cycles)));
  std::printf("  elements consumed per SOP   %10.2f\n",
              static_cast<double>(counters.elements_consumed) /
                  static_cast<double>(counters.sop_executions));

  // Theoretical peak: both LSUs load 4 elements each, every other cycle
  // (the store cycle alternates), at the 28 nm clock.
  const auto at28 = hwmodel::Synthesize(hwmodel::ConfigKind::kDba2LsuEis,
                                        hwmodel::TechNode::k28nmGfSlp);
  const double peak_meps = 8.0 / 2.0 * at28.fmax_mhz;
  std::printf(
      "\ntheoretical maximum throughput: 8 elements / 2 cycles x %.0f MHz "
      "= %.0f M elements/s (paper: 2000 M at 500 MHz)\n",
      at28.fmax_mhz, peak_meps);

  // Latency of the Figure 10 pipeline: LD -> LD_P -> SOP -> ST_S -> ST
  // plus the loop stage.
  std::printf("pipeline latency: 6 cycles (LD, LD_P, SOP, ST_S, ST, loop)\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "fig10_pipeline",
                               dba::bench::Run);
}
