// Adaptive-intersection microbenchmark: sweeps set-size skew from 1:1
// to 1:4096 and times every planner route -- the EIS merge datapath
// (simulated time, deterministic), host galloping, host SIMD merge, and
// the partition-probe index -- plus the planner's chosen route at each
// point (docs/PLANNER.md).
//
// Row schema (dba.bench.v1):
//   route rows   config/op/route/skew, elements, wall_ns (min of reps),
//                and for the EIS route cycles + gated throughput_meps
//                (simulated, so deterministic across hosts).
//   planner rows route=planner, chosen route, estimated vs measured ns,
//                regret vs the best measured route, and speedup_vs_eis
//                (host wall numbers: reported, not gated).

#include <algorithm>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "baseline/scalar_baseline.h"
#include "bench/bench_util.h"
#include "query/planner.h"

namespace dba::bench {
namespace {

constexpr uint32_t kSmallElements = 512;
constexpr uint32_t kSkews[] = {1, 4, 16, 64, 256, 1024, 4096};
constexpr int kReps = 5;

std::string SkewName(uint32_t skew) { return "1:" + std::to_string(skew); }

struct RouteSample {
  double wall_ns = 0;         // best-of-kReps execution time
  double build_ns = 0;        // transient index build (partition route)
  uint64_t cycles = 0;        // simulated cycles (EIS route only)
  double sim_ns = 0;          // simulated time (EIS route only)
};

/// Times one route with best-of-kReps and verifies the result against
/// the scalar reference on every repetition.
RouteSample MeasureRoute(query::Route route, const SetPair& pair,
                         Processor& processor, const RunSettings& settings,
                         const std::vector<uint32_t>& expected) {
  RouteSample sample;
  sample.wall_ns = std::numeric_limits<double>::infinity();
  sample.build_ns = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    auto run = query::RunIntersectRoute(route, pair.a, pair.b, &processor,
                                        settings);
    if (!run.ok()) {
      std::fprintf(stderr, "intersect_adaptive: route %s failed: %s\n",
                   std::string(query::RouteName(route)).c_str(),
                   run.status().ToString().c_str());
      std::exit(1);
    }
    if (run->result != expected) {
      std::fprintf(stderr,
                   "intersect_adaptive: route %s result mismatch "
                   "(%zu vs %zu elements)\n",
                   std::string(query::RouteName(route)).c_str(),
                   run->result.size(), expected.size());
      std::exit(1);
    }
    if (route == query::Route::kEisMerge) {
      // Simulated time is deterministic: one rep defines it.
      sample.cycles = run->accelerator_cycles;
      sample.sim_ns = run->route_seconds * 1e9;
      sample.wall_ns = sample.sim_ns;
      sample.build_ns = 0;
      break;
    }
    sample.wall_ns = std::min(sample.wall_ns, run->route_seconds * 1e9);
    sample.build_ns = std::min(sample.build_ns, run->build_seconds * 1e9);
  }
  return sample;
}

void Run() {
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  RunSettings settings;
  settings.sim_mode = sim::ExecMode::kTurbo;  // exact results, model cycles
  query::Planner planner{query::PlannerOptions{}};  // calibrated cost model

  PrintHeader("adaptive intersection: skew sweep, all routes");
  std::printf("%8s %12s | %12s %12s %12s %12s | %-15s %10s %8s\n", "skew",
              "elements", "eis_ns(sim)", "gallop_ns", "simd_ns",
              "partition_ns", "planner_route", "speedup", "regret");

  for (const uint32_t skew : kSkews) {
    const uint32_t large_elements = kSmallElements * skew;
    auto pair = GenerateSetPair(kSmallElements, large_elements,
                                kDefaultSelectivity, kSeed + skew);
    if (!pair.ok()) {
      std::fprintf(stderr, "intersect_adaptive: workload 1:%u failed: %s\n",
                   skew, pair.status().ToString().c_str());
      std::exit(1);
    }
    const std::vector<uint32_t> expected =
        baseline::ScalarIntersect(pair->a, pair->b);
    const uint64_t total_elements =
        static_cast<uint64_t>(kSmallElements) + large_elements;

    std::array<RouteSample, query::kNumRoutes> samples;
    for (size_t r = 0; r < query::kNumRoutes; ++r) {
      samples[r] = MeasureRoute(static_cast<query::Route>(r), *pair,
                                *processor, settings, expected);
    }

    // Per-route rows. Only the EIS row carries the gated
    // throughput_meps: its time base is simulated, so the value is
    // deterministic across CI hosts; host wall numbers stay ungated.
    for (size_t r = 0; r < query::kNumRoutes; ++r) {
      const auto route = static_cast<query::Route>(r);
      obs::JsonValue& row = AddBenchRow(
          route == query::Route::kEisMerge ? ConfigName(processor->kind())
                                           : "HOST");
      row.Set("op", "intersect")
          .Set("route", std::string(query::RouteName(route)))
          .Set("skew", SkewName(skew))
          .Set("elements", total_elements)
          .Set("wall_ns", samples[r].wall_ns);
      if (route == query::Route::kEisMerge) {
        row.Set("cycles", samples[r].cycles)
            .Set("throughput_meps", static_cast<double>(total_elements) /
                                        samples[r].sim_ns * 1e3);
      }
      if (route == query::Route::kPartitionProbe) {
        row.Set("build_ns", samples[r].build_ns);
      }
    }

    // Planner-chosen row: decision with no prebuilt index (steady-state
    // routing), measured against the best measured route.
    const query::PlanDecision decision =
        planner.Plan(pair->a.size(), pair->b.size(), false);
    const size_t chosen = static_cast<size_t>(decision.route);
    double best_ns = std::numeric_limits<double>::infinity();
    size_t best_route = 0;
    // The partition route's transient build is not a steady-state
    // choice; exclude it from the regret baseline (the planner can only
    // reach it through the savings meter).
    for (size_t r = 0; r < query::kNumRoutes; ++r) {
      if (static_cast<query::Route>(r) == query::Route::kPartitionProbe) {
        continue;
      }
      if (samples[r].wall_ns < best_ns) {
        best_ns = samples[r].wall_ns;
        best_route = r;
      }
    }
    const double chosen_ns = samples[chosen].wall_ns;
    const double regret = best_ns > 0 ? chosen_ns / best_ns - 1.0 : 0.0;
    const double speedup_vs_eis =
        chosen_ns > 0 ? samples[0].sim_ns / chosen_ns : 0.0;
    obs::JsonValue& planner_row = AddBenchRow("PLANNER");
    planner_row.Set("op", "intersect")
        .Set("route", "planner")
        .Set("chosen", std::string(query::RouteName(decision.route)))
        .Set("best_measured",
             std::string(query::RouteName(
                 static_cast<query::Route>(best_route))))
        .Set("skew", SkewName(skew))
        .Set("elements", total_elements)
        .Set("estimated_ns", decision.chosen_ns)
        .Set("wall_ns", chosen_ns)
        .Set("regret", regret)
        .Set("speedup_vs_eis", speedup_vs_eis);

    std::printf(
        "%8s %12llu | %12.0f %12.0f %12.0f %12.0f | %-15s %9.2fx %7.1f%%\n",
        SkewName(skew).c_str(),
        static_cast<unsigned long long>(total_elements), samples[0].sim_ns,
        samples[1].wall_ns, samples[2].wall_ns, samples[3].wall_ns,
        std::string(query::RouteName(decision.route)).c_str(),
        speedup_vs_eis, regret * 100.0);
  }

  std::printf(
      "\nwall_ns: best of %d reps; eis_ns is simulated time (cycles / "
      "f_max, deterministic); partition_ns excludes the transient build\n",
      kReps);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "intersect_adaptive",
                               dba::bench::Run);
}
