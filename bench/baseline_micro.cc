// Google-benchmark microbenchmarks of the host software baselines
// (Section 5.4): scalar vs SIMD merge-sort and set intersection across
// sizes and selectivities.

#include <benchmark/benchmark.h>

#include "baseline/scalar_baseline.h"
#include "baseline/simd_baseline.h"
#include "core/workload.h"

namespace dba::baseline {
namespace {

void BM_ScalarMergeSort(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const std::vector<uint32_t> values = GenerateSortInput(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarMergeSort(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ScalarMergeSort)->Range(1 << 10, 1 << 19);

void BM_SimdMergeSort(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const std::vector<uint32_t> values = GenerateSortInput(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimdMergeSort(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdMergeSort)->Range(1 << 10, 1 << 19);

void BM_ScalarIntersect(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const auto selectivity = static_cast<double>(state.range(1)) / 100.0;
  auto pair = GenerateSetPair(n, n, selectivity, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarIntersect(pair->a, pair->b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ScalarIntersect)
    ->Args({1 << 12, 50})
    ->Args({1 << 16, 50})
    ->Args({1 << 20, 50})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 100});

void BM_SimdIntersect(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  const auto selectivity = static_cast<double>(state.range(1)) / 100.0;
  auto pair = GenerateSetPair(n, n, selectivity, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimdIntersect(pair->a, pair->b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_SimdIntersect)
    ->Args({1 << 12, 50})
    ->Args({1 << 16, 50})
    ->Args({1 << 20, 50})
    ->Args({1 << 16, 0})
    ->Args({1 << 16, 100});

void BM_ScalarUnion(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  auto pair = GenerateSetPair(n, n, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarUnion(pair->a, pair->b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ScalarUnion)->Arg(1 << 16);

void BM_ScalarDifference(benchmark::State& state) {
  const auto n = static_cast<uint32_t>(state.range(0));
  auto pair = GenerateSetPair(n, n, 0.5, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScalarDifference(pair->a, pair->b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_ScalarDifference)->Arg(1 << 16);

}  // namespace
}  // namespace dba::baseline

BENCHMARK_MAIN();
