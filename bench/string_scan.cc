// String predicate scan (the "string operations" candidate primitive of
// Section 1; the paper's general-purpose reference point is SSE4.2):
// masked fixed-width dictionary/prefix scan with the str_scan
// instruction vs the base-ISA routine, across predicate selectivities.

#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dbkern/string_kernels.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/string_extension.h"

namespace dba::bench {
namespace {

constexpr uint64_t kColumnBase = 0x1000;
constexpr uint64_t kPatternBase = 0x200000;
constexpr uint64_t kMaskBase = 0x200010;
constexpr uint64_t kResultBase = 0x210000;
constexpr uint32_t kRows = 8192;

uint64_t RunScan(const std::vector<uint32_t>& column_words, uint32_t rows,
                 const char* pattern, bool use_extension,
                 uint32_t* matches) {
  sim::CoreConfig config;
  config.num_lsus = 2;
  config.data_bus_bits = 128;
  config.instruction_bus_bits = 64;
  sim::Cpu cpu(config);
  auto memory = mem::Memory::Create(
      {.name = "m", .base = kColumnBase, .size = 8 << 20,
       .access_latency = 1});
  tie::StringExtension extension;
  uint8_t pattern_row[16] = {0};
  uint8_t mask_row[16] = {0};
  std::memcpy(pattern_row, pattern, std::strlen(pattern));
  std::memset(mask_row, 0xFF, 16);
  std::vector<uint32_t> pattern_words(4);
  std::vector<uint32_t> mask_words(4);
  std::memcpy(pattern_words.data(), pattern_row, 16);
  std::memcpy(mask_words.data(), mask_row, 16);
  auto program = dbkern::BuildStringScanKernel(use_extension);
  if (!memory.ok() || !cpu.AttachMemory(&*memory).ok() ||
      !extension.Attach(&cpu).ok() || !program.ok() ||
      !memory->WriteBlock(kColumnBase, column_words).ok() ||
      !memory->WriteBlock(kPatternBase, pattern_words).ok() ||
      !memory->WriteBlock(kMaskBase, mask_words).ok() ||
      !cpu.LoadProgram(*program).ok()) {
    std::fprintf(stderr,
                 "bench: setting up the %s string-scan kernel failed\n",
                 use_extension ? "merged" : "software");
    std::exit(1);
  }
  cpu.set_reg(isa::Reg::a0, kColumnBase);
  cpu.set_reg(isa::Reg::a1, kPatternBase);
  cpu.set_reg(isa::Reg::a2, rows);
  cpu.set_reg(isa::Reg::a3, kMaskBase);
  cpu.set_reg(isa::Reg::a4, kResultBase);
  auto stats = cpu.Run();
  if (!stats.ok()) {
    std::fprintf(stderr,
                 "bench: running the %s string-scan kernel over %u rows "
                 "failed: %s\n",
                 use_extension ? "merged" : "software", rows,
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  *matches = cpu.reg(isa::Reg::a5);
  return stats->cycles;
}

void Run() {
  PrintHeader("String predicate scan: str_scan vs software (410 MHz)");
  Random rng(kSeed);

  std::printf("%-12s %16s %16s %16s %10s\n", "match rate", "sw cycles/row",
              "hw cycles/row", "hw M rows/s", "speedup");
  for (const double match_rate : {0.001, 0.1, 0.5}) {
    // Column of 16-byte status strings; `match_rate` of them "OPEN".
    std::vector<uint32_t> column(kRows * 4, 0);
    uint32_t expected = 0;
    for (uint32_t row = 0; row < kRows; ++row) {
      const bool hit = rng.NextDouble() < match_rate;
      const char* text = hit ? "OPEN" : "CLOSED";
      expected += hit ? 1 : 0;
      std::memcpy(reinterpret_cast<uint8_t*>(column.data()) + 16 * row,
                  text, std::strlen(text));
    }
    uint32_t hw_matches = 0;
    uint32_t sw_matches = 0;
    const double sw = static_cast<double>(
                          RunScan(column, kRows, "OPEN", false, &sw_matches)) /
                      kRows;
    const double hw = static_cast<double>(
                          RunScan(column, kRows, "OPEN", true, &hw_matches)) /
                      kRows;
    if (hw_matches != expected || sw_matches != expected) {
      std::fprintf(stderr,
                   "bench: string-scan match counts diverge (sw %u, merged "
                   "%u, expected %u)\n",
                   sw_matches, hw_matches, expected);
      std::exit(1);
    }
    AddBenchRow("string core")
        .Set("op", "str_scan")
        .Set("match_rate_percent", match_rate * 100)
        .Set("sw_cycles_per_row", sw)
        .Set("merged_cycles_per_row", hw)
        .Set("merged_mrows_per_second", 410.0 / hw)
        .Set("speedup", sw / hw);
    std::printf("%-12.1f %16.2f %16.2f %16.0f %9.1fx\n", match_rate * 100,
                sw, hw, 410.0 / hw, sw / hw);
  }
  std::printf(
      "\nthe 16-byte comparator array tests a full dictionary code per "
      "cycle; the software path pays per word and per branch.\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "string_scan", dba::bench::Run);
}
