// Ablation study of the design choices DESIGN.md calls out: partial
// loading, the second load-store unit, and loop unrolling -- each
// toggled independently on the intersection workload.

#include <cstdio>

#include "bench/bench_util.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Ablation: partial loading x LSUs x unrolling (intersection)");
  std::printf("%-14s %-9s %-8s %16s %16s\n", "config", "partial", "unroll",
              "tput 50% M/s", "tput 0% M/s");
  for (ProcessorKind kind :
       {ProcessorKind::kDba1LsuEis, ProcessorKind::kDba2LsuEis}) {
    for (bool partial : {false, true}) {
      for (int unroll : {1, 32}) {
        auto processor = MustCreate(
            kind, {.partial_loading = partial, .unroll = unroll});
        const double at50 = SetOpThroughput(*processor, SetOp::kIntersect,
                                            0.5);
        const double at0 =
            SetOpThroughput(*processor, SetOp::kIntersect, 0.0);
        AddBenchRow(ConfigName(kind))
            .Set("op", "intersect")
            .Set("partial_loading", partial)
            .Set("unroll", unroll)
            .Set("throughput_meps_sel50", at50)
            .Set("throughput_meps_sel0", at0);
        std::printf("%-14s %-9s %-8d %16.1f %16.1f\n",
                    std::string(hwmodel::ConfigKindName(kind)).c_str(),
                    partial ? "yes" : "no", unroll, at50, at0);
      }
    }
  }

  PrintHeader("Ablation: branch-predictor influence on the scalar kernels");
  // The scalar merge loop's "hardly predictable branch" (Section 2.3):
  // compare mispredict counts across selectivities on DBA_1LSU.
  auto processor = MustCreate(ProcessorKind::kDba1Lsu);
  std::printf("%-8s %14s %18s %16s\n", "sel%", "cycles", "mispredicts",
              "tput M/s");
  for (double selectivity : {0.0, 0.5, 1.0}) {
    const RunMetrics metrics =
        SetOpMetrics(*processor, SetOp::kIntersect, selectivity);
    RecordRun("DBA_1LSU", "intersect", metrics)
        .Set("selectivity_percent", selectivity * 100)
        .Set("mispredicted_branches",
             metrics.stats.mispredicted_branches);
    std::printf("%-8.0f %14llu %18llu %16.1f\n", selectivity * 100,
                static_cast<unsigned long long>(metrics.cycles),
                static_cast<unsigned long long>(
                    metrics.stats.mispredicted_branches),
                metrics.throughput_meps);
  }
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "ablation", dba::bench::Run);
}
