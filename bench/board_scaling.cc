// Reproduces the Section 5.4 scale-out discussion: "the number of cores
// of DBA_2LSU_EIS could be largely increased until it occupies the same
// area as the Intel Q9550 processor. Even under pessimistic assumptions,
// DBA_2LSU_EIS could provide an order of magnitude more cores ...".
//
// The bench sweeps board sizes up to the Q9550-area-equivalent count,
// running partitioned parallel intersection on cycle-accurate cores over
// a shared-interconnect model.

#include <cstdio>

#include "bench/bench_util.h"
#include "hwmodel/reference.h"
#include "system/board.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Board scaling: parallel intersection across DBA cores");

  const auto reference = hwmodel::IntelQ9550();
  auto single = MustCreate(ProcessorKind::kDba2LsuEis);
  const double core_area = single->synthesis().total_area_mm2();
  const int area_equivalent_cores =
      static_cast<int>(reference.die_area_mm2 / core_area);
  std::printf(
      "one DBA_2LSU_EIS core: %.2f mm2, %.1f mW -> %d cores fit in one "
      "Q9550 die (%g mm2)\n\n",
      core_area, single->synthesis().power_mw, area_equivalent_cores,
      reference.die_area_mm2);

  auto pair = GenerateSetPair(500000, 500000, kDefaultSelectivity, kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr,
                 "bench: generating a 2x500000-element set pair failed: %s\n",
                 pair.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%-8s %16s %12s %12s %12s %10s\n", "cores", "tput [M/s]",
              "speedup", "P [W]", "energy [uJ]", "bound");
  double single_tput = 0;
  for (int cores : {1, 2, 4, 8, 16, 32, 64, 128}) {
    if (cores > area_equivalent_cores + 20) break;
    system::BoardConfig config;
    config.num_cores = cores;
    auto board = system::Board::Create(config);
    if (!board.ok()) {
      std::fprintf(stderr, "bench: creating a %d-core board failed: %s\n",
                   cores, board.status().ToString().c_str());
      std::exit(1);
    }
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    if (!run.ok()) {
      std::fprintf(stderr,
                   "bench: intersect on a %d-core board failed: %s\n", cores,
                   run.status().ToString().c_str());
      std::exit(1);
    }
    if (cores == 1) single_tput = run->throughput_meps;
    AddBenchRow("DBA_2LSU_EIS board")
        .Set("op", "intersect")
        .Set("cores", cores)
        .Set("throughput_meps", run->throughput_meps)
        .Set("speedup", run->throughput_meps / single_tput)
        .Set("board_power_mw", run->board_power_mw)
        .Set("energy_uj", run->energy_uj)
        .Set("bound", std::string(run->noc_bound ? "noc" : "compute"));
    std::printf("%-8d %16.0f %12.1f %12.2f %12.1f %10s\n", cores,
                run->throughput_meps, run->throughput_meps / single_tput,
                run->board_power_mw / 1000.0, run->energy_uj,
                run->noc_bound ? "noc" : "compute");
  }

  std::printf(
      "\ncomparison anchor: the i7-920 runs swset at 1100 M/s / 130 W; a "
      "128-core board delivers two orders of magnitude more throughput in "
      "~17 W.\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "board_scaling",
                               dba::bench::Run);
}
