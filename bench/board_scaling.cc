// Reproduces the Section 5.4 scale-out discussion: "the number of cores
// of DBA_2LSU_EIS could be largely increased until it occupies the same
// area as the Intel Q9550 processor. Even under pessimistic assumptions,
// DBA_2LSU_EIS could provide an order of magnitude more cores ...".
//
// The bench sweeps board sizes up to the Q9550-area-equivalent count,
// running partitioned parallel intersection on cycle-accurate cores over
// a shared-interconnect model. Simulated numbers (throughput, energy,
// makespan) are invariant under --host-threads and --sim-mode (modulo
// the documented turbo cycle model); host_wall_seconds, host_speedup,
// and sim_speedup track how fast the *simulator* runs:
//   host_speedup = serial host wall / this run's wall (thread scaling),
//   sim_speedup  = interpret-mode host wall / this mode's wall at the
//                  same thread count (fast-forward/turbo core speedup).

#include <charconv>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "hwmodel/reference.h"
#include "sim/exec_mode.h"
#include "system/board.h"

namespace dba::bench {
namespace {

int g_host_threads = 0;  // 0 = hardware concurrency
sim::ExecMode g_sim_mode = sim::ExecMode::kFastForward;

/// Minimum-of-N repetitions for every wall-clock sample: single-shot
/// wall times on a shared host are dominated by scheduler noise, and
/// speedup columns divide two of them. Simulated outputs are identical
/// across repetitions, so min-wall changes only the host-time columns.
constexpr int kWallReps = 5;

/// Host wall-clock of the same run under `mode` with `host_threads`
/// simulator threads; denominator/numerator of the speedup columns.
double ReferenceWallSeconds(int cores, int host_threads, sim::ExecMode mode,
                            SetOp op, std::span<const uint32_t> a,
                            std::span<const uint32_t> b) {
  double best = 0;
  for (int rep = 0; rep < kWallReps; ++rep) {
    system::BoardConfig config;
    config.num_cores = cores;
    config.host_threads = host_threads;
    config.sim_mode = mode;
    auto board = system::Board::Create(config);
    if (!board.ok()) return 0;
    auto run = (*board)->RunSetOperation(op, a, b);
    if (!run.ok()) return 0;
    if (rep == 0 || run->host_wall_seconds < best) {
      best = run->host_wall_seconds;
    }
  }
  return best;
}

void Run() {
  PrintHeader("Board scaling: parallel intersection across DBA cores");

  const int host_threads = g_host_threads == 0
                               ? common::ThreadPool::HardwareConcurrency()
                               : g_host_threads;
  const auto reference = hwmodel::IntelQ9550();
  auto single = MustCreate(ProcessorKind::kDba2LsuEis);
  const double core_area = single->synthesis().total_area_mm2();
  const int area_equivalent_cores =
      static_cast<int>(reference.die_area_mm2 / core_area);
  std::printf(
      "one DBA_2LSU_EIS core: %.2f mm2, %.1f mW -> %d cores fit in one "
      "Q9550 die (%g mm2); simulating with %d host thread(s), %s mode\n\n",
      core_area, single->synthesis().power_mw, area_equivalent_cores,
      reference.die_area_mm2, host_threads,
      std::string(sim::ExecModeName(g_sim_mode)).c_str());

  auto pair = GenerateSetPair(500000, 500000, kDefaultSelectivity, kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr,
                 "bench: generating a 2x500000-element set pair failed: %s\n",
                 pair.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%-8s %12s %8s %8s %11s %8s %12s %12s %12s\n", "cores",
              "tput [M/s]", "speedup", "P [W]", "energy [uJ]", "bound",
              "host [s]", "host_spdup", "sim_speedup");
  double single_tput = 0;
  for (int cores : {1, 2, 4, 8, 16, 32, 64, 128}) {
    if (cores > area_equivalent_cores + 20) break;
    system::BoardConfig config;
    config.num_cores = cores;
    config.host_threads = host_threads;
    config.sim_mode = g_sim_mode;
    auto board = system::Board::Create(config);
    if (!board.ok()) {
      std::fprintf(stderr, "bench: creating a %d-core board failed: %s\n",
                   cores, board.status().ToString().c_str());
      std::exit(1);
    }
    auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    if (!run.ok()) {
      std::fprintf(stderr,
                   "bench: intersect on a %d-core board failed: %s\n", cores,
                   run.status().ToString().c_str());
      std::exit(1);
    }
    // Re-run on fresh boards and keep the fastest wall time; simulated
    // outputs are repetition-invariant, only the host clock is noisy.
    for (int rep = 1; rep < kWallReps; ++rep) {
      auto rerun_board = system::Board::Create(config);
      if (!rerun_board.ok()) break;
      auto rerun =
          (*rerun_board)->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
      if (rerun.ok() && rerun->host_wall_seconds < run->host_wall_seconds) {
        run->host_wall_seconds = rerun->host_wall_seconds;
      }
    }
    if (cores == 1) single_tput = run->throughput_meps;
    // host_speedup = serial host wall-clock / this run's wall-clock; 1.0
    // by construction when simulating on one thread.
    double host_speedup = 1.0;
    if ((*board)->host_threads() > 1 && run->host_wall_seconds > 0) {
      const double serial_seconds = ReferenceWallSeconds(
          cores, 1, g_sim_mode, SetOp::kIntersect, pair->a, pair->b);
      if (serial_seconds > 0) {
        host_speedup = serial_seconds / run->host_wall_seconds;
      }
    }
    // sim_speedup = interpret-mode host wall-clock / this run's
    // wall-clock at the same thread count; 1.0 by definition when
    // already interpreting.
    double sim_speedup = 1.0;
    if (g_sim_mode != sim::ExecMode::kInterpret &&
        run->host_wall_seconds > 0) {
      const double interpret_seconds = ReferenceWallSeconds(
          cores, host_threads, sim::ExecMode::kInterpret, SetOp::kIntersect,
          pair->a, pair->b);
      if (interpret_seconds > 0) {
        sim_speedup = interpret_seconds / run->host_wall_seconds;
      }
    }
    obs::JsonValue& row = AddBenchRow("DBA_2LSU_EIS board");
    row.Set("op", "intersect").Set("cores", cores);
    obs::MergeParallelRun(row, *run);
    row.Set("speedup", run->throughput_meps / single_tput)
        .Set("host_speedup", host_speedup)
        .Set("sim_speedup", sim_speedup);
    std::printf("%-8d %12.0f %8.1f %8.2f %11.1f %8s %12.4f %12.2f %12.2f\n",
                cores, run->throughput_meps,
                run->throughput_meps / single_tput,
                run->board_power_mw / 1000.0, run->energy_uj,
                run->noc_bound ? "noc" : "compute", run->host_wall_seconds,
                host_speedup, sim_speedup);
  }

  std::printf(
      "\ncomparison anchor: the i7-920 runs swset at 1100 M/s / 130 W; a "
      "128-core board delivers two orders of magnitude more throughput in "
      "~17 W.\n");

  // Board-level totals from the runtime-metrics registry (the same
  // counters --metrics-out flushes on exit, so an aborted sweep still
  // reports the partitions it completed).
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const auto total = [&snapshot](const char* name) -> unsigned long long {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  std::printf(
      "registry totals: board_ops=%llu rounds=%llu noc_feed_bytes=%llu "
      "retries=%llu requeues=%llu\n",
      total("dba_system_board_ops_total"),
      total("dba_system_recovery_rounds_total"),
      total("dba_system_noc_feed_bytes_total"),
      total("dba_system_retries_total"), total("dba_system_requeues_total"));
}

bool ParseFlag(std::string_view arg) {
  constexpr std::string_view kThreadsPrefix = "--host-threads=";
  constexpr std::string_view kModePrefix = "--sim-mode=";
  if (arg.rfind(kModePrefix, 0) == 0) {
    auto mode = sim::ParseExecMode(arg.substr(kModePrefix.size()));
    if (!mode.ok()) {
      std::fprintf(stderr, "board_scaling: %s\n",
                   mode.status().ToString().c_str());
      std::exit(2);
    }
    g_sim_mode = *mode;
    return true;
  }
  if (arg.rfind(kThreadsPrefix, 0) != 0) return false;
  const std::string_view value = arg.substr(kThreadsPrefix.size());
  int parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size() ||
      parsed < 0) {
    std::fprintf(stderr,
                 "board_scaling: --host-threads expects a non-negative "
                 "integer, got '%.*s'\n",
                 static_cast<int>(value.size()), value.data());
    std::exit(2);
  }
  g_host_threads = parsed;
  return true;
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(
      argc, argv, "board_scaling", dba::bench::Run, dba::bench::ParseFlag,
      "  --host-threads=<n>  host threads simulating board cores "
      "(0 = hardware concurrency, 1 = serial)\n"
      "  --sim-mode=<mode>   core run-loop mode: interpret, fast-forward "
      "(default), or turbo\n");
}
