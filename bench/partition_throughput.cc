// Range partitioning (the "partitioning" candidate primitive of
// Section 1; cf. HARP [37], Section 6): throughput of the streaming
// partition_beat instruction vs the base-ISA routine, across bucket
// counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "dbkern/partition_kernels.h"
#include "isa/registers.h"
#include "mem/memory.h"
#include "sim/cpu.h"
#include "tie/partition_extension.h"

namespace dba::bench {
namespace {

constexpr uint64_t kSrcBase = 0x1000;
constexpr uint64_t kSplitterBase = 0x60000;
constexpr uint64_t kCountBase = 0x61000;
constexpr uint64_t kBucketBase = 0x80000;
constexpr uint32_t kValues = 8192;

uint64_t RunPartition(const std::vector<uint32_t>& values, int buckets,
                      bool use_extension) {
  sim::CoreConfig config;
  config.num_lsus = 2;
  config.data_bus_bits = 128;
  config.instruction_bus_bits = 64;
  sim::Cpu cpu(config);
  auto memory = mem::Memory::Create(
      {.name = "m", .base = kSrcBase, .size = 4 << 20,
       .access_latency = 1});
  tie::PartitionExtension extension;
  std::vector<uint32_t> splitters;
  for (int i = 1; i < buckets; ++i) {
    splitters.push_back(static_cast<uint32_t>(0x10000u * static_cast<uint32_t>(i) /
                                              static_cast<uint32_t>(buckets)));
  }
  auto program = dbkern::BuildPartitionKernel(use_extension, buckets);
  if (!memory.ok() || !cpu.AttachMemory(&*memory).ok() ||
      !extension.Attach(&cpu).ok() || !program.ok() ||
      !memory->WriteBlock(kSrcBase, values).ok() ||
      !memory->WriteBlock(kSplitterBase, splitters).ok() ||
      !cpu.LoadProgram(*program).ok()) {
    std::fprintf(stderr,
                 "bench: setting up the %d-bucket %s partition kernel "
                 "failed\n",
                 buckets, use_extension ? "merged" : "software");
    std::exit(1);
  }
  cpu.set_reg(isa::Reg::a0, kSrcBase);
  cpu.set_reg(isa::Reg::a1, kSplitterBase);
  cpu.set_reg(isa::Reg::a2, kValues);
  cpu.set_reg(isa::Reg::a3, kValues);  // generous per-bucket capacity
  cpu.set_reg(isa::Reg::a4, kBucketBase);
  cpu.set_reg(isa::Reg::a5, kCountBase);
  auto stats = cpu.Run();
  if (!stats.ok() || cpu.reg(isa::Reg::a5) != kValues) {
    std::fprintf(stderr,
                 "bench: the %d-bucket %s partition kernel %s (%u of %u "
                 "values placed)\n",
                 buckets, use_extension ? "merged" : "software",
                 stats.ok() ? "miscounted" : "failed",
                 cpu.reg(isa::Reg::a5), kValues);
    std::exit(1);
  }
  return stats->cycles;
}

void Run() {
  PrintHeader(
      "Range partitioning: streaming instruction vs software (410 MHz)");
  Random rng(kSeed);
  std::vector<uint32_t> values(kValues);
  for (auto& v : values) v = rng.Next32() & 0xFFFF;

  std::printf("%-8s %16s %16s %18s %10s\n", "buckets", "sw cycles/val",
              "hw cycles/val", "hw M values/s", "speedup");
  for (int buckets : {2, 4, 8, 16}) {
    const double sw =
        static_cast<double>(RunPartition(values, buckets, false)) / kValues;
    const double hw =
        static_cast<double>(RunPartition(values, buckets, true)) / kValues;
    AddBenchRow("partition core")
        .Set("op", "partition")
        .Set("buckets", buckets)
        .Set("sw_cycles_per_value", sw)
        .Set("merged_cycles_per_value", hw)
        .Set("merged_mvalues_per_second", 410.0 / hw)
        .Set("speedup", sw / hw);
    std::printf("%-8d %16.2f %16.2f %18.0f %9.1fx\n", buckets, sw, hw,
                410.0 / hw, sw / hw);
  }
  std::printf(
      "\nthe comparator tree evaluates all splitters in parallel, so the "
      "merged instruction's cost is independent of the bucket count -- the "
      "HARP argument [37] reproduced at instruction granularity.\n");
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "partition_throughput",
                               dba::bench::Run);
}
