// Reproduces the core-loop cost analysis of paper Figures 11/12 and the
// unrolling claim of Section 4: one set-operation iteration costs three
// cycles, falling to 2.03 with 32x unrolling; the merge-sort inner loop
// also runs at three cycles per iteration.

#include <cstdio>

#include "bench/bench_util.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: set-operation core-loop cycles vs unrolling");
  std::printf("%-8s %18s %18s   (paper: 3.00 at U=1, 2.03 at U=32)\n",
              "unroll", "cycles/iteration", "throughput M/s");
  for (int unroll : {1, 2, 4, 8, 16, 32, 64}) {
    auto processor = MustCreate(ProcessorKind::kDba2LsuEis,
                                {.partial_loading = true, .unroll = unroll});
    auto pair =
        GenerateSetPair(kSetElements, kSetElements, 0.0, kSeed);
    auto run =
        processor->RunSetOperation(SetOp::kIntersect, pair->a, pair->b);
    if (!run.ok()) std::abort();
    const double iterations = static_cast<double>(
        processor->eis()->counters().sop_executions);
    std::printf("%-8d %18.3f %18.1f\n", unroll,
                static_cast<double>(run->metrics.cycles) / iterations,
                run->metrics.throughput_meps);
  }

  PrintHeader("Figure 12: merge-sort inner loop");
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  auto values = GenerateSortInput(kSortElements, kSeed);
  auto run = processor->RunSort(values);
  if (!run.ok()) std::abort();
  const auto& counters = processor->eis()->counters();
  const double inner_cycles =
      3.0 * static_cast<double>(counters.sop_executions);
  std::printf(
      "sort of %u values: %llu cycles, %llu merge SOPs\n"
      "inner loops at the paper's 3 cycles/iteration account for %.0f%% "
      "of the run;\nthe rest is presorting, per-pair setup, and tail "
      "handling\n",
      kSortElements, static_cast<unsigned long long>(run->metrics.cycles),
      static_cast<unsigned long long>(counters.sop_executions),
      100.0 * inner_cycles / static_cast<double>(run->metrics.cycles));
  std::printf("throughput: %.1f M elements/s (paper: 28.3)\n",
              run->metrics.throughput_meps);
}

}  // namespace
}  // namespace dba::bench

int main() {
  dba::bench::Run();
  return 0;
}
