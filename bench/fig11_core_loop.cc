// Reproduces the core-loop cost analysis of paper Figures 11/12 and the
// unrolling claim of Section 4: one set-operation iteration costs three
// cycles, falling to 2.03 with 32x unrolling; the merge-sort inner loop
// also runs at three cycles per iteration.

#include <cstdio>

#include "bench/bench_util.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: set-operation core-loop cycles vs unrolling");
  std::printf("%-8s %18s %18s   (paper: 3.00 at U=1, 2.03 at U=32)\n",
              "unroll", "cycles/iteration", "throughput M/s");
  for (int unroll : {1, 2, 4, 8, 16, 32, 64}) {
    auto processor = MustCreate(ProcessorKind::kDba2LsuEis,
                                {.partial_loading = true, .unroll = unroll});
    const RunMetrics metrics =
        SetOpMetrics(*processor, SetOp::kIntersect, 0.0);
    const double iterations = static_cast<double>(
        processor->eis()->counters().sop_executions);
    RecordRun("DBA_2LSU_EIS", "intersect", metrics)
        .Set("unroll", unroll)
        .Set("cycles_per_iteration",
             static_cast<double>(metrics.cycles) / iterations);
    std::printf("%-8d %18.3f %18.1f\n", unroll,
                static_cast<double>(metrics.cycles) / iterations,
                metrics.throughput_meps);
  }

  PrintHeader("Figure 12: merge-sort inner loop");
  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  const RunMetrics metrics = SortMetrics(*processor);
  const auto& counters = processor->eis()->counters();
  const double inner_cycles =
      3.0 * static_cast<double>(counters.sop_executions);
  RecordRun("DBA_2LSU_EIS", "sort", metrics)
      .Set("sop_executions", counters.sop_executions)
      .Set("inner_loop_cycle_share",
           inner_cycles / static_cast<double>(metrics.cycles));
  std::printf(
      "sort of %u values: %llu cycles, %llu merge SOPs\n"
      "inner loops at the paper's 3 cycles/iteration account for %.0f%% "
      "of the run;\nthe rest is presorting, per-pair setup, and tail "
      "handling\n",
      kSortElements, static_cast<unsigned long long>(metrics.cycles),
      static_cast<unsigned long long>(counters.sop_executions),
      100.0 * inner_cycles / static_cast<double>(metrics.cycles));
  std::printf("throughput: %.1f M elements/s (paper: 28.3)\n",
              metrics.throughput_meps);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "fig11_core_loop",
                               dba::bench::Run);
}
