// Reproduces paper Table 4: relative area consumption per newly
// introduced instruction of the DBA_2LSU_EIS processor.

#include <cstdio>

#include "bench/bench_util.h"
#include "hwmodel/synthesis.h"

namespace dba::bench {
namespace {

void Run() {
  PrintHeader("Table 4: relative area per EIS component, DBA_2LSU_EIS");
  // Published percentages in table order.
  const double paper[] = {20.5, 14.4, 14.7, 11.3, 6.8, 9.0, 17.6, 5.7};
  std::printf("%-22s %12s %12s %12s\n", "Part", "Area [mm2]", "model [%]",
              "paper [%]");
  double total = 0;
  size_t index = 0;
  for (const auto& entry : hwmodel::EisAreaBreakdown()) {
    AddBenchRow("DBA_2LSU_EIS")
        .Set("part", entry.part)
        .Set("area_mm2", entry.area_mm2)
        .Set("percent", entry.percent)
        .Set("paper_percent", paper[index]);
    std::printf("%-22s %12.4f %12.1f %12.1f\n", entry.part.c_str(),
                entry.area_mm2, entry.percent, paper[index++]);
    total += entry.area_mm2;
  }
  std::printf("%-22s %12.4f %12.1f %12.1f\n", "SUM", total, 100.0, 100.0);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "table4_area_breakdown",
                               dba::bench::Run);
}
