// Reproduces paper Table 3: synthesis results (logic/memory area,
// maximum frequency, power) for all five configurations at 65 nm and for
// DBA_2LSU_EIS at 28 nm, from the analytical hardware model.

#include <cstdio>

#include "bench/bench_util.h"
#include "hwmodel/synthesis.h"

namespace dba::bench {
namespace {

using hwmodel::ConfigKind;
using hwmodel::Synthesize;
using hwmodel::TechNode;

struct Row {
  ConfigKind kind;
  TechNode node;
  // Published: logic, mem, fmax, power.
  double paper[4];
};

const Row kRows[] = {
    {ConfigKind::k108Mini, TechNode::k65nmTsmcLp, {0.2201, 0.0, 442, 27.4}},
    {ConfigKind::kDba1Lsu, TechNode::k65nmTsmcLp, {0.177, 0.874, 435, 56.6}},
    {ConfigKind::kDba2Lsu, TechNode::k65nmTsmcLp, {0.177, 0.870, 429, 57.1}},
    {ConfigKind::kDba1LsuEis, TechNode::k65nmTsmcLp,
     {0.523, 0.874, 424, 123.5}},
    {ConfigKind::kDba2LsuEis, TechNode::k65nmTsmcLp,
     {0.645, 0.870, 410, 135.1}},
    {ConfigKind::kDba2LsuEis, TechNode::k28nmGfSlp,
     {0.169, 0.232, 500, 47.0}},
};

void Run() {
  PrintHeader("Table 3: synthesis results (model | paper)");
  std::printf("%-6s %-14s %19s %19s %17s %19s\n", "Tech", "Processor",
              "A_logic [mm2]", "A_mem [mm2]", "f_max [MHz]", "P [mW]");
  for (const Row& row : kRows) {
    const auto report = Synthesize(row.kind, row.node);
    AddBenchRow(report.config_name)
        .Set("tech_node", std::string(hwmodel::TechNodeName(row.node)))
        .Set("logic_area_mm2", report.logic_area_mm2)
        .Set("mem_area_mm2", report.mem_area_mm2)
        .Set("fmax_mhz", report.fmax_mhz)
        .Set("power_mw", report.power_mw)
        .Set("paper_logic_area_mm2", row.paper[0])
        .Set("paper_mem_area_mm2", row.paper[1])
        .Set("paper_fmax_mhz", row.paper[2])
        .Set("paper_power_mw", row.paper[3]);
    std::printf(
        "%-6s %-14s %8.4f | %6.4f %8.3f | %5.3f %7.0f | %4.0f %8.1f | "
        "%5.1f\n",
        std::string(hwmodel::TechNodeName(row.node)).c_str(),
        report.config_name.c_str(), report.logic_area_mm2, row.paper[0],
        report.mem_area_mm2, row.paper[1], report.fmax_mhz, row.paper[2],
        report.power_mw, row.paper[3]);
  }

  const auto eis65 = Synthesize(ConfigKind::kDba2LsuEis,
                                TechNode::k65nmTsmcLp);
  const auto mini = Synthesize(ConfigKind::k108Mini, TechNode::k65nmTsmcLp);
  std::printf(
      "\nDBA_2LSU_EIS vs 108Mini total area: %.1fx (paper: ~7x)\n",
      eis65.total_area_mm2() / mini.total_area_mm2());
  std::printf(
      "Intel Xeon 3040 (65 nm, 111 mm2) vs DBA_2LSU_EIS: %.0fx larger "
      "(paper: 73x)\n",
      111.0 / eis65.total_area_mm2());
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "table3_synthesis",
                               dba::bench::Run);
}
