// Reproduces paper Table 2: maximum throughput [million elements per
// second] of the six processor configurations for intersection, union,
// difference, and merge-sort (5000-element sets / 6500-value sort
// inputs, 50% selectivity), next to the published numbers.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"

namespace dba::bench {
namespace {

struct ConfigRow {
  ProcessorKind kind;
  std::optional<bool> partial;  // nullopt = scalar configuration
  const char* name;
  // Published Table 2 values: f[MHz], intersect, union, difference, sort.
  double paper[5];
};

const ConfigRow kRows[] = {
    {ProcessorKind::k108Mini, std::nullopt, "108Mini",
     {442, 31.3, 26.4, 35.7, 1.7}},
    {ProcessorKind::kDba1Lsu, std::nullopt, "DBA_1LSU",
     {435, 50.7, 47.7, 50.4, 3.2}},
    {ProcessorKind::kDba1LsuEis, false, "DBA_1LSU_EIS",
     {424, 513.4, 665.0, 658.8, 29.3}},
    {ProcessorKind::kDba2LsuEis, false, "DBA_2LSU_EIS",
     {410, 693.0, 643.0, 637.0, 28.3}},
    {ProcessorKind::kDba1LsuEis, true, "DBA_1LSU_EIS +partial",
     {424, 859.0, 574.2, 859.0, 29.3}},
    {ProcessorKind::kDba2LsuEis, true, "DBA_2LSU_EIS +partial",
     {410, 1203.0, 780.4, 1192.6, 28.3}},
};

void Run() {
  PrintHeader(
      "Table 2: maximum throughput [M elements/s] (model | paper)");
  std::printf("%-22s %-11s %19s %19s %19s %17s\n", "Processor", "f [MHz]",
              "Intersection", "Union", "Difference", "Merge-Sort");

  double mini_intersect = 0;
  double best_intersect = 0;
  for (const ConfigRow& row : kRows) {
    ProcessorOptions options;
    if (row.partial.has_value()) options.partial_loading = *row.partial;
    auto processor = MustCreate(row.kind, options);
    const double f = processor->synthesis().fmax_mhz;
    const RunMetrics intersect_metrics =
        SetOpMetrics(*processor, SetOp::kIntersect);
    const RunMetrics union_metrics = SetOpMetrics(*processor, SetOp::kUnion);
    const RunMetrics diff_metrics =
        SetOpMetrics(*processor, SetOp::kDifference);
    const RunMetrics sort_metrics = SortMetrics(*processor);
    const double intersect = intersect_metrics.throughput_meps;
    const double uni = union_metrics.throughput_meps;
    const double diff = diff_metrics.throughput_meps;
    const double sort = sort_metrics.throughput_meps;
    RecordRun(row.name, "intersect", intersect_metrics)
        .Set("frequency_mhz", f)
        .Set("paper_meps", row.paper[1]);
    RecordRun(row.name, "union", union_metrics)
        .Set("frequency_mhz", f)
        .Set("paper_meps", row.paper[2]);
    RecordRun(row.name, "difference", diff_metrics)
        .Set("frequency_mhz", f)
        .Set("paper_meps", row.paper[3]);
    RecordRun(row.name, "sort", sort_metrics)
        .Set("frequency_mhz", f)
        .Set("paper_meps", row.paper[4]);
    std::printf(
        "%-22s %4.0f | %4.0f %8.1f | %7.1f %8.1f | %7.1f %8.1f | %7.1f "
        "%7.1f | %6.1f\n",
        row.name, f, row.paper[0], intersect, row.paper[1], uni,
        row.paper[2], diff, row.paper[3], sort, row.paper[4]);
    if (row.kind == ProcessorKind::k108Mini) mini_intersect = intersect;
    if (row.partial.has_value() && *row.partial &&
        row.kind == ProcessorKind::kDba2LsuEis) {
      best_intersect = intersect;
    }
  }
  std::printf(
      "\nheadline speedup DBA_2LSU_EIS(+partial) vs 108Mini: %.1fx "
      "(paper: 38.4x)\n",
      best_intersect / mini_intersect);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "table2_throughput",
                               dba::bench::Run);
}
