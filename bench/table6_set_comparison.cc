// Reproduces paper Table 6: sorted-set intersection comparison -- hwset
// (EIS intersection on the simulated DBA_2LSU_EIS, 2 x 2500 values) vs
// swset (Schlegel et al. SIMD intersection; published Intel i7-920
// figure plus a host re-measurement on 2 x 10M values), including the
// 960x energy headline.

#include <chrono>
#include <cstdio>

#include "baseline/simd_baseline.h"
#include "bench/bench_util.h"
#include "hwmodel/reference.h"

namespace dba::bench {
namespace {

double MeasureHostIntersectMeps(uint32_t n) {
  auto pair = GenerateSetPair(n, n, kDefaultSelectivity, kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr,
                 "bench: generating a 2x%u-element set pair failed: %s\n", n,
                 pair.status().ToString().c_str());
    std::exit(1);
  }
  double best_seconds = 1e30;
  for (int repetition = 0; repetition < 3; ++repetition) {
    const auto start = std::chrono::steady_clock::now();
    auto result = baseline::SimdIntersect(pair->a, pair->b);
    const auto stop = std::chrono::steady_clock::now();
    if (result.size() != pair->common) {
      std::fprintf(stderr,
                   "bench: host SimdIntersect over 2x%u elements returned "
                   "%zu values, expected %zu\n",
                   n, result.size(), static_cast<size_t>(pair->common));
      std::exit(1);
    }
    best_seconds = std::min(
        best_seconds, std::chrono::duration<double>(stop - start).count());
  }
  return 2.0 * n / best_seconds / 1e6;
}

void Run() {
  PrintHeader("Table 6: sorted-set intersection comparison (hwset vs swset)");
  const hwmodel::X86Reference i7 = hwmodel::IntelI7920();

  auto processor = MustCreate(ProcessorKind::kDba2LsuEis);
  // Paper: "intersecting two sets with 2500 values each in hwset".
  const RunMetrics hwset_metrics = SetOpMetrics(
      *processor, SetOp::kIntersect, kDefaultSelectivity, 2500);
  const double hwset_meps = hwset_metrics.throughput_meps;
  const auto& synthesis = processor->synthesis();
  const double swset_host_meps = MeasureHostIntersectMeps(10000000);

  RecordRun("DBA_2LSU_EIS", "intersect", hwset_metrics)
      .Set("role", "hwset")
      .Set("power_mw", synthesis.power_mw)
      .Set("area_mm2", synthesis.total_area_mm2());
  AddBenchRow(i7.name)
      .Set("op", "intersect")
      .Set("role", "swset")
      .Set("paper_throughput_meps", i7.paper_throughput_meps)
      .Set("host_throughput_meps", swset_host_meps)
      .Set("power_mw", i7.max_tdp_w * 1000.0)
      .Set("area_mm2", i7.die_area_mm2);

  std::printf("%-28s %16s %16s\n", "", i7.name.c_str(), "DBA_2LSU_EIS");
  std::printf("%-28s %10.0f M/s %10.1f M/s   (paper: 1100 | 1203)\n",
              "Throughput (elements/s)", i7.paper_throughput_meps,
              hwset_meps);
  std::printf("%-28s %12.2f GHz %10.2f GHz\n", "Clock frequency",
              i7.clock_ghz, synthesis.fmax_mhz / 1000.0);
  std::printf("%-28s %14.0f W %12.3f W\n", "Max. TDP", i7.max_tdp_w,
              synthesis.power_mw / 1000.0);
  std::printf("%-28s %12d/%-3d %10d/%-3d\n", "Cores/Threads", i7.cores,
              i7.threads, 1, 1);
  std::printf("%-28s %13d nm %12d nm\n", "Feature size", i7.feature_nm, 65);
  std::printf("%-28s %12.0f mm2 %11.1f mm2\n", "Area (logic & memory)",
              i7.die_area_mm2, synthesis.total_area_mm2());

  std::printf("\nderived comparisons:\n");
  std::printf("  hwset/swset throughput: %+.1f%% (paper: +9.4%%)\n",
              100.0 * (hwset_meps / i7.paper_throughput_meps - 1.0));
  std::printf(
      "  power ratio i7-920/DBA: %.0fx -- the paper's \"more than 960x "
      "less energy ... while providing the same performance\"\n",
      hwmodel::PowerRatio(i7, synthesis.power_mw));
  std::printf(
      "  energy/element: swset %.2f nJ vs hwset %.3f nJ -> %.0fx less\n",
      hwmodel::EnergyPerElementNj(i7.max_tdp_w * 1000.0,
                                  i7.paper_throughput_meps),
      hwmodel::EnergyPerElementNj(synthesis.power_mw, hwset_meps),
      hwmodel::EnergyPerElementNj(i7.max_tdp_w * 1000.0,
                                  i7.paper_throughput_meps) /
          hwmodel::EnergyPerElementNj(synthesis.power_mw, hwset_meps));
  std::printf(
      "  swset reimplementation on this host (2 x 10M values, %s): %.0f "
      "M/s\n",
      baseline::SimdBaselineUsesVectorUnit() ? "SSE4.1" : "portable",
      swset_host_meps);
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "table6_set_comparison",
                               dba::bench::Run);
}
