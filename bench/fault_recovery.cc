// Fault-tolerant board execution under the deterministic injector
// (docs/FAULTS.md): sweeps transient fault rates and permanently-broken
// core counts and reports what recovery costs -- retries, requeues,
// quarantines, recovery cycles, and the makespan overhead relative to
// the fault-free run. Every configuration either completes with the
// bit-exact fault-free result (checked here) or fails loudly; the bench
// exits non-zero on any silent mismatch.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "obs/bench_json.h"
#include "system/board.h"

namespace dba::bench {
namespace {

constexpr int kCores = 8;
constexpr uint32_t kElements = 60000;

system::BoardConfig MakeConfig(double rate, int broken_cores) {
  system::BoardConfig config;
  config.num_cores = kCores;
  config.host_threads = 1;
  config.fault_plan.seed = kSeed;
  config.fault_plan.hang_rate = rate;
  config.fault_plan.input_flip_rate = rate;
  config.fault_plan.result_flip_rate = rate;
  config.fault_plan.transfer_fail_rate = rate;
  config.fault_plan.transfer_timeout_rate = rate;
  // Small watchdog budget: hangs are detected quickly, and the host
  // does not burn wall clock simulating a spinning core.
  config.fault_plan.hang_watchdog_cycles = 4000;
  config.recovery.max_attempts = 6;
  for (int core = 0; core < broken_cores; ++core) {
    config.fault_plan.broken_cores.push_back(core);
  }
  return config;
}

void Run() {
  PrintHeader("Fault injection and recovery on a parallel board");

  auto pair = GenerateSetPair(kElements, kElements, kDefaultSelectivity,
                              kSeed);
  if (!pair.ok()) {
    std::fprintf(stderr, "bench: generating inputs failed: %s\n",
                 pair.status().ToString().c_str());
    std::exit(1);
  }

  // Fault-free reference: the recovered result must match this exactly.
  auto clean_board = system::Board::Create(MakeConfig(0.0, 0));
  if (!clean_board.ok()) {
    std::fprintf(stderr, "bench: creating the clean board failed: %s\n",
                 clean_board.status().ToString().c_str());
    std::exit(1);
  }
  auto clean = (*clean_board)->RunSetOperation(SetOp::kIntersect, pair->a,
                                               pair->b);
  if (!clean.ok()) {
    std::fprintf(stderr, "bench: the fault-free run failed: %s\n",
                 clean.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("%d-core intersect of 2x%u elements; fault-free makespan "
              "%llu cycles\n\n",
              kCores, kElements,
              static_cast<unsigned long long>(clean->makespan_cycles));
  std::printf("%-10s %-8s %8s %8s %8s %8s %10s %12s %9s\n", "rate",
              "broken", "faults", "retries", "requeues", "quarant",
              "rounds", "rec cycles", "overhead");

  for (const double rate : {0.0, 0.02, 0.1}) {
    for (const int broken : {0, 1, 2}) {
      if (rate == 0.0 && broken == 0) continue;  // that is `clean`
      auto board = system::Board::Create(MakeConfig(rate, broken));
      if (!board.ok()) {
        std::fprintf(stderr, "bench: creating the board failed: %s\n",
                     board.status().ToString().c_str());
        std::exit(1);
      }
      auto run = (*board)->RunSetOperation(SetOp::kIntersect, pair->a,
                                           pair->b);
      if (!run.ok()) {
        // A loud failure is an acceptable outcome under injected faults
        // (never-silently-wrong); record it and move on.
        std::printf("%-10.2f %-8d recovery exhausted: %s\n", rate, broken,
                    run.status().ToString().c_str());
        obs::JsonValue& row = AddBenchRow("DBA_2LSU_EIS board");
        row.Set("fault_rate", rate)
            .Set("broken_cores", broken)
            .Set("outcome", std::string("failed"))
            .Set("error", run.status().ToString());
        continue;
      }
      if (run->result != clean->result) {
        std::fprintf(stderr,
                     "bench: SILENT MISMATCH at rate=%g broken=%d -- the "
                     "recovered result differs from the fault-free one\n",
                     rate, broken);
        std::exit(1);
      }
      const double overhead =
          clean->makespan_cycles > 0
              ? static_cast<double>(run->makespan_cycles) /
                    static_cast<double>(clean->makespan_cycles)
              : 1.0;
      obs::JsonValue& row = AddBenchRow("DBA_2LSU_EIS board");
      row.Set("fault_rate", rate)
          .Set("broken_cores", broken)
          .Set("outcome", std::string("recovered"))
          .Set("makespan_overhead", overhead);
      obs::MergeParallelRun(row, *run);
      std::printf("%-10.2f %-8d %8u %8u %8u %8zu %10u %12llu %8.2fx\n",
                  rate, broken, run->recovery.faults_injected,
                  run->recovery.retries, run->recovery.requeues,
                  run->recovery.quarantined_cores.size(),
                  run->recovery.rounds,
                  static_cast<unsigned long long>(
                      run->recovery.recovery_cycles),
                  overhead);
    }
  }

  std::printf(
      "\nevery recovered run returned the bit-exact fault-free result; "
      "failures above (if any) were loud, never silent.\n");

  // Final totals come from the runtime-metrics registry, not the
  // per-run RecoveryTelemetry structs: the registry accumulates across
  // every attempt -- including configurations that exhausted recovery
  // above -- and is what the --metrics-out atexit flush writes, so even
  // a run that std::exit(1)s mid-sweep reports partial telemetry.
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const auto total = [&snapshot](const char* name) -> unsigned long long {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  std::printf(
      "registry totals: faults=%llu failed_attempts=%llu retries=%llu "
      "requeues=%llu quarantines=%llu verification_failures=%llu "
      "rounds=%llu recovery_cycles=%llu\n",
      total("dba_system_faults_injected_total"),
      total("dba_system_failed_attempts_total"),
      total("dba_system_retries_total"), total("dba_system_requeues_total"),
      total("dba_system_quarantines_total"),
      total("dba_system_verification_failures_total"),
      total("dba_system_recovery_rounds_total"),
      total("dba_system_recovery_cycles_total"));
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(argc, argv, "fault_recovery",
                               dba::bench::Run);
}
