// Query-service throughput bench: a fixed stream of requests drawn
// from a small predicate pool, executed two ways --
//   serial   one QueryEngine::Select per request in stream order (the
//            naive per-call frontend),
//   service  all requests submitted to the QueryService, which batches
//            compatible work, deduplicates identical in-flight
//            requests, and serves repeats from the versioned result
//            cache.
// Every service response is checked byte-for-byte against the serial
// answer before any number is reported; a mismatch exits non-zero.
//
// dba.bench.v1 row (config DBA_2LSU_EIS_BOARD, op select_mix):
//   service_speedup   service QPS / serial QPS (gated by compare-bench)
//   serial_qps, service_qps, latency p50/p99 ns (reported, not gated)
//
// A second row (op direct_degraded) measures the resilience path: the
// same board with every core broken, the circuit breaker open, and
// direct set operations served bit-exactly by the host-fallback
// kernels. availability (answered / submitted) is gated by
// compare-bench; degraded_speedup (host-fallback service vs serial
// per-call accelerator dispatch) is reported, not gated, because it
// compares wall clock against simulated hardware.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fault/fault.h"
#include "obs/metrics/metrics.h"
#include "service/query_service.h"
#include "system/board.h"
#include "tests/shared/service_test_util.h"

namespace dba::bench {
namespace {

constexpr uint32_t kRows = 4096;
constexpr size_t kPoolSize = 64;
constexpr int kNumCores = 4;

int g_requests = 2000;
int g_host_threads = 2;
int g_degraded_requests = 600;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run() {
  namespace harness = service::test;

  const auto pool = harness::MakePredicatePool(kPoolSize);
  const size_t n = static_cast<size_t>(g_requests);
  // Fibonacci-hash scatter over the pool: every predicate repeats
  // ~n/kPoolSize times, interleaved rather than clustered, which is
  // the dedup/cache-friendly shape a multi-tenant frontend sees.
  std::vector<size_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    stream[i] = static_cast<size_t>((i * 2654435761u) % kPoolSize);
  }

  // Serial per-call dispatch: one engine, one Select per request.
  harness::SerialReference reference("orders", kRows, kSeed);
  std::vector<std::vector<uint32_t>> expected(kPoolSize);
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    auto result = reference.Select(*pool[stream[i]]);
    if (!result.ok()) {
      std::fprintf(stderr, "query_service: serial select failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    expected[stream[i]] = *std::move(result);
  }
  const double serial_seconds = SecondsSince(serial_start);

  // Service dispatch: submit the same stream, drain, verify.
  system::BoardConfig board_config;
  board_config.num_cores = kNumCores;
  board_config.host_threads = g_host_threads;
  auto board = system::Board::Create(board_config);
  if (!board.ok()) {
    std::fprintf(stderr, "query_service: board creation failed: %s\n",
                 board.status().ToString().c_str());
    std::exit(1);
  }
  service::ServiceConfig config;
  config.board = board->get();
  config.queue_capacity = n + 8;
  auto service_or = service::QueryService::Create(config);
  if (!service_or.ok()) {
    std::fprintf(stderr, "query_service: service creation failed: %s\n",
                 service_or.status().ToString().c_str());
    std::exit(1);
  }
  auto service = *std::move(service_or);
  const Status registered = service->RegisterTable(
      std::make_unique<query::Table>(
          harness::MakeServiceTable("orders", kRows, kSeed)));
  if (!registered.ok()) {
    std::fprintf(stderr, "query_service: RegisterTable failed: %s\n",
                 registered.ToString().c_str());
    std::exit(1);
  }

  std::vector<std::future<service::ServiceResponse>> futures(n);
  const auto service_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    service::ServiceRequest request;
    request.tenant = "tenant" + std::to_string(i % 4);
    request.table = "orders";
    request.predicate = pool[stream[i]];
    futures[i] = service->Submit(std::move(request));
  }
  service->Drain();
  const double service_seconds = SecondsSince(service_start);

  uint64_t cache_hits = 0;
  uint64_t deduplicated = 0;
  for (size_t i = 0; i < n; ++i) {
    const service::ServiceResponse response = futures[i].get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query_service: request %zu failed: %s\n", i,
                   response.status.ToString().c_str());
      std::exit(1);
    }
    if (response.values != expected[stream[i]]) {
      std::fprintf(stderr,
                   "query_service: request %zu mismatch (%zu vs %zu "
                   "elements, cache_hit=%d dedup=%d) -- batched results "
                   "must be bit-identical to serial dispatch\n",
                   i, response.values.size(), expected[stream[i]].size(),
                   response.cache_hit, response.deduplicated);
      std::exit(1);
    }
    cache_hits += response.cache_hit ? 1 : 0;
    deduplicated += response.deduplicated ? 1 : 0;
  }

  const double serial_qps = static_cast<double>(n) / serial_seconds;
  const double service_qps = static_cast<double>(n) / service_seconds;
  const double service_speedup = serial_seconds / service_seconds;

  double p50_ns = 0;
  double p99_ns = 0;
  if (obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
          "dba_service_latency_ns")) {
    const obs::HistogramStats stats = latency->Stats();
    p50_ns = stats.Quantile(0.5);
    p99_ns = stats.Quantile(0.99);
  }

  PrintHeader("query service vs serial per-call dispatch");
  std::printf("%10s %12s %12s %10s %10s %12s %12s\n", "requests",
              "serial_qps", "service_qps", "speedup", "hits+dedup",
              "p50_ns", "p99_ns");
  std::printf("%10zu %12.0f %12.0f %9.2fx %10llu %12.0f %12.0f\n", n,
              serial_qps, service_qps, service_speedup,
              static_cast<unsigned long long>(cache_hits + deduplicated),
              p50_ns, p99_ns);

  AddBenchRow("DBA_2LSU_EIS_BOARD")
      .Set("op", "select_mix")
      .Set("requests", static_cast<uint64_t>(n))
      .Set("pool", static_cast<uint64_t>(kPoolSize))
      .Set("cores", static_cast<uint64_t>(kNumCores))
      .Set("serial_qps", serial_qps)
      .Set("service_qps", service_qps)
      .Set("service_speedup", service_speedup)
      .Set("cache_hits", cache_hits)
      .Set("deduplicated", deduplicated)
      .Set("latency_p50_ns", p50_ns)
      .Set("latency_p99_ns", p99_ns);

  if (service_speedup < 4.0) {
    std::fprintf(stderr,
                 "query_service: service_speedup %.2fx below the 4x "
                 "floor (serial %.3fs, service %.3fs)\n",
                 service_speedup, serial_seconds, service_seconds);
    std::exit(1);
  }
}

// Degraded-mode phase: every core broken, breaker open after the first
// board failure, direct ops answered by the host-fallback kernels.
// Availability must stay 1.0 and every answer bit-identical to the
// serial reference, or the bench exits non-zero.
void RunDegraded() {
  namespace harness = service::test;

  struct DirectSpec {
    SetOp op;
    std::vector<uint32_t> a;
    std::vector<uint32_t> b;
  };
  constexpr size_t kDirectPool = 24;
  Random rng(kSeed ^ 0xDE6D);
  std::vector<DirectSpec> pool;
  pool.reserve(kDirectPool);
  const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion, SetOp::kDifference,
                       SetOp::kMerge};
  for (size_t i = 0; i < kDirectPool; ++i) {
    DirectSpec spec;
    spec.op = ops[i % 4];
    spec.a = harness::MakeSortedSet(rng, 4096, 131072);
    spec.b = harness::MakeSortedSet(rng, 4096, 131072);
    pool.push_back(std::move(spec));
  }

  const size_t n = static_cast<size_t>(g_degraded_requests);
  std::vector<size_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    stream[i] = static_cast<size_t>((i * 2654435761u) % kDirectPool);
  }

  // Serial baseline: one accelerator dispatch per request, healthy
  // board semantics (the answer the degraded path must reproduce).
  harness::SerialReference reference("orders", kRows, kSeed);
  std::vector<std::vector<uint32_t>> expected(kDirectPool);
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const DirectSpec& spec = pool[stream[i]];
    auto result = reference.Direct(spec.op, spec.a, spec.b);
    if (!result.ok()) {
      std::fprintf(stderr, "query_service: serial direct op failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    expected[stream[i]] = *std::move(result);
  }
  const double serial_seconds = SecondsSince(serial_start);

  // Service dispatch against a board with every core broken: the first
  // batch fails, trips the breaker, and the rest of the run is served
  // degraded by the host-fallback kernels.
  system::BoardConfig board_config;
  board_config.num_cores = kNumCores;
  board_config.host_threads = g_host_threads;
  auto board = system::Board::Create(board_config);
  if (!board.ok()) {
    std::fprintf(stderr, "query_service: degraded board creation failed: %s\n",
                 board.status().ToString().c_str());
    std::exit(1);
  }
  fault::FaultPlan outage;
  for (int core = 0; core < kNumCores; ++core) {
    outage.broken_cores.push_back(core);
  }
  (*board)->SetFaultPlan(outage);

  service::ServiceConfig config;
  config.board = board->get();
  config.queue_capacity = n + 8;
  config.retry.max_retries = 0;  // a dead board is not worth retrying
  config.breaker.failure_threshold = 1;
  config.breaker.open_duration_ns = 60'000'000'000ull;  // stay open
  auto service_or = service::QueryService::Create(config);
  if (!service_or.ok()) {
    std::fprintf(stderr, "query_service: degraded service creation "
                 "failed: %s\n",
                 service_or.status().ToString().c_str());
    std::exit(1);
  }
  auto service = *std::move(service_or);

  std::vector<std::future<service::ServiceResponse>> futures(n);
  const auto service_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const DirectSpec& spec = pool[stream[i]];
    service::ServiceRequest request;
    request.tenant = "tenant" + std::to_string(i % 4);
    request.op = spec.op;
    request.a = spec.a;
    request.b = spec.b;
    futures[i] = service->Submit(std::move(request));
  }
  service->Drain();
  const double service_seconds = SecondsSince(service_start);

  uint64_t answered = 0;
  uint64_t degraded = 0;
  for (size_t i = 0; i < n; ++i) {
    const service::ServiceResponse response = futures[i].get();
    if (!response.status.ok()) continue;
    ++answered;
    degraded += response.degraded ? 1 : 0;
    if (response.values != expected[stream[i]]) {
      std::fprintf(stderr,
                   "query_service: degraded request %zu mismatch (%zu vs "
                   "%zu elements) -- host fallback must be bit-identical "
                   "to the accelerator\n",
                   i, response.values.size(), expected[stream[i]].size());
      std::exit(1);
    }
  }

  const double availability =
      static_cast<double>(answered) / static_cast<double>(n);
  const double serial_qps = static_cast<double>(n) / serial_seconds;
  const double service_qps = static_cast<double>(n) / service_seconds;
  const double degraded_speedup = serial_seconds / service_seconds;

  PrintHeader("degraded mode: all cores broken, breaker open, host fallback");
  std::printf("%10s %12s %12s %12s %10s %10s\n", "requests", "serial_qps",
              "service_qps", "availability", "degraded", "speedup");
  std::printf("%10zu %12.0f %12.0f %12.4f %10llu %9.2fx\n", n, serial_qps,
              service_qps, availability,
              static_cast<unsigned long long>(degraded), degraded_speedup);

  AddBenchRow("DBA_2LSU_EIS_BOARD")
      .Set("op", "direct_degraded")
      .Set("requests", static_cast<uint64_t>(n))
      .Set("pool", static_cast<uint64_t>(kDirectPool))
      .Set("cores", static_cast<uint64_t>(kNumCores))
      .Set("serial_qps", serial_qps)
      .Set("service_qps", service_qps)
      .Set("availability", availability)
      .Set("answered", answered)
      .Set("degraded", degraded)
      .Set("degraded_speedup", degraded_speedup);

  if (availability < 1.0) {
    std::fprintf(stderr,
                 "query_service: degraded availability %.4f below 1.0 "
                 "(%llu of %zu answered) -- host fallback must keep the "
                 "service available through a full board outage\n",
                 availability, static_cast<unsigned long long>(answered), n);
    std::exit(1);
  }
  if (degraded != answered) {
    std::fprintf(stderr,
                 "query_service: %llu of %llu answers not flagged degraded "
                 "while every core was broken\n",
                 static_cast<unsigned long long>(answered - degraded),
                 static_cast<unsigned long long>(answered));
    std::exit(1);
  }
}

void RunAll() {
  Run();
  RunDegraded();
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(
      argc, argv, "query_service", dba::bench::RunAll,
      [](std::string_view arg) {
        if (arg.rfind("--requests=", 0) == 0) {
          dba::bench::g_requests =
              std::atoi(std::string(arg.substr(11)).c_str());
          return dba::bench::g_requests > 0;
        }
        if (arg.rfind("--host-threads=", 0) == 0) {
          dba::bench::g_host_threads =
              std::atoi(std::string(arg.substr(15)).c_str());
          return dba::bench::g_host_threads > 0;
        }
        if (arg.rfind("--degraded-requests=", 0) == 0) {
          dba::bench::g_degraded_requests =
              std::atoi(std::string(arg.substr(20)).c_str());
          return dba::bench::g_degraded_requests > 0;
        }
        return false;
      },
      "  --requests=<n>        request-stream length (default 2000)\n"
      "  --host-threads=<n>    board host threads (default 2)\n"
      "  --degraded-requests=<n>  degraded-phase stream length "
      "(default 600)\n");
}
