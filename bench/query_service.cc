// Query-service throughput bench: a fixed stream of requests drawn
// from a small predicate pool, executed two ways --
//   serial   one QueryEngine::Select per request in stream order (the
//            naive per-call frontend),
//   service  all requests submitted to the QueryService, which batches
//            compatible work, deduplicates identical in-flight
//            requests, and serves repeats from the versioned result
//            cache.
// Every service response is checked byte-for-byte against the serial
// answer before any number is reported; a mismatch exits non-zero.
//
// dba.bench.v1 row (config DBA_2LSU_EIS_BOARD, op select_mix):
//   service_speedup   service QPS / serial QPS (gated by compare-bench)
//   serial_qps, service_qps, latency p50/p99 ns (reported, not gated)

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics/metrics.h"
#include "service/query_service.h"
#include "system/board.h"
#include "tests/shared/service_test_util.h"

namespace dba::bench {
namespace {

constexpr uint32_t kRows = 4096;
constexpr size_t kPoolSize = 64;
constexpr int kNumCores = 4;

int g_requests = 2000;
int g_host_threads = 2;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void Run() {
  namespace harness = service::test;

  const auto pool = harness::MakePredicatePool(kPoolSize);
  const size_t n = static_cast<size_t>(g_requests);
  // Fibonacci-hash scatter over the pool: every predicate repeats
  // ~n/kPoolSize times, interleaved rather than clustered, which is
  // the dedup/cache-friendly shape a multi-tenant frontend sees.
  std::vector<size_t> stream(n);
  for (size_t i = 0; i < n; ++i) {
    stream[i] = static_cast<size_t>((i * 2654435761u) % kPoolSize);
  }

  // Serial per-call dispatch: one engine, one Select per request.
  harness::SerialReference reference("orders", kRows, kSeed);
  std::vector<std::vector<uint32_t>> expected(kPoolSize);
  const auto serial_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    auto result = reference.Select(*pool[stream[i]]);
    if (!result.ok()) {
      std::fprintf(stderr, "query_service: serial select failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    expected[stream[i]] = *std::move(result);
  }
  const double serial_seconds = SecondsSince(serial_start);

  // Service dispatch: submit the same stream, drain, verify.
  system::BoardConfig board_config;
  board_config.num_cores = kNumCores;
  board_config.host_threads = g_host_threads;
  auto board = system::Board::Create(board_config);
  if (!board.ok()) {
    std::fprintf(stderr, "query_service: board creation failed: %s\n",
                 board.status().ToString().c_str());
    std::exit(1);
  }
  service::ServiceConfig config;
  config.board = board->get();
  config.queue_capacity = n + 8;
  auto service_or = service::QueryService::Create(config);
  if (!service_or.ok()) {
    std::fprintf(stderr, "query_service: service creation failed: %s\n",
                 service_or.status().ToString().c_str());
    std::exit(1);
  }
  auto service = *std::move(service_or);
  const Status registered = service->RegisterTable(
      std::make_unique<query::Table>(
          harness::MakeServiceTable("orders", kRows, kSeed)));
  if (!registered.ok()) {
    std::fprintf(stderr, "query_service: RegisterTable failed: %s\n",
                 registered.ToString().c_str());
    std::exit(1);
  }

  std::vector<std::future<service::ServiceResponse>> futures(n);
  const auto service_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    service::ServiceRequest request;
    request.tenant = "tenant" + std::to_string(i % 4);
    request.table = "orders";
    request.predicate = pool[stream[i]];
    futures[i] = service->Submit(std::move(request));
  }
  service->Drain();
  const double service_seconds = SecondsSince(service_start);

  uint64_t cache_hits = 0;
  uint64_t deduplicated = 0;
  for (size_t i = 0; i < n; ++i) {
    const service::ServiceResponse response = futures[i].get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "query_service: request %zu failed: %s\n", i,
                   response.status.ToString().c_str());
      std::exit(1);
    }
    if (response.values != expected[stream[i]]) {
      std::fprintf(stderr,
                   "query_service: request %zu mismatch (%zu vs %zu "
                   "elements, cache_hit=%d dedup=%d) -- batched results "
                   "must be bit-identical to serial dispatch\n",
                   i, response.values.size(), expected[stream[i]].size(),
                   response.cache_hit, response.deduplicated);
      std::exit(1);
    }
    cache_hits += response.cache_hit ? 1 : 0;
    deduplicated += response.deduplicated ? 1 : 0;
  }

  const double serial_qps = static_cast<double>(n) / serial_seconds;
  const double service_qps = static_cast<double>(n) / service_seconds;
  const double service_speedup = serial_seconds / service_seconds;

  double p50_ns = 0;
  double p99_ns = 0;
  if (obs::Histogram* latency = obs::MetricsRegistry::Global().GetHistogram(
          "dba_service_latency_ns")) {
    const obs::HistogramStats stats = latency->Stats();
    p50_ns = stats.Quantile(0.5);
    p99_ns = stats.Quantile(0.99);
  }

  PrintHeader("query service vs serial per-call dispatch");
  std::printf("%10s %12s %12s %10s %10s %12s %12s\n", "requests",
              "serial_qps", "service_qps", "speedup", "hits+dedup",
              "p50_ns", "p99_ns");
  std::printf("%10zu %12.0f %12.0f %9.2fx %10llu %12.0f %12.0f\n", n,
              serial_qps, service_qps, service_speedup,
              static_cast<unsigned long long>(cache_hits + deduplicated),
              p50_ns, p99_ns);

  AddBenchRow("DBA_2LSU_EIS_BOARD")
      .Set("op", "select_mix")
      .Set("requests", static_cast<uint64_t>(n))
      .Set("pool", static_cast<uint64_t>(kPoolSize))
      .Set("cores", static_cast<uint64_t>(kNumCores))
      .Set("serial_qps", serial_qps)
      .Set("service_qps", service_qps)
      .Set("service_speedup", service_speedup)
      .Set("cache_hits", cache_hits)
      .Set("deduplicated", deduplicated)
      .Set("latency_p50_ns", p50_ns)
      .Set("latency_p99_ns", p99_ns);

  if (service_speedup < 4.0) {
    std::fprintf(stderr,
                 "query_service: service_speedup %.2fx below the 4x "
                 "floor (serial %.3fs, service %.3fs)\n",
                 service_speedup, serial_seconds, service_seconds);
    std::exit(1);
  }
}

}  // namespace
}  // namespace dba::bench

int main(int argc, char** argv) {
  return dba::bench::BenchMain(
      argc, argv, "query_service", dba::bench::Run,
      [](std::string_view arg) {
        if (arg.rfind("--requests=", 0) == 0) {
          dba::bench::g_requests =
              std::atoi(std::string(arg.substr(11)).c_str());
          return dba::bench::g_requests > 0;
        }
        if (arg.rfind("--host-threads=", 0) == 0) {
          dba::bench::g_host_threads =
              std::atoi(std::string(arg.substr(15)).c_str());
          return dba::bench::g_host_threads > 0;
        }
        return false;
      },
      "  --requests=<n>        request-stream length (default 2000)\n"
      "  --host-threads=<n>    board host threads (default 2)\n");
}
