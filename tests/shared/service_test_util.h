#ifndef DBA_TESTS_SHARED_SERVICE_TEST_UTIL_H_
#define DBA_TESTS_SHARED_SERVICE_TEST_UTIL_H_

// Deterministic concurrency harness for the query-service suites: a
// reusable thread barrier for pinned schedules, a seeded open-loop
// workload generator (queries, direct set ops, and column mutations as
// one action stream), and a single-threaded serial reference that
// replays the same stream through a plain Table + QueryEngine. Every
// artifact is a pure function of its seed, so a trial that fails in the
// concurrent service reproduces exactly in the serial replay.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/processor.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/table.h"
#include "service/query_service.h"

namespace dba::service::test {

/// N-party reusable barrier: threads block in ArriveAndWait until all
/// parties arrived, then the generation flips and everyone releases.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const int parties_;
  int waiting_ = 0;
  uint64_t generation_ = 0;
};

/// The shared table schema of the service suites: region in [0,5),
/// status in [0,3), amount in [0,10000).
inline query::Table MakeServiceTable(std::string name, uint32_t rows,
                                     uint64_t seed) {
  Random rng(seed);
  query::Table table(std::move(name));
  std::vector<uint32_t> region(rows);
  std::vector<uint32_t> status(rows);
  std::vector<uint32_t> amount(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    region[i] = static_cast<uint32_t>(rng.Uniform(5));
    status[i] = static_cast<uint32_t>(rng.Uniform(3));
    amount[i] = static_cast<uint32_t>(rng.Uniform(10000));
  }
  (void)table.AddColumn("region", std::move(region));
  (void)table.AddColumn("status", std::move(status));
  (void)table.AddColumn("amount", std::move(amount));
  return table;
}

/// Fresh values for one column of the schema above (for UpdateColumn).
inline std::vector<uint32_t> MakeColumnValues(const std::string& column,
                                              uint32_t rows, uint64_t seed) {
  Random rng(seed);
  const uint32_t domain =
      column == "region" ? 5 : column == "status" ? 3 : 10000;
  std::vector<uint32_t> values(rows);
  for (uint32_t i = 0; i < rows; ++i) {
    values[i] = static_cast<uint32_t>(rng.Uniform(domain));
  }
  return values;
}

/// Deterministic predicate pool over the schema: entry i depends only
/// on i, so pools of equal size are identical across processes.
inline std::vector<std::shared_ptr<const query::Predicate>>
MakePredicatePool(size_t n) {
  std::vector<std::shared_ptr<const query::Predicate>> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    query::PredicatePtr predicate;
    const uint32_t lo = static_cast<uint32_t>((i * 997) % 8000);
    switch (i % 4) {
      case 0:
        predicate = query::Equals("region", static_cast<uint32_t>(i % 5));
        break;
      case 1:
        predicate =
            query::And(query::Equals("region", static_cast<uint32_t>(i % 5)),
                       query::Equals("status", static_cast<uint32_t>(i % 3)));
        break;
      case 2:
        predicate = query::Between("amount", lo, lo + 1999);
        break;
      default:
        predicate =
            query::Or(query::Equals("status", static_cast<uint32_t>(i % 3)),
                      query::GreaterEq("amount", 9000));
        break;
    }
    pool.push_back(std::shared_ptr<const query::Predicate>(
        std::move(predicate)));
  }
  return pool;
}

/// Sorted, duplicate-free set drawn from `rng` (for direct ops).
inline std::vector<uint32_t> MakeSortedSet(Random& rng, size_t max_elements,
                                           uint32_t value_range) {
  const size_t n = rng.Uniform(max_elements + 1);
  std::vector<uint32_t> values;
  values.reserve(n);
  uint32_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    next += 1 + static_cast<uint32_t>(rng.Uniform(
                    1 + value_range / (max_elements + 1)));
    values.push_back(next);
  }
  return values;
}

/// One action of a generated workload.
struct WorkloadAction {
  enum class Kind : uint8_t { kPredicate, kDirect, kUpdate };
  Kind kind = Kind::kPredicate;
  uint64_t at_ns = 0;  // virtual-clock submit time (open loop)
  std::string tenant;
  int priority = 0;
  size_t predicate_index = 0;        // kPredicate: index into the pool
  SetOp op = SetOp::kIntersect;      // kDirect
  std::vector<uint32_t> a;           // kDirect
  std::vector<uint32_t> b;           // kDirect
  std::string column;                // kUpdate
  uint64_t update_seed = 0;          // kUpdate: MakeColumnValues seed
};

struct WorkloadOptions {
  int actions = 64;
  size_t predicate_pool = 6;
  int tenants = 3;
  double direct_fraction = 0.3;
  double update_fraction = 0.1;
  uint64_t inter_arrival_ns = 500;
  uint32_t rows = 512;
};

/// Seeded open-loop action stream: kinds, tenants, priorities, inputs,
/// and arrival times are all pure functions of `seed`.
inline std::vector<WorkloadAction> MakeWorkload(uint64_t seed,
                                                const WorkloadOptions& options) {
  Random rng(seed);
  std::vector<WorkloadAction> actions;
  actions.reserve(static_cast<size_t>(options.actions));
  const char* columns[] = {"region", "status", "amount"};
  uint64_t at_ns = 0;
  for (int i = 0; i < options.actions; ++i) {
    WorkloadAction action;
    at_ns += rng.Uniform(options.inter_arrival_ns + 1);
    action.at_ns = at_ns;
    action.tenant =
        "tenant" + std::to_string(rng.Uniform(
                       static_cast<uint64_t>(options.tenants)));
    action.priority = static_cast<int>(rng.Uniform(3));
    const double draw = rng.NextDouble();
    if (draw < options.update_fraction) {
      action.kind = WorkloadAction::Kind::kUpdate;
      action.column = columns[rng.Uniform(3)];
      action.update_seed = rng.Next64();
    } else if (draw < options.update_fraction + options.direct_fraction) {
      action.kind = WorkloadAction::Kind::kDirect;
      const SetOp ops[] = {SetOp::kIntersect, SetOp::kUnion,
                           SetOp::kDifference, SetOp::kMerge};
      action.op = ops[rng.Uniform(4)];
      action.a = MakeSortedSet(rng, 64, 4096);
      action.b = MakeSortedSet(rng, 64, 4096);
    } else {
      action.kind = WorkloadAction::Kind::kPredicate;
      action.predicate_index = rng.Uniform(options.predicate_pool);
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

/// Single-threaded reference: the same table seed and action stream
/// replayed through a plain QueryEngine / Processor, one action at a
/// time. Service responses must be byte-identical to this replay.
class SerialReference {
 public:
  SerialReference(std::string table_name, uint32_t rows, uint64_t table_seed)
      : table_(MakeServiceTable(std::move(table_name), rows, table_seed)) {
    auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
    processor_ = *std::move(processor);
    engine_ = std::make_unique<query::QueryEngine>(&table_, processor_.get());
    for (const std::string& column : table_.ColumnNames()) {
      (void)engine_->BuildIndex(column);
    }
  }

  Result<std::vector<query::Rid>> Select(const query::Predicate& predicate) {
    return engine_->Select(predicate);
  }

  Result<std::vector<uint32_t>> Direct(SetOp op,
                                       std::span<const uint32_t> a,
                                       std::span<const uint32_t> b) {
    if (a.empty() || b.empty()) {
      // Mirror the board's degenerate path: intersect drops everything,
      // union/merge keep the non-empty side, difference keeps a.
      std::vector<uint32_t> result;
      if (op == SetOp::kUnion || op == SetOp::kMerge) {
        result.assign(a.empty() ? b.begin() : a.begin(),
                      a.empty() ? b.end() : a.end());
      } else if (op == SetOp::kDifference) {
        result.assign(a.begin(), a.end());
      }
      return result;
    }
    DBA_ASSIGN_OR_RETURN(SetOpRun run,
                         op == SetOp::kMerge
                             ? processor_->RunMerge(a, b)
                             : processor_->RunSetOperation(op, a, b));
    return std::move(run.result);
  }

  Status Update(const std::string& column, std::vector<uint32_t> values) {
    return table_.UpdateColumn(column, std::move(values));
  }

  const query::Table& table() const { return table_; }

 private:
  query::Table table_;
  std::unique_ptr<Processor> processor_;
  std::unique_ptr<query::QueryEngine> engine_;
};

}  // namespace dba::service::test

#endif  // DBA_TESTS_SHARED_SERVICE_TEST_UTIL_H_
