// Property sweep of the merge-sort kernels across configurations, sizes
// (including every alignment residue around the 4-element beat and the
// run-length boundaries), and data patterns.

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "common/random.h"
#include "core/processor.h"
#include "core/workload.h"

namespace dba {
namespace {

enum class Pattern { kRandom, kAscending, kDescending, kFewDistinct };

std::vector<uint32_t> MakeInput(Pattern pattern, uint32_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<uint32_t> values(n);
  switch (pattern) {
    case Pattern::kRandom:
      for (auto& v : values) v = rng.Next32();
      break;
    case Pattern::kAscending:
      for (uint32_t i = 0; i < n; ++i) values[i] = i * 3;
      break;
    case Pattern::kDescending:
      for (uint32_t i = 0; i < n; ++i) values[i] = (n - i) * 3;
      break;
    case Pattern::kFewDistinct:
      for (auto& v : values) v = static_cast<uint32_t>(rng.Uniform(4));
      break;
  }
  return values;
}

using Param = std::tuple<ProcessorKind, Pattern, uint32_t>;

class SortPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(SortPropertyTest, SortsExactly) {
  const auto [kind, pattern, n] = GetParam();
  auto processor = Processor::Create(kind);
  ASSERT_TRUE(processor.ok());
  const std::vector<uint32_t> values =
      MakeInput(pattern, n, 100 + n);
  auto run = (*processor)->RunSort(values);
  ASSERT_TRUE(run.ok()) << run.status();
  std::vector<uint32_t> expected = values;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(run->sorted, expected);
  if (n > 0) {
    EXPECT_GT(run->metrics.cycles, 0u);
  }
}

std::string PatternName(Pattern pattern) {
  switch (pattern) {
    case Pattern::kRandom:
      return "random";
    case Pattern::kAscending:
      return "ascending";
    case Pattern::kDescending:
      return "descending";
    case Pattern::kFewDistinct:
      return "fewdistinct";
  }
  return "invalid";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SortPropertyTest,
    ::testing::Combine(
        ::testing::Values(ProcessorKind::kDba1Lsu,
                          ProcessorKind::kDba1LsuEis,
                          ProcessorKind::kDba2LsuEis),
        ::testing::Values(Pattern::kRandom, Pattern::kAscending,
                          Pattern::kDescending, Pattern::kFewDistinct),
        ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 12u, 13u,
                          16u, 17u, 31u, 32u, 33u, 100u, 257u, 1024u, 2000u)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      return std::string(
                 hwmodel::ConfigKindName(std::get<0>(param_info.param))) +
             "_" + PatternName(std::get<1>(param_info.param)) + "_n" +
             std::to_string(std::get<2>(param_info.param));
    });

// The scalar order-insensitivity claim of Section 5.2: "The order of the
// values being sorted has no impact on the throughput of our chosen
// merge-sort implementation" holds approximately (branch outcomes vary,
// the instruction path does not).
TEST(SortTimingTest, OrderHasSmallImpactOnCycles) {
  auto processor = Processor::Create(ProcessorKind::kDba2LsuEis);
  ASSERT_TRUE(processor.ok());
  const uint32_t n = 3000;
  auto random_run = (*processor)->RunSort(MakeInput(Pattern::kRandom, n, 1));
  auto sorted_run =
      (*processor)->RunSort(MakeInput(Pattern::kAscending, n, 1));
  ASSERT_TRUE(random_run.ok());
  ASSERT_TRUE(sorted_run.ok());
  const double ratio = static_cast<double>(random_run->metrics.cycles) /
                       static_cast<double>(sorted_run->metrics.cycles);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.18);
}

}  // namespace
}  // namespace dba
